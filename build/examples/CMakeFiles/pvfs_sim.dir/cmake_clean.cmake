file(REMOVE_RECURSE
  "CMakeFiles/pvfs_sim.dir/pvfs_sim.cpp.o"
  "CMakeFiles/pvfs_sim.dir/pvfs_sim.cpp.o.d"
  "pvfs_sim"
  "pvfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
