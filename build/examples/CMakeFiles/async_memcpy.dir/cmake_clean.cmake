file(REMOVE_RECURSE
  "CMakeFiles/async_memcpy.dir/async_memcpy.cpp.o"
  "CMakeFiles/async_memcpy.dir/async_memcpy.cpp.o.d"
  "async_memcpy"
  "async_memcpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_memcpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
