# Empty compiler generated dependencies file for async_memcpy.
# This may be replaced when dependencies are built.
