# Empty compiler generated dependencies file for ioat_cpu.
# This may be replaced when dependencies are built.
