file(REMOVE_RECURSE
  "CMakeFiles/ioat_cpu.dir/cpu.cc.o"
  "CMakeFiles/ioat_cpu.dir/cpu.cc.o.d"
  "libioat_cpu.a"
  "libioat_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioat_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
