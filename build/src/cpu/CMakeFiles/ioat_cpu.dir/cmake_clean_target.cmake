file(REMOVE_RECURSE
  "libioat_cpu.a"
)
