# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("mem")
subdirs("cpu")
subdirs("dma")
subdirs("net")
subdirs("nic")
subdirs("tcp")
subdirs("sock")
subdirs("core")
subdirs("datacenter")
subdirs("pvfs")
