file(REMOVE_RECURSE
  "libioat_pvfs.a"
)
