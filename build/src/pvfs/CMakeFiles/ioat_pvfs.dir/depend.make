# Empty dependencies file for ioat_pvfs.
# This may be replaced when dependencies are built.
