file(REMOVE_RECURSE
  "CMakeFiles/ioat_pvfs.dir/client.cc.o"
  "CMakeFiles/ioat_pvfs.dir/client.cc.o.d"
  "CMakeFiles/ioat_pvfs.dir/server.cc.o"
  "CMakeFiles/ioat_pvfs.dir/server.cc.o.d"
  "libioat_pvfs.a"
  "libioat_pvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioat_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
