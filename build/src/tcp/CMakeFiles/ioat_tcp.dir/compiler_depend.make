# Empty compiler generated dependencies file for ioat_tcp.
# This may be replaced when dependencies are built.
