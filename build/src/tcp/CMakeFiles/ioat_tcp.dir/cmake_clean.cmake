file(REMOVE_RECURSE
  "CMakeFiles/ioat_tcp.dir/stack.cc.o"
  "CMakeFiles/ioat_tcp.dir/stack.cc.o.d"
  "libioat_tcp.a"
  "libioat_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioat_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
