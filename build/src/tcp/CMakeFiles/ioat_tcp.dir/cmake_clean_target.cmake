file(REMOVE_RECURSE
  "libioat_tcp.a"
)
