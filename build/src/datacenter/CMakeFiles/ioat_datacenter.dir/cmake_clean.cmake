file(REMOVE_RECURSE
  "CMakeFiles/ioat_datacenter.dir/app_server.cc.o"
  "CMakeFiles/ioat_datacenter.dir/app_server.cc.o.d"
  "CMakeFiles/ioat_datacenter.dir/client.cc.o"
  "CMakeFiles/ioat_datacenter.dir/client.cc.o.d"
  "CMakeFiles/ioat_datacenter.dir/proxy.cc.o"
  "CMakeFiles/ioat_datacenter.dir/proxy.cc.o.d"
  "CMakeFiles/ioat_datacenter.dir/web_server.cc.o"
  "CMakeFiles/ioat_datacenter.dir/web_server.cc.o.d"
  "libioat_datacenter.a"
  "libioat_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ioat_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
