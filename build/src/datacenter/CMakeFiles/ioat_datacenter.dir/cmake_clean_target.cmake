file(REMOVE_RECURSE
  "libioat_datacenter.a"
)
