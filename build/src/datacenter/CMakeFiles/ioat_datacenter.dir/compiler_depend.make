# Empty compiler generated dependencies file for ioat_datacenter.
# This may be replaced when dependencies are built.
