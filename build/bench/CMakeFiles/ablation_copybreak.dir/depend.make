# Empty dependencies file for ablation_copybreak.
# This may be replaced when dependencies are built.
