file(REMOVE_RECURSE
  "CMakeFiles/ablation_copybreak.dir/ablation_copybreak.cpp.o"
  "CMakeFiles/ablation_copybreak.dir/ablation_copybreak.cpp.o.d"
  "ablation_copybreak"
  "ablation_copybreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_copybreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
