# Empty compiler generated dependencies file for ablation_multiqueue.
# This may be replaced when dependencies are built.
