file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiqueue.dir/ablation_multiqueue.cpp.o"
  "CMakeFiles/ablation_multiqueue.dir/ablation_multiqueue.cpp.o.d"
  "ablation_multiqueue"
  "ablation_multiqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
