file(REMOVE_RECURSE
  "CMakeFiles/fig07_splitup.dir/fig07_splitup.cpp.o"
  "CMakeFiles/fig07_splitup.dir/fig07_splitup.cpp.o.d"
  "fig07_splitup"
  "fig07_splitup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_splitup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
