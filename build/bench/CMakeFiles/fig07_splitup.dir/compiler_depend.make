# Empty compiler generated dependencies file for fig07_splitup.
# This may be replaced when dependencies are built.
