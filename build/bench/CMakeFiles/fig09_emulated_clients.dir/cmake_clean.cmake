file(REMOVE_RECURSE
  "CMakeFiles/fig09_emulated_clients.dir/fig09_emulated_clients.cpp.o"
  "CMakeFiles/fig09_emulated_clients.dir/fig09_emulated_clients.cpp.o.d"
  "fig09_emulated_clients"
  "fig09_emulated_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_emulated_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
