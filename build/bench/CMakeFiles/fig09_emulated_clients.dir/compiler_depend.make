# Empty compiler generated dependencies file for fig09_emulated_clients.
# This may be replaced when dependencies are built.
