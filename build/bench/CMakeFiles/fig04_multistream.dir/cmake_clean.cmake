file(REMOVE_RECURSE
  "CMakeFiles/fig04_multistream.dir/fig04_multistream.cpp.o"
  "CMakeFiles/fig04_multistream.dir/fig04_multistream.cpp.o.d"
  "fig04_multistream"
  "fig04_multistream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_multistream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
