# Empty compiler generated dependencies file for fig04_multistream.
# This may be replaced when dependencies are built.
