# Empty compiler generated dependencies file for fig08_datacenter_traces.
# This may be replaced when dependencies are built.
