file(REMOVE_RECURSE
  "CMakeFiles/fig08_datacenter_traces.dir/fig08_datacenter_traces.cpp.o"
  "CMakeFiles/fig08_datacenter_traces.dir/fig08_datacenter_traces.cpp.o.d"
  "fig08_datacenter_traces"
  "fig08_datacenter_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_datacenter_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
