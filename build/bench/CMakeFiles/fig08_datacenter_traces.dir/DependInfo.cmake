
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_datacenter_traces.cpp" "bench/CMakeFiles/fig08_datacenter_traces.dir/fig08_datacenter_traces.cpp.o" "gcc" "bench/CMakeFiles/fig08_datacenter_traces.dir/fig08_datacenter_traces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacenter/CMakeFiles/ioat_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/ioat_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ioat_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
