# Empty dependencies file for extension_soft_timers.
# This may be replaced when dependencies are built.
