file(REMOVE_RECURSE
  "CMakeFiles/extension_soft_timers.dir/extension_soft_timers.cpp.o"
  "CMakeFiles/extension_soft_timers.dir/extension_soft_timers.cpp.o.d"
  "extension_soft_timers"
  "extension_soft_timers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_soft_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
