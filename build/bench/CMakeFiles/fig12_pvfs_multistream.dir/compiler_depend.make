# Empty compiler generated dependencies file for fig12_pvfs_multistream.
# This may be replaced when dependencies are built.
