file(REMOVE_RECURSE
  "CMakeFiles/fig12_pvfs_multistream.dir/fig12_pvfs_multistream.cpp.o"
  "CMakeFiles/fig12_pvfs_multistream.dir/fig12_pvfs_multistream.cpp.o.d"
  "fig12_pvfs_multistream"
  "fig12_pvfs_multistream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_pvfs_multistream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
