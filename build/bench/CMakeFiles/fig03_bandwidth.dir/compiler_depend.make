# Empty compiler generated dependencies file for fig03_bandwidth.
# This may be replaced when dependencies are built.
