file(REMOVE_RECURSE
  "CMakeFiles/fig11_pvfs_write.dir/fig11_pvfs_write.cpp.o"
  "CMakeFiles/fig11_pvfs_write.dir/fig11_pvfs_write.cpp.o.d"
  "fig11_pvfs_write"
  "fig11_pvfs_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pvfs_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
