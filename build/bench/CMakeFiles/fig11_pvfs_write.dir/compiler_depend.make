# Empty compiler generated dependencies file for fig11_pvfs_write.
# This may be replaced when dependencies are built.
