file(REMOVE_RECURSE
  "CMakeFiles/fig10_pvfs_read.dir/fig10_pvfs_read.cpp.o"
  "CMakeFiles/fig10_pvfs_read.dir/fig10_pvfs_read.cpp.o.d"
  "fig10_pvfs_read"
  "fig10_pvfs_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pvfs_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
