# Empty compiler generated dependencies file for fig10_pvfs_read.
# This may be replaced when dependencies are built.
