file(REMOVE_RECURSE
  "CMakeFiles/fig06_copy.dir/fig06_copy.cpp.o"
  "CMakeFiles/fig06_copy.dir/fig06_copy.cpp.o.d"
  "fig06_copy"
  "fig06_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
