# Empty compiler generated dependencies file for fig06_copy.
# This may be replaced when dependencies are built.
