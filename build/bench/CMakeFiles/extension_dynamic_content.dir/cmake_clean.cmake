file(REMOVE_RECURSE
  "CMakeFiles/extension_dynamic_content.dir/extension_dynamic_content.cpp.o"
  "CMakeFiles/extension_dynamic_content.dir/extension_dynamic_content.cpp.o.d"
  "extension_dynamic_content"
  "extension_dynamic_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dynamic_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
