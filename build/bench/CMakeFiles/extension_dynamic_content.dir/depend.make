# Empty dependencies file for extension_dynamic_content.
# This may be replaced when dependencies are built.
