# Empty compiler generated dependencies file for fig05_sockopts.
# This may be replaced when dependencies are built.
