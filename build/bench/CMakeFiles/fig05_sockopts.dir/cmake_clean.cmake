file(REMOVE_RECURSE
  "CMakeFiles/fig05_sockopts.dir/fig05_sockopts.cpp.o"
  "CMakeFiles/fig05_sockopts.dir/fig05_sockopts.cpp.o.d"
  "fig05_sockopts"
  "fig05_sockopts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sockopts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
