# Empty dependencies file for test_net_nic.
# This may be replaced when dependencies are built.
