file(REMOVE_RECURSE
  "CMakeFiles/test_net_nic.dir/test_net_nic.cc.o"
  "CMakeFiles/test_net_nic.dir/test_net_nic.cc.o.d"
  "test_net_nic"
  "test_net_nic.pdb"
  "test_net_nic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
