# Empty dependencies file for test_membus.
# This may be replaced when dependencies are built.
