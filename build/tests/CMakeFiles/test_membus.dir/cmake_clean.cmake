file(REMOVE_RECURSE
  "CMakeFiles/test_membus.dir/test_membus.cc.o"
  "CMakeFiles/test_membus.dir/test_membus.cc.o.d"
  "test_membus"
  "test_membus.pdb"
  "test_membus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_membus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
