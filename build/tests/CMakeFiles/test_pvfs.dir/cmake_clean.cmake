file(REMOVE_RECURSE
  "CMakeFiles/test_pvfs.dir/test_pvfs.cc.o"
  "CMakeFiles/test_pvfs.dir/test_pvfs.cc.o.d"
  "test_pvfs"
  "test_pvfs.pdb"
  "test_pvfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
