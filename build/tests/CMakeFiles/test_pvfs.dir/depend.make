# Empty dependencies file for test_pvfs.
# This may be replaced when dependencies are built.
