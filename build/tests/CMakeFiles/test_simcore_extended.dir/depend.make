# Empty dependencies file for test_simcore_extended.
# This may be replaced when dependencies are built.
