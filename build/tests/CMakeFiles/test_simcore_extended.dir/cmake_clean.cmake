file(REMOVE_RECURSE
  "CMakeFiles/test_simcore_extended.dir/test_simcore_extended.cc.o"
  "CMakeFiles/test_simcore_extended.dir/test_simcore_extended.cc.o.d"
  "test_simcore_extended"
  "test_simcore_extended.pdb"
  "test_simcore_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcore_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
