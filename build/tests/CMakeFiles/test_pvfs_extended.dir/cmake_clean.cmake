file(REMOVE_RECURSE
  "CMakeFiles/test_pvfs_extended.dir/test_pvfs_extended.cc.o"
  "CMakeFiles/test_pvfs_extended.dir/test_pvfs_extended.cc.o.d"
  "test_pvfs_extended"
  "test_pvfs_extended.pdb"
  "test_pvfs_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pvfs_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
