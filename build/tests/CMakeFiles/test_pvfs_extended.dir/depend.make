# Empty dependencies file for test_pvfs_extended.
# This may be replaced when dependencies are built.
