file(REMOVE_RECURSE
  "CMakeFiles/test_app_memory.dir/test_app_memory.cc.o"
  "CMakeFiles/test_app_memory.dir/test_app_memory.cc.o.d"
  "test_app_memory"
  "test_app_memory.pdb"
  "test_app_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
