# Empty dependencies file for test_app_memory.
# This may be replaced when dependencies are built.
