file(REMOVE_RECURSE
  "CMakeFiles/test_datacenter_dynamic.dir/test_datacenter_dynamic.cc.o"
  "CMakeFiles/test_datacenter_dynamic.dir/test_datacenter_dynamic.cc.o.d"
  "test_datacenter_dynamic"
  "test_datacenter_dynamic.pdb"
  "test_datacenter_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datacenter_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
