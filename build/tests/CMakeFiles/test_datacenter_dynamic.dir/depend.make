# Empty dependencies file for test_datacenter_dynamic.
# This may be replaced when dependencies are built.
