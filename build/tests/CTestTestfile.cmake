# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_dma[1]_include.cmake")
include("/root/repo/build/tests/test_net_nic[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_datacenter[1]_include.cmake")
include("/root/repo/build/tests/test_pvfs[1]_include.cmake")
include("/root/repo/build/tests/test_membus[1]_include.cmake")
include("/root/repo/build/tests/test_app_memory[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_properties[1]_include.cmake")
include("/root/repo/build/tests/test_pvfs_extended[1]_include.cmake")
include("/root/repo/build/tests/test_simcore_extended[1]_include.cmake")
include("/root/repo/build/tests/test_datacenter_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_trace_workload[1]_include.cmake")
include("/root/repo/build/tests/test_model_based[1]_include.cmake")
