#!/usr/bin/env python3
"""Summarize an ioat-span-report-v1 file (--span-report output).

Prints the top-N slowest requests with their per-category latency
breakdown and the critical-path span chain, then aggregate per-category
totals across every finished request.

With --by-transport, requests are additionally grouped by the transport
their category profile implies (poll time => bypass, dma time => ioat,
else tcp) and a per-group aggregate is printed — useful on reports from
mixed-transport benches (fig08's proxy tiers).

Usage:
    tools/spanstat.py spans.json [--top N] [--name SUBSTR]
        [--by-transport]

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "ioat-span-report-v1":
        sys.exit(f"{path}: not an ioat-span-report-v1 document")
    return doc


def fmt_ticks(ticks):
    """Ticks are nanoseconds; print at a human scale."""
    if ticks >= 1_000_000:
        return f"{ticks / 1e6:.3f} ms"
    if ticks >= 1_000:
        return f"{ticks / 1e3:.2f} us"
    return f"{ticks} ns"


def critical_chain(req):
    """Span names along the critical path, root first."""
    spans = {s["id"]: s for s in req.get("spans", [])}
    names = []
    for sid in req.get("criticalPath", []):
        s = spans.get(sid)
        names.append(s["name"] if s else f"span{sid}")
    return names


def infer_transport(req):
    """The transport a request's category profile implies.

    The bypass path busy-polls for completions (poll ticks) and never
    touches DMA engines; the I/OAT path offloads copies to DMA (dma
    ticks); plain kernel TCP shows neither.
    """
    bd = req.get("breakdown", {})
    if bd.get("poll", 0) > 0:
        return "bypass"
    if bd.get("dma", 0) > 0:
        return "ioat"
    return "tcp"


def print_aggregate(label, reqs, cats):
    totals = {cat: 0 for cat in cats}
    grand = 0
    for r in reqs:
        for cat in cats:
            totals[cat] += r["breakdown"].get(cat, 0)
        grand += r["durationTicks"]
    print(f"{label} ({len(reqs)} request(s)):")
    for cat in cats:
        if totals[cat] == 0:
            continue
        share = 100.0 * totals[cat] / grand if grand else 0.0
        print(f"    {cat:<12} {fmt_ticks(totals[cat]):>12}  "
              f"{share:5.1f}%")
    absent = [cat for cat in cats if totals[cat] == 0]
    if absent:
        print("    absent: " + ", ".join(absent))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="span JSON written by --span-report")
    ap.add_argument("--top", type=int, default=10,
                    help="slowest requests to detail (default 10)")
    ap.add_argument("--name", default="",
                    help="only consider requests whose name contains this")
    ap.add_argument("--by-transport", action="store_true",
                    help="also aggregate per inferred transport "
                         "(poll=>bypass, dma=>ioat, else tcp)")
    args = ap.parse_args()

    doc = load(args.report)
    cats = doc["categories"]
    reqs = [r for r in doc["requests"] if args.name in r["name"]]
    if not reqs:
        print("no matching requests")
        return

    reqs.sort(key=lambda r: (-r["durationTicks"], r["id"]))

    print(f"{len(reqs)} request(s); top {min(args.top, len(reqs))} "
          "slowest:\n")
    for r in reqs[: args.top]:
        dur = r["durationTicks"]
        print(f"#{r['id']} {r['name']} (node {r['node']}): "
              f"{fmt_ticks(dur)} end-to-end")
        for cat in cats:
            ticks = r["breakdown"].get(cat, 0)
            if ticks == 0:
                continue
            share = 100.0 * ticks / dur if dur else 0.0
            print(f"    {cat:<12} {fmt_ticks(ticks):>12}  {share:5.1f}%")
        chain = critical_chain(r)
        if chain:
            print("    critical path: " + " -> ".join(chain))
        print()

    print_aggregate("aggregate breakdown over all matching requests",
                    reqs, cats)

    if args.by_transport:
        groups = {}
        for r in reqs:
            groups.setdefault(infer_transport(r), []).append(r)
        for transport in ("tcp", "ioat", "bypass"):
            if transport in groups:
                print()
                print_aggregate(f"[{transport}]", groups[transport],
                                cats)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
