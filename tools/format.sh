#!/bin/sh
# Formatting gate over the tracked C++ sources, driven by the repo's
# .clang-format.
#
# Usage:
#   tools/format.sh --check   # verify only (CI / tools/check.sh mode)
#   tools/format.sh           # rewrite files in place
#
# Skips with a notice (exit 0) when clang-format is not installed, so
# minimal dev containers are not blocked; CI images carry the tool.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format.sh: clang-format not installed; skipping (CI runs it)"
    exit 0
fi

mode="${1:-fix}"

files=$(git ls-files '*.hh' '*.cc' '*.cpp' | grep -v '^tools/simlint_fixtures/')

if [ "$mode" = "--check" ]; then
    # shellcheck disable=SC2086
    clang-format --dry-run --Werror $files
    echo "format.sh: all files clean"
else
    # shellcheck disable=SC2086
    clang-format -i $files
    echo "format.sh: formatted $(printf '%s\n' $files | wc -l) files"
fi
