#!/bin/sh
# One-shot pre-PR gate: everything CI checks, locally, in order of
# increasing cost.  A clean exit means the tree is ready to post.
#
#   1. determinism lint (tools/simlint.py): fixture self-test + src/
#   2. semantic analysis (tools/simcheck): fixture self-test + whole
#      tree against the gated build's compile_commands.json
#   3. formatting (tools/format.sh --check; skipped if no clang-format)
#   4. warnings-as-errors build (-DIOAT_WERROR=ON adds -Wshadow
#      -Wconversion -Werror), with clang-tidy alongside when installed
#   5. full ctest suite in the gated build
#   6. chaos recovery gate: ctest -L chaos plus a short
#      chaos_search invariant sweep (zero violations required)
#   7. ASan+UBSan build + full suite (tools/sanitize.sh)
#
# Usage: tools/check.sh [--no-sanitize]
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

run_sanitize=1
[ "${1:-}" = "--no-sanitize" ] && run_sanitize=0

step() { printf '\n== check.sh: %s ==\n' "$1"; }

step "simlint self-test"
python3 tools/simlint.py --self-test

step "simlint over src/"
python3 tools/simlint.py

step "simcheck self-test"
python3 tools/simcheck --self-test

# Configure the gated build now so simcheck can consume its
# compilation database; the expensive compile runs later.
tidy=OFF
if command -v clang-tidy >/dev/null 2>&1; then
    tidy=ON
else
    echo "clang-tidy not installed; tidy pass skipped (CI runs it)"
fi
build="$repo/build-check"
cmake -B "$build" -S "$repo" -DIOAT_WERROR=ON -DIOAT_TIDY=$tidy

step "simcheck over the tree"
python3 tools/simcheck -p "$build/compile_commands.json"

step "format check"
tools/format.sh --check

step "warnings-as-errors build (IOAT_WERROR)"
cmake --build "$build" -j "$(nproc)"

step "full test suite"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

step "chaos recovery gate (ctest -L chaos + invariant sweep)"
ctest --test-dir "$build" -L chaos --output-on-failure
"$build/bench/chaos_search" --schedules 8 > /dev/null

if [ "$run_sanitize" = 1 ]; then
    step "sanitizers (ASan+UBSan)"
    tools/sanitize.sh
else
    step "sanitizers skipped (--no-sanitize)"
fi

step "all gates passed"
