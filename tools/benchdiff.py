#!/usr/bin/env python3
"""Compare two ioat-bench-v1 perf-trajectory files with noise tolerance.

Every bench binary writes a normalized BENCH_<name>.json on success:
events executed, wall seconds, events/sec, peak RSS, the config echo
and the git revision.  This tool compares a baseline against a current
run and exits non-zero on regression, so CI can gate on it:

 * model fields compare exactly — the bench name must match, and with
   --require-events-equal the executed-event count must too (it is
   deterministic; a change means the model changed, not the machine);
 * perf fields compare with tolerance — events/sec may not drop below
   --min-ratio x baseline, peak RSS may not exceed --max-rss-ratio x
   baseline.  Checked-in baselines come from a different machine, so
   CI uses a generous --min-ratio;
 * config-echo differences are reported, and fatal with --strict-config.

Usage:
    tools/benchdiff.py baseline.json current.json
        [--min-ratio 0.5] [--max-rss-ratio 4.0]
        [--require-events-equal] [--strict-config]

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "ioat-bench-v1":
        sys.exit(f"{path}: not an ioat-bench-v1 document")
    for field in ("bench", "config", "metrics"):
        if field not in doc:
            sys.exit(f"{path}: missing '{field}'")
    return doc


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--min-ratio", type=float, default=0.5,
                    help="current events/sec must be >= this x baseline "
                         "(default 0.5)")
    ap.add_argument("--max-rss-ratio", type=float, default=4.0,
                    help="current peak RSS must be <= this x baseline "
                         "(default 4.0)")
    ap.add_argument("--require-events-equal", action="store_true",
                    help="fail when the executed-event counts differ")
    ap.add_argument("--strict-config", action="store_true",
                    help="fail when the config echoes differ")
    args = ap.parse_args()

    base = load(args.baseline)
    curr = load(args.current)
    failures = []

    if base["bench"] != curr["bench"]:
        failures.append(f"bench mismatch: {base['bench']} vs "
                        f"{curr['bench']}")

    bm, cm = base["metrics"], curr["metrics"]
    print(f"bench: {curr['bench']}")
    print(f"  gitRev:       {base.get('gitRev', '?')} -> "
          f"{curr.get('gitRev', '?')}")
    print(f"  events:       {bm['events']} -> {cm['events']}")
    print(f"  wallSeconds:  {bm['wallSeconds']} -> {cm['wallSeconds']}")
    print(f"  eventsPerSec: {bm['eventsPerSec']} -> {cm['eventsPerSec']}")
    print(f"  peakRssBytes: {bm['peakRssBytes']} -> {cm['peakRssBytes']}")

    diffs = [k for k in sorted(set(base["config"]) | set(curr["config"]))
             if base["config"].get(k) != curr["config"].get(k)]
    for k in diffs:
        line = (f"config '{k}': {base['config'].get(k)!r} -> "
                f"{curr['config'].get(k)!r}")
        if args.strict_config:
            failures.append(line)
        else:
            print(f"  note: {line}")

    if bm["events"] != cm["events"]:
        line = (f"executed events changed: {bm['events']} -> "
                f"{cm['events']} (model change, not noise)")
        if args.require_events_equal:
            failures.append(line)
        else:
            print(f"  note: {line}")

    if bm["eventsPerSec"] > 0:
        ratio = cm["eventsPerSec"] / bm["eventsPerSec"]
        print(f"  throughput ratio: {ratio:.2f}x "
              f"(gate: >= {args.min_ratio:.2f}x)")
        if ratio < args.min_ratio:
            failures.append(
                f"events/sec regressed to {ratio:.2f}x baseline "
                f"(min {args.min_ratio:.2f}x)")

    if bm["peakRssBytes"] > 0:
        ratio = cm["peakRssBytes"] / bm["peakRssBytes"]
        print(f"  peak-RSS ratio:   {ratio:.2f}x "
              f"(gate: <= {args.max_rss_ratio:.2f}x)")
        if ratio > args.max_rss_ratio:
            failures.append(
                f"peak RSS grew to {ratio:.2f}x baseline "
                f"(max {args.max_rss_ratio:.2f}x)")

    if failures:
        print("\nREGRESSION:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("\nOK: within tolerance")


if __name__ == "__main__":
    main()
