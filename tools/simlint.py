#!/usr/bin/env python3
"""Determinism lint for the I/OAT simulator sources.

The simulator's contract is bit-identical replay: the same seed and
config must produce the same event order, the same stats and the same
golden digests on every host.  A handful of C++ constructs silently
break that contract (wall-clock reads, ambient RNGs, hash-ordered
iteration, untracked heap traffic, float->Tick truncation), and none
of them are compile errors.  This lint makes them CI errors instead.

Rules
-----
  wall-clock      no time()/gettimeofday()/clock_gettime()/
                  std::chrono::*_clock: simulated time comes from the
                  event queue, never from the host.
  raw-random      no rand()/srand()/std::random_device/std::mt19937
                  outside src/simcore/random.hh: all randomness flows
                  from the seeded simulator Rng.
  unordered-iter  no iteration over std::unordered_map/set: hash
                  order is libstdc++- and address-dependent, so any
                  loop over one can reorder events or stats output.
                  Lookups (find/at/operator[]) are fine.
  raw-new         no raw new/delete outside src/simcore/pool.hh: heap
                  traffic goes through the arenas so allocation cost
                  and recycling stay modeled and leak-checkable.
                  Placement new (::new (ptr)) is allowed.
  float-tick      no ad-hoc float->Tick conversion: casts like
                  static_cast<Tick>(double) truncate differently
                  depending on intermediate precision.  The one
                  audited door is sim::ticksFromDouble() (and
                  BytesPerSec::transferTime, which uses it).
  raw-stdout      no std::cout/cerr/clog or printf-family writes in
                  src/: model output flows through the telemetry
                  registry / RunReport / sim::Table so every run
                  artifact is machine-readable and diffable.  The
                  sanctioned sinks are src/simcore/log.hh (leveled
                  stderr logging) and src/simcore/assert.hh (panics).
                  String *formatting* (strprintf/vsnprintf) is fine.
  raw-thread      no std::thread/mutex/condition_variable/atomic,
                  thread_local, locks or futures outside src/simcore/:
                  the sharded executor (shard.hh) owns ALL real
                  concurrency, and model code stays single-threaded
                  per shard so shard-equivalence (ctest -L shard) can
                  hold.  Model-visible shared state goes through the
                  wrappers in src/simcore/stats.hh (Counter, Flag,
                  Level) or per-node partials merged in node order.

Suppressions
------------
A finding can be waived with a trailing comment on the same line or a
comment on the line directly above:

    foo = new Node[n]; // simlint: allow(raw-new) arena chunk

Each allow() is counted against a *per-rule* budget (default 5 per
rule, override with `--suppression-budget [rule=]N`) so waivers stay
rare and reviewed; the clean summary reports the remaining budget.

Usage
-----
    tools/simlint.py [paths...]       lint (default: src/)
    tools/simlint.py --self-test      run the fixture suite
"""

import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
# Shared with tools/simcheck: a C++ stripper that understands raw
# string literals and digit separators.  The naive stripper this
# replaced lost quote-state inside R"(...)" bodies with embedded
# quotes, leaking string text into "code" and producing phantom
# unordered-iter findings.
from simcheck.cxxlex import strip_code  # noqa: E402

RULES = (
    "wall-clock",
    "raw-random",
    "unordered-iter",
    "raw-new",
    "float-tick",
    "raw-stdout",
    "raw-thread",
)

# Files that ARE the sanctioned implementation of a rule's subject.
EXEMPT = {
    "raw-random": ("src/simcore/random.hh",),
    "raw-new": ("src/simcore/pool.hh",),
    "float-tick": ("src/simcore/types.hh",),
    "raw-stdout": ("src/simcore/log.hh", "src/simcore/assert.hh"),
}

# Directories whose whole subtree is the sanctioned implementation.
EXEMPT_DIRS = {
    # simcore owns the executor: the shard workers/barrier/mailboxes,
    # the coroutine arena's thread-local free lists and the atomic
    # stats wrappers are exactly the code the rule funnels others to.
    "raw-thread": ("src/simcore/",),
}

SOURCE_SUFFIXES = {".hh", ".cc", ".cpp", ".hpp", ".cxx"}

ALLOW_RE = re.compile(r"//\s*simlint:\s*allow\(([a-z-]+)\)")

WALL_CLOCK_RE = re.compile(
    r"(?:\bstd::chrono::(?:system|steady|high_resolution)_clock\b"
    r"|(?<![\w:])(?:std::)?(?:time|clock|gettimeofday|clock_gettime"
    r"|localtime|gmtime|mktime)\s*\()"
)
RAW_RANDOM_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|rand_r|drand48)\s*\("
    r"|\bstd::(?:random_device|mt19937(?:_64)?|minstd_rand0?"
    r"|default_random_engine|ranlux\w+|knuth_b)\b"
)
# An allocating `new`: keyword followed by a type, excluding
# placement new (`::new (...)` / `new (ptr) T`), `= delete`, and
# `operator new` declarations.
RAW_NEW_RE = re.compile(r"(?<![\w:])new\s+[A-Za-z_:][\w:<>, ]*[\[({;]?")
RAW_DELETE_RE = re.compile(r"(?<![\w:])delete(?:\s*\[\s*\])?\s+[A-Za-z_:*(]")
PLACEMENT_NEW_RE = re.compile(r"::\s*new\s*\(|new\s*\(\s*[a-z_]\w*\s*\)")
FLOAT_TICK_RE = re.compile(
    r"static_cast<\s*(?:ioat::)?(?:sim::)?Tick\s*>"
    r"|\bTick\s*\{\s*static_cast<"
    r"|\bTick\s*\(\s*static_cast<"
)
# Console I/O: stream objects or a printf-family *call*.  The
# lookbehind keeps formatting helpers (strprintf, vsnprintf) and
# member calls (sink.printf / sink->printf) from matching.
RAW_STDOUT_RE = re.compile(
    r"\bstd::(?:cout|cerr|clog)\b"
    r"|(?<![\w:.>])(?:std::)?(?:printf|fprintf|vprintf|vfprintf"
    r"|puts|fputs|putchar|fputc|putc)\s*\("
)
# Real concurrency primitives.  thread_local is keyword-matched;
# everything else is the std:: vocabulary (std::thread::id and
# member uses still contain the flagged token, which is the point).
RAW_THREAD_RE = re.compile(
    r"\bstd::(?:jthread|thread|timed_mutex|recursive_mutex"
    r"|shared_mutex|mutex|condition_variable_any|condition_variable"
    r"|atomic_flag|atomic_ref|atomic|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock|counting_semaphore|binary_semaphore"
    r"|stop_token|barrier|latch|future|shared_future|promise|async)\b"
    r"|\bthread_local\b"
)
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*):([^)]*)\)")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(?:begin|cbegin)\s*\(")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def collect_allows(raw_lines):
    """Map line number (1-based) -> set of rules waived on that line."""
    allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            rule = m.group(1)
            stripped = line.strip()
            # A standalone comment waives the following line; a
            # trailing comment waives its own line.
            target = idx + 1 if stripped.startswith("//") else idx
            allows.setdefault(target, set()).add(rule)
    return allows


def unordered_names(code_lines):
    """Identifiers declared in this file with an unordered container
    type (members, locals, aliases).  Heuristic: scan past the
    matching '>' of the template argument list and take the next
    identifier."""
    names = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        depth = 1
        j = m.end()
        while j < len(text) and depth > 0:
            if text[j] == "<":
                depth += 1
            elif text[j] == ">":
                depth -= 1
            j += 1
        ident = re.match(r"\s*&?\s*([A-Za-z_]\w*)", text[j:])
        if ident:
            names.add(ident.group(1))
    return names


def lint_file(path, rel):
    raw = pathlib.Path(path).read_text()
    raw_lines = raw.splitlines()
    code_lines = strip_code(raw)
    allows = collect_allows(raw_lines)
    findings = []
    used_allows = []

    def exempt(rule):
        norm = rel.replace("\\", "/")
        return any(norm.endswith(e) for e in EXEMPT.get(rule, ())) or \
            any(d in norm for d in EXEMPT_DIRS.get(rule, ()))

    def report(lineno, rule, message):
        if rule in allows.get(lineno, ()):
            used_allows.append((lineno, rule))
            return
        findings.append(Finding(rel, lineno, rule, message))

    names = unordered_names(code_lines)

    for lineno, line in enumerate(code_lines, start=1):
        if WALL_CLOCK_RE.search(line):
            report(
                lineno, "wall-clock",
                "host clock access; simulated time must come from "
                "Simulation::now()",
            )
        if not exempt("raw-random") and RAW_RANDOM_RE.search(line):
            report(
                lineno, "raw-random",
                "ambient RNG; use the seeded sim::Rng from "
                "src/simcore/random.hh",
            )
        if not exempt("raw-new"):
            no_placement = PLACEMENT_NEW_RE.sub(" ", line)
            no_placement = re.sub(r"=\s*delete\b", " ", no_placement)
            no_placement = re.sub(r"\boperator\s+(?:new|delete)\b",
                                  " ", no_placement)
            if RAW_NEW_RE.search(no_placement) or RAW_DELETE_RE.search(
                    no_placement):
                report(
                    lineno, "raw-new",
                    "raw heap traffic; allocate through the arenas in "
                    "src/simcore/pool.hh (or std::make_unique for "
                    "owner-managed objects)",
                )
        if not exempt("raw-stdout") and RAW_STDOUT_RE.search(line):
            report(
                lineno, "raw-stdout",
                "raw console I/O; emit run artifacts through the "
                "telemetry registry / RunReport / sim::Table (leveled "
                "diagnostics go through src/simcore/log.hh)",
            )
        if not exempt("raw-thread") and RAW_THREAD_RE.search(line):
            report(
                lineno, "raw-thread",
                "raw threading primitive; real concurrency lives only "
                "in src/simcore/ (the sharded executor) — use "
                "sim::stats::Counter/Flag/Level or per-node partials "
                "for shared state",
            )
        if not exempt("float-tick") and FLOAT_TICK_RE.search(line):
            report(
                lineno, "float-tick",
                "ad-hoc float->Tick conversion; the audited door is "
                "sim::ticksFromDouble()",
            )
        # unordered-iter: range-for over a known unordered name or a
        # begin()/cbegin() call on one.
        for m in RANGE_FOR_RE.finditer(line):
            target = m.group(2)
            tail = re.findall(r"[A-Za-z_]\w*", target)
            if (tail and tail[-1] in names) or "unordered_" in target:
                report(
                    lineno, "unordered-iter",
                    f"iteration over unordered container "
                    f"'{tail[-1] if tail else target.strip()}'; hash "
                    "order is not deterministic — use std::map/vector "
                    "or sort first",
                )
        for m in BEGIN_CALL_RE.finditer(line):
            if m.group(1) in names:
                report(
                    lineno, "unordered-iter",
                    f"begin() on unordered container '{m.group(1)}'; "
                    "hash order is not deterministic",
                )

    return findings, used_allows


def iter_sources(paths):
    for p in paths:
        path = pathlib.Path(p)
        if path.is_file():
            if path.suffix in SOURCE_SUFFIXES:
                yield path
        else:
            for f in sorted(path.rglob("*")):
                if f.suffix in SOURCE_SUFFIXES and f.is_file():
                    yield f


def run_lint(paths, root=None):
    root = pathlib.Path(root or ".").resolve()
    all_findings = []
    all_allows = []
    for f in iter_sources(paths):
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        findings, used = lint_file(f, rel)
        all_findings.extend(findings)
        all_allows.extend((rel, ln, rule) for ln, rule in used)
    return all_findings, all_allows


def self_test(script_dir):
    """Run the lint against its fixture files: every bad_<rule> file
    must trip exactly its rule; every good_<rule> file must be clean;
    the suppressed fixture must be clean but consume allows."""
    fixtures = script_dir / "simlint_fixtures"
    failures = []
    checked = 0
    for f in sorted(fixtures.glob("*.cc")):
        findings, used = lint_file(f, f.name)
        rules_hit = {x.rule for x in findings}
        name = f.stem
        if name.startswith("bad_"):
            want = name[len("bad_"):].replace("_", "-")
            if want not in rules_hit:
                failures.append(f"{f.name}: expected a {want} finding, "
                                f"got {sorted(rules_hit) or 'none'}")
            if rules_hit - {want}:
                failures.append(f"{f.name}: unexpected extra findings "
                                f"{sorted(rules_hit - {want})}")
        elif name.startswith("good_"):
            if findings:
                failures.append(f"{f.name}: expected clean, got "
                                + "; ".join(str(x) for x in findings))
        elif name.startswith("suppressed_"):
            if findings:
                failures.append(f"{f.name}: suppression failed: "
                                + "; ".join(str(x) for x in findings))
            if not used:
                failures.append(f"{f.name}: expected allow() to be "
                                "consumed")
        checked += 1
    if checked == 0:
        failures.append(f"no fixtures found under {fixtures}")
    for msg in failures:
        print(f"simlint self-test FAIL: {msg}", file=sys.stderr)
    print(f"simlint self-test: {checked} fixtures, "
          f"{len(failures)} failures")
    return 1 if failures else 0


DEFAULT_BUDGET = 5


def parse_budgets(specs):
    """`--suppression-budget [rule=]N`, repeatable.  A bare N sets
    every rule's budget; `rule=N` sets one rule's."""
    budgets = {rule: DEFAULT_BUDGET for rule in RULES}
    for spec in specs or ():
        if "=" in spec:
            rule, _, n = spec.partition("=")
            if rule not in RULES:
                raise SystemExit(f"simlint: unknown rule in "
                                 f"--suppression-budget: {rule}")
            budgets[rule] = int(n)
        else:
            for rule in RULES:
                budgets[rule] = int(spec)
    return budgets


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--suppression-budget", action="append",
                    metavar="[RULE=]N",
                    help=f"per-rule simlint:allow() budget (default "
                         f"{DEFAULT_BUDGET} per rule); a bare N sets "
                         f"all rules, RULE=N one rule; repeatable")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite instead of linting")
    args = ap.parse_args(argv)

    script_dir = pathlib.Path(__file__).resolve().parent
    if args.self_test:
        return self_test(script_dir)

    budgets = parse_budgets(args.suppression_budget)
    repo = script_dir.parent
    paths = args.paths or [repo / "src"]
    findings, allows = run_lint(paths, root=repo)

    for x in findings:
        print(x)
    status = 0
    if findings:
        print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
        status = 1
    used = {}
    for _, _, rule in allows:
        used[rule] = used.get(rule, 0) + 1
    for rule in sorted(used):
        if used[rule] > budgets[rule]:
            print(f"simlint: {used[rule]} allow({rule}) waivers exceed "
                  f"the rule's budget of {budgets[rule]}:",
                  file=sys.stderr)
            for rel, ln, r in allows:
                if r == rule:
                    print(f"  {rel}:{ln}: allow({rule})",
                          file=sys.stderr)
            status = 1
    if status == 0:
        n = len(allows)
        remaining = ", ".join(f"{rule}={budgets[rule] - used.get(rule, 0)}"
                              for rule in RULES)
        print(f"simlint: clean ({n} waiver(s); remaining budget: "
              f"{remaining})")
    return status


if __name__ == "__main__":
    sys.exit(main())
