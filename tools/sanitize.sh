#!/bin/sh
# Build the whole tree under a sanitizer and run the test suite.
#
# Usage: tools/sanitize.sh [--tsan] [ctest args...]
#   tools/sanitize.sh                 # ASan+UBSan, full suite
#   tools/sanitize.sh -L golden       # ASan+UBSan, just the goldens
#   tools/sanitize.sh --tsan          # ThreadSanitizer, `ctest -L shard`
#   tools/sanitize.sh --tsan -R Stress  # narrower still
#
# The ASan build lives in build-san/ and the TSan build in
# build-tsan/, separate from the normal build/ so all three can
# coexist.  Any sanitizer report is fatal
# (-fno-sanitize-recover=all), so a clean run means a clean tree.
#
# --tsan exists for the sharded executor: the worker/barrier/mailbox
# protocol in src/simcore/shard.hh is the only intentionally
# multi-threaded code in the tree, and `ctest -L shard` is the suite
# that drives it, so that label is the TSan default when no ctest
# args are given.  The shard stress sweep is trimmed under TSan
# (IOAT_SHARD_STRESS_QUICK) — each run costs ~20x.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

mode=asan
if [ "${1:-}" = "--tsan" ]; then
    mode=tsan
    shift
fi

if [ "$mode" = tsan ]; then
    build="$repo/build-tsan"
    cmake -B "$build" -S "$repo" -DIOAT_TSAN=ON
    cmake --build "$build" -j "$(nproc)"
    [ "$#" -gt 0 ] || set -- -L shard
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
    IOAT_SHARD_STRESS_QUICK=1 \
        ctest --test-dir "$build" --output-on-failure "$@"
    exit 0
fi

build="$repo/build-san"

cmake -B "$build" -S "$repo" -DIOAT_SANITIZE=ON
cmake --build "$build" -j "$(nproc)"

# abort_on_error makes ASan failures exit non-zero even inside gtest
# death tests; detect_leaks catches arena/free-list bookkeeping bugs.
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" "$@"
