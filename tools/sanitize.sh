#!/bin/sh
# Build the whole tree with ASan+UBSan and run the test suite under it.
#
# Usage: tools/sanitize.sh [ctest args...]
#   tools/sanitize.sh                 # full suite
#   tools/sanitize.sh -L golden       # just the golden determinism tests
#
# The sanitized build lives in build-san/, separate from the normal
# build/ so the two can coexist.  Any sanitizer report is fatal
# (-fno-sanitize-recover=all), so a clean run means a clean tree.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build="$repo/build-san"

cmake -B "$build" -S "$repo" -DIOAT_SANITIZE=ON
cmake --build "$build" -j "$(nproc)"

# abort_on_error makes ASan failures exit non-zero even inside gtest
# death tests; detect_leaks catches arena/free-list bookkeeping bugs.
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ctest --test-dir "$build" --output-on-failure -j "$(nproc)" "$@"
