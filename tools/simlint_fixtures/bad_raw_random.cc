// Fixture: every construct here must trip the raw-random rule.
#include <cstdlib>
#include <random>

int
badRandom()
{
    std::random_device rd;
    std::mt19937 gen(rd());
    std::mt19937_64 gen64(1);
    srand(42);
    return rand() + static_cast<int>(gen() + gen64());
}
