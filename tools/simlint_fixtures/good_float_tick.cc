// Fixture: the sanctioned conversion door and integer Tick
// construction must NOT trip float-tick.
#include <cstdint>

namespace sim {
class Tick
{
  public:
    constexpr explicit Tick(std::uint64_t ns) : ns_(ns) {}
    constexpr std::uint64_t count() const { return ns_; }

  private:
    std::uint64_t ns_;
};

// In the real tree this definition lives in src/simcore/types.hh,
// which is exempt from the rule (it IS the audited door).
constexpr Tick
ticksFromDouble(double ns)
{
    const auto whole = static_cast<std::uint64_t>(ns);
    return Tick{whole};
}
} // namespace sim

sim::Tick
goodConvert(double blended_ns)
{
    const sim::Tick fixed{1000};
    return sim::ticksFromDouble(blended_ns * 2.0) + fixed;
}

sim::Tick
operator+(sim::Tick a, sim::Tick b)
{
    return sim::Tick{a.count() + b.count()};
}
