// Fixture: the sanctioned shared-state wrappers and lookalike names
// must NOT trip raw-thread.
#include <cstdint>

namespace ioat::sim::stats {
class Counter
{
  public:
    void inc() { ++v_; }
    std::uint64_t value() const { return v_; }

  private:
    std::uint64_t v_ = 0;
};
} // namespace ioat::sim::stats

// Identifiers merely *containing* the tokens are fine: a member
// named mutex_, a "threads" knob, an atomicity comment.
struct FleetOptions
{
    unsigned threads = 16; // model threads, not OS threads
    bool mutexFree = true;
};

std::uint64_t
goodThreading()
{
    ioat::sim::stats::Counter completed;
    completed.inc();
    FleetOptions opts;
    return completed.value() + opts.threads;
}
