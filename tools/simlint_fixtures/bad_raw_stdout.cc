// Fixture: every statement here must trip the raw-stdout rule.
#include <cstdio>
#include <iostream>

void
badReport(double mbps)
{
    std::cout << "mbps " << mbps << "\n";
    std::cerr << "warning\n";
    std::clog << "note\n";
    printf("mbps %f\n", mbps);
    std::printf("mbps %f\n", mbps);
    fprintf(stdout, "mbps %f\n", mbps);
    puts("done");
    fputs("done\n", stdout);
    putchar('\n');
}
