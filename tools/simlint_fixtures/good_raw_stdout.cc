// Fixture: near-misses that must NOT trip raw-stdout — string
// formatting, identifiers that merely contain "printf"/"puts", and
// console I/O mentioned only in comments or string literals.
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>

std::string
strprintf(const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

struct Sink
{
    // A member named like the libc call is not a console write.
    std::function<void(const char *)> printf = [](const char *) {};
    int outputs = 0;
};

std::string
goodReport(double mbps)
{
    Sink sink;
    sink.printf("row");
    snprintf(nullptr, 0, "%f", mbps); // sizing pass, no output
    const char *hint = "never call printf() or std::cout here";
    (void)hint;
    // printf() in a comment is fine.
    return strprintf("mbps %.1f", mbps);
}
