// Fixture: every line here must trip the wall-clock rule.
#include <chrono>
#include <ctime>
#include <sys/time.h>

long
badNow()
{
    auto a = std::chrono::system_clock::now();
    auto b = std::chrono::steady_clock::now();
    (void)a;
    (void)b;
    struct timeval tv;
    gettimeofday(&tv, nullptr);
    return time(nullptr) + clock();
}
