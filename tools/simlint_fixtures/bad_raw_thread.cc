// Fixture: every construct here must trip the raw-thread rule.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

std::atomic<int> counter{0};
thread_local int scratch = 0;

void
badThreading()
{
    std::mutex mu;
    std::condition_variable cv;
    std::lock_guard<std::mutex> lock(mu);
    std::thread worker([] { counter.fetch_add(1); });
    worker.join();
    scratch = counter.load();
}
