// Fixture: near-miss identifiers that must NOT trip wall-clock.
#include <cstdint>

struct Rate
{
    std::uint64_t transferTime(std::uint64_t) const { return 0; }
};

std::uint64_t
goodNow(const Rate &r)
{
    // Words containing "time"/"clock" and talking about time() in a
    // comment are fine; only real host-clock calls are findings.
    const std::uint64_t wireTime = r.transferTime(1500);
    const std::uint64_t runtime = wireTime * 2;
    const char *msg = "call time() and clock() never";
    (void)msg;
    return runtime;
}
