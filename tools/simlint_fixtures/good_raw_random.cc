// Fixture: seeded simulator RNG usage must NOT trip raw-random.
#include <cstdint>

namespace ioat::sim {
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}
    std::uint64_t next() { return state_ += 0x9E3779B97F4A7C15ull; }

  private:
    std::uint64_t state_;
};
} // namespace ioat::sim

std::uint64_t
goodRandom()
{
    // "rand" as a substring (operand, randomize) is fine.
    ioat::sim::Rng rng(42);
    std::uint64_t operand = rng.next();
    return operand;
}
