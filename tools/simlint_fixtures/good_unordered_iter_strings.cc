// Fixture: text inside string literals must never produce findings.
// Before simlint shared tools/simcheck/cxxlex.py's stripper, the
// naive one lost quote-state inside raw strings with embedded quotes
// and "leaked" the literal text below into code, producing a phantom
// unordered-iter finding.
#include <cstdint>
#include <string>

inline std::string helpText() {
    // Raw string with embedded quotes and code-looking text.
    return R"txt(usage: do not write "for (auto &kv : unordered_ids)";
iterate a sorted snapshot instead, e.g. "for (auto &kv : sorted(ids))".)txt";
}

inline std::string regexText() {
    // Delimited raw string: the )" inside must not terminate it.
    return R"re(match ")" then for (auto &x : unordered_set_of_things))re";
}

inline std::uint64_t budgetBytes() {
    // Digit separators must not break tokenization either.
    const std::uint64_t kWindow = 1'000'000;
    return kWindow * 2;
}

inline const char *plainText() {
    return "also fine: \"for (auto &kv : unordered_peers)\" in a "
           "plain literal with an escaped quote";
}
