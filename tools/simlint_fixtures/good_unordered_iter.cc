// Fixture: lookups on unordered containers and iteration over
// ordered ones must NOT trip unordered-iter.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

struct Stats
{
    std::unordered_map<std::string, std::uint64_t> byName_;
    std::map<int, std::uint64_t> ordered_;
    std::vector<std::uint64_t> values_;

    std::uint64_t
    lookup(const std::string &k) const
    {
        auto it = byName_.find(k);
        return it == byName_.end() ? 0 : it->second;
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &[k, v] : ordered_)
            sum += v;
        for (auto it = values_.begin(); it != values_.end(); ++it)
            sum += *it;
        return sum;
    }
};
