// Fixture: the profiling plane's hot-path idiom must be clean under
// every rule — Tick-typed cost arithmetic (no wall-clock, no floats
// on the tick axis), a sorted std::map ledger (deterministic
// iteration), and export through a caller-supplied ostream (never the
// console directly).
#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

using Tick = std::uint64_t;

class FoldedLedger
{
public:
    void
    add(const std::string &stack, std::size_t cat, Tick ticks)
    {
        folded_[stack][cat] += ticks;
    }

    void
    writeFolded(std::ostream &os) const
    {
        for (const auto &[stack, cats] : folded_)
            for (std::size_t c = 0; c < cats.size(); ++c)
                if (cats[c] != 0)
                    os << stack << ";[" << c << "] " << cats[c]
                       << "\n";
    }

private:
    std::map<std::string, std::array<Tick, 8>> folded_;
};
