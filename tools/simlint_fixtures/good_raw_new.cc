// Fixture: placement new, deleted functions and make_unique must
// NOT trip raw-new.
#include <memory>
#include <utility>

struct Node
{
    int value = 0;

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;
    Node() = default;
};

void
goodAlloc(void *slot)
{
    ::new (slot) Node();
    auto owned = std::make_unique<int>(7);
    (void)owned;
}
