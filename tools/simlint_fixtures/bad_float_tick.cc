// Fixture: ad-hoc float->Tick conversions must trip float-tick.
#include <cstdint>

using Tick = std::uint64_t;

Tick
badConvert(double ns)
{
    Tick a = static_cast<Tick>(ns * 1.5);
    Tick b = Tick{static_cast<std::uint64_t>(ns)};
    return a + b;
}
