// Fixture: raw allocation and deallocation must trip raw-new.
struct Node
{
    int value = 0;
};

Node *
badAlloc(int n)
{
    Node *one = new Node;
    Node *many = new Node[static_cast<unsigned>(n)];
    delete one;
    delete[] many;
    return new Node{42};
}
