// Fixture: findings waived with simlint: allow() must not be
// reported, and the waivers must count against the budget.
struct Node
{
    int value = 0;
};

Node *
arenaChunk(unsigned n)
{
    // simlint: allow(raw-new) fixture: standalone comment waives next line
    Node *chunk = new Node[n];
    return chunk;
}

void
freeChunk(Node *chunk)
{
    delete[] chunk; // simlint: allow(raw-new) fixture: trailing waiver
}
