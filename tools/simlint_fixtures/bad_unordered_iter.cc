// Fixture: iterating unordered containers must trip unordered-iter.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Stats
{
    std::unordered_map<std::string, std::uint64_t> counters_;
    std::unordered_set<int> live_;

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &[name, v] : counters_)
            sum += v;
        for (auto it = live_.begin(); it != live_.end(); ++it)
            sum += static_cast<std::uint64_t>(*it);
        return sum;
    }
};
