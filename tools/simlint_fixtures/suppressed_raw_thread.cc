// Fixture: an allow(raw-thread) waiver must silence the finding and
// be counted against the suppression budget.
#include <atomic>

// simlint: allow(raw-thread) interop shim measured by the TSan job
std::atomic<int> interopFlag{0};

int
suppressedThreading()
{
    return 1;
}
