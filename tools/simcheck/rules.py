"""Rule evaluation for simcheck.

Rules consume the merged, frontend-neutral fact stream (facts.py) and
produce findings.  Path classification (which layer a file belongs
to) lives here so both frontends share one definition of the
architecture.

Rule catalog (DESIGN.md §11 is the narrative version):

  coro-lifetime   A detached coroutine (spawn/spawnLane) must not hold
                  references into a frame that can die before it runs:
                  * inside a *coroutine*, binding a local or by-value
                    parameter to a reference parameter of the spawned
                    task, or passing &local to a pointer parameter
                    (the PR 4 use-after-free class: the spawning
                    frame dies at its own co_return, the task keeps
                    the dangling ref);
                  * binding a materialized temporary to a reference
                    parameter of a spawned task, anywhere;
                  * spawning a coroutine *lambda* that captures by
                    reference (the sanctioned idiom is a capture-less
                    lambda taking explicit parameters).
                  Plain-function drivers (benches, tests, main) that
                  bind their own locals are trusted: by convention
                  they own the Simulation and run it to completion
                  before those locals die.

  strong-type     No integer arithmetic on the raw representation of
                  Tick/Bytes/BytesPerSec outside src/simcore/:
                  `.count()` may flow to formatting, casts and call
                  arguments, but the moment it meets + - * / % & | ^
                  (or a compound assignment) the unit discipline is
                  gone.  The audited doors live in
                  src/simcore/types.hh (divCeil, fractionOf,
                  ticksFromDouble, transferTime, toSeconds, ...);
                  src/simcore/ itself is inside the trust boundary
                  (the event queue's bit-level tick indexing is the
                  documented exemption).

  shard-safety    Model code runs replicated across shard workers, so
                  mutable static-storage state outside src/simcore/
                  (namespace-scope variables, static data members,
                  function-local statics) breaks shard equivalence
                  unless it is one of the sanctioned wrappers
                  (sim::stats::Counter/Flag/Level/Accumulator).
                  Also: iteration over a container whose *type*
                  resolves to std::unordered_* through aliases or
                  auto — the spelled-out case is simlint's, the typed
                  case is ours.

  layering        Include-graph architecture rules:
                  * bench/ and examples/ must not include
                    tcp/stack.hh — the sock:: facade is the API;
                  * src/simcore/ must not include any upper layer;
                  * src/mem, src/nic, src/dma must not include
                    datacenter/ headers;
                  * src/sock/ may reach the kernel-bypass transport
                    only through its interface header xpt/bypass.hh —
                    never xpt/ internals, so the facade stays
                    swappable;
                  * model layers (src/mem, src/nic, src/dma, src/tcp,
                    src/xpt) must not include simcore/profile.hh —
                    models report costs through the ProfileSink hook
                    in reqtrace.hh; only the bench/test harness
                    attaches the concrete profiler.

  typecheck       Every TU must type-check (libclang diagnostics, or
                  g++ -fsyntax-only in fallback mode).
"""

from .facts import (
    FACT_INCLUDE,
    FACT_MUTABLE_STATIC,
    FACT_SPAWN,
    FACT_TYPE_ERROR,
)

RULES = ("coro-lifetime", "strong-type", "shard-safety", "layering",
         "typecheck")

STRONG_TYPE_TRUSTED_PREFIX = "src/simcore/"


class Finding:
    __slots__ = ("rule", "file", "line", "message")

    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message

    def key(self):
        return (self.file, self.line, self.rule, self.message)

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


def layer_of(path):
    """Coarse architectural layer of a repo-relative path."""
    if path.startswith("bench/"):
        return "bench"
    if path.startswith("examples/"):
        return "examples"
    if path.startswith("tests/"):
        return "tests"
    if path.startswith("src/"):
        parts = path.split("/")
        if len(parts) > 2:
            return "src/" + parts[1]
    return "other"


def check_layering(includes):
    """includes: iterable of FACT_INCLUDE facts (resolved, deduped)."""
    findings = []
    for f in includes:
        src_layer = layer_of(f["file"])
        tgt = f["target"]
        tgt_layer = layer_of(tgt)
        if src_layer in ("bench", "examples") and \
                tgt.endswith("tcp/stack.hh"):
            findings.append(Finding(
                "layering", f["file"], f["line"],
                "direct include of tcp/stack.hh; bench/ and examples/ "
                "must use the sock:: facade (src/sock/socket.hh)"))
        elif src_layer == "src/simcore" and \
                tgt_layer.startswith("src/") and \
                tgt_layer != "src/simcore":
            findings.append(Finding(
                "layering", f["file"], f["line"],
                f"src/simcore/ must not include upper layer "
                f"{tgt_layer}/ ({tgt}); the simulation kernel is the "
                f"bottom of the stack"))
        elif src_layer in ("src/mem", "src/nic", "src/dma") and \
                tgt_layer == "src/datacenter":
            findings.append(Finding(
                "layering", f["file"], f["line"],
                f"{src_layer}/ must not include datacenter/ ({tgt}); "
                f"device models sit below application tiers"))
        elif src_layer in ("src/mem", "src/nic", "src/dma", "src/tcp",
                           "src/xpt") and \
                tgt.endswith("simcore/profile.hh"):
            findings.append(Finding(
                "layering", f["file"], f["line"],
                f"{src_layer}/ must not include simcore/profile.hh; "
                f"model code reports costs through the ProfileSink "
                f"hook in reqtrace.hh, and only the bench/test "
                f"harness attaches the concrete profiler"))
        elif src_layer == "src/sock" and tgt_layer == "src/xpt" and \
                not tgt.endswith("xpt/bypass.hh"):
            findings.append(Finding(
                "layering", f["file"], f["line"],
                f"src/sock/ must reach the bypass transport only "
                f"through its interface header xpt/bypass.hh ({tgt} "
                f"is an xpt/ internal); the facade must not depend on "
                f"transport implementation details"))
    return findings


def check_coro_lifetime(spawns, coro_sigs):
    """spawns: FACT_SPAWN facts.  coro_sigs: {name: [param kinds]}
    merged conservatively across declarations (see driver)."""
    findings = []
    for s in spawns:
        if s["lambda_ref_capture"]:
            findings.append(Finding(
                "coro-lifetime", s["file"], s["line"],
                "spawned coroutine lambda captures by reference; the "
                "capture dies with the spawning frame while the task "
                "lives on — use a capture-less lambda with explicit "
                "parameters (see sock/socket.hh timeout watchers)"))
            continue
        args = s.get("args", [])
        kinds = None
        if s["callee"]:
            kinds = coro_sigs.get(s["callee"])
            if kinds is None:
                continue  # not a known coroutine signature
        for idx, a in enumerate(args):
            pk = a.get("param_kind")
            if pk is None:
                pk = kinds[idx] if kinds and idx < len(kinds) else "value"
            if pk == "ref":
                if a["cls"] == "temp":
                    findings.append(Finding(
                        "coro-lifetime", s["file"], s["line"],
                        f"temporary '{a['text']}' bound to a reference "
                        f"parameter of a spawned coroutine; it dies at "
                        f"the end of this statement while the task "
                        f"lives on — pass by value"))
                elif a["cls"] == "local" and s["in_coroutine"]:
                    findings.append(Finding(
                        "coro-lifetime", s["file"], s["line"],
                        f"local '{a['text']}' of a coroutine bound by "
                        f"reference into a spawned task; this frame "
                        f"dies at its own co_return independent of "
                        f"the task (the PR 4 use-after-free class) — "
                        f"pass by value or a shared_ptr"))
            elif pk == "ptr" and a["cls"] == "addr-local" and \
                    s["in_coroutine"]:
                findings.append(Finding(
                    "coro-lifetime", s["file"], s["line"],
                    f"address of coroutine-frame local '{a['text']}' "
                    f"passed to a spawned task; the frame dies at its "
                    f"own co_return independent of the task — pass by "
                    f"value or a shared_ptr"))
    return findings


def check_strong_type(count_calls, strong_vars, strong_ret_fns):
    """count_calls: candidate raw-rep arithmetic sites (lex frontend)
    or pre-typed facts (libclang frontend sets recv_kind='typed')."""
    findings = []
    for c in count_calls:
        if c["file"].startswith(STRONG_TYPE_TRUSTED_PREFIX):
            continue
        typ = None
        if c["recv_kind"] == "typed":
            typ = c.get("type", "strong")
        elif c["recv_kind"] == "var":
            typ = strong_vars.get(c["recv_name"])
        elif c["recv_kind"] == "call":
            typ = strong_ret_fns.get(c["recv_name"])
        elif c["recv_kind"] == "expr":
            for name in c["recv_name"].split(","):
                typ = strong_vars.get(name) or strong_ret_fns.get(name)
                if typ:
                    break
        if not typ:
            continue
        findings.append(Finding(
            "strong-type", c["file"], c["line"],
            f"integer arithmetic ('{c['op']}') on the raw "
            f"representation of {typ}; unit-erasing math belongs "
            f"behind an audited door in src/simcore/types.hh "
            f"(divCeil, fractionOf, transferTime, ticksFromDouble)"))
    return findings


def check_shard_safety(statics, iter_sites, unordered_names):
    findings = []
    for f in statics:
        if f["file"].startswith("src/simcore/"):
            continue
        where = ("function-local static"
                 if f["scope"] == "function-static"
                 else "static-storage variable")
        findings.append(Finding(
            "shard-safety", f["file"], f["line"],
            f"mutable {where} '{f['name']}' ({f['type']}) outside "
            f"src/simcore/; shard workers replicate model code, so "
            f"shared mutable state must be a sanctioned wrapper "
            f"(sim::stats::Counter/Flag/Level/Accumulator) or "
            f"per-node partials merged in node order"))
    for s in iter_sites:
        if s.get("unordered", s["name"] in unordered_names):
            findings.append(Finding(
                "shard-safety", s["file"], s["line"],
                f"iteration over '{s['name']}' whose type resolves to "
                f"std::unordered_*; hash order is host-dependent — "
                f"use std::map/vector or sort first (typed analog of "
                f"simlint unordered-iter)"))
    return findings


def check_typecheck(type_errors):
    return [Finding("typecheck", f["file"], f["line"], f["message"])
            for f in type_errors]
