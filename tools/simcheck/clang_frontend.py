"""libclang frontend for simcheck.

When the Python bindings (`clang.cindex`, installed in CI via the
`libclang` pip wheel) are importable, simcheck parses every TU from
`compile_commands.json` with a real compiler frontend.  This module
then contributes what the lexical fallback cannot:

  * per-TU *diagnostics* — the "type-check every TU" guarantee with
    real template instantiation, not just -fsyntax-only;
  * *canonical-type* declaration tables: variables and functions whose
    type resolves to Tick/Bytes/BytesPerSec or std::unordered_*
    through any chain of using/typedef/auto, and Coro<> signatures
    with exact parameter kinds.

The candidate *sites* (spawn calls, `.count()` arithmetic, range-for
iteration, includes, mutable statics) come from the shared lexical
scan in both modes — one detection codepath, two sources of type
truth.  The clang tables are merged *over* the lexical ones, so clang
mode sees strictly more resolution power while the fixture suite
(which sticks to alias chains both frontends resolve) produces
identical counts under either — CI asserts that parity.

Everything here is defensive: any per-TU failure degrades to the
lexical tables for that TU and is reported as a note, never a crash.
"""

import os
import re

try:
    from clang import cindex as _cx
    _HAVE = True
except Exception:  # pragma: no cover - exercised only without clang
    _cx = None
    _HAVE = False

from .facts import FACT_TYPE_ERROR, fact

_STRONG_CANON = re.compile(r"::(Tick|Bytes|BytesPerSec)\b")
_UNORDERED_CANON = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)<")
_CORO_CANON = re.compile(r"::Coro<")


def available():
    if not _HAVE:
        return False
    try:
        _cx.Index.create()
        return True
    except Exception:
        return False


def _rel(path, root):
    try:
        rp = os.path.realpath(path)
    except Exception:
        return None
    if rp.startswith(root + os.sep):
        return os.path.relpath(rp, root)
    return None


def _param_kind(ptype):
    k = ptype.kind
    if k in (_cx.TypeKind.LVALUEREFERENCE, _cx.TypeKind.RVALUEREFERENCE):
        return "ref"
    if k == _cx.TypeKind.POINTER:
        return "ptr"
    return "value"


def _strip_refs(ctype):
    k = ctype.kind
    if k in (_cx.TypeKind.LVALUEREFERENCE, _cx.TypeKind.RVALUEREFERENCE):
        return ctype.get_pointee()
    return ctype


def _strong_name(ctype):
    spelling = _strip_refs(ctype).get_canonical().spelling
    m = _STRONG_CANON.search(spelling)
    return m.group(1) if m else None


def analyze_tu(tu_path, args, repo_root):
    """Parse one TU; return clang-derived tables and diagnostics.

    Returns a dict:
      type_errors     : FACT_TYPE_ERROR facts (error+ diagnostics)
      strong_vars     : {name: Tick|Bytes|BytesPerSec}
      strong_ret_fns  : {name: type}
      unordered_names : {name: 1} vars whose canonical type is unordered
      coro_sigs       : {name: [param kinds]}
      note            : '' or a degradation note (parse failure)
    """
    out = {"type_errors": [], "strong_vars": {}, "strong_ret_fns": {},
           "unordered_names": {}, "coro_sigs": {}, "note": ""}
    try:
        index = _cx.Index.create()
        tu = index.parse(tu_path, args=args)
    except Exception as e:  # pragma: no cover
        out["note"] = f"libclang failed to parse {tu_path}: {e}"
        return out

    root = os.path.realpath(repo_root)
    for d in tu.diagnostics:
        if d.severity < _cx.Diagnostic.Error:
            continue
        loc = d.location
        rel = _rel(loc.file.name, root) if loc.file else None
        out["type_errors"].append(fact(
            FACT_TYPE_ERROR, rel or os.path.basename(tu_path),
            loc.line or 1, message=d.spelling))

    ck = _cx.CursorKind
    try:
        for cur in tu.cursor.walk_preorder():
            loc = cur.location
            if loc.file is None or _rel(loc.file.name, root) is None:
                continue
            kind = cur.kind
            if kind in (ck.VAR_DECL, ck.FIELD_DECL, ck.PARM_DECL):
                name = cur.spelling
                if not name:
                    continue
                st = _strong_name(cur.type)
                if st:
                    out["strong_vars"][name] = st
                canon = _strip_refs(
                    cur.type).get_canonical().spelling
                if _UNORDERED_CANON.search(canon):
                    out["unordered_names"][name] = 1
            elif kind in (ck.FUNCTION_DECL, ck.CXX_METHOD,
                          ck.FUNCTION_TEMPLATE):
                name = cur.spelling
                if not name:
                    continue
                rt = cur.result_type
                rcanon = rt.get_canonical().spelling
                if _CORO_CANON.search(rcanon):
                    kinds = [_param_kind(c.type)
                             for c in cur.get_children()
                             if c.kind == ck.PARM_DECL]
                    # Conservative-AND merge with other decls of the
                    # same name, like the driver does for lex tables.
                    prev = out["coro_sigs"].get(name)
                    if prev is not None:
                        kinds = [a if a == b else "value"
                                 for a, b in zip(prev, kinds)]
                    out["coro_sigs"][name] = kinds
                else:
                    st = _strong_name(rt)
                    if st:
                        out["strong_ret_fns"][name] = st
    except Exception as e:  # pragma: no cover
        out["note"] = f"libclang walk aborted in {tu_path}: {e}"
    return out
