// Fixture: a bench bypassing the sock:: facade — one layering
// finding.
#include "tcp/stack.hh"

int main() {
  tcp::Stack s;
  s.poll();
  return 0;
}
