// Fixture: a bench using the sock:: facade — zero findings, even
// though the facade itself (transitively) includes tcp/stack.hh.
#include "sock/socket.hh"

int main() {
  sock::Socket s;
  s.send();
  return 0;
}
