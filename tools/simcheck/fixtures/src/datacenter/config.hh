// Fixture stub of an application-tier header: device models
// (src/mem, src/nic, src/dma) must not include it.
#pragma once

namespace dc {

struct Config {
  int tiers{3};
};

}  // namespace dc
