// Fixture stub of the concrete profiler: model layers must reach
// profiling only through the ProfileSink hook, never this header.
#pragma once

#include <cstdint>

namespace sim {

class Profiler {
 public:
  void add(std::uint64_t ticks) { total_ += ticks; }
  std::uint64_t total() const { return total_; }

 private:
  std::uint64_t total_{0};
};

}  // namespace sim
