// Fixture: the simulation kernel including an upper layer — one
// layering finding.
#include "tcp/stack.hh"

namespace sim {

void pollStack(tcp::Stack &s) { s.poll(); }

}  // namespace sim
