// Fixture stub of src/simcore/coro.hh: a minimal lazily-started,
// owning Coro<void> so coroutine fixtures compile under
// -fsyntax-only.
#pragma once

#include <coroutine>
#include <utility>

namespace sim {

template <typename T>
class Coro;

template <>
class Coro<void> {
 public:
  struct promise_type {
    Coro<void> get_return_object() {
      return Coro<void>{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() {}
  };

  explicit Coro(std::coroutine_handle<promise_type> h) : h_(h) {}
  Coro(Coro &&o) noexcept : h_(std::exchange(o.h_, {})) {}
  Coro(const Coro &) = delete;
  ~Coro() {
    if (h_) h_.destroy();
  }

 private:
  std::coroutine_handle<promise_type> h_;
};

}  // namespace sim
