// Fixture stub of the Simulation surface the rules care about:
// detached spawn entry points and an awaitable.
#pragma once

#include "simcore/coro.hh"
#include "simcore/types.hh"

namespace sim {

struct Delay {
  Tick ticks;
  bool await_ready() const noexcept { return true; }
  void await_suspend(std::coroutine_handle<>) const noexcept {}
  void await_resume() const noexcept {}
};

class Simulation {
 public:
  void spawn(Coro<void>) {}
  void spawnLane(int, Coro<void>) {}
  void run() {}
};

}  // namespace sim
