// Fixture stub of src/simcore/types.hh: just enough of the strong
// types and audited doors for the rule fixtures to compile.
#pragma once

#include <cstdint>

namespace sim {

class Tick {
 public:
  constexpr Tick() = default;
  constexpr explicit Tick(std::uint64_t v) : v_(v) {}
  constexpr std::uint64_t count() const { return v_; }

 private:
  std::uint64_t v_{0};
};

class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t v) : v_(v) {}
  constexpr std::uint64_t count() const { return v_; }

 private:
  std::uint64_t v_{0};
};

class BytesPerSec {
 public:
  constexpr BytesPerSec() = default;
  constexpr explicit BytesPerSec(double v) : v_(v) {}
  constexpr double count() const { return v_; }

 private:
  double v_{0.0};
};

using Rate = BytesPerSec;

// Audited doors: unit-erasing math is allowed here and only here.
constexpr std::uint64_t divCeil(Bytes num, Bytes den) {
  return (num.count() + den.count() - 1) / den.count();
}

constexpr double fractionOf(Tick num, Tick den) {
  return den.count() == 0
             ? 0.0
             : static_cast<double>(num.count()) /
                   static_cast<double>(den.count());
}

}  // namespace sim
