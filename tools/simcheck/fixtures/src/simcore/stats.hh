// Fixture stub of the sanctioned shard-safe stats wrappers.
#pragma once

#include <cstdint>

namespace sim::stats {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_{0};
};

class Flag {
 public:
  void set() { v_ = true; }
  bool value() const { return v_; }

 private:
  bool v_{false};
};

class Level {
 public:
  void raise(std::int64_t d) { v_ += d; }
  std::int64_t value() const { return v_; }

 private:
  std::int64_t v_{0};
};

class Accumulator {
 public:
  void sample(double x) {
    sum_ += x;
    ++n_;
  }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

 private:
  double sum_{0.0};
  std::uint64_t n_{0};
};

}  // namespace sim::stats
