// Fixture: a device model reaching up into the application tier —
// one layering finding.
#include "datacenter/config.hh"

namespace mem {

int tiersOf(const dc::Config &c) { return c.tiers; }

}  // namespace mem
