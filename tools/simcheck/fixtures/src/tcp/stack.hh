// Fixture stub of the TCP stack internals: bench/ and examples/ must
// reach this only through the sock:: facade.
#pragma once

namespace tcp {

class Stack {
 public:
  void poll() {}
};

}  // namespace tcp
