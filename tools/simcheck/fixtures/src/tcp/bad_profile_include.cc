// Fixture: a transport model pulling in the concrete profiler — one
// layering finding.  Models charge costs through the ProfileSink hook
// in reqtrace.hh; only the harness layer may attach sim::Profiler.
#include "simcore/profile.hh"

namespace tcp {

void chargeRetx(sim::Profiler &p) { p.add(42); }

}  // namespace tcp
