// Fixture: the sock:: facade using the sanctioned bypass-transport
// interface header — zero findings, even though bypass.hh itself
// (transitively) includes the xpt/ internals.
#include "xpt/bypass.hh"

namespace sock {

int creditsOf(const xpt::Endpoint &e) { return e.credits(); }

}  // namespace sock
