// Fixture stub of the sock:: facade — the sanctioned API over
// tcp/stack.hh.
#pragma once

#include "tcp/stack.hh"

namespace sock {

class Socket {
 public:
  void send() { stack_.poll(); }

 private:
  tcp::Stack stack_;
};

}  // namespace sock
