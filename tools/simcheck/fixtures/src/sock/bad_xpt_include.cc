// Fixture: the sock:: facade reaching past the bypass-transport
// interface header into an xpt/ internal — one layering finding.
#include "xpt/rings.hh"

namespace sock {

int creditsOf(const xpt::RxRing &r) { return r.credits; }

}  // namespace sock
