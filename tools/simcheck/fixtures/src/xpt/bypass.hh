// Fixture stub of the bypass-transport interface header — the one
// xpt/ header src/sock/ is allowed to include.  It pulls in the
// internals itself; only the *direct* edge from sock/ is policed.
#pragma once

#include "xpt/rings.hh"

namespace xpt {

class Endpoint {
 public:
  int credits() const { return ring_.credits; }

 private:
  RxRing ring_;
};

}  // namespace xpt
