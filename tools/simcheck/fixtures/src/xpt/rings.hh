// Fixture stub of a bypass-transport internal: src/sock/ must reach
// the transport only through xpt/bypass.hh, never this header.
#pragma once

namespace xpt {

struct RxRing {
  int credits = 0;
};

}  // namespace xpt
