// Fixture: four shard-safety violations — two mutable statics and two
// hash-order-dependent iterations (one through a type alias, which
// the regex lint cannot see).
#include <cstdint>
#include <unordered_map>

#include "simcore/stats.hh"

namespace model {

static std::uint64_t dropCount = 0;  // violation 1: namespace static

using FlowMap = std::unordered_map<int, int>;

std::uint64_t totalFlow(const FlowMap &flows) {
  std::uint64_t sum = 0;
  for (const auto &kv : flows) {  // violation 2: aliased unordered
    sum += static_cast<std::uint64_t>(kv.second);
  }
  dropCount += sum == 0 ? 1 : 0;
  return sum;
}

std::uint64_t nextSeq() {
  static std::uint64_t seq = 0;  // violation 3: function-local static
  return ++seq;
}

std::uint64_t directIter(const std::unordered_map<int, int> &table) {
  std::uint64_t sum = 0;
  for (const auto &kv : table) {  // violation 4: direct unordered
    sum += static_cast<std::uint64_t>(kv.second);
  }
  return sum;
}

}  // namespace model
