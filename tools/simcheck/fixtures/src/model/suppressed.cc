// Fixture: a real coroutine-lifetime violation waived by an allow
// comment — expected to consume exactly one unit of the
// coro-lifetime allow budget and produce zero findings.
#include "simcore/coro.hh"
#include "simcore/sim.hh"
#include "simcore/types.hh"

namespace model {

sim::Coro<void> audited(const sim::Tick &deadline);

sim::Coro<void> auditedDriver(sim::Simulation &s) {
  sim::Tick deadline{7};
  // Known-benign by local audit: the spawner joins the task before
  // its frame dies (not expressible to the analyzer).
  // simcheck: allow(coro-lifetime)
  s.spawn(audited(deadline));
  co_return;
}

}  // namespace model
