// Fixture: the sanctioned spawning idioms — zero findings expected.
#include "simcore/coro.hh"
#include "simcore/sim.hh"
#include "simcore/types.hh"

namespace model {

sim::Coro<void> worker2(sim::Tick deadline) {
  co_await sim::Delay{deadline};
}

// Plain-function driver: trusted by convention — it owns the
// Simulation and runs it to completion before its locals die.
void runBench() {
  sim::Simulation s;
  sim::Tick deadline{100};
  s.spawn(worker2(deadline));
  // Capture-less lambda with explicit parameters (the sock/socket.hh
  // watcher idiom): the by-ref parameter binds an object that outlives
  // the run loop, the rest travel by value into the frame.
  s.spawn([](sim::Simulation &owner, sim::Tick d) -> sim::Coro<void> {
    co_await sim::Delay{d};
    owner.run();
  }(s, deadline));
  s.run();
}

}  // namespace model
