// Fixture: shard-safe state patterns — zero findings expected.
#include <cstdint>
#include <map>
#include <unordered_map>

#include "simcore/stats.hh"

namespace model {

constexpr std::uint64_t kWindow = 16;   // immutable: fine
static const std::uint64_t kSeed = 42;  // const static: fine

// Point lookups in a hash map are order-independent — only
// *iteration* is flagged.
std::uint64_t lookups(const std::unordered_map<int, int> &index,
                      int key) {
  auto it = index.find(key);
  return it == index.end() ? kSeed % kWindow
                           : static_cast<std::uint64_t>(it->second);
}

using SortedMap = std::map<int, int>;

std::uint64_t totalSorted(const SortedMap &ordered) {
  std::uint64_t sum = 0;
  for (const auto &kv : ordered) {  // ordered container: fine
    sum += static_cast<std::uint64_t>(kv.second);
  }
  return sum;
}

std::uint64_t hits() {
  static sim::stats::Counter counter;  // sanctioned wrapper: fine
  counter.add(1);
  return counter.value();
}

}  // namespace model
