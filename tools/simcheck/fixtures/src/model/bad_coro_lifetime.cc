// Fixture: three coroutine-lifetime violations (expected.json pins
// the count).  Each compiles — the bug class is a use-after-free at
// runtime, invisible to the type system.
#include "simcore/coro.hh"
#include "simcore/sim.hh"
#include "simcore/types.hh"

namespace model {

sim::Coro<void> worker(const sim::Tick &deadline) {
  co_await sim::Delay{deadline};
}

sim::Coro<void> driver(sim::Simulation &s) {
  sim::Tick deadline{100};
  // 1: coroutine-frame local bound to a reference parameter of a
  // detached task — this frame dies at its own co_return.
  s.spawn(worker(deadline));
  // 2: materialized temporary bound to a reference parameter.
  s.spawn(worker(sim::Tick{5}));
  // 3: spawned coroutine lambda capturing by reference.
  s.spawn([&]() -> sim::Coro<void> {
    co_await sim::Delay{deadline};
  }());
  co_return;
}

}  // namespace model
