// Fixture: sanctioned uses of the raw representation — formatting,
// casts, call arguments and the audited doors.  Zero findings.
#include <cstdint>
#include <cstdio>

#include "simcore/types.hh"

namespace model {

void report(sim::Tick t, sim::Bytes b, sim::Bytes unit) {
  double secs = static_cast<double>(t.count());
  std::printf("%llu %f\n",
              static_cast<unsigned long long>(b.count()), secs);
  std::uint64_t frames = sim::divCeil(b, unit);
  (void)frames;
}

}  // namespace model
