// Fixture: three strong-type escapes — integer arithmetic on the raw
// representation outside src/simcore/.
#include <cstdint>

#include "simcore/types.hh"

namespace model {

sim::Tick nextDeadline();

std::uint64_t leakyMath(sim::Tick t, sim::Bytes b) {
  std::uint64_t a = t.count() + 5;                  // escape 1
  std::uint64_t c = b.count() % 3;                  // escape 2
  std::uint64_t d2 = nextDeadline().count() * 2;    // escape 3
  return a + c + d2;
}

}  // namespace model
