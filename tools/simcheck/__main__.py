"""simcheck driver.

Usage (from the repo root):

    python3 tools/simcheck [paths...] [options]

Two-phase pipeline:

  1. Per-file scans, in parallel, cached by content hash: every
     project file reachable from the selected TUs (through resolved
     quoted/-I includes) is reduced to facts + declaration tables by
     the lexical frontend.  In clang mode each TU is additionally
     parsed with libclang for canonical-type tables and diagnostics.
  2. Tables are merged across files (alias chains run to fixpoint,
     same-name coroutine signatures merge conservatively — a
     parameter counts as by-reference only if every declaration
     agrees) and the rules in rules.py are evaluated.

Findings can be waived two ways, both budgeted and reported:
  * `// simcheck: allow(rule)` (or `// simlint: allow(rule)`) on the
    finding line or the line above — per-rule budget, default 5;
  * tools/simcheck/baseline.json — checked-in debt with a
    justification per entry; stale entries are reported.

Exit codes: 0 clean, 1 findings or budget exceeded, 2 environment or
usage error.
"""

import argparse
import hashlib
import json
import multiprocessing
import os
import re
import shlex
import subprocess
import sys
import tempfile

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    __package__ = "simcheck"

from . import SCHEMA_VERSION, __version__
from . import clang_frontend, lex_frontend, rules
from .facts import FACT_INCLUDE, FACT_UNORDERED_ITER, fact

DEFAULT_SCOPE = ("src/", "bench/", "examples/")
DEFAULT_ALLOW_BUDGET = 5
ALLOW_RE = re.compile(
    r"//\s*sim(?:check|lint):\s*allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)"
    r"\s*\)")

_KEEP_ARG_PREFIXES = ("-I", "-D", "-std=")
_KEEP_ARG_WITH_VALUE = ("-isystem", "-include")


def _read(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


def _sha(*parts):
    h = hashlib.sha256()
    for p in parts:
        h.update(p.encode() if isinstance(p, str) else p)
        h.update(b"\x00")
    return h.hexdigest()


# ---------------------------------------------------------------- TUs

class TU:
    __slots__ = ("rel", "abspath", "incdirs", "check_args")

    def __init__(self, rel, abspath, incdirs, check_args):
        self.rel = rel
        self.abspath = abspath
        self.incdirs = incdirs        # repo-relative include dirs
        self.check_args = check_args  # filtered flags for -fsyntax-only


def load_compile_commands(cc_path, root):
    try:
        entries = json.loads(_read(cc_path))
    except (OSError, ValueError) as e:
        raise SystemExit(f"simcheck: cannot read {cc_path}: {e}")
    tus = []
    for e in entries:
        directory = e.get("directory", root)
        file_ = e.get("file", "")
        argv = e.get("arguments") or shlex.split(e.get("command", ""))
        abspath = os.path.realpath(os.path.join(directory, file_))
        if not abspath.startswith(root + os.sep):
            continue
        rel = os.path.relpath(abspath, root)
        incdirs, check_args = [], []
        i = 1
        while i < len(argv):
            a = argv[i]
            if a.startswith("-I"):
                d = a[2:] or (argv[i + 1] if i + 1 < len(argv) else "")
                if not a[2:]:
                    i += 1
                dabs = os.path.realpath(os.path.join(directory, d))
                check_args.append("-I" + dabs)
                if dabs == root:
                    incdirs.append(".")
                elif dabs.startswith(root + os.sep):
                    incdirs.append(os.path.relpath(dabs, root))
            elif a.startswith(_KEEP_ARG_PREFIXES):
                check_args.append(a)
            elif a in _KEEP_ARG_WITH_VALUE and i + 1 < len(argv):
                check_args.extend([a, argv[i + 1]])
                i += 1
            i += 1
        tus.append(TU(rel, abspath, incdirs, check_args))
    return tus


def resolve_include(rel_file, inc, quoted, incdirs, root):
    cands = []
    if quoted:
        cands.append(os.path.normpath(
            os.path.join(os.path.dirname(rel_file), inc)))
    for d in incdirs:
        cands.append(os.path.normpath(os.path.join(d, inc)))
    for c in cands:
        if c.startswith(".."):
            continue
        if os.path.isfile(os.path.join(root, c)):
            return c
    return None


# ------------------------------------------------------- scan workers

def _scan_worker(job):
    rel, text = job
    return rel, lex_frontend.scan_file(rel, text)


def _typecheck_worker(job):
    rel, cmd = job
    try:
        p = subprocess.run(cmd, capture_output=True, text=True,
                           timeout=300)
    except Exception as e:
        return rel, False, "", 1, f"type-check could not run: {e}"
    if p.returncode == 0:
        return rel, True, "", 0, ""
    # Attribute the finding to the file the first error is *in* (often
    # a header, not the TU itself).
    path, line, msg = "", 1, (p.stderr or "compilation failed").strip()
    m = re.search(r"^(.*?):(\d+):(?:\d+:)?\s*(?:fatal )?error:\s*(.*)$",
                  p.stderr or "", re.M)
    if m:
        path, line, msg = m.group(1), int(m.group(2)), m.group(3).strip()
    return rel, False, path, line, msg


class Cache:
    def __init__(self, cache_dir):
        self.dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def get(self, key):
        if not self.dir:
            return None
        p = os.path.join(self.dir, key + ".json")
        try:
            return json.loads(_read(p))
        except (OSError, ValueError):
            return None

    def put(self, key, value):
        if not self.dir:
            return
        p = os.path.join(self.dir, key + ".json")
        tmp = p + f".tmp{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(value, f)
            os.replace(tmp, p)
        except OSError:
            pass


# ------------------------------------------------------------ driver

class Analysis:
    def __init__(self, root, tus, scope, jobs, cache, frontend,
                 typecheck):
        self.root = root
        self.tus = [t for t in tus
                    if any(t.rel.startswith(p) for p in scope)]
        self.jobs = jobs
        self.cache = cache
        self.frontend = frontend
        self.typecheck = typecheck
        self.scans = {}        # rel -> scan_file() result
        self.texts = {}        # rel -> raw text
        self.include_facts = []
        self.notes = []

    # -- phase 1: discover + scan every reachable project file
    def scan_all(self):
        incdirs = sorted({d for t in self.tus for d in t.incdirs})
        queue = [t.rel for t in self.tus]
        seen = set(queue)
        while queue:
            batch, texts = [], {}
            for rel in queue:
                try:
                    text = _read(os.path.join(self.root, rel))
                except OSError as e:
                    self.notes.append(f"unreadable: {rel}: {e}")
                    continue
                texts[rel] = text
                batch.append((rel, text))
            self.texts.update(texts)
            queue = []
            for rel, scan in self._run_scans(batch):
                self.scans[rel] = scan
                for lineno, inc, quoted in scan["raw_includes"]:
                    target = resolve_include(rel, inc, quoted, incdirs,
                                             self.root)
                    if target is None:
                        continue
                    self.include_facts.append(fact(
                        FACT_INCLUDE, rel, lineno, target=target))
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)

    def _run_scans(self, batch):
        jobs, results = [], []
        for rel, text in batch:
            key = "scan-" + _sha(str(SCHEMA_VERSION), text)
            hit = self.cache.get(key)
            if hit is not None:
                results.append((rel, hit))
            else:
                jobs.append((rel, text, key))
        if jobs:
            work = [(rel, text) for rel, text, _ in jobs]
            if self.jobs > 1 and len(work) > 1:
                with multiprocessing.Pool(self.jobs) as pool:
                    scanned = pool.map(_scan_worker, work)
            else:
                scanned = [_scan_worker(w) for w in work]
            keys = {rel: key for rel, _, key in jobs}
            for rel, scan in scanned:
                self.cache.put(keys[rel], scan)
                results.append((rel, scan))
        return results

    # -- phase 2: merge tables
    def merge(self):
        strong_vars, strong_ret, unordered = {}, {}, {}
        aliases, alias_vars = {}, {}
        coro_sigs = {}
        for scan in self.scans.values():
            strong_vars.update(scan["strong_vars"])
            strong_ret.update(scan["strong_ret_fns"])
            unordered.update(scan["unordered_names"])
            aliases.update(scan["aliases"])
            alias_vars.update(scan["alias_vars"])
            for c in scan["coro_fns"]:
                kinds = [p["kind"] for p in c["params"]]
                prev = coro_sigs.get(c["name"])
                if prev is not None and prev != kinds:
                    kinds = [a if a == b else "value"
                             for a, b in zip(prev, kinds)]
                coro_sigs[c["name"]] = kinds
        # Alias-of-alias chains to fixpoint: `using Y = X;` where X is
        # (transitively) an unordered alias makes Y one too.
        changed = True
        while changed:
            changed = False
            for k, v in alias_vars.items():
                if k.startswith("using:") and v in aliases:
                    name = k[len("using:"):]
                    if name not in aliases:
                        aliases[name] = 1
                        changed = True
        for var, tname in alias_vars.items():
            if not var.startswith("using:") and tname in aliases:
                unordered[var] = 1

        if self.frontend == "clang":
            for t in self.tus:
                r = self._clang_tu(t)
                strong_vars.update(r["strong_vars"])
                strong_ret.update(r["strong_ret_fns"])
                unordered.update(r["unordered_names"])
                for name, kinds in r["coro_sigs"].items():
                    prev = coro_sigs.get(name)
                    if prev is not None and prev != kinds:
                        kinds = [a if a == b else "value"
                                 for a, b in zip(prev, kinds)]
                    coro_sigs[name] = kinds
                if r["note"]:
                    self.notes.append(r["note"])
        return {"strong_vars": strong_vars, "strong_ret_fns": strong_ret,
                "unordered_names": unordered, "coro_sigs": coro_sigs,
                "aliases": aliases}

    def _closure_key(self, tu, tag):
        closure = sorted(self._closure_of(tu.rel))
        parts = [tag, str(SCHEMA_VERSION), " ".join(tu.check_args)]
        for rel in closure:
            parts.append(rel)
            parts.append(_sha(self.texts.get(rel, "")))
        return tag + "-" + _sha(*parts)

    def _closure_of(self, rel):
        edges = {}
        for f in self.include_facts:
            edges.setdefault(f["file"], set()).add(f["target"])
        seen, queue = {rel}, [rel]
        while queue:
            for t in edges.get(queue.pop(), ()):
                if t not in seen:
                    seen.add(t)
                    queue.append(t)
        return seen

    def _clang_tu(self, tu):
        key = self._closure_key(tu, "clang")
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        r = clang_frontend.analyze_tu(
            tu.abspath, tu.check_args + ["-xc++"], self.root)
        self.cache.put(key, r)
        return r

    # -- type-check every TU
    def typecheck_facts(self):
        if not self.typecheck:
            return []
        if self.frontend == "clang":
            out = []
            for t in self.tus:
                out.extend(self._clang_tu(t)["type_errors"])
            return out
        compiler = os.environ.get("CXX", "c++")
        jobs, results = [], []
        for t in self.tus:
            key = self._closure_key(t, "tc")
            hit = self.cache.get(key)
            if hit is not None:
                results.append((t.rel, key, hit))
                continue
            cmd = [compiler, "-fsyntax-only"] + t.check_args + \
                [t.abspath]
            jobs.append((t.rel, key, cmd))
        if jobs:
            work = [(rel, cmd) for rel, _, cmd in jobs]
            if self.jobs > 1 and len(work) > 1:
                with multiprocessing.Pool(self.jobs) as pool:
                    checked = pool.map(_typecheck_worker, work)
            else:
                checked = [_typecheck_worker(w) for w in work]
            keys = {rel: key for rel, key, _ in jobs}
            for rel, ok, path, line, msg in checked:
                r = {"ok": ok, "path": path, "line": line, "msg": msg}
                self.cache.put(keys[rel], r)
                results.append((rel, keys[rel], r))
        facts = []
        for rel, _, r in results:
            if r["ok"]:
                continue
            where = rel
            p = os.path.realpath(os.path.join(self.root,
                                              r.get("path") or ""))
            if r.get("path") and p.startswith(self.root + os.sep) and \
                    os.path.isfile(p):
                where = os.path.relpath(p, self.root)
            facts.append(fact("type-error", where, r["line"],
                              message=f"{r['msg']} (TU {rel})"
                              if where != rel else r["msg"]))
        return facts

    # -- evaluate rules
    def findings(self):
        tables = self.merge()
        spawns, count_calls, iter_sites, statics = [], [], [], []
        for scan in self.scans.values():
            spawns.extend(scan["spawns"])
            count_calls.extend(scan["count_calls"])
            statics.extend(f for f in scan["facts"]
                           if f["kind"] == "mutable-static")
            # Resolve iteration sites per-file first: a local
            # declaration of the name (ordered or unordered) shadows
            # the merged global table — member names repeat across
            # classes, storage does not.
            for s in scan["iter_sites"]:
                n = s["name"]
                if n in scan["unordered_names"] or \
                        scan["alias_vars"].get(n) in tables["aliases"]:
                    s["unordered"] = True
                elif n in scan.get("ordered_names", {}):
                    s["unordered"] = False
                else:
                    s["unordered"] = n in tables["unordered_names"]
                iter_sites.append(s)
        out = []
        out.extend(rules.check_layering(self.include_facts))
        out.extend(rules.check_coro_lifetime(spawns,
                                             tables["coro_sigs"]))
        out.extend(rules.check_strong_type(count_calls,
                                           tables["strong_vars"],
                                           tables["strong_ret_fns"]))
        out.extend(rules.check_shard_safety(
            statics, iter_sites, tables["unordered_names"]))
        out.extend(rules.check_typecheck(self.typecheck_facts()))
        uniq = {}
        for f in out:
            uniq.setdefault(f.key(), f)
        return sorted(uniq.values(),
                      key=lambda f: (f.file, f.line, f.rule))


# -------------------------------------------- allows / baseline / out

def collect_allows(texts):
    """{(file, rule): set of line numbers the allow covers}."""
    allowed = {}
    for rel, text in texts.items():
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            for rule in re.split(r"\s*,\s*", m.group(1)):
                allowed.setdefault((rel, rule), set()).update(
                    (lineno, lineno + 1))
    return allowed


def load_baseline(path):
    if not path or not os.path.isfile(path):
        return []
    try:
        data = json.loads(_read(path))
    except (OSError, ValueError) as e:
        raise SystemExit(f"simcheck: bad baseline {path}: {e}")
    return list(data.get("entries", []))


def apply_waivers(findings, allows, baseline, budgets):
    """Partition findings; returns (live, waived, allow_used,
    budget_errors, stale_baseline)."""
    live, waived = [], []
    allow_used = {}
    base_left = {}
    for e in baseline:
        k = (e.get("rule"), e.get("file"))
        base_left[k] = base_left.get(k, 0) + int(e.get("count", 0))
    for f in findings:
        lines = allows.get((f.file, f.rule), ())
        if f.line in lines:
            allow_used[f.rule] = allow_used.get(f.rule, 0) + 1
            waived.append((f, "allow"))
            continue
        k = (f.rule, f.file)
        if base_left.get(k, 0) > 0:
            base_left[k] -= 1
            waived.append((f, "baseline"))
            continue
        live.append(f)
    budget_errors = [
        f"allow budget exceeded for rule '{r}': {n} used, "
        f"budget {budgets.get(r, DEFAULT_ALLOW_BUDGET)}"
        for r, n in sorted(allow_used.items())
        if n > budgets.get(r, DEFAULT_ALLOW_BUDGET)]
    stale = [k for k, n in sorted(base_left.items()) if n > 0]
    return live, waived, allow_used, budget_errors, stale


def to_sarif(findings):
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "simcheck",
                "version": __version__,
                "informationUri":
                    "tools/simcheck (see DESIGN.md section 11)",
                "rules": [{"id": r} for r in rules.RULES],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": f.file},
                    "region": {"startLine": f.line},
                }}],
            } for f in findings],
        }],
    }


def write_baseline(path, findings):
    grouped = {}
    for f in findings:
        k = (f.rule, f.file)
        grouped[k] = grouped.get(k, 0) + 1
    data = {"version": 1, "entries": [
        {"rule": r, "file": fl, "count": n,
         "justification": "TODO: justify or fix"}
        for (r, fl), n in sorted(grouped.items())]}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2)
        f.write("\n")


# ---------------------------------------------------------- self-test

def self_test(jobs, use_clang):
    here = os.path.dirname(os.path.abspath(__file__))
    fixdir = os.path.join(here, "fixtures")
    expected = json.loads(_read(os.path.join(fixdir, "expected.json")))

    def run_once(frontend, baseline):
        tus = []
        for dirpath, _, names in os.walk(fixdir):
            for n in sorted(names):
                if n.endswith(".cc"):
                    p = os.path.join(dirpath, n)
                    rel = os.path.relpath(p, fixdir)
                    tus.append(TU(rel, p, ["src"],
                                  ["-std=c++20",
                                   "-I" + os.path.join(fixdir, "src")]))
        with tempfile.TemporaryDirectory() as tmp:
            ana = Analysis(fixdir, tus, DEFAULT_SCOPE, jobs,
                           Cache(os.path.join(tmp, "cache")), frontend,
                           typecheck=True)
            ana.scan_all()
            findings = ana.findings()
            allows = collect_allows(ana.texts)
            live, waived, used, berr, stale = apply_waivers(
                findings, allows, baseline, {})
            return live, used, berr, stale, ana.notes

    failures = []

    def check(frontend):
        live, used, berr, stale, notes = run_once(frontend, [])
        got = {}
        for f in live:
            got.setdefault(f.file, {})
            got[f.file][f.rule] = got[f.file].get(f.rule, 0) + 1
        if got != expected["findings"]:
            failures.append(
                f"[{frontend}] finding counts mismatch:\n"
                f"  expected {json.dumps(expected['findings'], sort_keys=True)}\n"
                f"  got      {json.dumps(got, sort_keys=True)}")
            for f in live:
                print(f"  [{frontend}] {f}")
        if used != expected.get("allows_used", {}):
            failures.append(
                f"[{frontend}] allows_used mismatch: expected "
                f"{expected.get('allows_used')}, got {used}")
        if berr:
            failures.append(f"[{frontend}] unexpected budget error: "
                            f"{berr}")
        for n in notes:
            print(f"  note [{frontend}]: {n}", file=sys.stderr)
        # Baseline mechanism: waiving one layering debt entry must
        # remove exactly that finding and report no stale entries.
        bl_file = expected["baseline_probe"]["file"]
        bl = [{"rule": "layering", "file": bl_file, "count": 1,
               "justification": "self-test probe"}]
        live2, _, _, stale2, _ = run_once(frontend, bl)
        if len(live2) != len(live) - 1:
            failures.append(
                f"[{frontend}] baseline probe: expected "
                f"{len(live) - 1} findings, got {len(live2)}")
        if stale2:
            failures.append(
                f"[{frontend}] baseline probe left stale entries: "
                f"{stale2}")
        bl_stale = [{"rule": "layering", "file": bl_file, "count": 99,
                     "justification": "overshoot"}]
        _, _, _, stale3, _ = run_once(frontend, bl_stale)
        if not stale3:
            failures.append(
                f"[{frontend}] overshooting baseline not reported "
                f"stale")

    check("lex")
    if use_clang:
        if clang_frontend.available():
            check("clang")
        else:
            print("simcheck self-test: libclang unavailable, "
                  "clang-parity leg skipped", file=sys.stderr)

    if failures:
        print("simcheck self-test FAILED:")
        for f in failures:
            print("  " + f.replace("\n", "\n  "))
        return 1
    legs = "lex+clang" if use_clang and clang_frontend.available() \
        else "lex"
    # Machine-readable per-rule totals: tests/test_lint_tools.cc pins
    # this line, so the fixture corpus cannot silently shrink.
    totals = {}
    for per_file in expected["findings"].values():
        for rule, n in per_file.items():
            totals[rule] = totals.get(rule, 0) + n
    print("simcheck self-test counts: "
          + " ".join(f"{r}={totals[r]}" for r in sorted(totals)))
    print(f"simcheck self-test OK ({legs}; "
          f"{sum(sum(v.values()) for v in expected['findings'].values())}"
          f" expected findings reproduced)")
    return 0


# --------------------------------------------------------------- main

def parse_budgets(specs):
    budgets = {}
    for spec in specs or ():
        if "=" in spec:
            rule, _, n = spec.partition("=")
            if rule not in rules.RULES:
                raise SystemExit(
                    f"simcheck: unknown rule in --allow-budget: {rule}")
            budgets[rule] = int(n)
        else:
            for r in rules.RULES:
                budgets[r] = int(spec)
    return budgets


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="simcheck",
        description="AST-grounded determinism analyzer "
                    "(see tools/simcheck/__init__.py)")
    ap.add_argument("paths", nargs="*",
                    help="scope prefixes (default: src/ bench/ "
                         "examples/)")
    ap.add_argument("-p", "--compile-commands", default=None,
                    help="compile_commands.json (default: "
                         "./build/compile_commands.json or "
                         "./compile_commands.json)")
    ap.add_argument("--frontend", choices=("auto", "lex", "clang"),
                    default="auto")
    ap.add_argument("--no-typecheck", action="store_true",
                    help="skip per-TU type-check (rule 'typecheck')")
    ap.add_argument("-j", "--jobs", type=int,
                    default=os.cpu_count() or 1)
    ap.add_argument("--cache-dir", default=None,
                    help="scan cache (default: "
                         "<compile-commands dir>/.simcheck-cache)")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: "
                         "tools/simcheck/baseline.json)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ap.add_argument("--allow-budget", action="append", metavar="[RULE=]N",
                    help=f"per-rule allow budget (default "
                         f"{DEFAULT_ALLOW_BUDGET} per rule)")
    ap.add_argument("--json", dest="json_out", default=None)
    ap.add_argument("--sarif", dest="sarif_out", default=None)
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite and exit")
    ap.add_argument("--no-clang-parity", action="store_true",
                    help="with --self-test: skip the clang leg")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(args.jobs, not args.no_clang_parity)

    root = os.path.realpath(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    cc = args.compile_commands
    if cc is None:
        for cand in (os.path.join(root, "build",
                                  "compile_commands.json"),
                     os.path.join(root, "compile_commands.json")):
            if os.path.isfile(cand):
                cc = cand
                break
    if cc is None or not os.path.isfile(cc):
        print("simcheck: no compile_commands.json found; configure "
              "with cmake -B build -S . (CMAKE_EXPORT_COMPILE_COMMANDS "
              "is on by default) or pass -p", file=sys.stderr)
        return 2

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if clang_frontend.available() else "lex"
    elif frontend == "clang" and not clang_frontend.available():
        print("simcheck: --frontend clang requested but clang.cindex "
              "is unavailable", file=sys.stderr)
        return 2

    scope = tuple(p.rstrip("/") + "/" for p in args.paths) \
        or DEFAULT_SCOPE
    cache_dir = None if args.no_cache else (
        args.cache_dir or
        os.path.join(os.path.dirname(os.path.realpath(cc)),
                     ".simcheck-cache"))

    tus = load_compile_commands(cc, root)
    ana = Analysis(root, tus, scope, max(1, args.jobs),
                   Cache(cache_dir), frontend,
                   typecheck=not args.no_typecheck)
    if not ana.tus:
        print(f"simcheck: no TUs under {', '.join(scope)} in {cc}",
              file=sys.stderr)
        return 2
    ana.scan_all()
    findings = ana.findings()

    baseline_path = args.baseline or os.path.join(
        root, "tools", "simcheck", "baseline.json")
    allows = collect_allows(ana.texts)
    budgets = parse_budgets(args.allow_budget)
    live, waived, used, budget_errors, stale = apply_waivers(
        findings, allows, load_baseline(baseline_path), budgets)

    if args.write_baseline:
        write_baseline(baseline_path, [f for f in findings
                                       if (f, "allow") not in waived])
        print(f"simcheck: baseline rewritten: {baseline_path}")
        return 0

    for f in live:
        print(f)
    for e in budget_errors:
        print(f"simcheck: ERROR: {e}")
    for rule, file_ in stale:
        print(f"simcheck: warning: stale baseline entry "
              f"{rule} in {file_} (debt repaid — remove it)")
    for n in ana.notes:
        print(f"simcheck: note: {n}", file=sys.stderr)

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump({"version": __version__, "frontend": frontend,
                       "findings": [
                           {"rule": x.rule, "file": x.file,
                            "line": x.line, "message": x.message}
                           for x in live]}, f, indent=2)
            f.write("\n")
    if args.sarif_out:
        with open(args.sarif_out, "w", encoding="utf-8") as f:
            json.dump(to_sarif(live), f, indent=2)
            f.write("\n")

    if not args.quiet:
        n_allow = sum(1 for _, why in waived if why == "allow")
        n_base = sum(1 for _, why in waived if why == "baseline")
        remaining = ", ".join(
            f"{r}={budgets.get(r, DEFAULT_ALLOW_BUDGET) - used.get(r, 0)}"
            for r in rules.RULES)
        print(f"simcheck[{frontend}]: {len(ana.scans)} files, "
              f"{len(ana.tus)} TUs; {len(live)} finding(s), "
              f"{n_allow} waived by allows, {n_base} by baseline; "
              f"allow budget remaining: {remaining}")
    return 1 if (live or budget_errors) else 0


if __name__ == "__main__":
    sys.exit(main())
