"""Frontend-neutral fact model for simcheck.

A frontend (libclang or the lexical fallback) reduces each project
file / translation unit to a flat list of *facts*; the rules in
`rules.py` are written purely against facts, so both frontends enforce
identical semantics and share one fixture suite.  The libclang
frontend simply produces more *accurate* facts (real types through
typedefs, `auto` and templates); the fallback documents its fidelity
limits in `lex_frontend.py`.

All facts are plain dicts (JSON-serializable, so per-file fact sets
can be cached by content hash).  Every fact carries:

    kind : one of the FACT_* constants
    file : repo-relative path of the file the fact was observed in
    line : 1-based line number

Kind-specific payload fields are documented next to each constant.
"""

# #include edge.  Payload: `target` — repo-relative resolved path of
# the included *project* file (system headers are never recorded).
FACT_INCLUDE = "include"

# Definition or declaration of a coroutine-task-returning function
# (return type spells sim::Coro<...>).  Payload:
#   name         : unqualified function name
#   params       : list of {name, kind} with kind value|ref|ptr
#   is_def       : bool (definition with a body)
FACT_CORO_FN = "coro-fn"

# A detached start of a coroutine: `spawn(callee(args))` or
# `spawnLane(lane, callee(args))`.  Payload:
#   callee         : unqualified callee name ('' for a lambda)
#   args           : list of {cls, text} where cls is one of
#                    local     — names an automatic-storage object of
#                                the enclosing function (incl. by-value
#                                params)
#                    addr-local— &local
#                    temp      — a materialized temporary (T(...)/T{...})
#                    other     — anything else (members, derefs, calls)
#   in_coroutine   : bool — the *spawning* function is itself a
#                    coroutine (its frame dies independently of the
#                    run loop, so refs into it cannot be trusted)
#   lambda_ref_capture : bool — callee is a lambda with a by-reference
#                    capture list entry
FACT_SPAWN = "spawn"

# Raw-representation arithmetic on a strong type: a `.count()` call on
# a Tick/Bytes/BytesPerSec expression whose result is an operand of
# integer arithmetic (+ - * / % & | ^, or a compound assignment).
# Casts (`static_cast<double>(t.count())`), call arguments and stream
# output are NOT facts — the rule targets unit-erasing integer math,
# not formatting.  Payload: `recv` (receiver text), `op`.
FACT_RAW_REP_ARITH = "raw-rep-arith"

# Mutable static-storage state: a namespace-scope variable or a
# function-local `static` that is neither const/constexpr nor one of
# the sanctioned stats wrappers.  Payload: `name`, `type` (text),
# `scope` ('namespace'|'function-static').
FACT_MUTABLE_STATIC = "mutable-static"

# Iteration over a container whose *type* resolves to std::unordered_*
# (through using/typedef/auto chains).  Payload: `name`, `via`
# ('range-for'|'begin').  Spelled-out iteration is simlint's job; this
# fact captures what the regex cannot see.
FACT_UNORDERED_ITER = "unordered-iter"

# A frontend-detected type error in a TU (libclang diagnostic of
# severity >= error, or a g++ -fsyntax-only failure).  Payload:
# `message`.
FACT_TYPE_ERROR = "type-error"


def fact(kind, file, line, **payload):
    d = {"kind": kind, "file": file, "line": int(line)}
    d.update(payload)
    return d
