"""simcheck — AST-grounded determinism analyzer for the I/OAT simulator.

Semantic sibling of tools/simlint.py: where simlint pattern-matches
tokens, simcheck works from `compile_commands.json`, type-checks every
translation unit, and enforces rules that need symbol tables and an
include graph (coroutine lifetime, strong-type escapes, shard safety,
layering).  See rules.py for the catalog and DESIGN.md §11 for the
narrative.

Two frontends share one rule engine and one fixture suite:

  * libclang (clang.cindex) — full-fidelity type tables and per-TU
    diagnostics.  Used when the bindings are importable (CI installs
    `libclang` from pip).
  * lexical fallback — self-contained token scan (lex_frontend.py)
    with g++ -fsyntax-only supplying the TU type-check.  Used in
    minimal containers with no clang at all, so the gate never goes
    dark; its fidelity limits are documented in the module.

Run as `python3 tools/simcheck` (see __main__.py for the CLI).
"""

__version__ = "1.0"

SCHEMA_VERSION = 5  # bump to invalidate cached per-file scans
