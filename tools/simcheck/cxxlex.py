"""Minimal C++ lexical layer for the simcheck fallback frontend.

This is NOT a parser.  It provides exactly what the lexical frontend
needs and nothing more:

  * `strip_code()`   — comments and string/char literals blanked out,
    line structure preserved.  Unlike a naive stripper it understands
    raw string literals (``R"delim(...)delim"``, whose bodies may
    contain unbalanced quotes) and digit separators (``1'000'000``),
    both of which flip naive quote-state machines into classifying
    string text as code (the simlint unordered-iter false-positive
    class fixed in this PR).
  * `Tok` / `tokenize()` — identifiers, numbers and punctuators with
    line numbers, for the handful of token-context checks the rules
    need (what operator neighbours a `.count()` call, where a balanced
    paren group ends, ...).
  * small navigation helpers over the token stream.

The libclang frontend never touches this module; fidelity here only
bounds what the fallback frontend can see.
"""

import re

# A digit separator quote: a quote directly between digit/alpha
# characters (1'000, 0xFF'FF).  Checked before the char-literal rule.
_DIGIT_SEP_BEFORE = re.compile(r"[0-9a-fA-F]$")

_RAW_OPEN = re.compile(r'(?:u8|[uUL])?R$')


def strip_code(text):
    """Blank comments and literal bodies; return a list of lines.

    Line numbers survive: output line i corresponds to input line i.
    String/char literal *bodies* are dropped (a lone ``"`` placeholder
    keeps literals visible as atoms); comment text is dropped wholly.
    """
    out = []
    line = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    raw_terminator = None  # inside a raw string: the `)delim"` to find
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(line))
            line = []
            if state == "line-comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                i += 2
                continue
            if c == '"':
                # Raw string?  The prefix (R, uR, u8R, LR) directly
                # precedes the quote.
                prefix = "".join(line)
                if _RAW_OPEN.search(prefix):
                    # R"delim( ... )delim"  — find the delimiter.
                    j = i + 1
                    delim = []
                    while j < n and text[j] not in "(\n":
                        delim.append(text[j])
                        j += 1
                    if j < n and text[j] == "(":
                        raw_terminator = ")" + "".join(delim) + '"'
                        state = "raw-string"
                        line.append('"')
                        i = j + 1
                        continue
                state = "string"
                line.append('"')
                i += 1
                continue
            if c == "'":
                # Digit separator (1'000'000): not a literal at all.
                if line and _DIGIT_SEP_BEFORE.search(line[-1]) and \
                        i + 1 < n and re.match(r"[0-9a-fA-F]", nxt):
                    i += 1
                    continue
                state = "char"
                line.append(" ")
                i += 1
                continue
            line.append(c)
            i += 1
            continue
        if state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        if state == "raw-string":
            if c == ")" and text.startswith(raw_terminator, i):
                line.append('"')
                i += len(raw_terminator)
                state = "code"
                raw_terminator = None
                continue
            i += 1
            continue
        if state in ("string", "char"):
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or \
                    (state == "char" and c == "'"):
                if state == "string":
                    line.append('"')
                state = "code"
            i += 1
            continue
        # line-comment: skip to newline
        i += 1
    if line or (text and not text.endswith("\n")):
        out.append("".join(line))
    return out


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind  # 'ident' | 'num' | 'punct' | 'str'
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Tok({self.kind},{self.text!r},{self.line})"


# Longest-match punctuators the rules care to see as single tokens.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
]
_TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|\d[\w.]*"
    r"|" + "|".join(re.escape(p) for p in _PUNCTS) +
    r"|\""
    r"|[^\sA-Za-z_0-9]"
)


def tokenize(code_lines):
    """Token stream over stripped code lines."""
    toks = []
    for lineno, text in enumerate(code_lines, start=1):
        for m in _TOKEN_RE.finditer(text):
            t = m.group(0)
            if t[0].isalpha() or t[0] == "_":
                kind = "ident"
            elif t[0].isdigit():
                kind = "num"
            elif t == '"':
                kind = "str"
            else:
                kind = "punct"
            toks.append(Tok(kind, t, lineno))
    return toks


def match_forward(toks, i, open_tok, close_tok):
    """Index just past the group opened at toks[i] (which must be
    open_tok); len(toks) if unbalanced."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_tok:
            depth += 1
        elif t == close_tok:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def skip_template_args(toks, i):
    """With toks[i] == '<', return index just past the matching '>'.
    Heuristic: treats '>>' as two closers, stops at ';' or '{'."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{"):
            return i
        i += 1
    return n


def split_top_commas(toks, lo, hi):
    """Split toks[lo:hi] on commas at paren/brace/bracket depth 0.
    Returns a list of (start, end) index ranges."""
    ranges = []
    depth = 0
    start = lo
    i = lo
    while i < hi:
        t = toks[i].text
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        elif t == "," and depth == 0:
            ranges.append((start, i))
            start = i + 1
        i += 1
    if start < hi:
        ranges.append((start, hi))
    return ranges


def text_of(toks, lo, hi):
    return " ".join(t.text for t in toks[lo:hi])
