"""Lexical fallback frontend for simcheck.

Used when the Python libclang bindings are unavailable (the minimal
dev container has no clang at all).  It reduces each project file to
the same fact stream the libclang frontend produces, from a token
scan with lightweight structure tracking:

  * brace regions classified as namespace / class / function bodies,
  * per-function local and value-parameter tables,
  * cross-file declaration tables (coroutine signatures, functions
    returning strong types, variables of strong / unordered type,
    type aliases), merged by the driver before facts are finalized.

Fidelity limits (the libclang frontend has none of these):
  * name-based, unqualified symbol resolution — two coroutines with
    the same name and different signatures are merged conservatively
    (a parameter counts as by-reference only if every visible
    declaration agrees);
  * template-dependent and decltype types are invisible;
  * a handful of grammar corners (most-vexing-parse locals, operator
    overload declarations) are skipped rather than guessed.

Anything this frontend *does* report is designed to also be reported
by the libclang frontend; CI runs the fixture suite under both and
asserts identical counts.
"""

import re

from . import cxxlex
from .facts import (
    FACT_CORO_FN,
    FACT_INCLUDE,
    FACT_MUTABLE_STATIC,
    FACT_SPAWN,
    FACT_UNORDERED_ITER,
    fact,
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

STRONG_TYPES = {"Tick", "Bytes", "BytesPerSec", "Rate"}
UNORDERED_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")
# Known deterministic-iteration std:: containers; a local declaration
# with one of these shadows a same-named unordered declaration from
# another file (name-based tables are global, storage is not).
_ORDERED_HEADS = {
    "map", "set", "multimap", "multiset", "vector", "list", "deque",
    "array", "string", "basic_string",
}
SANCTIONED_STATIC_RE = re.compile(
    r"\bstats\s*::\s*(?:Counter|Flag|Level|Accumulator)\b")

_TYPE_HEAD_SKIP = {
    "const", "constexpr", "constinit", "inline", "static", "extern",
    "mutable", "volatile", "unsigned", "signed", "long", "short",
    "thread_local", "typename", "friend",
}
_STMT_KEYWORDS = {
    "return", "co_return", "co_await", "co_yield", "if", "else",
    "for", "while", "do", "switch", "case", "default", "break",
    "continue", "goto", "throw", "delete", "new", "try", "catch",
    "using", "typedef", "namespace", "template", "public", "private",
    "protected", "operator", "static_assert", "sizeof", "this",
    "requires", "concept", "enum", "struct", "class", "union",
}
_QUALIFIER_TAIL = {
    "const", "noexcept", "override", "final", "mutable", "&", "&&",
    "->", ">", "::",
}
_ARITH_OPS = {
    "+", "-", "*", "/", "%", "&", "|", "^",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}
_SUSPEND = {"co_await", "co_yield", "co_return"}


class _Region:
    __slots__ = ("open", "close", "label", "head_lo")

    def __init__(self, open_idx, label, head_lo):
        self.open = open_idx
        self.close = None
        self.label = label
        self.head_lo = head_lo


def _build_regions(toks):
    """Classify every brace region as namespace/class/function/other.

    Braces inside parentheses (`ctx = {}` default arguments, brace-init
    call arguments, lambda bodies in argument position) are NOT scope
    regions — treating them as such detaches a function body from its
    header and hides everything in it from the scan.
    """
    regions = []
    stack = []
    head_start = 0
    paren_depth = 0
    brace_init_depth = 0
    for i, t in enumerate(toks):
        if t.text == "(":
            paren_depth += 1
        elif t.text == ")":
            if paren_depth > 0:
                paren_depth -= 1
        elif t.text == "{":
            if paren_depth > 0 or brace_init_depth > 0:
                brace_init_depth += 1
                continue
            label = _classify_head(toks, head_start, i, stack)
            r = _Region(i, label, head_start)
            regions.append(r)
            stack.append(r)
            head_start = i + 1
        elif t.text == "}":
            if brace_init_depth > 0:
                brace_init_depth -= 1
                continue
            if stack:
                stack.pop().close = i
            head_start = i + 1
        elif t.text == ";":
            if paren_depth == 0 and brace_init_depth == 0:
                head_start = i + 1
    for r in regions:
        if r.close is None:
            r.close = len(toks)
    return regions


def _classify_head(toks, lo, hi, stack):
    """Label for the region opened at toks[hi] given head toks[lo:hi]."""
    if hi == 0:
        return "other"
    # Inside a function body, nested braces are control blocks,
    # initializers or lambdas — none introduce a new decl scope we
    # track separately (lambda locals are treated as the enclosing
    # function's; good enough for these rules).
    if any(r.label == "function" for r in stack):
        return "other"
    head = [t.text for t in toks[lo:hi]]
    if not head:
        return "other"
    if "namespace" in head:
        return "namespace"
    last = head[-1]
    has_parens = "(" in head
    if has_parens and (last in _QUALIFIER_TAIL or last == ")"):
        # `name(args) {`, `name(args) const noexcept {`,
        # `... ) -> Coro<void> {`
        if "=" not in head[: head.index("(")]:
            return "function"
    for kw in ("class", "struct", "union", "enum"):
        if kw in head:
            return "class"
    return "other"


def _enclosing_scope(regions, idx):
    """'function' | 'class' | 'namespace' for a token index."""
    label = "namespace"
    for r in regions:
        if r.open < idx < r.close:
            if r.label == "function":
                return "function"
            if r.label == "class":
                label = "class"
    return label


def _function_regions(regions):
    """Outermost function-body regions."""
    out = []
    for r in regions:
        if r.label != "function":
            continue
        if any(o.label == "function" and o.open < r.open and
               o.close > r.close for o in regions):
            continue
        out.append(r)
    return out


def _parse_params(toks, lo, hi):
    """Parse a parameter list token range into [{name, kind}]."""
    params = []
    for plo, phi in cxxlex.split_top_commas(toks, lo, hi):
        texts = [t.text for t in toks[plo:phi]]
        if not texts or texts == ["void"]:
            continue
        # Drop a default argument.
        if "=" in texts:
            texts = texts[: texts.index("=")]
        kind = "value"
        if "&" in texts or "&&" in texts:
            kind = "ref"
        elif "*" in texts:
            kind = "ptr"
        name = ""
        for t in reversed(texts):
            if re.match(r"[A-Za-z_]\w*$", t) and t not in _TYPE_HEAD_SKIP:
                name = t
                break
        params.append({"name": name, "kind": kind})
    return params


def _function_header(toks, region):
    """(name, params, param_range) for a function region, or None.

    The header is the token stretch between the previous ;/}/{ and the
    opening brace.  The parameter list is the last balanced paren
    group followed only by qualifier/trailing-return tokens.
    """
    lo, hi = region.head_lo, region.open
    close = None
    depth = 0
    i = hi - 1
    while i >= lo:
        t = toks[i].text
        if t == ")":
            if depth == 0 and close is None:
                # Reject e.g. `noexcept(...)`: the group must be
                # preceded by an identifier that is not `noexcept`.
                close = i
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0 and close is not None:
                name_idx = i - 1
                if name_idx >= lo and toks[name_idx].kind == "ident" \
                        and toks[name_idx].text != "noexcept":
                    return (toks[name_idx].text, i + 1, close)
                close = None
        i -= 1
    return None


def _return_type_text(toks, region, name_open_idx):
    lo = region.head_lo
    # name token sits just before the param '('.
    return " ".join(t.text for t in toks[lo: name_open_idx - 1])


def _collect_locals(toks, lo, hi):
    """Names of automatic-storage objects declared in toks[lo:hi]
    (value and pointer locals; reference locals excluded — they alias
    storage we cannot see)."""
    locals_ = set()
    i = lo
    stmt_start = True
    while i < hi:
        t = toks[i]
        if t.text in (";", "{", "}"):
            stmt_start = True
            i += 1
            continue
        if stmt_start and t.kind == "ident" and \
                t.text not in _STMT_KEYWORDS:
            j = _scan_decl(toks, i, hi)
            if j is not None:
                name_idx, is_ref = j
                if not is_ref:
                    locals_.add(toks[name_idx].text)
                i = name_idx + 1
                stmt_start = False
                continue
        stmt_start = t.text in ("(",) and stmt_start
        if t.text not in ("const", "auto") or not stmt_start:
            stmt_start = False
        i += 1
    return locals_


def _scan_decl(toks, i, hi):
    """If a declaration `Type name ...` starts at toks[i], return
    (name_token_index, is_reference); else None."""
    saw_type = False
    is_ref = False
    while i < hi:
        t = toks[i]
        if t.kind == "ident":
            if t.text in _STMT_KEYWORDS:
                return None
            if t.text == "auto":
                saw_type = True
                i += 1
                continue
            if t.text in _TYPE_HEAD_SKIP:
                i += 1
                continue
            # Type component or the declared name?
            nxt = toks[i + 1].text if i + 1 < hi else ""
            if nxt == "<":
                i = cxxlex.skip_template_args(toks, i + 1)
                saw_type = True
                continue
            if nxt == "::":
                i += 2
                continue
            if nxt in ("&", "&&", "*"):
                saw_type = True
                i += 1
                continue
            if saw_type and nxt in ("=", ";", ",", ")", "{"):
                return (i, is_ref)
            if not saw_type:
                saw_type = True
                i += 1
                continue
            return None
        if t.text in ("&", "&&"):
            is_ref = True
            i += 1
            continue
        if t.text == "*":
            i += 1
            continue
        if t.text == "::":
            i += 1
            continue
        return None
    return None


_CTOR_TEMP_RE = re.compile(r"^[A-Z]\w*$")


def _classify_arg(toks, lo, hi, locals_):
    """Classification for one spawn-call argument."""
    texts = [t.text for t in toks[lo:hi]]
    if not texts:
        return {"cls": "other", "text": ""}
    text = " ".join(texts)
    # std::move(x) / std::forward<T>(x) do not change storage.
    if texts[:2] == ["std", "::"] and len(texts) > 3 and \
            texts[2] in ("move", "forward"):
        inner_lo = lo + 3
        while inner_lo < hi and toks[inner_lo].text != "(":
            inner_lo += 1
        if inner_lo < hi:
            return _classify_arg(toks, inner_lo + 1, hi - 1, locals_)
    if len(texts) == 1 and toks[lo].kind == "ident":
        if texts[0] in locals_:
            return {"cls": "local", "text": text}
        return {"cls": "other", "text": text}
    if texts[0] == "&" and len(texts) == 2 and texts[1] in locals_:
        return {"cls": "addr-local", "text": text}
    # `Type(...)` / `Type{...}` / `ns::Type{...}`: a materialized
    # temporary (heuristic: type-case head identifier).
    head = texts[0]
    k = 0
    while k + 2 < len(texts) and texts[k + 1] == "::":
        head = texts[k + 2]
        k += 2
    if k + 1 < len(texts) and texts[k + 1] in ("(", "{") and \
            _CTOR_TEMP_RE.match(head):
        return {"cls": "temp", "text": text}
    return {"cls": "other", "text": text}


def scan_file(rel, text):
    """Reduce one file to facts + cross-file declaration tables.

    Returns a JSON-serializable dict:
      facts            : finalized facts (includes, mutable statics)
      coro_fns         : FACT_CORO_FN facts (also merged into tables)
      spawns           : FACT_SPAWN facts with unresolved callee names
      count_calls      : candidate .count() arithmetic sites
      iter_sites       : candidate unordered-iteration sites
      strong_vars      : {name: type} for Tick/Bytes/BytesPerSec decls
      strong_ret_fns   : {name: type}
      unordered_names  : directly-spelled unordered vars/members
      ordered_names    : vars/members of known std:: ordered types
      aliases          : {alias: 1} aliases of unordered types
      alias_vars       : {var: alias} vars typed by a bare identifier
      raw_includes     : [(line, path, quoted)]
    """
    raw_lines = text.splitlines()
    code_lines = cxxlex.strip_code(text)
    toks = cxxlex.tokenize(code_lines)
    regions = _build_regions(toks)
    fn_regions = _function_regions(regions)

    out = {
        "facts": [],
        "coro_fns": [],
        "spawns": [],
        "count_calls": [],
        "iter_sites": [],
        "strong_vars": {},
        "strong_ret_fns": {},
        "unordered_names": {},
        "ordered_names": {},
        "aliases": {},
        "alias_vars": {},
        "raw_includes": [],
    }

    for lineno, line in enumerate(raw_lines, start=1):
        m = INCLUDE_RE.match(line)
        if m:
            out["raw_includes"].append(
                (lineno, m.group(2), m.group(1) == '"'))

    _scan_aliases(toks, out)
    _scan_typed_decls(toks, regions, out)
    _scan_statics(toks, regions, fn_regions, rel, out)
    _scan_coro_fns(toks, fn_regions, regions, rel, out)
    _scan_spawns(toks, fn_regions, rel, out)
    _scan_count_calls(toks, rel, out)
    _scan_iter_sites(toks, rel, out)
    return out


def _scan_aliases(toks, out):
    """using X = ...unordered...;  /  typedef ...unordered... X;"""
    n = len(toks)
    for i, t in enumerate(toks):
        if t.text == "using" and i + 2 < n and \
                toks[i + 1].kind == "ident" and toks[i + 2].text == "=":
            j = i + 3
            rhs = []
            while j < n and toks[j].text != ";":
                rhs.append(toks[j].text)
                j += 1
            rhs_text = " ".join(rhs)
            if UNORDERED_RE.search(rhs_text):
                out["aliases"][toks[i + 1].text] = 1
            elif len(rhs) >= 1 and re.match(r"[A-Za-z_]\w*$", rhs[-1]):
                # using Y = X;  — possible alias-of-alias chain.
                out["alias_vars"].setdefault(
                    "using:" + toks[i + 1].text, rhs[-1])
        elif t.text == "typedef":
            j = i + 1
            rhs = []
            while j < n and toks[j].text != ";":
                rhs.append(toks[j].text)
                j += 1
            if len(rhs) >= 2 and UNORDERED_RE.search(" ".join(rhs[:-1])):
                out["aliases"][rhs[-1]] = 1


def _scan_typed_decls(toks, regions, out):
    """Variables and functions typed Tick/Bytes/BytesPerSec, plus
    variables of (aliased) unordered types, anywhere in the file."""
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "ident":
            i += 1
            continue
        if t.text in STRONG_TYPES:
            prev = toks[i - 1].text if i > 0 else ""
            if prev in ("enum", "class", "struct", "using", "."):
                i += 1
                continue
            j = i + 1
            # skip template args / qualifiers
            while j < n and toks[j].text in ("&", "&&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "ident" and \
                    toks[j].text not in _STMT_KEYWORDS:
                name = toks[j].text
                after = toks[j + 1].text if j + 1 < n else ""
                if after == "(" and \
                        _enclosing_scope(regions, j) != "function":
                    if name != "operator":
                        out["strong_ret_fns"][name] = t.text
                elif after in ("=", ";", ",", ")", "{", ":"):
                    out["strong_vars"][name] = t.text
            i = j + 1
            continue
        if t.text.startswith("unordered_") and UNORDERED_RE.match(t.text):
            j = cxxlex.skip_template_args(toks, i + 1) \
                if i + 1 < n and toks[i + 1].text == "<" else i + 1
            while j < n and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "ident" and \
                    toks[j].text not in _STMT_KEYWORDS:
                out["unordered_names"][toks[j].text] = 1
            i = j
            continue
        if t.text in _ORDERED_HEADS and i >= 2 and \
                toks[i - 1].text == "::" and toks[i - 2].text == "std":
            j = cxxlex.skip_template_args(toks, i + 1) \
                if i + 1 < n and toks[i + 1].text == "<" else i + 1
            while j < n and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "ident" and \
                    toks[j].text not in _STMT_KEYWORDS:
                out["ordered_names"][toks[j].text] = 1
            i = j
            continue
        # `AliasName var;` / `const AliasName &var` — a bare-identifier
        # type; resolved against the merged alias table later.
        if re.match(r"[A-Z]\w*$", t.text) and i > 0 and \
                toks[i - 1].text in (";", "{", "}", "(", ",", "const"):
            j = i + 1
            while j < n and toks[j].text in ("&", "&&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == "ident" and \
                    toks[j].text not in _STMT_KEYWORDS:
                after = toks[j + 1].text if j + 1 < n else ""
                if after in ("=", ";", ",", ")", "{"):
                    out["alias_vars"].setdefault(toks[j].text, t.text)
        i += 1


def _scan_statics(toks, regions, fn_regions, rel, out):
    """Mutable static-storage declarations (shard-safety rule 3)."""
    n = len(toks)
    for i, t in enumerate(toks):
        if t.text != "static":
            continue
        scope = _enclosing_scope(regions, i)
        # Gather the declaration head up to = { ; (
        j = i + 1
        head = []
        while j < n and toks[j].text not in ("=", ";", "(", "{"):
            head.append(toks[j].text)
            j += 1
        if j >= n or not head:
            continue
        terminator = toks[j].text
        head_text = " ".join(head)
        if terminator == "(":
            continue  # static member/free function
        if any(k in head for k in
               ("constexpr", "const", "constinit", "assert")):
            continue
        if SANCTIONED_STATIC_RE.search(head_text):
            continue
        name = ""
        for h in reversed(head):
            if re.match(r"[A-Za-z_]\w*$", h):
                name = h
                break
        if not name:
            continue
        out["facts"].append(fact(
            FACT_MUTABLE_STATIC, rel, t.line, name=name,
            type=head_text,
            scope="function-static" if scope == "function"
            else "namespace"))


def _scan_coro_fns(toks, fn_regions, regions, rel, out):
    """Coro<...>-returning definitions and declarations."""
    n = len(toks)
    # Definitions: function regions whose return type spells Coro<.
    for r in fn_regions:
        hdr = _function_header(toks, r)
        if hdr is None:
            continue
        name, plo, phi = hdr
        ret = _return_type_text(toks, r, plo)
        if not re.search(r"\bCoro\s*<", ret):
            continue
        params = _parse_params(toks, plo, phi)
        out["coro_fns"].append(fact(
            FACT_CORO_FN, rel, toks[r.open].line, name=name,
            params=params, is_def=True))
    # Declarations: `Coro < ... > name ( ... ) [const] ;`
    i = 0
    while i < n:
        if toks[i].text == "Coro" and i + 1 < n and \
                toks[i + 1].text == "<":
            j = cxxlex.skip_template_args(toks, i + 1)
            if j < n and toks[j].kind == "ident" and j + 1 < n and \
                    toks[j + 1].text == "(":
                close = cxxlex.match_forward(toks, j + 1, "(", ")")
                k = close
                while k < n and toks[k].text in ("const", "noexcept",
                                                 "override"):
                    k += 1
                if k < n and toks[k].text == ";":
                    out["coro_fns"].append(fact(
                        FACT_CORO_FN, rel, toks[j].line,
                        name=toks[j].text,
                        params=_parse_params(toks, j + 2, close - 1),
                        is_def=False))
            i = j
            continue
        i += 1


def _suspend_outside_lambdas(toks, lo, hi):
    """True if toks[lo:hi] contains co_await/co_return/co_yield that
    does NOT sit inside a nested lambda body — a suspend point in a
    lambda makes the *lambda* a coroutine, not the enclosing
    function."""
    i = lo
    while i < hi:
        t = toks[i]
        if t.text == "[":
            prev = toks[i - 1] if i > lo else None
            is_subscript = prev is not None and (
                prev.kind in ("ident", "num") or
                prev.text in (")", "]"))
            if not is_subscript:
                j = cxxlex.match_forward(toks, i, "[", "]")
                if j < hi and toks[j].text == "(":
                    j = cxxlex.match_forward(toks, j, "(", ")")
                while j < hi and toks[j].text not in ("{", ";", ")",
                                                      ",", "}"):
                    j += 1
                if j < hi and toks[j].text == "{":
                    i = cxxlex.match_forward(toks, j, "{", "}")
                    continue
            i += 1
            continue
        if t.text in _SUSPEND:
            return True
        i += 1
    return False


def _scan_spawns(toks, fn_regions, rel, out):
    """spawn()/spawnLane() call sites inside function bodies."""
    for r in fn_regions:
        lo, hi = r.open + 1, r.close
        locals_ = _collect_locals(toks, lo, hi)
        hdr = _function_header(toks, r)
        if hdr is not None:
            _, plo, phi = hdr
            for p in _parse_params(toks, plo, phi):
                if p["kind"] == "value" and p["name"]:
                    locals_.add(p["name"])
        in_coroutine = _suspend_outside_lambdas(toks, lo, hi)
        i = lo
        while i < hi:
            t = toks[i]
            if t.kind == "ident" and t.text in ("spawn", "spawnLane") \
                    and i + 1 < hi and toks[i + 1].text == "(":
                close = cxxlex.match_forward(toks, i + 1, "(", ")")
                args = cxxlex.split_top_commas(toks, i + 2, close - 1)
                if t.text == "spawnLane" and len(args) > 1:
                    args = args[1:]
                if args:
                    alo, ahi = args[0]
                    _emit_spawn_fact(toks, alo, ahi, locals_,
                                     in_coroutine, rel, t.line, out)
                i = close
                continue
            i += 1


def _emit_spawn_fact(toks, lo, hi, locals_, in_coroutine, rel, line,
                     out):
    """Reduce the coroutine expression inside spawn(...) to a fact."""
    if lo >= hi:
        return
    if toks[lo].text == "[":
        _emit_lambda_spawn(toks, lo, hi, locals_, in_coroutine, rel,
                           line, out)
        return
    # Named call: ident ( :: ident | . ident | -> ident )* ( args )
    i = lo
    callee = None
    while i < hi:
        if toks[i].kind == "ident" and i + 1 < hi and \
                toks[i + 1].text == "(":
            callee = toks[i].text
            break
        i += 1
    if callee is None:
        return
    close = cxxlex.match_forward(toks, i + 1, "(", ")")
    arg_ranges = cxxlex.split_top_commas(toks, i + 2, close - 1)
    args = [_classify_arg(toks, alo, ahi, locals_)
            for alo, ahi in arg_ranges]
    out["spawns"].append(fact(
        FACT_SPAWN, rel, line, callee=callee, args=args,
        in_coroutine=in_coroutine, lambda_ref_capture=False))


def _emit_lambda_spawn(toks, lo, hi, locals_, in_coroutine, rel, line,
                       out):
    cap_close = cxxlex.match_forward(toks, lo, "[", "]")
    captures = [t.text for t in toks[lo + 1: cap_close - 1]]
    ref_capture = any(t == "&" for t in captures)
    i = cap_close
    params = []
    pl = pr = None
    if i < hi and toks[i].text == "(":
        pr = cxxlex.match_forward(toks, i, "(", ")")
        pl = (i + 1, pr - 1)
        i = pr
    # skip trailing-return etc. to the body
    while i < hi and toks[i].text != "{":
        i += 1
    if i >= hi:
        return
    body_close = cxxlex.match_forward(toks, i, "{", "}")
    is_coroutine_lambda = any(
        t.text in _SUSPEND for t in toks[i + 1: body_close - 1])
    if not is_coroutine_lambda:
        return
    # Immediately-invoked: `...}(args)` — classify args against the
    # lambda's own parameter list.
    args = []
    param_kinds = []
    if body_close < hi and toks[body_close].text == "(":
        call_close = cxxlex.match_forward(toks, body_close, "(", ")")
        arg_ranges = cxxlex.split_top_commas(
            toks, body_close + 1, call_close - 1)
        args = [_classify_arg(toks, alo, ahi, locals_)
                for alo, ahi in arg_ranges]
        if pl is not None:
            param_kinds = _parse_params(toks, pl[0], pl[1])
    for k, a in enumerate(args):
        a["param_kind"] = (param_kinds[k]["kind"]
                           if k < len(param_kinds) else "value")
    out["spawns"].append(fact(
        FACT_SPAWN, rel, line, callee="", args=args,
        in_coroutine=in_coroutine, lambda_ref_capture=ref_capture))


def _scan_count_calls(toks, rel, out):
    """Candidate `.count()` raw-representation arithmetic sites."""
    n = len(toks)
    for i in range(n - 3):
        if not (toks[i].text == "." and toks[i + 1].text == "count"
                and toks[i + 2].text == "(" and
                toks[i + 3].text == ")"):
            continue
        # Receiver: identifier chain or a call.
        recv_kind, recv_name, recv_start = _receiver_of(toks, i)
        if recv_kind is None:
            continue
        after = toks[i + 4].text if i + 4 < n else ""
        before = toks[recv_start - 1].text if recv_start > 0 else ""
        op = None
        if after in _ARITH_OPS:
            op = after
        elif before in _ARITH_OPS:
            op = before
        if op is None:
            continue
        out["count_calls"].append({
            "file": rel, "line": toks[i].line, "recv_kind": recv_kind,
            "recv_name": recv_name, "op": op,
        })


def _receiver_of(toks, dot_idx):
    """(kind, name, start_idx) of the expression before `.count()`.
    kind: 'var' (identifier chain ending in name), 'call' (f(...).)
    or None when unrecognizable."""
    i = dot_idx - 1
    if i < 0:
        return (None, None, None)
    if toks[i].kind == "ident":
        name = toks[i].text
        start = i
        while start >= 2 and toks[start - 1].text in (".", "->", "::") \
                and toks[start - 2].kind == "ident":
            start -= 2
        return ("var", name, start)
    if toks[i].text == ")":
        depth = 0
        j = i
        while j >= 0:
            if toks[j].text == ")":
                depth += 1
            elif toks[j].text == "(":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j > 0 and toks[j - 1].kind == "ident":
            name = toks[j - 1].text
            start = j - 1
            while start >= 2 and toks[start - 1].text in \
                    (".", "->", "::") and toks[start - 2].kind == "ident":
                start -= 2
            return ("call", name, start)
        # Parenthesized expression: typed if any inner identifier is.
        inner = [t.text for t in toks[j + 1: i] if t.kind == "ident"]
        return ("expr", ",".join(inner), j)
    return (None, None, None)


def _scan_iter_sites(toks, rel, out):
    """Range-for and begin()/cbegin() iteration sites by *name*; the
    driver decides whether the name's type resolves to unordered."""
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.text == "for" and i + 1 < n and toks[i + 1].text == "(":
            close = cxxlex.match_forward(toks, i + 1, "(", ")")
            colon = None
            depth = 0
            for j in range(i + 2, close - 1):
                txt = toks[j].text
                if txt in "([{":
                    depth += 1
                elif txt in ")]}":
                    depth -= 1
                elif txt == ":" and depth == 0 and \
                        toks[j - 1].text != ":" and \
                        (j + 1 >= n or toks[j + 1].text != ":"):
                    colon = j
                    break
            if colon is not None:
                tail = [x for x in toks[colon + 1: close - 1]
                        if x.kind == "ident"]
                if tail:
                    out["iter_sites"].append({
                        "file": rel, "line": t.line,
                        "name": tail[-1].text, "via": "range-for"})
            i = close
            continue
        if t.text in ("begin", "cbegin") and i >= 2 and \
                toks[i - 1].text in (".", "->") and \
                toks[i - 2].kind == "ident" and i + 1 < n and \
                toks[i + 1].text == "(":
            out["iter_sites"].append({
                "file": rel, "line": t.line,
                "name": toks[i - 2].text, "via": "begin"})
        i += 1
