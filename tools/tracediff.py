#!/usr/bin/env python3
"""Differential span analysis over two ioat-span-report-v1 files.

Joins two span-report runs (e.g. `fig08 --transport tcp --span-report a.json`
vs `--transport bypass --span-report b.json`) by request identity —
(request name, occurrence index in start order) — and reports what
changed between them:

 * per-category latency totals, before vs after, with deltas;
 * span kinds that DISAPPEARED (present in A, absent in B): the copies,
   interrupt waits and kernel hops an offload/bypass path eliminated,
   grouped per lane (lane 0 = driver, lane n = node n-1);
 * span kinds that APPEARED (new machinery the B path added);
 * span kinds present in both whose total cost moved.

Span-level sections need detailed requests (the tracer records full
span trees for sampled requests); category totals work on every
finished request.

Usage:
    tools/tracediff.py A.json B.json [--name SUBSTR] [--top N]

Stdlib only; no third-party dependencies.
"""

import argparse
import collections
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "ioat-span-report-v1":
        sys.exit(f"{path}: not an ioat-span-report-v1 document")
    return doc


def fmt_ticks(ticks):
    """Ticks are nanoseconds; print at a human scale."""
    sign = "-" if ticks < 0 else ""
    t = abs(ticks)
    if t >= 1_000_000:
        return f"{sign}{t / 1e6:.3f} ms"
    if t >= 1_000:
        return f"{sign}{t / 1e3:.2f} us"
    return f"{sign}{t} ns"


def joined_requests(doc_a, doc_b, name_filter):
    """Pair requests by (name, occurrence index in start order)."""

    def keyed(doc):
        reqs = [r for r in doc["requests"] if name_filter in r["name"]]
        reqs.sort(key=lambda r: (r["startTick"], r["id"]))
        seen = collections.Counter()
        out = {}
        for r in reqs:
            out[(r["name"], seen[r["name"]])] = r
            seen[r["name"]] += 1
        return out

    a, b = keyed(doc_a), keyed(doc_b)
    pairs = [(a[k], b[k]) for k in a if k in b]
    only_a = [k for k in a if k not in b]
    only_b = [k for k in b if k not in a]
    return pairs, only_a, only_b


SpanAgg = collections.namedtuple("SpanAgg", "count ticks lanes")


def span_profile(reqs):
    """Aggregate detailed spans per (name, category)."""
    count = collections.Counter()
    ticks = collections.Counter()
    lanes = collections.defaultdict(collections.Counter)
    for r in reqs:
        for s in r.get("spans", []):
            key = (s["name"], s["cat"])
            count[key] += 1
            ticks[key] += s["endTick"] - s["startTick"]
            lanes[key][s["lane"]] += 1
    return {
        k: SpanAgg(count[k], ticks[k], dict(sorted(lanes[k].items())))
        for k in count
    }


def lane_str(lanes):
    return ", ".join(f"lane{ln}x{n}" for ln, n in lanes.items())


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("before", help="baseline span report (A)")
    ap.add_argument("after", help="comparison span report (B)")
    ap.add_argument("--name", default="",
                    help="only consider requests whose name contains this")
    ap.add_argument("--top", type=int, default=15,
                    help="changed-span rows to print (default 15)")
    args = ap.parse_args()

    doc_a = load(args.before)
    doc_b = load(args.after)
    cats = doc_a["categories"]
    if cats != doc_b["categories"]:
        sys.exit("category sets differ; reports from different builds?")

    pairs, only_a, only_b = joined_requests(doc_a, doc_b, args.name)
    print(f"joined {len(pairs)} request pair(s) by (name, occurrence); "
          f"{len(only_a)} only in A, {len(only_b)} only in B")
    for k in only_a[:5]:
        print(f"  only in A: {k[0]} (#{k[1]})")
    for k in only_b[:5]:
        print(f"  only in B: {k[0]} (#{k[1]})")
    if not pairs:
        print("nothing to diff")
        return

    # --- category totals over the joined pairs -----------------------
    tot_a = {c: 0 for c in cats}
    tot_b = {c: 0 for c in cats}
    dur_a = dur_b = 0
    for ra, rb in pairs:
        dur_a += ra["durationTicks"]
        dur_b += rb["durationTicks"]
        for c in cats:
            tot_a[c] += ra["breakdown"].get(c, 0)
            tot_b[c] += rb["breakdown"].get(c, 0)

    print("\nper-category totals over joined requests (A -> B):")
    print(f"    {'category':<12} {'A':>12} {'B':>12} {'delta':>12}")
    for c in cats:
        if tot_a[c] == 0 and tot_b[c] == 0:
            continue
        d = tot_b[c] - tot_a[c]
        note = ""
        if tot_a[c] and not tot_b[c]:
            note = "  [eliminated]"
        elif tot_b[c] and not tot_a[c]:
            note = "  [new]"
        print(f"    {c:<12} {fmt_ticks(tot_a[c]):>12} "
              f"{fmt_ticks(tot_b[c]):>12} {fmt_ticks(d):>12}{note}")
    print(f"    {'end-to-end':<12} {fmt_ticks(dur_a):>12} "
          f"{fmt_ticks(dur_b):>12} {fmt_ticks(dur_b - dur_a):>12}")

    # --- span-kind diff over detailed requests -----------------------
    prof_a = span_profile([ra for ra, _ in pairs])
    prof_b = span_profile([rb for _, rb in pairs])
    if not prof_a and not prof_b:
        print("\nno detailed spans in either report "
              "(span trees are recorded for sampled requests only)")
        return

    gone = sorted((k for k in prof_a if k not in prof_b),
                  key=lambda k: -prof_a[k].ticks)
    new = sorted((k for k in prof_b if k not in prof_a),
                 key=lambda k: -prof_b[k].ticks)
    both = sorted((k for k in prof_a if k in prof_b),
                  key=lambda k: -abs(prof_b[k].ticks - prof_a[k].ticks))

    print(f"\nspans eliminated in B ({len(gone)} kind(s)):")
    for name, cat in gone:
        agg = prof_a[(name, cat)]
        print(f"    {name} [{cat}]  x{agg.count}  "
              f"{fmt_ticks(agg.ticks)}  ({lane_str(agg.lanes)})")
    if not gone:
        print("    (none)")

    print(f"\nspans new in B ({len(new)} kind(s)):")
    for name, cat in new:
        agg = prof_b[(name, cat)]
        print(f"    {name} [{cat}]  x{agg.count}  "
              f"{fmt_ticks(agg.ticks)}  ({lane_str(agg.lanes)})")
    if not new:
        print("    (none)")

    print(f"\nspans in both whose cost moved (top {args.top}):")
    shown = 0
    for name, cat in both:
        a, b = prof_a[(name, cat)], prof_b[(name, cat)]
        dt = b.ticks - a.ticks
        if dt == 0 and a.count == b.count:
            continue
        print(f"    {name} [{cat}]  x{a.count}->x{b.count}  "
              f"{fmt_ticks(a.ticks)} -> {fmt_ticks(b.ticks)}  "
              f"({fmt_ticks(dt)})")
        shown += 1
        if shown >= args.top:
            break
    if shown == 0:
        print("    (none)")


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
