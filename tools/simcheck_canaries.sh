#!/bin/sh
# Proof that the simcheck gate actually gates: inject one violation
# per rule family into REAL sources, assert `tools/simcheck` exits
# non-zero, restore the file, and finish with a clean run.  CI runs
# this after the baseline-gated tree analysis; a rule that stops
# firing on live code fails the job even if the fixtures still pass.
#
# The canary runs use --no-typecheck: every injected snippet is
# well-formed C++ on purpose (an ill-formed one would trip the
# `typecheck` rule instead and prove nothing about its family), and
# skipping the g++ -fsyntax-only pass keeps the four runs fast.
#
# Usage: tools/simcheck_canaries.sh [compile_commands.json]
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"
cc=${1:-build/compile_commands.json}
if [ ! -f "$cc" ]; then
    echo "simcheck_canaries: no $cc (configure with cmake -B build -S . first)" >&2
    exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

simcheck() {
    python3 tools/simcheck -q --no-typecheck --cache-dir "$tmp/cache" \
        -p "$cc" "$@"
}

backup()  { cp "$1" "$tmp/orig"; }
restore() { cp "$tmp/orig" "$1"; }

# The mutation must have changed the file, and the changed tree must
# fail the gate.  A no-op mutation means the source drifted and the
# canary needs re-anchoring — that is an error, not a pass.
expect_fail() {
    name=$1
    file=$2
    if cmp -s "$file" "$tmp/orig"; then
        echo "canary $name: mutation was a no-op on $file (source drifted; re-anchor the canary)" >&2
        exit 1
    fi
    if simcheck >/dev/null 2>&1; then
        echo "canary $name: injected violation NOT caught" >&2
        exit 1
    fi
    echo "canary $name: caught"
}

# 1. strong-type: re-open the raw-representation ceil-divide that the
#    sim::divCeil door replaced.
backup src/nic/nic.hh
sed -i 's|sim::divCeil(payload, Bytes{cfg_.mtu})|(payload.count() + cfg_.mtu - 1) / cfg_.mtu|' \
    src/nic/nic.hh
expect_fail strong-type src/nic/nic.hh
restore src/nic/nic.hh

# 2. shard-safety: a mutable static member outside src/simcore/.
backup src/nic/nic.hh
sed -i 's|/\*\* Frames needed to carry @p payload bytes at the current MTU. \*/|inline static int canaryCounter_ = 0;\n    /** Frames needed to carry @p payload bytes at the current MTU. */|' \
    src/nic/nic.hh
expect_fail shard-safety src/nic/nic.hh
restore src/nic/nic.hh

# 3. layering: bench/ reaching past the sock:: facade into the TCP
#    internals.
backup bench/fig03_bandwidth.cpp
sed -i '1i #include "tcp/stack.hh"' bench/fig03_bandwidth.cpp
expect_fail layering bench/fig03_bandwidth.cpp
restore bench/fig03_bandwidth.cpp

# 3b. layering: the sock:: facade reaching past the bypass-transport
#     interface header (xpt/bypass.hh) into an xpt/ internal.  The
#     only other file under src/xpt/ is the implementation TU itself;
#     textually including it is exactly the dependency the rule bans
#     (canaries run with --no-typecheck, so this never compiles).
backup src/sock/socket.hh
sed -i 's|#include "xpt/bypass.hh"|#include "xpt/bypass.cc"|' \
    src/sock/socket.hh
expect_fail layering src/sock/socket.hh
restore src/sock/socket.hh

# 4. coro-lifetime: turn the recv-timeout watcher's safe capture-less
#    lambda (explicit value params) back into a ref-capturing one —
#    the exact bug class the rule exists for.
backup src/sock/socket.hh
python3 - <<'EOF'
t = open('src/sock/socket.hh').read()
t = t.replace("""    simulation().spawn(
        [](Socket s, sim::Tick t,
           std::shared_ptr<Watch> w) -> sim::Coro<void> {
            co_await s.simulation().delay(t);
            if (!w->done) {
                w->fired = true;
                s.abort();
            }
        }(*this, timeout, watch));""", """    simulation().spawn(
        [&]() -> sim::Coro<void> {
            co_await simulation().delay(timeout);
            if (!watch->done) {
                watch->fired = true;
                abort();
            }
        }());""")
open('src/sock/socket.hh', 'w').write(t)
EOF
expect_fail coro-lifetime src/sock/socket.hh
restore src/sock/socket.hh

# Restored tree must be clean again.
simcheck
echo "simcheck_canaries: all four rule families fire; tree clean after restore"
