/**
 * @file
 * Example: a complete 2-tier data center (proxy + web server) under a
 * Zipf workload, comparing transactions/sec with and without I/OAT,
 * and showing the proxy-cache statistics the library exposes.
 */

#include <cstdio>

#include "core/testbed.hh"
#include "datacenter/client.hh"
#include "datacenter/proxy.hh"
#include "datacenter/web_server.hh"
#include "datacenter/workload.hh"
#include "simcore/simcore.hh"

using namespace ioat;
using core::IoatConfig;
using sim::Simulation;

namespace {

void
runOnce(bool use_ioat)
{
    Simulation sim;
    core::Testbed tb(sim,
                     core::TestbedConfig{
                         .serverCount = 2,
                         .serverConfig = core::NodeConfig::server(
                             use_ioat ? IoatConfig::enabled()
                                      : IoatConfig::disabled()),
                         .clientCount = 4,
                     });

    dc::DcConfig cfg;
    cfg.proxyCacheBytes = 32 * 1024 * 1024;
    dc::ZipfWorkload workload(/*alpha=*/0.9, /*files=*/10000,
                              /*file_bytes=*/8192);

    dc::WebServer server(tb.server(1), cfg, workload);
    dc::Proxy proxy(tb.server(0), cfg, tb.server(1).id());
    server.start();
    proxy.start();

    dc::ClientFleet::Options opts;
    opts.target = tb.server(0).id();
    opts.port = cfg.proxyPort;
    opts.threads = 32;
    dc::ClientFleet fleet({&tb.client(0), &tb.client(1), &tb.client(2),
                           &tb.client(3)},
                          workload, opts);
    fleet.start();

    sim.runFor(sim::milliseconds(300)); // warmup
    tb.server(0).cpu().resetUtilizationWindow();
    const auto done0 = fleet.completed();
    const auto t0 = sim.now();
    sim.runFor(sim::milliseconds(500));

    const double tps = static_cast<double>(fleet.completed() - done0) /
                       sim::toSeconds(sim.now() - t0);
    std::printf("  %-8s  %7.0f TPS   proxy CPU %5.1f%%   hit rate "
                "%4.1f%%   mean latency %6.0f us\n",
                use_ioat ? "I/OAT" : "non-I/OAT", tps,
                tb.server(0).cpu().utilization() * 100.0,
                proxy.hitRate() * 100.0, fleet.latencyUs().mean());
}

} // namespace

int
main()
{
    std::printf("2-tier data center: 32 Zipf(0.9) clients -> proxy -> "
                "web server\n\n");
    runOnce(false);
    runOnce(true);
    std::printf("\nReduced receive-path CPU lets the proxy tier accept "
                "and relay more requests.\n");
    return 0;
}
