/**
 * @file
 * Example: the user-level asynchronous memcpy API (the paper's §8
 * future-work item) — overlap, breakeven sizes and the §7 pinning
 * caveat.
 */

#include <cstdio>

#include "core/async_memcpy.hh"
#include "core/node.hh"
#include "simcore/simcore.hh"

using namespace ioat;
using core::AsyncMemcpy;
using core::IoatConfig;
using sim::Coro;
using sim::Simulation;
using sim::Tick;

namespace {

Coro<void>
demo(Simulation &sim, core::Node &node, AsyncMemcpy &amc)
{
    const std::size_t bytes = sim::mib(4);
    const Tick work = sim::milliseconds(2);

    // Synchronous: copy, then compute.
    Tick t0 = sim.now();
    co_await amc.copy(bytes);
    co_await node.cpu().compute(work);
    const Tick serial = sim.now() - t0;

    // Asynchronous: kick the copy, compute while the engine works.
    t0 = sim.now();
    AsyncMemcpy::Op op = co_await amc.submit(bytes);
    co_await node.cpu().compute(work);
    co_await amc.wait(op);
    const Tick overlapped = sim.now() - t0;

    std::printf("4 MB copy + 2 ms of computation:\n");
    std::printf("  serial     : %7.0f us\n", sim::toMicroseconds(serial));
    std::printf("  overlapped : %7.0f us  (%.0f%% of serial)\n\n",
                sim::toMicroseconds(overlapped),
                100.0 * static_cast<double>(overlapped.count()) /
                    static_cast<double>(serial.count()));
}

} // namespace

int
main()
{
    Simulation sim;
    net::Switch fabric(sim);
    core::Node node(sim, fabric,
                    core::NodeConfig::server(IoatConfig::enabled()));
    AsyncMemcpy amc(node.host());

    sim.spawn(demo(sim, node, amc));
    sim.run();

    std::printf("Offload profitability (pin both buffers + submit vs "
                "CPU copy), per SS7's caveat:\n");
    std::printf("  %-10s %-18s %-18s\n", "size", "cold buffers",
                "cache-hot buffers");
    for (std::size_t sz = 1024; sz <= sim::mib(1); sz *= 4) {
        std::printf("  %-10zu %-18s %-18s\n", sz,
                    amc.offloadProfitable(sz, 0.0) ? "offload" : "CPU copy",
                    amc.offloadProfitable(sz, 1.0) ? "offload"
                                                   : "CPU copy");
    }
    std::printf("\nBreakeven size (cold): %zu bytes\n",
                amc.breakevenBytes(0.0));
    return 0;
}
