/**
 * @file
 * Example: a PVFS deployment — metadata manager + six I/O daemons on
 * one node, compute processes on another — exercising the full client
 * API (create/lookup/stat, striped write, striped read).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/testbed.hh"
#include "pvfs/client.hh"
#include "pvfs/server.hh"
#include "simcore/simcore.hh"

using namespace ioat;
using core::IoatConfig;
using sim::Coro;
using sim::Simulation;

namespace {

Coro<void>
computeProcess(pvfs::PvfsClient &client, int id, double &read_mbps,
               Simulation &sim)
{
    co_await client.connect();

    // Create a 12 MB file (2 MB per I/O server) and write it.
    const pvfs::FileHandle h = co_await client.create(100 + id);
    const std::size_t bytes = 12 * 1024 * 1024;
    co_await client.write(h, 0, bytes);

    // Metadata round trip: the manager sees the new size.
    const std::uint64_t size = co_await client.fileSize(h);
    sim::simAssert(size == bytes, "size mismatch after write");

    // Time five full striped reads.
    const sim::Tick t0 = sim.now();
    for (int i = 0; i < 5; ++i)
        co_await client.read(h, 0, bytes);
    read_mbps = sim::throughputMBps(5 * bytes, sim.now() - t0);
}

void
runOnce(bool use_ioat)
{
    Simulation sim;
    core::TestbedConfig tb_cfg;
    tb_cfg.serverCount = 2;
    tb_cfg.serverConfig = core::NodeConfig::server(
        use_ioat ? IoatConfig::enabled() : IoatConfig::disabled());
    core::Testbed tb(sim, tb_cfg);

    pvfs::PvfsConfig cfg;
    pvfs::FsState fs;
    pvfs::MetadataManager mgr(tb.server(0), cfg, fs);
    mgr.start();

    std::vector<std::unique_ptr<pvfs::IodServer>> iods;
    std::vector<pvfs::DaemonAddr> addrs;
    for (unsigned i = 0; i < 6; ++i) {
        iods.push_back(
            std::make_unique<pvfs::IodServer>(tb.server(0), cfg, i));
        iods.back()->start();
        addrs.push_back({tb.server(0).id(), iods.back()->port()});
    }

    std::vector<std::unique_ptr<pvfs::PvfsClient>> clients;
    std::vector<double> mbps(3, 0.0);
    for (int c = 0; c < 3; ++c) {
        clients.push_back(std::make_unique<pvfs::PvfsClient>(
            tb.server(1), cfg,
            pvfs::DaemonAddr{tb.server(0).id(), cfg.mgrPort}, addrs));
        sim.spawn(computeProcess(*clients.back(), c, mbps[c], sim));
    }
    sim.run();

    double total = 0.0;
    for (double m : mbps)
        total += m;
    std::printf("  %-8s  aggregate read %6.0f MB/s   manager ops %llu"
                "   iod0 read %llu MB\n",
                use_ioat ? "I/OAT" : "non-I/OAT", total,
                static_cast<unsigned long long>(mgr.opsServed()),
                static_cast<unsigned long long>(iods[0]->bytesRead() >>
                                                20));
}

} // namespace

int
main()
{
    std::printf("PVFS example: 3 compute processes, 6 I/O daemons on "
                "ramfs, 1 metadata manager\n\n");
    runOnce(false);
    runOnce(true);
    std::printf("\nData moves directly between iods and compute "
                "processes; the manager only does metadata.\n");
    return 0;
}
