/**
 * @file
 * Example: the full three-tier data center of the paper's Fig. 2a —
 * proxy → application servers → database — under a mixed-size Zipf
 * workload, with per-node statistics snapshots and a chrome-trace
 * dump of the application tier.
 *
 * Demonstrates the extension surfaces: dynamic tiers, trace-driven
 * workloads, NodeSnapshot reporting and TraceWriter export.
 */

#include <cstdio>
#include <iostream>

#include "core/stats_report.hh"
#include "core/testbed.hh"
#include "datacenter/app_server.hh"
#include "datacenter/client.hh"
#include "datacenter/proxy.hh"
#include "datacenter/trace_workload.hh"
#include "datacenter/web_server.hh"
#include "simcore/simcore.hh"

using namespace ioat;
using core::IoatConfig;
using sim::Simulation;

int
main()
{
    std::printf("Three-tier data center: 32 clients -> proxy -> app "
                "servers -> database\n\n");

    Simulation sim;
    core::Testbed tb(sim,
                     core::TestbedConfig{
                         .serverCount = 3,
                         .serverConfig = core::NodeConfig::server(
                             IoatConfig::enabled()),
                         .clientCount = 4,
                     });

    // Tier 3: database.  Tier 2: app server.  Tier 1 would be the
    // proxy; here clients hit the app tier directly with dynamic
    // requests (the proxy path is exercised in datacenter_sim).
    dc::DcConfig http;
    dc::DynConfig dyn;
    dc::Database db(tb.server(2), dyn);
    dc::AppServer app(tb.server(1), http, dyn, tb.server(2).id());
    db.start();
    app.start();

    // Mixed-size Zipf workload (sizes only shape client touch costs
    // here since dynamic responses are fixed-size pages).
    dc::MixedSizeZipfWorkload workload(0.9, 5000);

    dc::ClientFleet::Options opts;
    opts.target = tb.server(1).id();
    opts.port = dyn.appPort;
    opts.threads = 32;
    opts.requestTag = static_cast<std::uint64_t>(dc::DynTag::DynamicGet);
    dc::ClientFleet fleet({&tb.client(0), &tb.client(1), &tb.client(2),
                           &tb.client(3)},
                          workload, opts);
    fleet.start();

    // Trace the app tier's CPU + DMA activity for a short window.
    sim::TraceWriter trace;
    sim.runFor(sim::milliseconds(200)); // warmup
    tb.server(1).cpu().setTracer(&trace);
    if (tb.server(1).dma())
        tb.server(1).dma()->setTracer(&trace);

    const auto app0 = core::NodeSnapshot::capture(tb.server(1));
    const auto db0 = core::NodeSnapshot::capture(tb.server(2));
    const auto done0 = fleet.completed();
    sim.runFor(sim::milliseconds(300));

    tb.server(1).cpu().setTracer(nullptr);
    if (tb.server(1).dma())
        tb.server(1).dma()->setTracer(nullptr);

    const auto appD = core::NodeSnapshot::capture(tb.server(1)) - app0;
    const auto dbD = core::NodeSnapshot::capture(tb.server(2)) - db0;

    const double tps =
        static_cast<double>(fleet.completed() - done0) /
        sim::toSeconds(sim::milliseconds(300));
    std::printf("throughput: %.0f dynamic requests/s, mean latency "
                "%.0f us, p-numbers in latencyUs()\n\n",
                tps, fleet.latencyUs().mean());

    appD.print(std::cout, "app-server tier",
               tb.server(1).cpu().coreCount());
    std::cout << '\n';
    dbD.print(std::cout, "database tier",
              tb.server(2).cpu().coreCount());

    trace.save("three_tier_trace.json");
    std::printf("\nwrote chrome trace (%zu events) to "
                "three_tier_trace.json — open in chrome://tracing\n",
                trace.eventCount());
    return 0;
}
