/**
 * @file
 * Quickstart: build a two-node testbed, run a bandwidth test with
 * I/OAT off and on, and print throughput + receiver CPU.
 *
 * This is the smallest end-to-end use of the library: nodes, the
 * sockets API, coroutine tasks and the measurement pattern.
 */

#include <cstdio>

#include "core/node.hh"
#include "core/testbed.hh"
#include "simcore/simcore.hh"
#include "sock/socket.hh"

using namespace ioat;
using core::IoatConfig;
using core::Node;
using core::NodeConfig;
using sim::Coro;
using sim::Simulation;

namespace {

/** Receiver: accept one connection and drain it forever. */
Coro<void>
sinkTask(Node &server)
{
    sock::Listener listener(server.transport(), 5001);
    sock::Socket conn = co_await listener.accept();
    for (;;) {
        if (co_await conn.recv(sim::mib(1)) == 0)
            co_return;
    }
}

/** Sender: connect and stream 64 KB chunks forever. */
Coro<void>
sourceTask(Node &client, net::NodeId server)
{
    sock::Socket conn =
        co_await client.transport().connect(server, 5001);
    for (;;)
        co_await conn.sendAll(sim::kib(64));
}

void
runOnce(bool use_ioat)
{
    Simulation sim;
    net::Switch fabric(sim);

    const IoatConfig features =
        use_ioat ? IoatConfig::enabled() : IoatConfig::disabled();
    Node client(sim, fabric, NodeConfig::server(features, /*ports=*/1));
    Node server(sim, fabric, NodeConfig::server(features, /*ports=*/1));

    sim.spawn(sinkTask(server));
    sim.spawn(sourceTask(client, server.id()));

    // Warm up, then measure a 500 ms window.
    sim.runFor(sim::milliseconds(100));
    server.cpu().resetUtilizationWindow();
    const auto rx0 = server.stack().rxPayloadBytes();
    const auto t0 = sim.now();
    sim.runFor(sim::milliseconds(500));

    const double mbps = sim::throughputMbps(
        server.stack().rxPayloadBytes() - rx0, sim.now() - t0);
    std::printf("  %-8s  %7.0f Mbps   receiver CPU %5.1f%%   "
                "(%llu copies offloaded to the DMA engine)\n",
                use_ioat ? "I/OAT" : "non-I/OAT", mbps,
                server.cpu().utilization() * 100.0,
                static_cast<unsigned long long>(
                    server.stack().dmaOffloadedCopies()));
}

} // namespace

int
main()
{
    std::printf("Quickstart: 1-port GigE stream between two Testbed-1 "
                "nodes\n\n");
    runOnce(false);
    runOnce(true);
    std::printf("\nSame wire throughput, lower receiver CPU: the "
                "paper's headline effect.\n");
    return 0;
}
