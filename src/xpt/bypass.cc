/**
 * @file
 * BypassStack / Endpoint implementation.
 *
 * Structurally a sibling of tcp/stack.cc's reliable mode with the
 * kernel removed: no syscall or IRQ costs, no copies, and the RX
 * path is a per-queue busy-poll pass instead of a softirq.  Protocol
 * state machines (handshake dedup, go-back-N, cumulative credit) are
 * kept identical so the two transports fail and recover the same way
 * under the same injected faults.
 */

#include "xpt/bypass.hh"

#include <algorithm>

#include "simcore/assert.hh"
#include "simcore/timeout.hh"

namespace ioat::xpt {

// --------------------------------------------------------------------
// Endpoint
// --------------------------------------------------------------------

Endpoint::Endpoint(Key, BypassStack &stack, std::uint64_t local_token)
    : stack_(stack), localToken_(local_token),
      establishedEvt_(stack.host_.sim),
      creditAvail_(stack.host_.sim),
      rxReady_(stack.host_.sim),
      retransQ_(stack.txSegPool_),
      txActivity_(stack.host_.sim),
      ackProgress_(stack.host_.sim)
{}

sim::Simulation &
Endpoint::simulation()
{
    return stack_.host_.sim;
}

Coro<void>
Endpoint::send(std::size_t bytes, sock::SendOptions opts,
               const sock::MsgMeta *meta)
{
    if (aborted_)
        co_return; // typed failure visible through aborted()
    sim::simAssert(established_, "send on unestablished endpoint");
    sim::simAssert(!localClosed_, "send after close");
    auto &host = stack_.host_;
    const BypassConfig &cfg = stack_.cfg_;
    sim::RequestTracer *rt = host.sim.requestTracer();
    const bool traced = rt && opts.trace.valid();

    std::size_t remaining = bytes;
    while (remaining > 0) {
        const std::size_t seg =
            std::min({remaining, cfg.maxSegment, peerBufPool_});

        const Tick wait_t0 = host.sim.now();

        // Credit against the peer's registered buffer pool.  A lost
        // credit return must not wedge the window: probe for a fresh
        // cumulative ack while starved.
        if (credit_ < seg && !aborted_)
            stack_.creditStalls_.inc();
        while (credit_ < seg && !aborted_) {
            const bool woke = co_await sim::waitWithTimeout(
                host.sim, creditAvail_, cfg.persistTimeout);
            if (!woke && credit_ < seg && !aborted_) {
                stack_.winProbes_.inc();
                stack_.sendControl(remoteNode_, flow_,
                                   BypassKind::WinProbe, remoteToken_,
                                   0);
            }
        }
        if (aborted_)
            co_return;
        credit_ -= seg;
        if (traced && host.sim.now() > wait_t0)
            rt->record(opts.trace, "tx.credit-wait",
                       sim::CostCat::queueWait, wait_t0, host.sim.now());

        // Zero-copy: the NIC DMA-reads the application buffer via the
        // descriptor chain — only descriptor-build CPU work here.
        const std::uint32_t frames =
            stack_.nic_.framesFor(sim::Bytes{seg});
        Tick cost = cfg.txDescCost;
        if (!stack_.nic_.config().tso)
            cost += cfg.txPerFrame * frames;
        const Tick seg_t0 = host.sim.now();
        co_await host.cpu.compute(cost);
        if (traced)
            rt->recordComputeSplit(
                opts.trace, seg_t0, host.sim.now(),
                {{"tx.desc", sim::CostCat::cpu, cost}});

        // NIC TX DMA reads the segment from application memory.
        host.bus.consume(sim::Bytes{seg});

        Burst b;
        b.dst = remoteNode_;
        b.flow = flow_;
        b.wireBytes = static_cast<std::uint32_t>(
            stack_.nic_.wireBytesFor(sim::Bytes{seg}).count());
        b.frames = frames;
        b.payloadBytes = static_cast<std::uint32_t>(seg);
        b.kind = static_cast<std::uint32_t>(BypassKind::Data);
        b.connToken = remoteToken_;
        b.arg = sndNxt_; // stream offset of the segment's first byte
        if (traced)
            b.trace = opts.trace.pack();
        if (meta && remaining == bytes) { // first segment carries meta
            b.hasMeta = true;
            for (int i = 0; i < net::kBurstMetaWords; ++i)
                b.meta[i] = meta->w[i];
        }
        XptTxSegment txSeg;
        txSeg.seq = sndNxt_;
        txSeg.payload = static_cast<std::uint32_t>(seg);
        txSeg.hasMeta = b.hasMeta;
        txSeg.trace = b.trace;
        for (int i = 0; i < net::kBurstMetaWords; ++i)
            txSeg.meta[i] = b.meta[i];
        retransQ_.push_back(txSeg);
        sndNxt_ += seg;
        txActivity_.trigger(); // arm the RTO loop
        stack_.nic_.transmit(b);

        bytesSent_ += seg;
        stack_.txPayload_.inc(seg);
        remaining -= seg;
    }
}

Coro<std::size_t>
Endpoint::recv(std::size_t max_bytes, sim::TraceContext ctx)
{
    if (aborted_ && rxBuffered_ == 0)
        co_return 0; // failed endpoint reads as EOF
    sim::simAssert(established_, "recv on unestablished endpoint");
    sim::simAssert(max_bytes > 0, "recv of zero bytes");
    auto &host = stack_.host_;
    const BypassConfig &cfg = stack_.cfg_;
    sim::RequestTracer *rt = host.sim.requestTracer();

    // Library call, not a syscall: check the reassembly state, maybe
    // park on the pool's ready event.
    const Tick lib_t0 = host.sim.now();
    co_await host.cpu.compute(cfg.libRecvCost);
    const Tick lib_t1 = host.sim.now();

    while (rxBuffered_ == 0 && !peerClosed_) {
        rxWaiting_ = true;
        co_await rxReady_.wait();
    }
    rxWaiting_ = false;

    const sim::TraceContext ectx = ctx.valid() ? ctx : rxCtx_;
    const bool traced = rt && ectx.valid();
    if (traced)
        rt->recordComputeSplit(
            ectx, lib_t0, lib_t1,
            {{"rx.lib-recv", sim::CostCat::poll, cfg.libRecvCost}});

    if (rxBuffered_ == 0)
        co_return 0; // orderly EOF

    // Zero-copy: the application consumes the pool buffers in place;
    // no kernel→user copy is charged here.
    const std::size_t n = std::min(max_bytes, rxBuffered_);
    rxBuffered_ -= n;

    bytesReceived_ += n;
    stack_.rxPayload_.inc(n);
    drainedTotal_ += n;

    if (aborted_)
        co_return n; // no point acking a dead peer

    // Return pool credit: cumulative drained total, so a lost return
    // only delays (never loses) credit.
    const Tick ack_t0 = host.sim.now();
    co_await host.cpu.compute(cfg.ackGenCost);
    if (traced)
        rt->recordComputeSplit(
            ectx, ack_t0, host.sim.now(),
            {{"rx.ackgen", sim::CostCat::poll, cfg.ackGenCost}});
    stack_.sendControl(remoteNode_, flow_, BypassKind::Ack, remoteToken_,
                       drainedTotal_);
    co_return n;
}

Coro<std::size_t>
Endpoint::recvAll(std::size_t bytes, sim::TraceContext ctx)
{
    std::size_t got = 0;
    while (got < bytes) {
        const std::size_t n = co_await recv(bytes - got, ctx);
        if (n == 0)
            break;
        got += n;
    }
    co_return got;
}

sock::MsgMeta
Endpoint::popMeta()
{
    sim::simAssert(!metaQueue_.empty(), "popMeta on empty meta queue");
    sock::MsgMeta m = metaQueue_.front();
    metaQueue_.pop_front();
    return m;
}

void
Endpoint::close()
{
    if (localClosed_ || !established_ || aborted_)
        return;
    localClosed_ = true;
    stack_.noteFlowFinished(*this);
    stack_.sendControl(remoteNode_, flow_, BypassKind::Fin, remoteToken_,
                       0);
    txActivity_.trigger(); // let the RTO loop notice and wind down
}

void
Endpoint::abortLocal()
{
    stack_.abortEndpoint(*this);
}

// --------------------------------------------------------------------
// Listener
// --------------------------------------------------------------------

Coro<Endpoint *>
Listener::accept()
{
    auto ep = co_await pending_.recv();
    sim::simAssert(ep.has_value(), "listener closed");
    co_return *ep;
}

// --------------------------------------------------------------------
// BypassStack
// --------------------------------------------------------------------

BypassStack::BypassStack(const tcp::Host &host, nic::Nic &nic,
                         const BypassConfig &cfg)
    : host_(host), nic_(nic), cfg_(cfg)
{
    // The registered pool is pinned and continuously reused; it
    // occupies cache like any other hot working set.
    bufPool_ = host_.cache.addFootprint("xpt.bufPool", cfg_.bufPoolBytes);
    // Take over RX delivery from whatever stack registered earlier:
    // a bypass node maps the queues into the application.
    nic_.setRxHandler([this](unsigned queue, std::vector<Burst> &&b) {
        onRxBatch(queue, std::move(b));
    });
    for (unsigned q = 0; q < nic_.rxQueueCount(); ++q) {
        rxChannels_.push_back(
            std::make_unique<sim::Channel<std::vector<Burst>>>(
                host_.sim));
        host_.sim.spawn(pollLoop(q));
    }
}

BypassStack::~BypassStack()
{
    host_.cache.removeFootprint(bufPool_);
}

Endpoint *
BypassStack::newEndpoint()
{
    const auto token = static_cast<std::uint64_t>(endpoints_.size());
    endpoints_.push_back(
        std::make_unique<Endpoint>(Endpoint::Key{}, *this, token));
    endpoints_.back()->openedAt_ = host_.sim.now();
    host_.sim.spawn(rtoLoop(token));
    return endpoints_.back().get();
}

Endpoint *
BypassStack::endpointFor(std::uint64_t token)
{
    sim::simAssert(token < endpoints_.size(), "bad endpoint token");
    return endpoints_[token].get();
}

void
BypassStack::crashReset()
{
    for (auto &e : endpoints_)
        if (!e->aborted_)
            abortEndpoint(*e);
    synSeen_.clear();
}

void
BypassStack::abortEndpoint(Endpoint &e)
{
    if (e.aborted_)
        return;
    e.aborted_ = true;
    aborts_.inc();
    noteFlowFinished(e);
    e.peerClosed_ = true; // recv() drains what's left, then EOF
    e.establishedEvt_.trigger();
    e.creditAvail_.pulse();
    e.rxReady_.pulse();
    e.ackProgress_.trigger();
    e.txActivity_.trigger();
}

Coro<void>
BypassStack::rtoLoop(std::uint64_t token)
{
    Endpoint *e = endpointFor(token);
    Tick rto = cfg_.rtoInitial;
    unsigned attempts = 0;
    for (;;) {
        if (e->aborted_)
            co_return;
        if (e->retransQ_.empty()) {
            if (e->localClosed_)
                co_return; // closed and fully acked: wind down
            e->txActivity_.reset();
            if (e->retransQ_.empty() && !e->localClosed_ && !e->aborted_)
                co_await e->txActivity_.wait();
            rto = cfg_.rtoInitial;
            attempts = 0;
            continue;
        }
        const std::uint64_t una = e->sndUna_;
        e->ackProgress_.reset();
        co_await sim::waitWithTimeout(host_.sim, e->ackProgress_, rto);
        if (e->aborted_)
            co_return;
        if (e->sndUna_ > una || e->retransQ_.empty()) {
            rto = cfg_.rtoInitial;
            attempts = 0;
            continue;
        }
        if (++attempts > cfg_.maxRetransmits) {
            abortEndpoint(*e);
            co_return;
        }
        retransmits_.inc();
        ++e->rtoFires_;
        ++e->retrans_;
        host_.sim.spawn(retransmitTask(token, e->retransQ_.front()));
        rto = std::min(rto * 2, cfg_.rtoMax);
    }
}

Coro<void>
BypassStack::retransmitTask(std::uint64_t token, XptTxSegment seg)
{
    Endpoint *e = endpointFor(token);
    const Tick rtx_t0 = host_.sim.now();
    co_await host_.cpu.compute(cfg_.retransmitCost + cfg_.txDescCost);
    if (e->aborted_)
        co_return;
    if (sim::RequestTracer *rt = host_.sim.requestTracer();
        rt && seg.trace != 0)
        rt->record(sim::TraceContext::unpack(seg.trace),
                   "xpt.retransmit", sim::CostCat::retx, rtx_t0,
                   host_.sim.now());
    host_.bus.consume(sim::Bytes{seg.payload});
    Burst b;
    b.dst = e->remoteNode_;
    b.flow = e->flow_;
    b.wireBytes = static_cast<std::uint32_t>(
        nic_.wireBytesFor(sim::Bytes{seg.payload}).count());
    b.frames = nic_.framesFor(sim::Bytes{seg.payload});
    b.payloadBytes = seg.payload;
    b.kind = static_cast<std::uint32_t>(BypassKind::Data);
    b.connToken = e->remoteToken_;
    b.arg = seg.seq;
    b.trace = seg.trace;
    if (seg.hasMeta) {
        b.hasMeta = true;
        for (int i = 0; i < net::kBurstMetaWords; ++i)
            b.meta[i] = seg.meta[i];
    }
    nic_.transmit(b);
}

Coro<Endpoint *>
BypassStack::connect(NodeId remote, std::uint16_t port, Tick timeout)
{
    Endpoint *e = newEndpoint();
    e->remoteNode_ = remote;
    // Offset the flow hash so a node running both stacks during a
    // migration can't collide flows with its own TCP side.
    e->flow_ = nodeId() * 7919 + 3571 + flowCounter_++;

    co_await host_.cpu.compute(cfg_.connSetupCost);

    // The SYN advertises our buffer pool; the peer's send credit is
    // bounded by it (and vice versa via the SYN-ACK).  Always retried
    // with backoff: loss handling is the library's job.
    Tick rto = timeout > Tick{0} ? timeout : cfg_.synRetryTimeout;
    const unsigned tries = timeout > Tick{0} ? 1 : cfg_.maxSynRetries;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0)
            synRetries_.inc();
        sendControl(remote, e->flow_, BypassKind::Syn, e->localToken_,
                    port, cfg_.bufPoolBytes);
        co_await sim::waitWithTimeout(host_.sim, e->establishedEvt_, rto);
        if (e->established_ || e->aborted_)
            break;
        rto = std::min(rto * 2, cfg_.rtoMax);
    }
    if (!e->established_ && !e->aborted_)
        abortEndpoint(*e);
    co_return e;
}

Listener &
BypassStack::listen(std::uint16_t port)
{
    auto it = listeners_.find(port);
    if (it == listeners_.end()) {
        it = listeners_
                 .emplace(port, std::make_unique<Listener>(
                                    Listener::Key{}, host_.sim))
                 .first;
    }
    return *it->second;
}

void
BypassStack::sendControl(NodeId dst, std::uint64_t flow, BypassKind kind,
                         std::uint64_t conn_token, std::uint64_t arg,
                         std::uint64_t handshake_pool)
{
    Burst b;
    b.dst = dst;
    b.flow = flow;
    b.wireBytes = static_cast<std::uint32_t>(
        nic_.wireBytesFor(sim::Bytes{0}).count());
    b.frames = 1;
    b.payloadBytes = 0;
    b.kind = static_cast<std::uint32_t>(kind);
    b.connToken = conn_token;
    b.arg = arg;
    if (handshake_pool != 0) {
        b.hasMeta = true;
        b.meta[0] = handshake_pool;
    }
    nic_.transmit(b);
}

int
BypassStack::pollCoreFor(unsigned queue) const
{
    // Each queue's poll loop is pinned to one core; queues spread
    // round-robin.  Unlike the IRQ world there is no adapter-level
    // sharing — the mapping is a pure software choice.
    return static_cast<int>(queue % host_.cpu.coreCount());
}

void
BypassStack::onRxBatch(unsigned queue, std::vector<Burst> &&bursts)
{
    sim::simAssert(queue < rxChannels_.size(), "bad RX queue");
    rxChannels_[queue]->push(std::move(bursts));
}

Coro<void>
BypassStack::pollLoop(unsigned queue)
{
    // Busy-poll service loop.  Empty spins cost nothing in simulated
    // time (they would reschedule forever); the poll core's CPU
    // charge is taken per serviced pass in processBatch, which is
    // what the utilization window observes.
    for (;;) {
        auto batch = co_await rxChannels_[queue]->recv();
        if (!batch.has_value())
            co_return;
        co_await processBatch(queue, std::move(*batch));
    }
}

Coro<void>
BypassStack::processBatch(unsigned queue, std::vector<Burst> bursts)
{
    const int core = pollCoreFor(queue);
    pollPasses_.inc();

    // NIC receive DMA deposited all of this into the buffer pool.
    std::size_t wire_total = 0;
    for (const auto &b : bursts) {
        sim::simAssert(b.kind > kBypassKindBase,
                       "foreign burst kind on bypass stack");
        wire_total += b.wireBytes;
    }
    host_.bus.consume(sim::Bytes{wire_total});
    sim::RequestTracer *rt = host_.sim.requestTracer();

    /** Per-traced-burst attribution shares, anchored after compute. */
    struct RxAttr
    {
        sim::TraceContext ctx;
        Tick off;  ///< cost accumulated before this burst
        Tick desc; ///< descriptor check/recycle share
        Tick lib;  ///< demux/reassembly share
        Tick ack;  ///< cumulative-ack share
    };
    std::vector<RxAttr> attrs;

    // ---- pass 1: accumulate the CPU cost of this poll pass ----
    Tick cost = cfg_.rxPollEntry;
    for (const auto &b : bursts) {
        const Tick burst_off = cost;
        const Tick desc = cfg_.rxPerFrame * b.frames;
        cost += desc;
        switch (static_cast<BypassKind>(b.kind)) {
          case BypassKind::Data: {
            cost += cfg_.rxPerBurst;
            const Tick ack = cfg_.ackGenCost; // cumulative DataAck
            cost += ack;
            rxBursts_.inc();
            if (rt && b.trace != 0) {
                RxAttr a;
                a.ctx = sim::TraceContext::unpack(b.trace);
                a.off = burst_off;
                a.desc = desc;
                a.lib = cfg_.rxPerBurst;
                a.ack = ack;
                attrs.push_back(a);
            }
            break;
          }
          case BypassKind::Syn:
            cost += cfg_.connSetupCost;
            break;
          case BypassKind::SynAck:
          case BypassKind::Ack:
          case BypassKind::Fin:
          case BypassKind::DataAck:
          case BypassKind::WinProbe:
            cost += cfg_.rxPerBurst;
            break;
        }
    }

    // The pass runs uninterrupted at the head of its pinned core —
    // the poll core does nothing else — which keeps the busy interval
    // contiguous for exact trace attribution (as the softirq does).
    co_await host_.cpu.compute(cost, core, /*highPriority=*/true);

    if (rt && !attrs.empty()) {
        // Shares lie sequentially inside [now - cost, now]; the poll
        // entry and control bursts stay unattributed (residue).
        const Tick base = host_.sim.now() - cost;
        for (const auto &a : attrs)
            rt->recordComponents(
                a.ctx, base + a.off, core,
                {{"rx.desc", sim::CostCat::poll, a.desc},
                 {"rx.lib", sim::CostCat::poll, a.lib},
                 {"rx.ack", sim::CostCat::poll, a.ack}});
    }

    // ---- pass 2: apply protocol effects ----
    for (const auto &b : bursts) {
        switch (static_cast<BypassKind>(b.kind)) {
          case BypassKind::Data: {
            Endpoint *e = endpointFor(b.connToken);
            if (e->aborted_)
                break; // late segment for a dead endpoint
            // Go-back-N receiver: accept only the in-order segment;
            // every arrival re-acks the cumulative high-water mark.
            const std::uint64_t seq = b.arg;
            if (seq == e->rcvNxt_) {
                e->rcvNxt_ += b.payloadBytes;
                e->rxBuffered_ += b.payloadBytes;
                if (b.trace != 0)
                    e->rxCtx_ = sim::TraceContext::unpack(b.trace);
                if (b.hasMeta) {
                    sock::MsgMeta m;
                    for (int i = 0; i < net::kBurstMetaWords; ++i)
                        m.w[i] = b.meta[i];
                    e->metaQueue_.push_back(m);
                }
                e->rxReady_.pulse();
            } else if (seq < e->rcvNxt_) {
                rxDups_.inc(); // retransmit of delivered data
            } else {
                rxOoo_.inc(); // gap: discard, sender will resend
            }
            sendControl(b.src, b.flow, BypassKind::DataAck,
                        e->remoteToken_, e->rcvNxt_);
            break;
          }
          case BypassKind::Ack: {
            Endpoint *e = endpointFor(b.connToken);
            if (e->aborted_)
                break;
            // Cumulative credit: arg is the peer's drained total, so
            // a lost return is healed by any later one.
            if (b.arg > e->peerDrained_) {
                e->peerDrained_ = b.arg;
                const std::uint64_t inflight =
                    e->sndNxt_ - e->peerDrained_;
                e->credit_ = e->peerBufPool_ > inflight
                                 ? e->peerBufPool_ - inflight
                                 : 0;
                e->creditAvail_.pulse();
            }
            break;
          }
          case BypassKind::DataAck: {
            Endpoint *e = endpointFor(b.connToken);
            if (e->aborted_)
                break;
            if (b.arg > e->sndUna_) {
                e->sndUna_ = b.arg;
                while (!e->retransQ_.empty() &&
                       e->retransQ_.front().seq +
                               e->retransQ_.front().payload <=
                           b.arg)
                    e->retransQ_.pop_front();
                e->ackProgress_.trigger();
            }
            break;
          }
          case BypassKind::WinProbe: {
            Endpoint *e = endpointFor(b.connToken);
            if (e->aborted_)
                break;
            sendControl(b.src, b.flow, BypassKind::Ack, e->remoteToken_,
                        e->drainedTotal_);
            break;
          }
          case BypassKind::Syn: {
            const auto port = static_cast<std::uint16_t>(b.arg);
            auto it = listeners_.find(port);
            if (it == listeners_.end()) {
                sim::fatal("bypass connection attempt to port with no "
                           "listener");
            }
            // A retransmitted SYN must not spawn a second server-side
            // endpoint: resend the (possibly lost) SYN-ACK instead.
            const auto key = std::make_pair(
                static_cast<std::uint64_t>(b.src), b.flow);
            auto seen = synSeen_.find(key);
            if (seen != synSeen_.end()) {
                Endpoint *e = endpointFor(seen->second);
                if (!e->aborted_)
                    sendControl(b.src, b.flow, BypassKind::SynAck,
                                b.connToken, e->localToken_,
                                cfg_.bufPoolBytes);
                break;
            }
            Endpoint *e = newEndpoint();
            synSeen_[key] = e->localToken_;
            e->remoteNode_ = b.src;
            e->remoteToken_ = b.connToken;
            e->flow_ = b.flow;
            e->peerBufPool_ = b.hasMeta ? b.meta[0] : cfg_.bufPoolBytes;
            e->credit_ = e->peerBufPool_;
            e->established_ = true;
            e->establishedAt_ = host_.sim.now();
            sendControl(b.src, b.flow, BypassKind::SynAck, b.connToken,
                        e->localToken_, cfg_.bufPoolBytes);
            it->second->pending_.push(e);
            break;
          }
          case BypassKind::SynAck: {
            Endpoint *e = endpointFor(b.connToken);
            if (e->established_ || e->aborted_)
                break; // duplicate SYN-ACK, or we already gave up
            e->remoteToken_ = b.arg;
            e->peerBufPool_ = b.hasMeta ? b.meta[0] : cfg_.bufPoolBytes;
            e->credit_ = e->peerBufPool_;
            e->established_ = true;
            e->establishedAt_ = host_.sim.now();
            handshakeHist_.sample(
                (e->establishedAt_ - e->openedAt_).count());
            e->establishedEvt_.trigger();
            break;
          }
          case BypassKind::Fin: {
            Endpoint *e = endpointFor(b.connToken);
            e->peerClosed_ = true;
            e->rxReady_.pulse();
            break;
          }
        }
    }

    bursts.clear();
    nic_.recycleBatch(std::move(bursts));
}

void
BypassStack::noteFlowFinished(Endpoint &e)
{
    if (!e.established_ || e.finishedAt_ > Tick{0})
        return;
    e.finishedAt_ = host_.sim.now();
    lifetimeHist_.sample((e.finishedAt_ - e.establishedAt_).count());
}

void
BypassStack::instrument(sim::telemetry::Registry &reg)
{
    reg.counter("txPayloadBytes", txPayload_, "payload bytes sent");
    reg.counter("rxPayloadBytes", rxPayload_,
                "payload bytes delivered to apps");
    reg.counter("rxBursts", rxBursts_, "data bursts received");
    reg.counter("pollPasses", pollPasses_,
                "poll passes that serviced descriptors");
    reg.counter("creditStalls", creditStalls_,
                "sends stalled on exhausted pool credit");
    reg.counter("retransmits", retransmits_,
                "segments resent by the RTO path");
    reg.counter("rxDuplicateSegments", rxDups_,
                "already-delivered segments received");
    reg.counter("rxOutOfOrderDrops", rxOoo_, "go-back-N discards");
    reg.counter("windowProbes", winProbes_,
                "persist probes while credit-starved");
    reg.counter("synRetries", synRetries_, "SYN retransmissions");
    reg.counter("abortedConnections", aborts_,
                "endpoints that gave up after retry exhaustion");
    reg.scalar(
        "endpoints",
        [this] { return static_cast<double>(endpoints_.size()); },
        "endpoints created");
    reg.probe(
        "creditBytes", sim::telemetry::ProbeKind::gauge,
        [this] {
            std::uint64_t n = 0;
            for (const auto &e : endpoints_)
                n += e->credit_;
            return static_cast<double>(n);
        },
        "unused registered-pool send credit, all endpoints");
    reg.histogram("handshakeTicks", handshakeHist_,
                  "active-open handshake latency (ticks)");
    reg.histogram("flowLifetimeTicks", lifetimeHist_,
                  "established -> FIN/abort (ticks)");
    reg.flows("flows", [this] {
        std::vector<sim::telemetry::FlowSample> out;
        out.reserve(endpoints_.size());
        for (const auto &e : endpoints_) {
            sim::telemetry::FlowSample f;
            f.flow = e->flow();
            f.bytesSent = e->bytesSent();
            f.bytesReceived = e->bytesReceived();
            f.retransmits = e->flowRetransmits();
            f.rtoFires = e->rtoFires();
            f.handshakeLatency = e->handshakeLatency();
            f.finLatency = e->finLatency();
            f.open = e->usable();
            out.push_back(f);
        }
        return out;
    });
}

} // namespace ioat::xpt
