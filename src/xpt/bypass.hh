/**
 * @file
 * User-space polled kernel-bypass transport (the path that won
 * historically: DPDK/RDMA-style NIC queue mapping, no kernel socket
 * layer).  This header is the xpt/ *interface*: `sock/` may include
 * it and nothing else from this directory.
 *
 * What the model keeps and what it drops, relative to tcp/stack.hh:
 *
 *  - **No syscalls, no interrupts.**  The NIC RX/TX queues are mapped
 *    into the application; a busy-poll loop pinned per RX queue
 *    notices completed descriptors.  Each poll pass is charged to the
 *    CPU through the existing `cpu.compute()` slicing (a small poll
 *    entry plus per-descriptor work), replacing the kernel's IRQ
 *    entry + softirq + syscall costs.  Empty poll spins are not
 *    simulated as events — the poll core's cost is charged per
 *    serviced batch, which is the steady-state approximation the
 *    gem5 kernel-bypass study makes too.
 *
 *  - **Zero-copy.**  Payload lands in a registered buffer pool via
 *    NIC DMA and the application reads it in place: recv() charges no
 *    kernel→user copy, send() no user→kernel copy.  Only the bus
 *    bandwidth of the NIC DMA itself is consumed.
 *
 *  - **Credit-based flow control** against the peer's registered
 *    buffer pool (`BypassConfig::bufPoolBytes`), advertised during
 *    the handshake exactly like the TCP socket buffer: a sender may
 *    have at most that many bytes outstanding, and credit returns
 *    when the receiving application drains bytes.
 *
 *  - **Loss handling lives in the user-space library.**  Every
 *    endpoint runs sequence/cumulative-ack + go-back-N retransmission
 *    with an RTO timer (the reliable-mode subset of tcp/stack.cc), so
 *    `FaultInjector` drops at NIC/link sites are recovered, not
 *    wedged.  There is no unreliable mode: a transport without a
 *    kernel has nobody else to do it.
 *
 * Burst kinds are numbered from 101 so a misrouted burst from the TCP
 * stack (kinds 1..7) is caught by an assert instead of being
 * misinterpreted.
 */

#ifndef IOAT_XPT_BYPASS_HH
#define IOAT_XPT_BYPASS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/burst.hh"
#include "nic/nic.hh"
#include "simcore/channel.hh"
#include "simcore/coro.hh"
#include "simcore/pool.hh"
#include "simcore/reqtrace.hh"
#include "simcore/stats.hh"
#include "simcore/sync.hh"
#include "simcore/telemetry/histogram.hh"
#include "simcore/telemetry/registry.hh"
#include "sock/types.hh"
#include "tcp/host.hh"

namespace ioat::xpt {

using net::Burst;
using net::NodeId;
using sim::Coro;
using sim::Tick;

class BypassStack;

/** Transport-level packet types (disjoint from tcp::BurstKind). */
enum class BypassKind : std::uint32_t {
    Syn = 101,
    SynAck = 102,
    Data = 103,
    Ack = 104,      ///< credit return (cumulative drained bytes)
    Fin = 105,
    DataAck = 106,  ///< cumulative sequence ack
    WinProbe = 107, ///< persist probe re-soliciting a credit return
};

/** First burst-kind value owned by this transport. */
inline constexpr std::uint32_t kBypassKindBase = 100;

/**
 * Library configuration and CPU cost table.  The costs contrast with
 * TcpConfig's: no syscall entry/exit, no IRQ entry, no copies — just
 * descriptor work and the poll loop.  Values follow published
 * user-space stack measurements (a few hundred ns per descriptor on
 * 2006-era cores).
 */
struct BypassConfig
{
    /** @name Flow control and segmentation
     *  @{ */
    /** Registered receive buffer pool = flow-control credit. */
    std::size_t bufPoolBytes = 256 * 1024;
    /** Largest segment handed to the NIC in one descriptor chain. */
    std::size_t maxSegment = 64 * 1024;
    /** @} */

    /** @name Sender-side CPU costs (library, not kernel)
     *  @{ */
    /** Build a TX descriptor chain + doorbell write, per segment. */
    Tick txDescCost = sim::nanoseconds(250);
    /** Per-frame descriptor slot work when the NIC lacks TSO. */
    Tick txPerFrame = sim::nanoseconds(100);
    /** @} */

    /** @name Receiver-side CPU costs (the busy-poll loop)
     *  @{ */
    /** Poll-pass entry: ring pointer check + prefetch. */
    Tick rxPollEntry = sim::nanoseconds(100);
    /** Per-frame RX descriptor check + buffer recycle. */
    Tick rxPerFrame = sim::nanoseconds(150);
    /** Per-burst library demux/reassembly (flow lookup, seq check). */
    Tick rxPerBurst = sim::nanoseconds(200);
    /** recv() call into the library (no syscall). */
    Tick libRecvCost = sim::nanoseconds(150);
    /** Building and sending a credit-return/ack descriptor. */
    Tick ackGenCost = sim::nanoseconds(100);
    /** @} */

    /** @name Connection management
     *  @{ */
    /** Handshake CPU cost per endpoint (queue-pair setup). */
    Tick connSetupCost = sim::microseconds(1);
    /** @} */

    /** @name Loss tolerance (always on — see file header)
     *  @{ */
    Tick rtoInitial = sim::milliseconds(3);
    Tick rtoMax = sim::milliseconds(200);
    /** RTO expiries without ack progress before the endpoint aborts. */
    unsigned maxRetransmits = 8;
    /** Probe period while blocked on (possibly lost) credit returns. */
    Tick persistTimeout = sim::milliseconds(10);
    /** Initial SYN retransmission timeout (also backed off). */
    Tick synRetryTimeout = sim::milliseconds(5);
    /** SYN (re)transmissions before an active open aborts. */
    unsigned maxSynRetries = 5;
    /** CPU cost to rebuild and requeue one retransmitted segment. */
    Tick retransmitCost = sim::nanoseconds(1000);
    /** @} */
};

/** Sender-side copy of one in-flight segment (see tcp::TxSegment). */
struct XptTxSegment
{
    std::uint64_t seq = 0;
    std::uint32_t payload = 0;
    bool hasMeta = false;
    std::uint64_t meta[net::kBurstMetaWords] = {};
    std::uint64_t trace = 0;
};

/**
 * One established bypass endpoint (single writer, single reader).
 *
 * Owned by its BypassStack; applications hold non-owning pointers
 * (normally wrapped in a sock::Socket).  The data-path members return
 * the same Coro types as tcp::Connection's, which is what lets the
 * facade forward without a wrapper frame.
 */
class Endpoint
{
  public:
    /** Blocking send; zero-copy by construction (opts.zeroCopy is
     *  ignored — there is no kernel buffer to copy into). */
    Coro<void> send(std::size_t bytes, sock::SendOptions opts = {},
                    const sock::MsgMeta *meta = nullptr);

    /** Pop the oldest delivered application header. */
    sock::MsgMeta popMeta();

    /** Number of delivered-but-unpopped application headers. */
    std::size_t metaAvailable() const { return metaQueue_.size(); }

    /** Blocking receive: waits for data, drains up to @p max_bytes in
     *  place from the buffer pool (no copy).  0 = peer closed. */
    Coro<std::size_t> recv(std::size_t max_bytes,
                           sim::TraceContext ctx = {});

    /** Receive exactly @p bytes (looping) unless the peer closes. */
    Coro<std::size_t> recvAll(std::size_t bytes,
                              sim::TraceContext ctx = {});

    /** Half-close: peer's recv() returns 0 after draining. */
    void close();

    /** Locally abort (releases every blocked waiter). */
    void abortLocal();

    bool established() const { return established_; }
    bool aborted() const { return aborted_; }
    /** Established, not aborted, peer still open: safe to use. */
    bool
    usable() const
    {
        return established_ && !aborted_ && !peerClosed_;
    }
    bool peerClosed() const { return peerClosed_; }
    /** Peer buffer-pool size learned in the handshake. */
    std::size_t peerBufPool() const { return peerBufPool_; }
    std::size_t rxAvailable() const { return rxBuffered_; }
    std::uint64_t flow() const { return flow_; }
    NodeId remoteNode() const { return remoteNode_; }

    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesReceived() const { return bytesReceived_; }

    /** @name Flow telemetry (see telemetry::FlowSample)
     *  @{ */
    std::uint64_t flowRetransmits() const { return retrans_; }
    std::uint64_t rtoFires() const { return rtoFires_; }
    Tick
    handshakeLatency() const
    {
        return established_ ? establishedAt_ - openedAt_ : Tick{0};
    }
    Tick
    finLatency() const
    {
        return finishedAt_ > Tick{0} ? finishedAt_ - establishedAt_
                                     : Tick{0};
    }
    /** @} */

    /** The simulation this endpoint's stack runs in. */
    sim::Simulation &simulation();

    /** Passkey: only BypassStack can mint one. */
    class Key
    {
        friend class BypassStack;
        Key() = default;
    };

    Endpoint(Key, BypassStack &stack, std::uint64_t local_token);

  private:
    friend class BypassStack;

    BypassStack &stack_;
    std::uint64_t localToken_;
    std::uint64_t remoteToken_ = 0;
    NodeId remoteNode_ = net::kInvalidNode;
    std::uint64_t flow_ = 0;
    bool established_ = false;
    sim::Event establishedEvt_;

    // --- sender state ---
    std::size_t credit_ = 0;       ///< unused peer-pool bytes
    std::size_t peerBufPool_ = 0;  ///< learned during the handshake
    sim::Event creditAvail_;

    // --- receiver state ---
    std::size_t rxBuffered_ = 0; ///< bytes parked in the buffer pool
    bool rxWaiting_ = false;
    sim::Event rxReady_;
    bool peerClosed_ = false;
    bool localClosed_ = false;
    std::deque<sock::MsgMeta> metaQueue_;
    sim::TraceContext rxCtx_{};

    // --- reliability (always on) ---
    bool aborted_ = false;
    std::uint64_t sndNxt_ = 0;
    std::uint64_t sndUna_ = 0;
    std::uint64_t peerDrained_ = 0;
    std::uint64_t rcvNxt_ = 0;
    std::uint64_t drainedTotal_ = 0;
    sim::PooledFifo<XptTxSegment> retransQ_;
    sim::Event txActivity_;
    sim::Event ackProgress_;

    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;

    // --- flow telemetry ---
    std::uint64_t retrans_ = 0;
    std::uint64_t rtoFires_ = 0;
    Tick openedAt_{};
    Tick establishedAt_{};
    Tick finishedAt_{};
};

/** Passive endpoint: a queue of endpoints accepted on a port. */
class Listener
{
  public:
    /** Awaitable: next established endpoint on this port. */
    Coro<Endpoint *> accept();

    /** Passkey: see Endpoint::Key. */
    class Key
    {
        friend class BypassStack;
        Key() = default;
    };

    Listener(Key, sim::Simulation &sim) : pending_(sim) {}

  private:
    friend class BypassStack;

    sim::Channel<Endpoint *> pending_;
};

/**
 * One node's user-space transport library, bound to its NIC.
 *
 * Construction takes over the NIC's RX delivery (setRxHandler): a
 * node is either kernel-TCP or bypass, never both at once.
 */
class BypassStack
{
  public:
    BypassStack(const tcp::Host &host, nic::Nic &nic,
                const BypassConfig &cfg);
    ~BypassStack();

    BypassStack(const BypassStack &) = delete;
    BypassStack &operator=(const BypassStack &) = delete;

    /**
     * Active open to (remote node, port).  The SYN is retried with
     * backoff; an unreachable peer yields an aborted() endpoint, not
     * a hang.  A nonzero @p timeout substitutes for the retry budget.
     */
    Coro<Endpoint *> connect(NodeId remote, std::uint16_t port,
                             Tick timeout = Tick{0});

    /** Passive open; one listener per port. */
    Listener &listen(std::uint16_t port);

    /** Process-crash semantics: abort every endpoint, forget the
     *  SYN-dedup state (see tcp::TcpStack::crashReset). */
    void crashReset();

    const BypassConfig &config() const { return cfg_; }
    const tcp::Host &host() const { return host_; }
    nic::Nic &nicDev() { return nic_; }
    NodeId nodeId() const { return nic_.id(); }

    /** @name Stack-level statistics
     *  @{ */
    std::uint64_t txPayloadBytes() const { return txPayload_.value(); }
    std::uint64_t rxPayloadBytes() const { return rxPayload_.value(); }
    std::uint64_t rxBursts() const { return rxBursts_.value(); }
    /** Poll passes that serviced at least one descriptor. */
    std::uint64_t pollPasses() const { return pollPasses_.value(); }
    /** send() calls that stalled on exhausted buffer-pool credit. */
    std::uint64_t creditStalls() const { return creditStalls_.value(); }
    std::uint64_t retransmits() const { return retransmits_.value(); }
    std::uint64_t rxDuplicateSegments() const { return rxDups_.value(); }
    std::uint64_t rxOutOfOrderDrops() const { return rxOoo_.value(); }
    std::uint64_t windowProbes() const { return winProbes_.value(); }
    std::uint64_t synRetries() const { return synRetries_.value(); }
    std::uint64_t abortedConnections() const { return aborts_.value(); }
    /** @} */

    /** Publish counters/histograms/flows under the node's "xpt"
     *  scope. */
    void instrument(sim::telemetry::Registry &reg);

  private:
    friend class Endpoint;

    /** NIC delivery entry point (doorbell for the poll loop). */
    void onRxBatch(unsigned queue, std::vector<Burst> &&bursts);

    /** Per-queue busy-poll service loop (pinned core). */
    Coro<void> pollLoop(unsigned queue);

    /** Process one poll pass's worth of bursts. */
    Coro<void> processBatch(unsigned queue, std::vector<Burst> bursts);

    /** Core a queue's poll loop is pinned to. */
    int pollCoreFor(unsigned queue) const;

    /** Transmit a zero-payload control burst on an endpoint's flow. */
    void sendControl(NodeId dst, std::uint64_t flow, BypassKind kind,
                     std::uint64_t conn_token, std::uint64_t arg,
                     std::uint64_t handshake_pool = 0);

    /** Per-endpoint retransmission timer. */
    Coro<void> rtoLoop(std::uint64_t token);
    /** Rebuild and resend the oldest unacked segment. */
    Coro<void> retransmitTask(std::uint64_t token, XptTxSegment seg);
    /** Mark @p e failed and release every blocked waiter on it. */
    void abortEndpoint(Endpoint &e);

    Endpoint *newEndpoint();
    Endpoint *endpointFor(std::uint64_t token);
    void noteFlowFinished(Endpoint &e);

    tcp::Host host_;
    nic::Nic &nic_;
    BypassConfig cfg_;

    sim::PooledFifo<XptTxSegment>::NodePool txSegPool_;

    std::vector<std::unique_ptr<Endpoint>> endpoints_;
    std::unordered_map<std::uint16_t, std::unique_ptr<Listener>>
        listeners_;
    std::uint64_t flowCounter_ = 0;
    /** (src node, flow) → local token: dedups retransmitted SYNs. */
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        synSeen_;

    /** One pending-batch channel per RX queue (poll mailboxes). */
    std::vector<std::unique_ptr<sim::Channel<std::vector<Burst>>>>
        rxChannels_;

    /** Registered buffer pool's cache footprint (pinned, reused). */
    mem::FootprintId bufPool_;

    sim::stats::Counter txPayload_;
    sim::stats::Counter rxPayload_;
    sim::stats::Counter rxBursts_;
    sim::stats::Counter pollPasses_;
    sim::stats::Counter creditStalls_;
    sim::stats::Counter retransmits_;
    sim::stats::Counter rxDups_;
    sim::stats::Counter rxOoo_;
    sim::stats::Counter winProbes_;
    sim::stats::Counter synRetries_;
    sim::stats::Counter aborts_;

    sim::telemetry::Histogram handshakeHist_;
    sim::telemetry::Histogram lifetimeHist_;
};

} // namespace ioat::xpt

#endif // IOAT_XPT_BYPASS_HH
