/**
 * @file
 * Sharded cluster builder: nodes spread over a ShardGroup.
 *
 * A Cluster is the parallel twin of building Nodes against a single
 * Simulation: it owns a `sim::ShardGroup`, one switch spanning every
 * shard, and the nodes, assigned to shards by the fixed rule
 * `shard(i) = i mod shards` (i = attach order).  The assignment is
 * part of the run's identity only in wall-clock terms — simulation
 * *results* are shard-count-invariant, which `ctest -L shard` pins.
 *
 * With `shards == 1` this is exactly the classic single-threaded
 * setup (the group is a pass-through and the switch schedules every
 * delivery locally), so benches can route all construction through a
 * Cluster and expose `--shards` as a pure go-faster knob.
 */

#ifndef IOAT_CORE_CLUSTER_HH
#define IOAT_CORE_CLUSTER_HH

#include <memory>
#include <vector>

#include "core/node.hh"
#include "net/switch.hh"
#include "simcore/shard.hh"

namespace ioat::core {

/**
 * Owns the shard group, the switch, and all nodes of an experiment.
 */
class Cluster
{
  public:
    explicit Cluster(unsigned shards,
                     sim::Tick switchLatency = sim::nanoseconds(2000))
        : group_(shards, switchLatency),
          fabric_(group_, switchLatency)
    {}

    /**
     * Build the next node; it lands on shard (index mod shards) and
     * gets the next switch port id, exactly as if all nodes shared
     * one Simulation.
     */
    Node &
    addNode(const NodeConfig &cfg)
    {
        const unsigned shard =
            static_cast<unsigned>(nodes_.size()) % group_.shardCount();
        nodes_.push_back(std::make_unique<Node>(group_.shard(shard),
                                                fabric_, cfg));
        return *nodes_.back();
    }

    sim::ShardGroup &group() { return group_; }
    net::Switch &fabric() { return fabric_; }

    /** The engine to drive the run with (Meter takes a Runner&). */
    sim::Runner &runner() { return group_; }

    std::size_t nodeCount() const { return nodes_.size(); }
    Node &node(std::size_t i) { return *nodes_.at(i); }

    /** Shard hosting node @p i (the fixed assignment rule). */
    unsigned
    shardOf(std::size_t i) const
    {
        return static_cast<unsigned>(i) % group_.shardCount();
    }

  private:
    sim::ShardGroup group_;
    net::Switch fabric_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

} // namespace ioat::core

#endif // IOAT_CORE_CLUSTER_HH
