/**
 * @file
 * The I/OAT feature set (the paper's subject, §2.2).
 */

#ifndef IOAT_CORE_IOAT_CONFIG_HH
#define IOAT_CORE_IOAT_CONFIG_HH

namespace ioat::core {

/**
 * Which of the three I/OAT features a node enables.
 *
 * The paper's platform exposes split headers and the DMA copy engine;
 * multiple receive queues existed in the adapter but were disabled in
 * the Linux kernel of the time, so the paper could not evaluate them
 * (we model the feature anyway; see EXPERIMENTS.md for an ablation).
 */
struct IoatConfig
{
    /** Offload receive-path kernel→user copies to the DMA engine. */
    bool dmaEngine = false;
    /** NIC separates protocol headers from payload on receive. */
    bool splitHeader = false;
    /** Spread one port's flows over multiple RX queues/cores. */
    bool multiQueue = false;

    /** Everything the paper could turn on ("I/OAT"). */
    static constexpr IoatConfig
    enabled()
    {
        return {true, true, false};
    }

    /** Traditional communication ("non-I/OAT"). */
    static constexpr IoatConfig
    disabled()
    {
        return {false, false, false};
    }

    /** DMA engine only (Fig. 7 "I/OAT-DMA"). */
    static constexpr IoatConfig
    dmaOnly()
    {
        return {true, false, false};
    }

    bool
    any() const
    {
        return dmaEngine || splitHeader || multiQueue;
    }
};

} // namespace ioat::core

#endif // IOAT_CORE_IOAT_CONFIG_HH
