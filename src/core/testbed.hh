/**
 * @file
 * Cluster builder replicating the paper's testbeds.
 *
 * Testbed 1: two server nodes (dual dual-core 3.46 GHz, 6 × 1 GbE,
 * I/OAT-capable) behind a GigE switch.  Testbed 2: a farm of client
 * nodes (dual 2.66 GHz Xeon, 1 GbE, no I/OAT) used purely as request
 * generators.
 */

#ifndef IOAT_CORE_TESTBED_HH
#define IOAT_CORE_TESTBED_HH

#include <memory>
#include <vector>

#include "core/node.hh"
#include "net/switch.hh"
#include "simcore/shard.hh"
#include "simcore/sim.hh"

namespace ioat::core {

/** Testbed shape. */
struct TestbedConfig
{
    /** Server (Testbed 1) nodes and their common configuration. */
    unsigned serverCount = 2;
    NodeConfig serverConfig = NodeConfig::server(IoatConfig::disabled());
    /** Client (Testbed 2) nodes. */
    unsigned clientCount = 0;
    NodeConfig clientConfig = NodeConfig::client();
    /** Switch forwarding latency. */
    sim::Tick switchLatency = sim::nanoseconds(2000);
};

/**
 * Owns the switch and all nodes of an experiment.
 */
class Testbed
{
  public:
    Testbed(sim::Simulation &sim, const TestbedConfig &cfg)
        : fabric_(sim, cfg.switchLatency)
    {
        servers_.reserve(cfg.serverCount);
        for (unsigned i = 0; i < cfg.serverCount; ++i) {
            servers_.push_back(
                std::make_unique<Node>(sim, fabric_, cfg.serverConfig));
        }
        clients_.reserve(cfg.clientCount);
        for (unsigned i = 0; i < cfg.clientCount; ++i) {
            clients_.push_back(
                std::make_unique<Node>(sim, fabric_, cfg.clientConfig));
        }
    }

    /**
     * Sharded testbed: same topology, nodes dealt over the group's
     * shards by the fixed rule shard(i) = i mod shards (i = overall
     * build order, servers first).  Results are identical to the
     * single-Simulation constructor at any shard count.
     */
    Testbed(sim::ShardGroup &group, const TestbedConfig &cfg)
        : fabric_(group, cfg.switchLatency)
    {
        unsigned idx = 0;
        servers_.reserve(cfg.serverCount);
        for (unsigned i = 0; i < cfg.serverCount; ++i, ++idx) {
            servers_.push_back(std::make_unique<Node>(
                group.shard(idx % group.shardCount()), fabric_,
                cfg.serverConfig));
        }
        clients_.reserve(cfg.clientCount);
        for (unsigned i = 0; i < cfg.clientCount; ++i, ++idx) {
            clients_.push_back(std::make_unique<Node>(
                group.shard(idx % group.shardCount()), fabric_,
                cfg.clientConfig));
        }
    }

    net::Switch &fabric() { return fabric_; }

    std::size_t serverCount() const { return servers_.size(); }
    std::size_t clientCount() const { return clients_.size(); }

    Node &server(std::size_t i) { return *servers_.at(i); }
    Node &client(std::size_t i) { return *clients_.at(i); }

  private:
    net::Switch fabric_;
    std::vector<std::unique_ptr<Node>> servers_;
    std::vector<std::unique_ptr<Node>> clients_;
};

} // namespace ioat::core

#endif // IOAT_CORE_TESTBED_HH
