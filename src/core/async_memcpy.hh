/**
 * @file
 * User-level asynchronous memcpy on the I/OAT engine — the paper's
 * §8 future-work item ("we are trying to provide an asynchronous
 * memory copy operation to user applications ... though this involves
 * some amount of overhead such as context switches, user page
 * locking").
 *
 * The API mirrors what such a facility would look like: submit() pins
 * both buffers and queues the descriptor (CPU cost), start the engine
 * and return a handle; wait() blocks (the simulated task, not the
 * CPU) until the copy lands, then unpins.  copy() is the synchronous
 * convenience.  A policy helper answers "would offloading this copy
 * beat just doing it on the CPU", capturing §7's pinning-cost caveat.
 */

#ifndef IOAT_CORE_ASYNC_MEMCPY_HH
#define IOAT_CORE_ASYNC_MEMCPY_HH

#include <memory>

#include "simcore/coro.hh"
#include "simcore/sync.hh"
#include "tcp/host.hh"

namespace ioat::core {

using sim::Coro;
using sim::Tick;

/** Extra user→kernel transition cost for the user-level API. */
struct AsyncMemcpyConfig
{
    Tick syscallOverhead = sim::nanoseconds(900);
};

/**
 * User-facing asynchronous copy service for one node.
 */
class AsyncMemcpy
{
  public:
    using Config = AsyncMemcpyConfig;
    /** An in-flight asynchronous copy. */
    class Op
    {
      public:
        bool done() const { return done_->triggered(); }
        std::size_t bytes() const { return bytes_; }

      private:
        friend class AsyncMemcpy;
        Op(sim::Simulation &sim, std::size_t bytes)
            : done_(std::make_shared<sim::Event>(sim)), bytes_(bytes)
        {}
        std::shared_ptr<sim::Event> done_;
        std::size_t bytes_;
    };

    explicit AsyncMemcpy(const tcp::Host &host, const Config &cfg = {})
        : host_(host), cfg_(cfg)
    {
        sim::simAssert(host_.dma != nullptr,
                       "AsyncMemcpy requires a DMA engine");
    }

    /**
     * Submit an asynchronous copy of @p bytes.  Charges the CPU for
     * syscall + pinning source and destination + descriptor setup,
     * then returns while the engine works.
     */
    Coro<Op>
    submit(std::size_t bytes)
    {
        const Tick cpu_cost = cfg_.syscallOverhead +
                              2 * host_.pages.pinCost(bytes) +
                              host_.dma->submissionCost(bytes);
        co_await host_.cpu.compute(cpu_cost);
        host_.bus.consume(sim::Bytes{2 * bytes});

        Op op(host_.sim, bytes);
        auto done = op.done_;
        host_.dma->transferAsync(bytes, [done] { done->trigger(); });
        co_return op;
    }

    /** Wait for a submitted copy; charges the unpin cost. */
    Coro<void>
    wait(Op op)
    {
        co_await op.done_->wait();
        co_await host_.cpu.compute(2 * host_.pages.unpinCost(op.bytes()));
    }

    /** Synchronous convenience: submit + wait. */
    Coro<void>
    copy(std::size_t bytes)
    {
        Op op = co_await submit(bytes);
        co_await wait(op);
    }

    /**
     * §7 policy: is offloading @p bytes expected to beat a CPU copy?
     * Compares the CPU-visible offload cost (pin both sides, submit,
     * unpin) with the full cost of copying on the CPU at the given
     * cache residency.
     */
    bool
    offloadProfitable(std::size_t bytes, double residency = 0.0) const
    {
        const Tick offload_cpu = cfg_.syscallOverhead +
                                 2 * host_.pages.pinCost(bytes) +
                                 host_.dma->submissionCost(bytes) +
                                 2 * host_.pages.unpinCost(bytes);
        return offload_cpu <
               host_.copy.copyTime(sim::Bytes{bytes}, residency);
    }

    /** Smallest power-of-two size for which offload is profitable. */
    std::size_t
    breakevenBytes(double residency = 0.0) const
    {
        for (std::size_t sz = 512; sz <= (64u << 20); sz *= 2) {
            if (offloadProfitable(sz, residency))
                return sz;
        }
        return 0; // never profitable at this residency
    }

  private:
    tcp::Host host_;
    Config cfg_;
};

} // namespace ioat::core

#endif // IOAT_CORE_ASYNC_MEMCPY_HH
