/**
 * @file
 * Calibration constants: every model parameter, with the paper
 * evidence it is tuned against.
 *
 * We reproduce *shapes*, not the authors' absolute numbers, but the
 * constants below are chosen so absolute values land in the same
 * ballpark as the paper's Testbed 1 (two nodes, dual-socket dual-core
 * 3.46 GHz, 2 MB L2, three dual-port Intel PRO/1000 adapters, Linux
 * 2.6 RedHat AS4) and Testbed 2 (44 dual-Xeon 2.66 GHz clients).
 *
 * Paper anchors used:
 *  - Fig. 3a: ~5635 Mbps over 6 ports; receiver CPU 37% (non-I/OAT)
 *    vs 29% (I/OAT).
 *  - Fig. 3b: ~9600 Mbps bidirectional; CPU 90% vs 70%.
 *  - Fig. 6: DMA copy beats cold CPU copy above 8 KB; overlap ~93%
 *    at 64 KB; hot CPU copy beats DMA end-to-end.
 *  - Fig. 7a: DMA engine ≈16% relative CPU benefit at 16–128 KB.
 *  - Fig. 7b: split headers up to ≈26% throughput at 1 MB messages
 *    (4 MB working set vs 2 MB L2), shrinking toward 8 MB.
 */

#ifndef IOAT_CORE_CALIBRATION_HH
#define IOAT_CORE_CALIBRATION_HH

#include "cpu/cpu.hh"
#include "dma/dma_engine.hh"
#include "mem/copy_model.hh"
#include "mem/memory_bus.hh"
#include "mem/page_model.hh"
#include "nic/nic.hh"
#include "simcore/types.hh"
#include "tcp/config.hh"
#include "xpt/bypass.hh"

namespace ioat::core::calibration {

using sim::Rate;

/** Testbed 1 server node: dual-socket dual-core 3.46 GHz. */
inline cpu::CpuConfig
serverCpu()
{
    return {.cores = 4};
}

/** Testbed 2 client node: dual-socket single-core 2.66 GHz Xeon. */
inline cpu::CpuConfig
clientCpu()
{
    return {.cores = 2};
}

/** Testbed 1 L2: 2 MB shared per socket; we model one 2 MB pool,
 *  which is what the paper's "4 MB of data does not fit in the 2 MB
 *  cache" arithmetic assumes. */
inline constexpr std::size_t kServerL2Bytes = 2 * 1024 * 1024;

/**
 * memcpy rates.  2006-era Netburst/Core: ~4 GB/s L2-resident,
 * ~1.5 GB/s DRAM-bound.  Tuned so Fig. 6's cold-copy curve crosses
 * the DMA curve at 8 KB and Fig. 3a's copy share of CPU matches.
 */
inline mem::CopyModelConfig
serverCopy()
{
    mem::CopyModelConfig cfg;
    cfg.hotRate = Rate::bytesPerSec(4.0e9);
    cfg.coldRate = Rate::bytesPerSec(1.5e9);
    cfg.callOverhead = sim::nanoseconds(80);
    return cfg;
}

/** get_user_pages ~350 ns/page (2.6-era measurement folklore);
 *  §7's pinning-cost caveat emerges from these numbers. */
inline mem::PageModelConfig
serverPages()
{
    return {};
}

/**
 * FSB-era achievable memory bandwidth.  1066 MT/s × 8 B ≈ 8.5 GB/s
 * peak shared by 2 sockets; ~40% achievable under mixed load.
 * This is what caps Fig. 7b's large-message throughput.
 */
inline mem::MemoryBusConfig
serverBus()
{
    mem::MemoryBusConfig cfg;
    cfg.capacity = Rate::bytesPerSec(2.8e9);
    cfg.window = sim::microseconds(200);
    return cfg;
}

/**
 * I/OAT DMA engine: ~2 GB/s per channel, submission ≈1.5 µs plus
 * ~55 ns per page descriptor.  Yields Fig. 6's ~93% overlap at 64 KB
 * and the >8 KB crossover vs the cold CPU copy.
 */
inline dma::DmaConfig
ioatDma()
{
    dma::DmaConfig cfg;
    cfg.channels = 4;
    cfg.rate = Rate::bytesPerSec(2.0e9);
    cfg.submitBase = sim::nanoseconds(1500);
    cfg.perPageDescriptor = sim::nanoseconds(55);
    cfg.coherenceCost = sim::nanoseconds(150);
    return cfg;
}

/** Testbed 1 NIC complex: three dual-port PRO/1000 = 6 × 1 GbE. */
inline nic::NicConfig
serverNic(unsigned ports = 6)
{
    nic::NicConfig cfg;
    cfg.ports = ports;
    cfg.portRate = Rate::gbps(1.0);
    cfg.mtu = 1500;
    cfg.frameOverhead = 58;
    cfg.tso = false;          // Fig. 5 enables this as "Case 3"
    cfg.splitHeader = false;  // set by IoatConfig
    cfg.rxQueuesPerPort = 1;
    cfg.coalesceDelay = sim::Tick{0};    // Fig. 5 enables this as "Case 5"
    cfg.coalesceMaxBursts = 32;
    return cfg;
}

/** Testbed 2 client NIC: single 1 GbE port. */
inline nic::NicConfig
clientNic()
{
    return serverNic(1);
}

/**
 * Transport cost table.  The per-frame numbers follow the era's
 * "~1 GHz of CPU per 1 Gbps" receive-processing rule of thumb
 * (~1.8 µs/frame at 1500 MTU on 3.46 GHz), which reproduces
 * Fig. 3a's 37% receiver CPU at 5.6 Gbps.
 */
inline tcp::TcpConfig
serverTcp()
{
    return {}; // defaults in tcp/config.hh are the calibrated values
}

/**
 * Kernel-bypass transport library (user-space polled NIC queues).
 * Per-operation costs are set well below the kernel path's — no
 * syscall crossing, no softirq dispatch, no sk_buff management —
 * matching the OS-bypass overheads the paper's §7 discussion (and
 * the RDMA-vs-I/OAT comparisons it cites) attributes to descriptor
 * handling alone.
 */
inline xpt::BypassConfig
bypassXpt()
{
    return {}; // defaults in xpt/bypass.hh are the calibrated values
}

} // namespace ioat::core::calibration

#endif // IOAT_CORE_CALIBRATION_HH
