/**
 * @file
 * Application working-set accounting.
 *
 * Gives an application component a cache footprint (competing with
 * the stack's buffers in the node's L2 model) and a way to charge the
 * CPU for streaming over payload data at the residency that footprint
 * currently enjoys.  This is the coupling that makes cache pollution
 * visible to applications — the effect behind the paper's Fig. 7b and
 * the 4x thread-scaling result (Fig. 9).
 */

#ifndef IOAT_CORE_APP_MEMORY_HH
#define IOAT_CORE_APP_MEMORY_HH

#include <algorithm>
#include <string>

#include "mem/rolling_bytes.hh"
#include "simcore/coro.hh"
#include "tcp/host.hh"

namespace ioat::core {

using sim::Coro;
using sim::Tick;

/**
 * One application component's view of node memory.
 */
class AppMemory
{
  public:
    AppMemory(const tcp::Host &host, std::string name,
              sim::Tick window = sim::milliseconds(1))
        : host_(host), window_(host.sim, window)
    {
        footprint_ = host_.cache.addFootprint(std::move(name), 0);
        footprintSize_ = host_.cache.sizeSlot(footprint_);
    }

    ~AppMemory() { host_.cache.removeFootprint(footprint_); }

    AppMemory(const AppMemory &) = delete;
    AppMemory &operator=(const AppMemory &) = delete;

    /** Current residency of this component's working set. */
    double residency() const { return host_.cache.residency(footprint_); }

    /**
     * Declare @p bytes of long-lived, repeatedly-reused buffers
     * (message buffers, object caches).  Unlike noteBuffer(), this is
     * a persistent part of the working set: a 4 x 1 MB receive-buffer
     * set stays 4 MB of cache demand no matter how fast it is cycled
     * — the arithmetic behind the paper's Fig. 7b.
     */
    void
    reserve(std::size_t bytes)
    {
        persistent_ += bytes;
        refreshFootprint();
    }

    /** Release previously reserved buffer space. */
    void
    release(std::size_t bytes)
    {
        persistent_ = bytes > persistent_ ? 0 : persistent_ - bytes;
        refreshFootprint();
    }

    /** Set the persistent working set to an absolute value. */
    void
    setReserved(std::uint64_t bytes)
    {
        persistent_ = bytes;
        refreshFootprint();
    }

    std::uint64_t reservedBytes() const { return persistent_; }

    /**
     * Note that @p bytes of application data became part of the
     * working set (buffers filled, objects created) without charging
     * CPU time.
     */
    void
    noteBuffer(std::size_t bytes)
    {
        window_.add(bytes);
        refreshFootprint();
    }

    /**
     * Stream-read @p bytes of working data (parse, checksum,
     * template...).  Charges the CPU at current residency and
     * memory-bus pressure, and grows the working set.
     */
    Coro<void>
    touch(std::size_t bytes, sim::TraceContext ctx = {})
    {
        const double res = residency();
        const Tick t =
            host_.copy.touchTime(sim::Bytes{bytes}, res,
                                 host_.bus.slowdown());
        noteBuffer(bytes);
        host_.bus.consume(sim::Bytes{static_cast<std::size_t>(
            static_cast<double>(bytes) * (1.0 - res))});
        const Tick t0 = host_.sim.now();
        co_await host_.cpu.compute(t);
        if (sim::RequestTracer *rt = host_.sim.requestTracer();
            rt && ctx.valid()) {
            const Tick hot = std::min(
                host_.copy.touchTime(sim::Bytes{bytes}, 1.0, 1.0), t);
            rt->recordComputeSplit(
                ctx, t0, host_.sim.now(),
                {{"app.touch", sim::CostCat::memcpy, hot},
                 {"app.touch-miss", sim::CostCat::cache, t - hot}});
        }
    }

    /**
     * Copy @p bytes through application memory without retaining it
     * in the working set (streaming store, e.g. an I/O daemon moving
     * a write payload into ramfs pages that are never re-read).
     */
    Coro<void>
    streamCopy(std::size_t bytes, sim::TraceContext ctx = {})
    {
        const double res = residency();
        const Tick t =
            host_.copy.copyTime(sim::Bytes{bytes}, res,
                                host_.bus.slowdown());
        host_.bus.consume(sim::Bytes{static_cast<std::size_t>(
            static_cast<double>(2 * bytes) * (1.0 - res))});
        const Tick t0 = host_.sim.now();
        co_await host_.cpu.compute(t);
        recordCopySplit(ctx, "app.copy", t0, t, bytes);
    }

    /**
     * Copy @p bytes within application memory (e.g. proxy storing a
     * fetched object into its cache).
     */
    Coro<void>
    copyInto(std::size_t bytes, sim::TraceContext ctx = {})
    {
        const double res = residency();
        const Tick t =
            host_.copy.copyTime(sim::Bytes{bytes}, res,
                                host_.bus.slowdown());
        noteBuffer(bytes);
        host_.bus.consume(sim::Bytes{static_cast<std::size_t>(
            static_cast<double>(2 * bytes) * (1.0 - res))});
        const Tick t0 = host_.sim.now();
        co_await host_.cpu.compute(t);
        recordCopySplit(ctx, "app.copy", t0, t, bytes);
    }

  private:
    /** Split one already-charged copy into hot/memcpy + miss/cache. */
    void
    recordCopySplit(sim::TraceContext ctx, const char *name, Tick t0,
                    Tick cost, std::size_t bytes)
    {
        sim::RequestTracer *rt = host_.sim.requestTracer();
        if (!rt || !ctx.valid())
            return;
        const Tick hot =
            std::min(host_.copy.hotCopyTime(sim::Bytes{bytes}), cost);
        rt->recordComputeSplit(
            ctx, t0, host_.sim.now(),
            {{name, sim::CostCat::memcpy, hot},
             {"app.copy-miss", sim::CostCat::cache, cost - hot}});
    }
    void
    refreshFootprint()
    {
        const std::uint64_t transient = std::min<std::uint64_t>(
            window_.estimate(), 8 * host_.cache.capacity());
        *footprintSize_ =
            static_cast<std::size_t>(persistent_ + transient);
    }

    tcp::Host host_;
    mem::RollingBytes window_;
    mem::FootprintId footprint_;
    std::size_t *footprintSize_ = nullptr;
    std::uint64_t persistent_ = 0;
};

} // namespace ioat::core

#endif // IOAT_CORE_APP_MEMORY_HH
