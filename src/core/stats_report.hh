/**
 * @file
 * Per-node statistics reporting.
 *
 * Collects every component's counters into one structured snapshot —
 * what a real system exposes via /proc, ethtool and vmstat — so
 * experiments can diff "before vs after" and humans can eyeball a
 * run.  Snapshots subtract cleanly, giving per-window deltas.
 */

#ifndef IOAT_CORE_STATS_REPORT_HH
#define IOAT_CORE_STATS_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "core/node.hh"
#include "simcore/table.hh"

namespace ioat::core {

/** One node's counters at a point in simulated time. */
struct NodeSnapshot
{
    sim::Tick when{};

    // CPU
    sim::Tick cpuBusyTicks{};
    std::uint64_t cpuWorkItems = 0;

    // NIC
    std::uint64_t txWireBytes = 0;
    std::uint64_t rxWireBytes = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t rxBursts = 0;

    // Stack
    std::uint64_t txPayload = 0;
    std::uint64_t rxPayload = 0;
    std::uint64_t rxSegments = 0;
    std::uint64_t cpuCopies = 0;
    std::uint64_t dmaCopies = 0;

    // DMA engine / memory bus
    std::uint64_t dmaTransfers = 0;
    std::uint64_t dmaBytes = 0;
    std::uint64_t busBytes = 0;

    /** Capture a node's counters now. */
    static NodeSnapshot
    capture(Node &node)
    {
        NodeSnapshot s;
        s.when = node.simulation().now();
        s.cpuBusyTicks = node.cpu().totalBusyTicks();
        s.cpuWorkItems = node.cpu().completedItems();
        s.txWireBytes = node.nic().txWireBytes();
        s.rxWireBytes = node.nic().rxWireBytes();
        s.interrupts = node.nic().interrupts();
        s.rxBursts = node.nic().rxBursts();
        s.txPayload = node.stack().txPayloadBytes();
        s.rxPayload = node.stack().rxPayloadBytes();
        s.rxSegments = node.stack().rxSegments();
        s.cpuCopies = node.stack().cpuCopies();
        s.dmaCopies = node.stack().dmaOffloadedCopies();
        if (node.dma()) {
            s.dmaTransfers = node.dma()->completedTransfers();
            s.dmaBytes = node.dma()->bytesCopied();
        }
        s.busBytes = node.bus().totalBytes();
        return s;
    }

    /** Counter deltas over a window (this - earlier). */
    NodeSnapshot
    operator-(const NodeSnapshot &o) const
    {
        NodeSnapshot d;
        d.when = when - o.when;
        d.cpuBusyTicks = cpuBusyTicks - o.cpuBusyTicks;
        d.cpuWorkItems = cpuWorkItems - o.cpuWorkItems;
        d.txWireBytes = txWireBytes - o.txWireBytes;
        d.rxWireBytes = rxWireBytes - o.rxWireBytes;
        d.interrupts = interrupts - o.interrupts;
        d.rxBursts = rxBursts - o.rxBursts;
        d.txPayload = txPayload - o.txPayload;
        d.rxPayload = rxPayload - o.rxPayload;
        d.rxSegments = rxSegments - o.rxSegments;
        d.cpuCopies = cpuCopies - o.cpuCopies;
        d.dmaCopies = dmaCopies - o.dmaCopies;
        d.dmaTransfers = dmaTransfers - o.dmaTransfers;
        d.dmaBytes = dmaBytes - o.dmaBytes;
        d.busBytes = busBytes - o.busBytes;
        return d;
    }

    /** Average CPU utilization implied by this window delta. */
    double
    cpuUtilization(unsigned cores) const
    {
        if (when == sim::Tick{0} || cores == 0)
            return 0.0;
        return sim::fractionOf(cpuBusyTicks, when) / cores;
    }

    double rxMbps() const { return sim::throughputMbps(rxPayload, when); }
    double txMbps() const { return sim::throughputMbps(txPayload, when); }

    /** Human-readable dump. */
    void
    print(std::ostream &os, const std::string &label,
          unsigned cores = 0) const
    {
        os << "--- " << label << " (window "
           << sim::strprintf("%.3f ms", sim::toMicroseconds(when) / 1000)
           << ") ---\n";
        sim::Table t({"metric", "value"});
        if (cores > 0) {
            t.addRow({"cpu utilization",
                      sim::strprintf("%.1f%%",
                                     cpuUtilization(cores) * 100)});
        }
        t.addRow({"cpu work items", std::to_string(cpuWorkItems)});
        t.addRow({"rx payload", sim::strprintf("%.1f Mbps", rxMbps())});
        t.addRow({"tx payload", sim::strprintf("%.1f Mbps", txMbps())});
        t.addRow({"rx wire bytes", std::to_string(rxWireBytes)});
        t.addRow({"tx wire bytes", std::to_string(txWireBytes)});
        t.addRow({"interrupts", std::to_string(interrupts)});
        t.addRow({"rx segments", std::to_string(rxSegments)});
        t.addRow({"cpu copies", std::to_string(cpuCopies)});
        t.addRow({"dma copies", std::to_string(dmaCopies)});
        t.addRow({"dma bytes", std::to_string(dmaBytes)});
        t.addRow({"memory-bus bytes", std::to_string(busBytes)});
        t.print(os);
    }
};

} // namespace ioat::core

#endif // IOAT_CORE_STATS_REPORT_HH
