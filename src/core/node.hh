/**
 * @file
 * A complete simulated cluster node: CPU, cache, memory bus, DMA
 * engine, NIC and protocol stack, wired per an IoatConfig.
 *
 * This is the library's main entry point for building systems; see
 * core/testbed.hh for paper-testbed shortcuts.
 */

#ifndef IOAT_CORE_NODE_HH
#define IOAT_CORE_NODE_HH

#include <memory>

#include "core/calibration.hh"
#include "core/ioat_config.hh"
#include "cpu/cpu.hh"
#include "dma/dma_engine.hh"
#include "mem/cache_model.hh"
#include "mem/copy_model.hh"
#include "mem/memory_bus.hh"
#include "mem/page_model.hh"
#include "net/switch.hh"
#include "nic/nic.hh"
#include "simcore/lifecycle.hh"
#include "simcore/sim.hh"
#include "sock/socket.hh"
#include "tcp/host.hh"
#include "tcp/stack.hh"
#include "xpt/bypass.hh"

namespace ioat::core {

using sim::Simulation;

/** Which transport `Node::transport()` hands to applications. */
enum class TransportKind {
    tcp,    ///< kernel TCP stack (the default; tcp+ioat testbeds)
    bypass, ///< user-space kernel-bypass library (xpt::BypassStack)
};

/** Full static description of one node. */
struct NodeConfig
{
    cpu::CpuConfig cpu = calibration::serverCpu();
    std::size_t l2CacheBytes = calibration::kServerL2Bytes;
    mem::CopyModelConfig copy = calibration::serverCopy();
    mem::PageModelConfig pages = calibration::serverPages();
    mem::MemoryBusConfig bus = calibration::serverBus();
    dma::DmaConfig dma = calibration::ioatDma();
    nic::NicConfig nic = calibration::serverNic();
    tcp::TcpConfig tcp = calibration::serverTcp();
    /** Kernel-bypass library parameters (used when transport says so). */
    xpt::BypassConfig bypass = calibration::bypassXpt();
    /** Which transport applications get from Node::transport().  The
     *  kernel TCP stack always exists (it owns ports/telemetry the
     *  benches compare against); `bypass` additionally builds an
     *  xpt::BypassStack that takes over the NIC RX path. */
    TransportKind transport = TransportKind::tcp;
    /** Which I/OAT features to enable (requires the hardware). */
    IoatConfig ioat = IoatConfig::disabled();
    /** Node physically has the I/OAT chipset/NIC (Testbed 1 does;
     *  the Testbed 2 clients do not). */
    bool hasIoatHardware = true;

    /** Convenience: Testbed 1 node with the given feature set. */
    static NodeConfig
    server(IoatConfig features, unsigned ports = 6)
    {
        NodeConfig cfg;
        cfg.nic = calibration::serverNic(ports);
        cfg.ioat = features;
        return cfg;
    }

    /** Convenience: Testbed 2 client node (no I/OAT hardware). */
    static NodeConfig
    client()
    {
        NodeConfig cfg;
        cfg.cpu = calibration::clientCpu();
        cfg.nic = calibration::clientNic();
        cfg.hasIoatHardware = false;
        return cfg;
    }
};

/**
 * One node, owning all of its hardware models and its stack.
 *
 * Registers itself with the simulation's telemetry hub as "node", so
 * `telemetry::Session` picks up every node ("node0.cpu.utilization",
 * "node1.tcp.txPayloadBytes", ...) with no bench-side wiring.
 *
 * A Node is also `sim::Restartable`: attached to a `sim::Lifecycle`
 * (always first, before the daemons living on it), a crash resets the
 * transport stack — every connection aborts, handshake dedup state is
 * forgotten — modelling the kernel state lost with the process.  The
 * hardware models (CPU, cache, bus, NIC) are physical and keep their
 * identity across the crash.
 */
class Node : public sim::telemetry::Instrumented, public sim::Restartable
{
  public:
    Node(Simulation &sim, net::Switch &fabric, const NodeConfig &cfg)
        : sim_(sim), cfg_(applyFeatures(cfg)),
          cpu_(sim, cfg_.cpu),
          cache_(cfg_.l2CacheBytes),
          copy_(cfg_.copy),
          pages_(cfg_.pages),
          bus_(sim, cfg_.bus),
          dma_(cfg_.hasIoatHardware
                   ? std::make_unique<dma::DmaEngine>(sim, cfg_.dma)
                   : nullptr),
          nic_(sim, fabric, cfg_.nic),
          stack_(tcp::Host{sim, cpu_, cache_, copy_, pages_, bus_,
                           dma_.get()},
                 nic_, cfg_.tcp),
          // Built after stack_: its RX-handler registration must win
          // so delivered bursts reach the user-space poll loops.
          bypass_(cfg_.transport == TransportKind::bypass
                      ? std::make_unique<xpt::BypassStack>(
                            tcp::Host{sim, cpu_, cache_, copy_, pages_,
                                      bus_, dma_.get()},
                            nic_, cfg_.bypass)
                      : nullptr),
          tcpXport_(stack_),
          bypXport_(bypass_ ? std::make_unique<sock::BypassTransport>(
                                  *bypass_)
                            : nullptr)
    {
        // Exact name keyed by the cluster-global port id: per-hub
        // auto-numbering would restart per shard.
        sim_.telemetry().addNamed("node" + std::to_string(id()), this);
    }

    ~Node() override { sim_.telemetry().remove(this); }

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    /** Hierarchy walk: publish every hardware model and the stack. */
    void
    instrument(sim::telemetry::Registry &reg) override
    {
        using Scope = sim::telemetry::Registry::Scope;
        {
            Scope s(reg, "cpu");
            cpu_.instrument(reg);
        }
        {
            Scope s(reg, "cache");
            cache_.instrument(reg);
        }
        {
            Scope s(reg, "bus");
            bus_.instrument(reg);
        }
        if (dma_) {
            Scope s(reg, "dma");
            dma_->instrument(reg);
        }
        {
            Scope s(reg, "nic");
            nic_.instrument(reg);
        }
        {
            Scope s(reg, "tcp");
            stack_.instrument(reg);
        }
        if (bypass_) {
            Scope s(reg, "xpt");
            bypass_->instrument(reg);
        }
    }

    /** Forward a trace writer to the models that emit trace events. */
    void
    attachTracer(sim::TraceWriter *t) override
    {
        cpu_.setTracer(t);
        if (dma_)
            dma_->setTracer(t);
    }

    /** @name Crash–restart hooks (sim::Restartable)
     *  @{ */
    void
    onCrash(sim::Tick) override
    {
        stack_.crashReset();
        if (bypass_)
            bypass_->crashReset();
    }
    /** Nothing to rebuild: listeners persist and connections are
     *  re-established lazily by the applications' recovery paths. */
    void onRestart(sim::Tick) override {}
    /** @} */

    net::NodeId id() const { return nic_.id(); }
    const NodeConfig &config() const { return cfg_; }

    /**
     * This node's scheduling lane (see simcore/event_queue.hh):
     * lane 0 is the driver, node i runs on lane i + 1.
     */
    std::uint32_t lane() const { return id() + 1; }

    /**
     * Start a node-affine coroutine: like `simulation().spawn()` but
     * the activity carries this node's lane, so its event keys — and
     * with them the whole run — are invariant under resharding.
     * Driver code spawning work that lives on a node must use this.
     */
    void
    spawn(sim::Coro<void> body)
    {
        sim_.spawnLane(lane(), std::move(body));
    }

    Simulation &simulation() { return sim_; }
    cpu::CpuSet &cpu() { return cpu_; }
    mem::CacheModel &cache() { return cache_; }
    const mem::CopyModel &copyModel() const { return copy_; }
    const mem::PageModel &pageModel() const { return pages_; }
    mem::MemoryBus &bus() { return bus_; }
    dma::DmaEngine *dma() { return dma_.get(); }
    nic::Nic &nic() { return nic_; }
    tcp::TcpStack &stack() { return stack_; }
    /** The bypass stack, when this node is configured for it. */
    xpt::BypassStack *bypassStack() { return bypass_.get(); }

    /**
     * The transport applications should open connections through —
     * the configured one (kernel TCP or kernel bypass).  Application
     * and bench code written against this never names a transport.
     */
    sock::Transport &
    transport()
    {
        if (bypXport_)
            return *bypXport_;
        return tcpXport_;
    }

    /** Non-owning hardware view (for AsyncMemcpy and apps). */
    tcp::Host
    host()
    {
        return tcp::Host{sim_, cpu_, cache_, copy_, pages_, bus_,
                         dma_.get()};
    }

  private:
    /** Translate the IoatConfig into NIC/TCP feature switches. */
    static NodeConfig
    applyFeatures(NodeConfig cfg)
    {
        if (cfg.ioat.any()) {
            sim::simAssert(cfg.hasIoatHardware,
                           "I/OAT features require I/OAT hardware");
        }
        cfg.nic.splitHeader = cfg.ioat.splitHeader;
        cfg.tcp.splitHeader = cfg.ioat.splitHeader;
        cfg.tcp.dmaCopyOffload = cfg.ioat.dmaEngine;
        cfg.nic.rxQueuesPerPort = cfg.ioat.multiQueue ? 4 : 1;
        return cfg;
    }

    Simulation &sim_;
    NodeConfig cfg_;
    cpu::CpuSet cpu_;
    mem::CacheModel cache_;
    mem::CopyModel copy_;
    mem::PageModel pages_;
    mem::MemoryBus bus_;
    std::unique_ptr<dma::DmaEngine> dma_;
    nic::Nic nic_;
    tcp::TcpStack stack_;
    std::unique_ptr<xpt::BypassStack> bypass_;
    sock::TcpTransport tcpXport_;
    std::unique_ptr<sock::BypassTransport> bypXport_;
};

} // namespace ioat::core

#endif // IOAT_CORE_NODE_HH
