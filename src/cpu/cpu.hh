/**
 * @file
 * Multi-core CPU model with utilization accounting.
 *
 * Simulated work is expressed as `co_await cpu.compute(duration)`:
 * the caller occupies one core for that long, queueing FIFO behind
 * other work when all cores are busy.  Kernel/interrupt work can be
 * pinned to a specific core (pre-RSS network stacks process every
 * packet on the core that takes the NIC interrupt — the effect the
 * paper's "multiple receive queues" feature addresses) and can jump
 * the queue with high priority.
 *
 * Measured CPU utilization — the paper's headline metric — is the
 * time-weighted average of busy cores over a measurement window.
 */

#ifndef IOAT_CPU_CPU_HH
#define IOAT_CPU_CPU_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include <algorithm>

#include "simcore/coro.hh"
#include "simcore/sim.hh"
#include "simcore/smallfn.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/trace.hh"
#include "simcore/stats.hh"

namespace ioat::cpu {

using sim::Simulation;
using sim::Tick;

/** Static description of a node's processor complex. */
struct CpuConfig
{
    unsigned cores = 4; ///< Testbed 1: dual-socket dual-core
    /**
     * Normal-priority work longer than this is split into slices so
     * queued interrupt-class work can run in between — the model's
     * stand-in for softirqs preempting application code.  High
     * priority work is never sliced.
     */
    Tick preemptionQuantum = sim::microseconds(50);
};

/**
 * A set of identical cores executing queued work items.
 */
class CpuSet
{
  public:
    /** Pass as @p core to run on whichever core frees up first. */
    static constexpr int kAnyCore = -1;

    CpuSet(Simulation &sim, const CpuConfig &cfg);

    /** Attach a trace writer (nullptr = tracing off). */
    void setTracer(sim::TraceWriter *t) { tracer_ = t; }

    Tick preemptionQuantum() const { return quantum_; }

    unsigned coreCount() const { return static_cast<unsigned>(cores_.size()); }

    /** Awaitable for one unsliced work item. */
    auto
    computeChunk(Tick duration, int core = kAnyCore,
                 bool highPriority = false)
    {
        struct Awaiter
        {
            CpuSet &cpu;
            Tick duration;
            int core;
            bool highPriority;

            bool await_ready() const noexcept { return duration == Tick{0}; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                cpu.submit(duration, core, highPriority,
                           [h] { h.resume(); });
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this, duration, core, highPriority};
    }

    /**
     * Awaitable: occupy one core for @p duration, in preemption-
     * quantum slices unless @p highPriority.
     *
     * Not a coroutine: slicing is driven by a small state machine on
     * the awaiter itself, so one compute() costs no frame allocation
     * no matter how many slices it splits into.
     *
     * @param duration CPU time to consume
     * @param core specific core id, or kAnyCore
     * @param highPriority queue ahead of normal work (interrupts);
     *        runs as one unsliced item
     */
    auto
    compute(Tick duration, int core = kAnyCore, bool highPriority = false)
    {
        struct Awaiter
        {
            CpuSet &cpu;
            Tick left;
            int core;
            bool highPriority;
            std::coroutine_handle<> waiter = nullptr;

            bool await_ready() const noexcept { return left == Tick{0}; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                waiter = h;
                startNext();
            }

            /** Submit the next slice; resubmits from its completion. */
            void
            startNext()
            {
                const Tick slice = highPriority
                                       ? left
                                       : std::min(left, cpu.quantum_);
                left -= slice;
                cpu.submit(slice, core, highPriority, [this] {
                    if (left > Tick{0})
                        startNext();
                    else
                        waiter.resume();
                });
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this, duration, core, highPriority};
    }

    /**
     * Fire-and-forget work item for non-coroutine contexts (device
     * callbacks).  @p done runs when the work completes.
     */
    void submit(Tick duration, int core, bool highPriority,
                sim::SmallFn done);

    /** Busy-core average over the current window, as a fraction 0..1. */
    double utilization() const;

    /** Restart the utilization window (call at measurement start). */
    void resetUtilizationWindow();

    /** Instantaneous number of busy cores. */
    unsigned busyCores() const { return busyCount_; }

    /** Work items waiting for a core right now. */
    std::size_t queuedWork() const;

    /** Total CPU time consumed since construction. */
    Tick totalBusyTicks() const { return totalBusy_; }

    /** Work items executed since construction. */
    std::uint64_t completedItems() const { return completed_.value(); }

    /** Publish CPU telemetry (called under the node's "cpu" scope). */
    void
    instrument(sim::telemetry::Registry &reg)
    {
        reg.scalar(
            "utilization", [this] { return utilization(); },
            "busy-core fraction over the current window");
        reg.scalar(
            "totalBusyTicks",
            [this] { return static_cast<double>(totalBusy_.count()); },
            "CPU time consumed since construction");
        reg.counter("completedItems", completed_, "work items executed");
        reg.probe(
            "busyCores", sim::telemetry::ProbeKind::gauge,
            [this] { return static_cast<double>(busyCount_); },
            "cores busy at the sample instant");
        reg.probe(
            "queuedWork", sim::telemetry::ProbeKind::gauge,
            [this] { return static_cast<double>(queuedWork()); },
            "work items waiting for a core");
    }

  private:
    struct WorkItem
    {
        Tick duration;
        sim::SmallFn done;
        const char *label = "app";
    };

    struct Core
    {
        bool busy = false;
        Tick runStart{};              ///< for tracing
        const char *runLabel = "app"; ///< for tracing
        sim::SmallFn done;          ///< completion of the running item
        std::deque<WorkItem> high;  ///< pinned interrupt-class work
        std::deque<WorkItem> queue; ///< pinned normal work
    };

    void startOn(unsigned core_idx, WorkItem item);
    void finishOn(unsigned core_idx);
    int findIdleCore() const;

    Simulation &sim_;
    sim::TraceWriter *tracer_ = nullptr;
    Tick quantum_;
    std::vector<Core> cores_;
    std::deque<WorkItem> globalHigh_;  ///< interrupt-class, any core
    std::deque<WorkItem> globalQueue_; ///< normal work for any core
    unsigned busyCount_ = 0;
    Tick totalBusy_{};
    sim::stats::TimeWeighted busySignal_{0.0};
    sim::stats::Counter completed_;
};

} // namespace ioat::cpu

#endif // IOAT_CPU_CPU_HH
