/**
 * @file
 * CpuSet implementation: FIFO dispatch over N cores.
 */

#include "cpu/cpu.hh"

#include "simcore/assert.hh"

namespace ioat::cpu {

CpuSet::CpuSet(Simulation &sim, const CpuConfig &cfg)
    : sim_(sim), quantum_(cfg.preemptionQuantum), cores_(cfg.cores)
{
    sim::simAssert(cfg.cores > 0, "CpuSet needs at least one core");
    sim::simAssert(cfg.preemptionQuantum > Tick{0},
                   "preemption quantum must be positive");
}

void
CpuSet::submit(Tick duration, int core, bool highPriority,
               sim::SmallFn done)
{
    sim::simAssert(core == kAnyCore ||
                       (core >= 0 &&
                        core < static_cast<int>(cores_.size())),
                   "CpuSet::submit: bad core id");
    WorkItem item{duration, std::move(done),
                  highPriority ? "softirq" : "app"};

    if (core == kAnyCore) {
        const int idle = findIdleCore();
        if (idle >= 0) {
            startOn(static_cast<unsigned>(idle), std::move(item));
        } else if (highPriority) {
            globalHigh_.push_back(std::move(item));
        } else {
            globalQueue_.push_back(std::move(item));
        }
        return;
    }

    auto &c = cores_[static_cast<unsigned>(core)];
    if (!c.busy) {
        startOn(static_cast<unsigned>(core), std::move(item));
    } else if (highPriority) {
        c.high.push_back(std::move(item));
    } else {
        c.queue.push_back(std::move(item));
    }
}

void
CpuSet::startOn(unsigned core_idx, WorkItem item)
{
    auto &c = cores_[core_idx];
    sim::simAssert(!c.busy, "starting work on a busy core");
    c.busy = true;
    c.runStart = sim_.now();
    c.runLabel = item.label;
    // Park the completion on the core rather than in the finish
    // event's capture: the event then captures two words instead of a
    // whole SmallFn, keeping it inside the queue's inline budget.
    c.done = std::move(item.done);
    ++busyCount_;
    busySignal_.update(sim_.now(), static_cast<double>(busyCount_));
    totalBusy_ += item.duration;

    sim_.queue().scheduleIn(item.duration,
                            [this, core_idx] { finishOn(core_idx); });
}

void
CpuSet::finishOn(unsigned core_idx)
{
    auto &c = cores_[core_idx];
    sim::simAssert(c.busy, "finishing work on an idle core");
    if (tracer_) {
        tracer_->complete(c.runLabel, "cpu", c.runStart,
                          sim_.now() - c.runStart,
                          sim::TraceWriter::Lanes::core0 +
                              static_cast<int>(core_idx));
    }
    c.busy = false;
    --busyCount_;
    busySignal_.update(sim_.now(), static_cast<double>(busyCount_));
    completed_.inc();

    // The next item's startOn overwrites c.done, so move ours out
    // before dispatching; it still runs after the dispatch, exactly
    // as when the finish event carried it.
    sim::SmallFn done = std::move(c.done);

    // Interrupt-class work first (FIFO within each class), pinned
    // work ahead of the global pool.
    auto take = [&](std::deque<WorkItem> &q) {
        WorkItem next = std::move(q.front());
        q.pop_front();
        startOn(core_idx, std::move(next));
    };
    if (!c.high.empty())
        take(c.high);
    else if (!globalHigh_.empty())
        take(globalHigh_);
    else if (!c.queue.empty())
        take(c.queue);
    else if (!globalQueue_.empty())
        take(globalQueue_);

    if (done)
        done();
}

int
CpuSet::findIdleCore() const
{
    for (std::size_t i = 0; i < cores_.size(); ++i)
        if (!cores_[i].busy)
            return static_cast<int>(i);
    return -1;
}

double
CpuSet::utilization() const
{
    return busySignal_.average(sim_.now()) /
           static_cast<double>(cores_.size());
}

void
CpuSet::resetUtilizationWindow()
{
    busySignal_.resetWindow(sim_.now());
}

std::size_t
CpuSet::queuedWork() const
{
    std::size_t n = globalQueue_.size() + globalHigh_.size();
    for (const auto &c : cores_)
        n += c.queue.size() + c.high.size();
    return n;
}

} // namespace ioat::cpu
