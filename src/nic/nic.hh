/**
 * @file
 * Gigabit-Ethernet NIC model.
 *
 * Models the parts of the adapter the paper's features live in:
 *  - multiple physical ports (Testbed 1 has six 1 GbE ports), with
 *    per-port full-duplex serialization and VLAN-style flow→port
 *    pinning (§4: "a separate VLAN for each network adapter ... to
 *    ensure an even distribution of network traffic");
 *  - MTU / jumbo frames (Fig. 5 Case 4);
 *  - TSO capability flag (Fig. 5 Case 3) — the CPU cost difference is
 *    charged by the transport;
 *  - interrupt coalescing (Fig. 5 Case 5);
 *  - split-header delivery flag (I/OAT feature 1);
 *  - multiple receive queues with flow affinity (I/OAT feature 3 —
 *    present in the device model but disabled by default, exactly as
 *    it was in the paper's Linux kernel).
 */

#ifndef IOAT_NIC_NIC_HH
#define IOAT_NIC_NIC_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/burst.hh"
#include "net/switch.hh"
#include "simcore/assert.hh"
#include "simcore/pool.hh"
#include "simcore/sim.hh"
#include "simcore/stats.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/types.hh"

namespace ioat::nic {

using net::Burst;
using net::NodeId;
using sim::Bytes;
using sim::BytesPerSec;
using sim::Simulation;
using sim::Tick;

/** Adapter configuration. */
struct NicConfig
{
    unsigned ports = 1;
    BytesPerSec portRate = BytesPerSec::gbps(1.0);
    /** Maximum transmission unit (payload per frame). */
    std::size_t mtu = 1500;
    /** Per-frame wire overhead: headers, CRC, preamble, IFG. */
    std::size_t frameOverhead = 58;
    /** Adapter segments large sends itself (TSO). */
    bool tso = false;
    /** Adapter separates headers from payload on receive (I/OAT). */
    bool splitHeader = false;
    /**
     * Receive queues per port.  Every port always has its own
     * interrupt line (the testbed spread six ports' interrupts over
     * the cores); the I/OAT "multiple receive queues" feature
     * multiplies that by spreading *flows of one port* over several
     * queues.  The paper could not enable it (disabled in Linux), so
     * 1 is both the default and the evaluated configuration.
     */
    unsigned rxQueuesPerPort = 1;
    /** Wait this long after first packet before interrupting (0 = off). */
    Tick coalesceDelay{};
    /** Interrupt immediately once this many bursts are pending. */
    unsigned coalesceMaxBursts = 32;
    /**
     * Soft-timer polling period (0 = interrupt-driven).  When set,
     * the device never raises interrupts; a periodic soft-timer poll
     * (Aron & Druschel, TOCS'00 — the paper's §7 notes it can
     * co-exist with I/OAT) drains each queue every period, trading
     * bounded extra latency for near-zero notification cost.
     */
    Tick pollingPeriod{};
    /**
     * Descriptor slots per RX queue (0 = unbounded, the seed's
     * idealized adapter).  When bounded, a burst completing into a
     * full ring is a modeled overflow drop: counted, traced, and —
     * with a loss-tolerant transport above — recovered by
     * retransmission instead of being an impossible state.
     */
    unsigned rxRingSlots = 0;
};

/**
 * One adapter complex (all ports of a node), attached to a Switch.
 */
class Nic
{
  public:
    /** Delivered-batch callback: one NIC interrupt's worth of bursts. */
    using RxBatchHandler =
        std::function<void(unsigned queue, std::vector<Burst> &&)>;

    Nic(Simulation &sim, net::Switch &fabric, const NicConfig &cfg)
        : sim_(sim), fabric_(fabric), cfg_(cfg),
          txNextFree_(cfg.ports, Tick{0}), rxNextFree_(cfg.ports, Tick{0}),
          rxQueues_(cfg.ports * cfg.rxQueuesPerPort)
    {
        sim::simAssert(cfg.ports > 0, "NIC needs at least one port");
        sim::simAssert(cfg.rxQueuesPerPort > 0,
                       "NIC needs at least one RX queue per port");
        sim::simAssert(cfg.mtu > 0, "NIC MTU must be positive");
        id_ = fabric_.attach(sim_,
                             [this](const Burst &b) { ingress(b); });
        if (cfg_.pollingPeriod > Tick{0}) {
            for (unsigned q = 0; q < rxQueueCount(); ++q)
                schedulePoll(q);
        }
    }

    ~Nic()
    {
        // In-flight bursts toward a destroyed adapter become switch
        // dead letters instead of invoking a dangling handler.
        fabric_.detach(id_);
    }

    Nic(const Nic &) = delete;
    Nic &operator=(const Nic &) = delete;

    NodeId id() const { return id_; }
    const NicConfig &config() const { return cfg_; }

    /** Inject RX-path faults from site "nic.<id>.rx" (nullptr = off). */
    void
    setFaultInjector(sim::FaultInjector *injector)
    {
        rxFaultSite_ = injector
            ? &injector->site("nic." + std::to_string(id_) + ".rx")
            : nullptr;
        faults_ = injector;
    }

    void setRxHandler(RxBatchHandler h) { rxHandler_ = std::move(h); }

    /** Port a flow is pinned to (both endpoints compute the same). */
    unsigned
    portFor(std::uint64_t flow) const
    {
        return static_cast<unsigned>(flow % cfg_.ports);
    }

    /** Total RX queues (ports × queues-per-port). */
    unsigned
    rxQueueCount() const
    {
        return cfg_.ports * cfg_.rxQueuesPerPort;
    }

    /**
     * RX queue for a flow.  Base queue per port (per-port interrupt
     * line); with the MRQ feature, flows of a port spread over its
     * queuesPerPort queues.
     */
    unsigned
    queueFor(std::uint64_t flow) const
    {
        const unsigned port = portFor(flow);
        if (cfg_.rxQueuesPerPort == 1)
            return port;
        const auto sub = static_cast<unsigned>(
            (flow / cfg_.ports) % cfg_.rxQueuesPerPort);
        return port * cfg_.rxQueuesPerPort + sub;
    }

    /** Frames needed to carry @p payload bytes at the current MTU. */
    std::uint32_t
    framesFor(Bytes payload) const
    {
        if (payload == Bytes{0})
            return 1; // pure control packet
        return static_cast<std::uint32_t>(
            sim::divCeil(payload, Bytes{cfg_.mtu}));
    }

    /** Wire bytes for @p payload, including per-frame overheads. */
    Bytes
    wireBytesFor(Bytes payload) const
    {
        return payload +
               Bytes{framesFor(payload) * cfg_.frameOverhead};
    }

    /** Serialization time of @p wire_bytes on one port. */
    Tick
    wireTime(Bytes wire_bytes) const
    {
        return cfg_.portRate.transferTime(wire_bytes);
    }

    /**
     * Transmit a burst: serialize on the flow's port, then hand to
     * the switch.  Returns the tick at which the last bit leaves.
     */
    Tick
    transmit(Burst burst)
    {
        burst.src = id_;
        const unsigned port = portFor(burst.flow);
        const Tick tx_time = wireTime(Bytes{burst.wireBytes});
        const Tick start = std::max(sim_.now(), txNextFree_[port]);
        const Tick depart = start + tx_time;
        txNextFree_[port] = depart;
        txBytes_.inc(burst.wireBytes);
        if (burst.trace != 0) {
            // Stamp serialization start; the receiving NIC closes the
            // wire span (TX serialize + switch transit + RX DMA).
            burst.traceTxStart = start;
        }

        sim_.queue().schedule(depart, [this, burst] {
            fabric_.forward(burst);
        });
        return depart;
    }

    /** True when notifications come from soft-timer polls. */
    bool pollingMode() const { return cfg_.pollingPeriod > Tick{0}; }

    /**
     * Return a drained RX batch vector so its capacity is reused by a
     * future interrupt instead of reallocated per batch.  Optional —
     * an unreturned batch is simply freed.
     */
    void
    recycleBatch(std::vector<Burst> &&batch)
    {
        batchPool_.release(std::move(batch));
    }

    /** @name Statistics
     *  @{ */
    std::uint64_t txWireBytes() const { return txBytes_.value(); }
    std::uint64_t rxWireBytes() const { return rxBytes_.value(); }
    std::uint64_t interrupts() const { return interrupts_.value(); }
    std::uint64_t softPolls() const { return polls_.value(); }
    std::uint64_t rxBursts() const { return rxBursts_.value(); }
    /** Bursts dropped because an RX ring was full. */
    std::uint64_t rxOverflowDrops() const { return rxOverflows_.value(); }
    /** Bursts dropped by the injected NIC RX fault site. */
    std::uint64_t rxFaultDrops() const { return rxFaultDrops_.value(); }
    /** @} */

    /** Publish NIC telemetry (called under the node's "nic" scope). */
    void
    instrument(sim::telemetry::Registry &reg)
    {
        reg.counter("txWireBytes", txBytes_, "wire bytes transmitted");
        reg.counter("rxWireBytes", rxBytes_, "wire bytes received");
        reg.counter("interrupts", interrupts_, "RX interrupts raised");
        reg.counter("softPolls", polls_, "softirq poll passes");
        reg.counter("rxBursts", rxBursts_, "bursts received");
        reg.counter("rxOverflowDrops", rxOverflows_,
                    "bursts dropped on a full RX ring");
        reg.counter("rxFaultDrops", rxFaultDrops_,
                    "bursts dropped by the NIC RX fault site");
        reg.probe(
            "wireBytes", sim::telemetry::ProbeKind::delta,
            [this] {
                return static_cast<double>(txBytes_.value() +
                                           rxBytes_.value());
            },
            "link bytes (tx+rx) per sample interval");
        reg.probe(
            "rxRingDepth", sim::telemetry::ProbeKind::gauge,
            [this] {
                std::size_t n = 0;
                for (const auto &q : rxQueues_)
                    n += q.pending.size();
                return static_cast<double>(n);
            },
            "bursts waiting in RX descriptor rings, all queues");
    }

  private:
    struct RxQueue
    {
        std::vector<Burst> pending;
        bool irqScheduled = false;
    };

    /** Burst reached our egress link on the switch side. */
    void
    ingress(const Burst &burst)
    {
        const unsigned port = portFor(burst.flow);
        const Tick rx_time = wireTime(Bytes{burst.wireBytes});
        const Tick start = std::max(sim_.now(), rxNextFree_[port]);
        const Tick done = start + rx_time;
        rxNextFree_[port] = done;
        sim_.queue().schedule(done, [this, burst] { rxComplete(burst); });
    }

    /** Last bit of the burst landed in host memory via NIC DMA. */
    void
    rxComplete(const Burst &burst)
    {
        // Wire time was consumed either way; the drop happens at the
        // descriptor ring, after the bits crossed the link.
        rxBytes_.inc(burst.wireBytes);
        auto &q = rxQueues_[queueFor(burst.flow)];
        if (cfg_.rxRingSlots > 0 && q.pending.size() >= cfg_.rxRingSlots) {
            rxOverflows_.inc();
            traceRxDrop("nic:rx-overflow");
            return;
        }
        if (rxFaultSite_ && rxFaultSite_->decide().drop) {
            rxFaultDrops_.inc();
            traceRxDrop("nic:rx-fault-drop");
            return;
        }
        rxBursts_.inc();
        if (burst.trace != 0) {
            // Dropped bursts never get here: their wire time falls to
            // the request's residual (queue-wait), not a wire span.
            if (sim::RequestTracer *rt = sim_.requestTracer())
                rt->record(sim::TraceContext::unpack(burst.trace),
                           "wire", sim::CostCat::wire,
                           burst.traceTxStart, sim_.now(),
                           sim::TraceWriter::Lanes::wire +
                               static_cast<int>(portFor(burst.flow)));
        }
        q.pending.push_back(burst);

        if (cfg_.pollingPeriod > Tick{0}) {
            // Soft-timer mode: the periodic poll will pick it up.
            return;
        }

        if (q.pending.size() >= cfg_.coalesceMaxBursts) {
            fireInterrupt(queueFor(burst.flow));
        } else if (!q.irqScheduled) {
            q.irqScheduled = true;
            sim_.queue().scheduleIn(
                cfg_.coalesceDelay,
                [this, queue = queueFor(burst.flow)] {
                    if (rxQueues_[queue].irqScheduled)
                        fireInterrupt(queue);
                });
        }
    }

    void
    fireInterrupt(unsigned queue)
    {
        auto &q = rxQueues_[queue];
        q.irqScheduled = false;
        if (q.pending.empty())
            return;
        interrupts_.inc();
        std::vector<Burst> batch = std::move(q.pending);
        q.pending = batchPool_.acquire();
        if (rxHandler_)
            rxHandler_(queue, std::move(batch));
    }

    /** Recurring soft-timer poll for one queue. */
    void
    schedulePoll(unsigned queue)
    {
        sim_.queue().scheduleIn(cfg_.pollingPeriod, [this, queue] {
            auto &q = rxQueues_[queue];
            if (!q.pending.empty()) {
                polls_.inc();
                std::vector<Burst> batch = std::move(q.pending);
                q.pending = batchPool_.acquire();
                if (rxHandler_)
                    rxHandler_(queue, std::move(batch));
            }
            schedulePoll(queue);
        });
    }

    void
    traceRxDrop(const char *what)
    {
        if (faults_) {
            if (sim::TraceWriter *tw = faults_->tracer())
                tw->instant(what, "fault", sim_.now(),
                            sim::TraceWriter::Lanes::fault);
        }
    }

    Simulation &sim_;
    net::Switch &fabric_;
    NicConfig cfg_;
    NodeId id_ = net::kInvalidNode;
    RxBatchHandler rxHandler_;
    std::vector<Tick> txNextFree_;
    std::vector<Tick> rxNextFree_;
    std::vector<RxQueue> rxQueues_;
    sim::VectorPool<Burst> batchPool_;
    sim::FaultInjector *faults_ = nullptr;
    sim::FaultSite *rxFaultSite_ = nullptr;
    sim::stats::Counter txBytes_;
    sim::stats::Counter rxBytes_;
    sim::stats::Counter interrupts_;
    sim::stats::Counter polls_;
    sim::stats::Counter rxBursts_;
    sim::stats::Counter rxOverflows_;
    sim::stats::Counter rxFaultDrops_;
};

} // namespace ioat::nic

#endif // IOAT_NIC_NIC_HH
