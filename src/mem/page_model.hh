/**
 * @file
 * Virtual-memory page accounting: pinning costs for DMA.
 *
 * The I/OAT copy engine works on physical addresses, so pages must be
 * pinned before a transfer and transfers split at page boundaries
 * (paper §2.2.2 and §7: "the usefulness of the copy engine becomes
 * questionable if the pinning cost exceeds the copy cost").
 */

#ifndef IOAT_MEM_PAGE_MODEL_HH
#define IOAT_MEM_PAGE_MODEL_HH

#include <cstddef>

#include "simcore/assert.hh"
#include "simcore/types.hh"

namespace ioat::mem {

using sim::Tick;

struct PageModelConfig
{
    std::size_t pageSize = 4096;
    /** get_user_pages()-style cost per pinned page. */
    Tick pinPerPage = sim::nanoseconds(350);
    /** Fixed syscall/locking overhead per pin call. */
    Tick pinCallOverhead = sim::nanoseconds(400);
    /** Release cost per page. */
    Tick unpinPerPage = sim::nanoseconds(120);
};

/** Page-granularity helpers shared by the DMA engine and async memcpy. */
class PageModel
{
  public:
    explicit PageModel(const PageModelConfig &cfg = {}) : cfg_(cfg)
    {
        sim::simAssert(cfg_.pageSize > 0, "page size must be > 0");
    }

    const PageModelConfig &config() const { return cfg_; }
    std::size_t pageSize() const { return cfg_.pageSize; }

    /** Number of pages spanned by a buffer of @p bytes. */
    std::size_t
    pagesFor(std::size_t bytes) const
    {
        return (bytes + cfg_.pageSize - 1) / cfg_.pageSize;
    }

    /** CPU cost to pin a user buffer of @p bytes. */
    Tick
    pinCost(std::size_t bytes) const
    {
        if (bytes == 0)
            return Tick{0};
        return cfg_.pinCallOverhead + cfg_.pinPerPage * pagesFor(bytes);
    }

    /** CPU cost to unpin a previously pinned buffer. */
    Tick
    unpinCost(std::size_t bytes) const
    {
        if (bytes == 0)
            return Tick{0};
        return cfg_.unpinPerPage * pagesFor(bytes);
    }

  private:
    PageModelConfig cfg_;
};

} // namespace ioat::mem

#endif // IOAT_MEM_PAGE_MODEL_HH
