/**
 * @file
 * Front-side-bus / memory-bandwidth contention model.
 *
 * On the paper's 2006-era platform every bulk byte movement — NIC
 * receive DMA, the I/OAT copy engine, CPU copies that miss cache,
 * application streaming — shares one memory interface of a few GB/s.
 * When aggregate demand approaches capacity, every memory-bound
 * operation stretches.  This is the effect that caps large-message
 * throughput below wire speed and makes avoided traffic (split
 * headers, offloaded copies) show up as *throughput*, not just CPU.
 *
 * The model is deliberately simple and stable: consumers report the
 * bytes they move; demand is estimated over a sliding window; the
 * `slowdown()` factor (demand/capacity, floored at 1) is applied by
 * consumers to the memory-bound part of their latencies.  The
 * resulting negative feedback settles demand near capacity.
 */

#ifndef IOAT_MEM_MEMORY_BUS_HH
#define IOAT_MEM_MEMORY_BUS_HH

#include <cstdint>

#include "simcore/sim.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/types.hh"

namespace ioat::mem {

using sim::Bytes;
using sim::BytesPerSec;
using sim::Simulation;
using sim::Tick;

struct MemoryBusConfig
{
    /** Achievable aggregate memory bandwidth. */
    BytesPerSec capacity = BytesPerSec::bytesPerSec(3.2e9);
    /** Demand-estimation window (two half-window buckets). */
    Tick window = sim::microseconds(200);
};

/**
 * Sliding-window estimator of memory-interface demand.
 */
class MemoryBus
{
  public:
    MemoryBus(Simulation &sim, const MemoryBusConfig &cfg = {})
        : sim_(sim), cfg_(cfg), half_(cfg.window / 2)
    {
        sim::simAssert(cfg_.capacity.valid(),
                       "memory bus capacity must be positive");
        sim::simAssert(half_ > Tick{0}, "memory bus window too small");
    }

    const MemoryBusConfig &config() const { return cfg_; }

    /** Report @p bytes moved across the memory interface. */
    void
    consume(Bytes bytes)
    {
        rotate();
        current_ += bytes;
        total_ += bytes;
    }

    /** Estimated demand in bytes/second over the recent window. */
    double
    demandBytesPerSec()
    {
        rotate();
        const double bytes =
            static_cast<double>((current_ + previous_).count());
        // The buckets cover the full previous half-window plus the
        // elapsed part of the current one.
        const Tick coverage = half_ + (sim_.now() - bucketStart_);
        return bytes / sim::toSeconds(coverage);
    }

    /**
     * Multiplier (>= 1) for memory-bound latencies.  1 while demand
     * is under capacity; grows linearly with oversubscription.
     */
    double
    slowdown()
    {
        const double d = demandBytesPerSec();
        const double c = cfg_.capacity.bytesPerSecond();
        return d > c ? d / c : 1.0;
    }

    /** Fraction of capacity in use (can exceed 1 transiently). */
    double
    utilization()
    {
        return demandBytesPerSec() / cfg_.capacity.bytesPerSecond();
    }

    std::uint64_t totalBytes() const { return total_.count(); }

    /** Publish bus telemetry (called under the node's "bus" scope). */
    void
    instrument(sim::telemetry::Registry &reg)
    {
        reg.scalar(
            "totalBytes",
            [this] { return static_cast<double>(total_.count()); },
            "bytes moved across the memory interface");
        reg.scalar(
            "slowdown", [this] { return slowdown(); },
            "memory-bound latency multiplier (>= 1)");
        reg.probe(
            "bytes", sim::telemetry::ProbeKind::delta,
            [this] { return static_cast<double>(total_.count()); },
            "memory-interface bytes per sample interval");
        reg.probe(
            "utilization", sim::telemetry::ProbeKind::gauge,
            [this] { return utilization(); },
            "fraction of bus capacity in use");
    }

  private:
    /** Advance the two half-window buckets to cover the current time. */
    void
    rotate()
    {
        const Tick now = sim_.now();
        while (now >= bucketStart_ + half_) {
            previous_ = current_;
            current_ = Bytes{0};
            bucketStart_ += half_;
            // If we jumped more than a full window, fast-forward.
            if (now >= bucketStart_ + 2 * half_) {
                previous_ = Bytes{0};
                bucketStart_ = now - (now % half_);
            }
        }
    }

    Simulation &sim_;
    MemoryBusConfig cfg_;
    Tick half_;
    Tick bucketStart_{};
    Bytes current_{};
    Bytes previous_{};
    Bytes total_{};
};

} // namespace ioat::mem

#endif // IOAT_MEM_MEMORY_BUS_HH
