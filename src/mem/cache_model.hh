/**
 * @file
 * Capacity-level L2 cache occupancy model.
 *
 * The paper's split-header result (Fig. 7b) is a cache-pollution
 * effect: incoming network payload competes with the application's
 * working set and the stack's header/metadata structures for the 2 MB
 * L2.  We model this at *capacity* granularity: components register
 * footprints; protected ("pinned") footprints — e.g. the split-header
 * pool, which is small and extremely hot — get capacity first, and the
 * remainder is shared proportionally among the rest.
 *
 * residency(id) answers "what fraction of this footprint's lines will
 * a streaming access find in cache", which feeds the copy model.
 */

#ifndef IOAT_MEM_CACHE_MODEL_HH
#define IOAT_MEM_CACHE_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <map>

#include "simcore/assert.hh"
#include "simcore/telemetry/registry.hh"

namespace ioat::mem {

/** Opaque footprint handle. */
using FootprintId = std::uint32_t;

/**
 * Tracks named memory footprints competing for a fixed cache capacity.
 */
class CacheModel
{
  public:
    explicit CacheModel(std::size_t capacity_bytes)
        : capacity_(capacity_bytes)
    {
        sim::simAssert(capacity_bytes > 0, "cache capacity must be > 0");
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * Register a footprint.
     *
     * @param name debugging label
     * @param bytes current size of the working set
     * @param protectedHot model this footprint as winning cache
     *        capacity before the streaming ones (split-header pool,
     *        hot metadata)
     */
    FootprintId
    addFootprint(std::string name, std::size_t bytes,
                 bool protectedHot = false)
    {
        const FootprintId id = nextId_++;
        footprints_.emplace(id, Footprint{std::move(name), bytes,
                                          protectedHot});
        return id;
    }

    /** Update a footprint's size (working sets grow and shrink). */
    void
    resizeFootprint(FootprintId id, std::size_t bytes)
    {
        auto it = footprints_.find(id);
        sim::simAssert(it != footprints_.end(), "unknown footprint");
        it->second.bytes = bytes;
    }

    void
    removeFootprint(FootprintId id)
    {
        footprints_.erase(id);
    }

    /**
     * Stable pointer to a footprint's size for hot per-segment resize
     * paths (the map is node-based, so the pointer stays valid).
     * Valid until the footprint is removed.
     */
    std::size_t *
    sizeSlot(FootprintId id)
    {
        auto it = footprints_.find(id);
        sim::simAssert(it != footprints_.end(), "unknown footprint");
        return &it->second.bytes;
    }

    std::size_t
    footprintSize(FootprintId id) const
    {
        auto it = footprints_.find(id);
        sim::simAssert(it != footprints_.end(), "unknown footprint");
        return it->second.bytes;
    }

    /** Sum of all registered footprints. */
    std::size_t
    totalFootprint() const
    {
        std::size_t sum = 0;
        for (const auto &[id, f] : footprints_)
            sum += f.bytes;
        return sum;
    }

    /**
     * Fraction of this footprint's lines expected resident.
     *
     * Protected footprints claim capacity first (shared
     * proportionally among themselves if they alone exceed capacity);
     * unprotected footprints share what remains in proportion to
     * size.
     */
    double
    residency(FootprintId id) const
    {
        auto it = footprints_.find(id);
        sim::simAssert(it != footprints_.end(), "unknown footprint");
        const Footprint &f = it->second;
        if (f.bytes == 0)
            return 1.0;

        std::size_t protectedSum = 0, streamingSum = 0;
        for (const auto &[fid, fp] : footprints_) {
            if (fp.protectedHot)
                protectedSum += fp.bytes;
            else
                streamingSum += fp.bytes;
        }

        if (f.protectedHot) {
            if (protectedSum <= capacity_)
                return 1.0;
            return static_cast<double>(capacity_) /
                   static_cast<double>(protectedSum);
        }

        const std::size_t left =
            protectedSum >= capacity_ ? 0 : capacity_ - protectedSum;
        if (streamingSum <= left)
            return 1.0;
        if (left == 0)
            return 0.0;
        return static_cast<double>(left) /
               static_cast<double>(streamingSum);
    }

    /**
     * Residency of a hypothetical streaming footprint of @p bytes on
     * top of the current contents (for one-shot transfers that are
     * not worth registering).
     */
    double
    transientResidency(std::size_t bytes) const
    {
        if (bytes == 0)
            return 1.0;
        std::size_t protectedSum = 0, streamingSum = 0;
        for (const auto &[fid, fp] : footprints_) {
            if (fp.protectedHot)
                protectedSum += fp.bytes;
            else
                streamingSum += fp.bytes;
        }
        const std::size_t left =
            protectedSum >= capacity_ ? 0 : capacity_ - protectedSum;
        const std::size_t demand = streamingSum + bytes;
        if (demand <= left)
            return 1.0;
        if (left == 0)
            return 0.0;
        return static_cast<double>(left) / static_cast<double>(demand);
    }

    std::size_t footprintCount() const { return footprints_.size(); }

    /** Publish cache telemetry (called under the node's "cache"
     *  scope). */
    void
    instrument(sim::telemetry::Registry &reg)
    {
        reg.scalar(
            "capacityBytes",
            [this] { return static_cast<double>(capacity_); },
            "modelled L2 capacity");
        reg.scalar(
            "footprints",
            [this] { return static_cast<double>(footprints_.size()); },
            "registered working sets");
        reg.probe(
            "footprintBytes", sim::telemetry::ProbeKind::gauge,
            [this] {
                std::size_t sum = 0;
                for (const auto &[id, f] : footprints_)
                    sum += f.bytes;
                return static_cast<double>(sum);
            },
            "total working-set demand on the cache");
    }

  private:
    struct Footprint
    {
        std::string name;
        std::size_t bytes;
        bool protectedHot;
    };

    std::size_t capacity_;
    FootprintId nextId_ = 1;
    std::map<FootprintId, Footprint> footprints_;
};

} // namespace ioat::mem

#endif // IOAT_MEM_CACHE_MODEL_HH
