/**
 * @file
 * Sliding-window byte counter (two half-window buckets).
 *
 * Used to estimate "how many bytes streamed through X recently",
 * e.g. the cache footprint of in-flight network copies.
 */

#ifndef IOAT_MEM_ROLLING_BYTES_HH
#define IOAT_MEM_ROLLING_BYTES_HH

#include <cstdint>

#include "simcore/assert.hh"
#include "simcore/sim.hh"
#include "simcore/types.hh"

namespace ioat::mem {

using sim::Simulation;
using sim::Tick;

/** Approximate bytes observed in the trailing window. */
class RollingBytes
{
  public:
    RollingBytes(Simulation &sim, Tick window)
        : sim_(sim), half_(window / 2)
    {
        sim::simAssert(half_ > Tick{0}, "RollingBytes window too small");
    }

    void
    add(std::size_t bytes)
    {
        rotate();
        current_ += bytes;
    }

    /** Bytes seen over roughly the last window. */
    std::uint64_t
    estimate()
    {
        rotate();
        return current_ + previous_;
    }

  private:
    void
    rotate()
    {
        const Tick now = sim_.now();
        while (now >= bucketStart_ + half_) {
            previous_ = current_;
            current_ = 0;
            bucketStart_ += half_;
            if (now >= bucketStart_ + 2 * half_) {
                previous_ = 0;
                bucketStart_ = now - (now % half_);
            }
        }
    }

    Simulation &sim_;
    Tick half_;
    Tick bucketStart_{};
    std::uint64_t current_ = 0;
    std::uint64_t previous_ = 0;
};

} // namespace ioat::mem

#endif // IOAT_MEM_ROLLING_BYTES_HH
