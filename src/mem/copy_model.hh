/**
 * @file
 * CPU memory-copy and memory-touch cost model.
 *
 * The paper's receive path spends most of its time in kernel→user
 * copies (§2.2.2), and the cost of a copy depends dramatically on
 * whether source/destination lines are L2-resident.  This model blends
 * a cache-hot rate and a memory-bound (cold) rate by residency
 * fraction; Fig. 6's copy-cache and copy-nocache series are its two
 * extremes.
 */

#ifndef IOAT_MEM_COPY_MODEL_HH
#define IOAT_MEM_COPY_MODEL_HH

#include <cstddef>

#include "simcore/assert.hh"
#include "simcore/types.hh"

namespace ioat::mem {

using sim::Bytes;
using sim::BytesPerSec;
using sim::Tick;

/** Tunable parameters of the copy model (see core/calibration.hh). */
struct CopyModelConfig
{
    /** memcpy throughput with both buffers L2-resident. */
    BytesPerSec hotRate = BytesPerSec::bytesPerSec(4.0e9);
    /** memcpy throughput when the copy streams from/to DRAM. */
    BytesPerSec coldRate = BytesPerSec::bytesPerSec(1.5e9);
    /** Fixed per-call overhead (call, alignment setup). */
    Tick callOverhead = sim::nanoseconds(80);
};

/**
 * Computes CPU time for copies and plain touches (reads/writes) of a
 * buffer, given the fraction of that buffer resident in cache.
 */
class CopyModel
{
  public:
    explicit CopyModel(const CopyModelConfig &cfg = {}) : cfg_(cfg)
    {
        sim::simAssert(cfg_.hotRate.valid() && cfg_.coldRate.valid(),
                       "CopyModel rates must be positive");
    }

    const CopyModelConfig &config() const { return cfg_; }

    /**
     * Time for the CPU to copy @p bytes.
     *
     * @param residency fraction of the involved lines that are
     *        L2-resident (combined source+destination estimate, 0..1).
     * @param busFactor memory-bus slowdown (>= 1) applied to the
     *        memory-bound (cold) component only — cache hits are
     *        unaffected by bus contention.
     */
    Tick
    copyTime(Bytes bytes, double residency = 0.0,
             double busFactor = 1.0) const
    {
        return cfg_.callOverhead + blendedTime(bytes, residency, busFactor);
    }

    /** Time for the CPU to stream-read @p bytes (checksum, parse...). */
    Tick
    touchTime(Bytes bytes, double residency = 0.0,
              double busFactor = 1.0) const
    {
        // Touching costs roughly half a copy (one stream, not two).
        return cfg_.callOverhead / 2 +
               blendedTime(bytes, residency, busFactor) / 2;
    }

    /** Fully cache-resident copy time (Fig. 6 "copy-cache"). */
    Tick hotCopyTime(Bytes bytes) const { return copyTime(bytes, 1.0); }

    /** Fully memory-bound copy time (Fig. 6 "copy-nocache"). */
    Tick coldCopyTime(Bytes bytes) const { return copyTime(bytes, 0.0); }

  private:
    Tick
    blendedTime(Bytes bytes, double residency,
                double busFactor = 1.0) const
    {
        if (residency < 0.0)
            residency = 0.0;
        if (residency > 1.0)
            residency = 1.0;
        if (busFactor < 1.0)
            busFactor = 1.0;
        const double hot_ns =
            static_cast<double>(cfg_.hotRate.transferTime(bytes).count());
        const double cold_ns =
            static_cast<double>(cfg_.coldRate.transferTime(bytes).count());
        return sim::ticksFromDouble(residency * hot_ns +
                                (1.0 - residency) * cold_ns * busFactor);
    }

    CopyModelConfig cfg_;
};

} // namespace ioat::mem

#endif // IOAT_MEM_COPY_MODEL_HH
