/**
 * @file
 * TcpStack / Connection implementation.
 */

#include "tcp/stack.hh"

#include <algorithm>

#include "simcore/assert.hh"
#include "simcore/timeout.hh"

namespace ioat::tcp {

// --------------------------------------------------------------------
// Connection
// --------------------------------------------------------------------

Connection::Connection(Key, TcpStack &stack, std::uint64_t local_token)
    : stack_(stack), localToken_(local_token),
      establishedEvt_(stack.host_.sim),
      creditAvail_(stack.host_.sim),
      rxReady_(stack.host_.sim),
      retransQ_(stack.txSegPool_),
      txActivity_(stack.host_.sim),
      ackProgress_(stack.host_.sim)
{}

sim::Simulation &
Connection::simulation()
{
    return stack_.host_.sim;
}

Coro<void>
Connection::send(std::size_t bytes, SendOptions opts, const MsgMeta *meta)
{
    if (aborted_)
        co_return; // typed failure visible through aborted()
    sim::simAssert(established_, "send on unestablished connection");
    sim::simAssert(!localClosed_, "send after close");
    auto &host = stack_.host_;
    const TcpConfig &cfg = stack_.cfg_;
    sim::RequestTracer *rt = host.sim.requestTracer();
    const bool traced = rt && opts.trace.valid();

    const Tick sys_t0 = host.sim.now();
    co_await host.cpu.compute(cfg.txSyscall);
    if (traced)
        rt->recordComputeSplit(
            opts.trace, sys_t0, host.sim.now(),
            {{"tx.syscall", sim::CostCat::cpu, cfg.txSyscall}});

    std::size_t remaining = bytes;
    while (remaining > 0) {
        const std::size_t seg =
            std::min({remaining, cfg.maxSegment, peerSockBuf_});

        const Tick wait_t0 = host.sim.now();

        // Credit-based flow control against the peer's socket buffer.
        if (cfg.reliable) {
            // A lost credit return must not wedge the window: probe
            // the receiver for a fresh cumulative ack while starved.
            while (credit_ < seg && !aborted_) {
                const bool woke = co_await sim::waitWithTimeout(
                    host.sim, creditAvail_, cfg.persistTimeout);
                if (!woke && credit_ < seg && !aborted_) {
                    stack_.winProbes_.inc();
                    stack_.sendControl(remoteNode_, flow_,
                                       BurstKind::WinProbe, remoteToken_,
                                       0);
                }
            }
        } else {
            while (credit_ < seg && !aborted_)
                co_await creditAvail_.wait();
        }
        if (aborted_)
            co_return;
        credit_ -= seg;
        if (traced && host.sim.now() > wait_t0)
            rt->record(opts.trace, "tx.credit-wait",
                       sim::CostCat::queueWait, wait_t0, host.sim.now());

        const std::uint32_t frames =
            stack_.nic_.framesFor(sim::Bytes{seg});
        Tick cost = cfg.txPerSegment;
        Tick copy_cost{};
        if (opts.zeroCopy) {
            // sendfile(): the NIC reads page-cache pages directly.
            cost += cfg.txSendfileFixed;
        } else {
            // Copy user buffer into kernel socket buffer.
            const double res = host.cache.transientResidency(2 * seg);
            copy_cost = host.copy.copyTime(sim::Bytes{seg}, res,
                                           host.bus.slowdown());
            cost += copy_cost;
            host.bus.consume(sim::Bytes{2 * seg});
            stack_.noteStreamBytes(sim::Bytes{2 * seg});
        }
        Tick frame_cost{};
        if (!stack_.nic_.config().tso)
            frame_cost = cfg.txPerFrame * frames;
        cost += frame_cost;
        const Tick seg_t0 = host.sim.now();
        co_await host.cpu.compute(cost);
        if (traced) {
            // Decompose the single compute() after the fact: protocol
            // work, the copy's cache-hot share vs. its miss penalty,
            // and per-frame costs.  The compute call is never split.
            const Tick hot = std::min(
                host.copy.hotCopyTime(sim::Bytes{seg}), copy_cost);
            rt->recordComputeSplit(
                opts.trace, seg_t0, host.sim.now(),
                {{"tx.proto", sim::CostCat::cpu,
                  opts.zeroCopy ? cfg.txPerSegment + cfg.txSendfileFixed
                                : cfg.txPerSegment},
                 {"tx.copy", sim::CostCat::memcpy, hot},
                 {"tx.copy-miss", sim::CostCat::cache, copy_cost - hot},
                 {"tx.frames", sim::CostCat::cpu, frame_cost}});
        }

        // NIC TX DMA reads the segment from memory.
        host.bus.consume(sim::Bytes{seg});

        Burst b;
        b.dst = remoteNode_;
        b.flow = flow_;
        b.wireBytes = static_cast<std::uint32_t>(
            stack_.nic_.wireBytesFor(sim::Bytes{seg}).count());
        b.frames = frames;
        b.payloadBytes = static_cast<std::uint32_t>(seg);
        b.kind = static_cast<std::uint32_t>(BurstKind::Data);
        b.connToken = remoteToken_;
        if (traced)
            b.trace = opts.trace.pack();
        if (meta && remaining == bytes) { // first segment carries meta
            b.hasMeta = true;
            for (int i = 0; i < net::kBurstMetaWords; ++i)
                b.meta[i] = meta->w[i];
        }
        if (cfg.reliable) {
            b.arg = sndNxt_; // stream offset of the segment's first byte
            TxSegment txSeg;
            txSeg.seq = sndNxt_;
            txSeg.payload = static_cast<std::uint32_t>(seg);
            txSeg.hasMeta = b.hasMeta;
            txSeg.trace = b.trace;
            for (int i = 0; i < net::kBurstMetaWords; ++i)
                txSeg.meta[i] = b.meta[i];
            retransQ_.push_back(txSeg);
            sndNxt_ += seg;
            txActivity_.trigger(); // arm the RTO loop
        }
        stack_.nic_.transmit(b);

        bytesSent_ += seg;
        stack_.txPayload_.inc(seg);
        remaining -= seg;
    }
}

Coro<std::size_t>
Connection::recv(std::size_t max_bytes, sim::TraceContext ctx)
{
    if (aborted_ && rxBuffered_ == 0)
        co_return 0; // failed connection reads as EOF
    sim::simAssert(established_, "recv on unestablished connection");
    sim::simAssert(max_bytes > 0, "recv of zero bytes");
    auto &host = stack_.host_;
    const TcpConfig &cfg = stack_.cfg_;
    sim::RequestTracer *rt = host.sim.requestTracer();

    const Tick sys_t0 = host.sim.now();
    co_await host.cpu.compute(cfg.rxSyscall);
    const Tick sys_t1 = host.sim.now();

    while (rxBuffered_ == 0 && !peerClosed_) {
        rxWaiting_ = true;
        co_await rxReady_.wait();
    }
    rxWaiting_ = false;

    // A sink-style receiver doesn't thread a context; fall back to the
    // one the most recent traced data arrival carried.  The wait for
    // data itself is deliberately *not* recorded: it overlaps the
    // sender/wire spans, whose categories own that time.
    const sim::TraceContext ectx = ctx.valid() ? ctx : rxCtx_;
    const bool traced = rt && ectx.valid();
    if (traced)
        rt->recordComputeSplit(
            ectx, sys_t0, sys_t1,
            {{"rx.syscall", sim::CostCat::cpu, cfg.rxSyscall}});

    if (rxBuffered_ == 0)
        co_return 0; // orderly EOF

    const std::size_t n = std::min(max_bytes, rxBuffered_);
    rxBuffered_ -= n;

    co_await stack_.receiveCopy(sim::Bytes{n},
                                traced ? ectx : sim::TraceContext{});

    bytesReceived_ += n;
    stack_.rxPayload_.inc(n);
    drainedTotal_ += n;

    if (aborted_)
        co_return n; // no point acking a dead peer

    // Return credit to the sender now that the socket buffer drained.
    // Reliable mode acks the cumulative drained total so a lost
    // return only delays (never loses) credit.
    const Tick ack_t0 = host.sim.now();
    co_await host.cpu.compute(cfg.ackGenCost);
    if (traced)
        rt->recordComputeSplit(
            ectx, ack_t0, host.sim.now(),
            {{"rx.ackgen", sim::CostCat::cpu, cfg.ackGenCost}});
    stack_.sendControl(remoteNode_, flow_, BurstKind::Ack, remoteToken_,
                       cfg.reliable ? drainedTotal_ : n);
    co_return n;
}

Coro<std::size_t>
Connection::recvAll(std::size_t bytes, sim::TraceContext ctx)
{
    std::size_t got = 0;
    while (got < bytes) {
        const std::size_t n = co_await recv(bytes - got, ctx);
        if (n == 0)
            break;
        got += n;
    }
    co_return got;
}

MsgMeta
Connection::popMeta()
{
    sim::simAssert(!metaQueue_.empty(), "popMeta on empty meta queue");
    MsgMeta m = metaQueue_.front();
    metaQueue_.pop_front();
    return m;
}

void
Connection::close()
{
    if (localClosed_ || !established_ || aborted_)
        return;
    localClosed_ = true;
    stack_.noteFlowFinished(*this);
    stack_.sendControl(remoteNode_, flow_, BurstKind::Fin, remoteToken_, 0);
    if (stack_.cfg_.reliable)
        txActivity_.trigger(); // let the RTO loop notice and wind down
}

void
Connection::abortLocal()
{
    stack_.abortConnection(*this);
}

// --------------------------------------------------------------------
// Listener
// --------------------------------------------------------------------

Coro<Connection *>
Listener::accept()
{
    auto conn = co_await pending_.recv();
    sim::simAssert(conn.has_value(), "listener closed");
    co_return *conn;
}

// --------------------------------------------------------------------
// TcpStack
// --------------------------------------------------------------------

TcpStack::TcpStack(const Host &host, nic::Nic &nic, const TcpConfig &cfg)
    : host_(host), nic_(nic), cfg_(cfg),
      streamWindow_(host.sim, sim::microseconds(500))
{
    hdrPool_ = host_.cache.addFootprint(
        "tcp.hdrPool", cfg_.headerPoolBytes,
        /*protectedHot=*/cfg_.splitHeader);
    netStream_ = host_.cache.addFootprint("tcp.netStream", 0);
    netStreamSize_ = host_.cache.sizeSlot(netStream_);
    nic_.setRxHandler([this](unsigned queue, std::vector<Burst> &&b) {
        onRxBatch(queue, std::move(b));
    });
    for (unsigned q = 0; q < nic_.rxQueueCount(); ++q) {
        rxChannels_.push_back(
            std::make_unique<sim::Channel<std::vector<Burst>>>(
                host_.sim));
        host_.sim.spawn(softirqLoop(q));
    }
}

TcpStack::~TcpStack()
{
    host_.cache.removeFootprint(hdrPool_);
    host_.cache.removeFootprint(netStream_);
}

void
TcpStack::noteStreamBytes(sim::Bytes bytes)
{
    streamWindow_.add(bytes.count());
    *netStreamSize_ = static_cast<std::size_t>(
        std::min<std::uint64_t>(streamWindow_.estimate(),
                                4 * host_.cache.capacity()));
}

Connection *
TcpStack::newConnection()
{
    const auto token = static_cast<std::uint64_t>(conns_.size());
    conns_.push_back(
        std::make_unique<Connection>(Connection::Key{}, *this, token));
    conns_.back()->openedAt_ = host_.sim.now();
    if (cfg_.reliable)
        host_.sim.spawn(rtoLoop(token));
    return conns_.back().get();
}

Connection *
TcpStack::connFor(std::uint64_t token)
{
    sim::simAssert(token < conns_.size(), "bad connection token");
    return conns_[token].get();
}

void
TcpStack::crashReset()
{
    // The process died: every connection's state is gone.  Aborting
    // (rather than erasing) keeps the tokens of in-flight bursts
    // valid; late deliveries hit the "dead connection" paths.
    for (auto &c : conns_)
        if (!c->aborted_)
            abortConnection(*c);
    // A restarted process has no memory of pre-crash handshakes: a
    // client retrying an old SYN must get a *new* server-side
    // connection, not a resent SYN-ACK for a dead one.
    synSeen_.clear();
}

void
TcpStack::abortConnection(Connection &c)
{
    if (c.aborted_)
        return;
    c.aborted_ = true;
    aborts_.inc();
    noteFlowFinished(c);
    // Release every blocked waiter: connectors, senders, receivers,
    // and the RTO loop all re-check aborted_ once woken.
    c.peerClosed_ = true; // recv() drains what's left, then EOF
    c.establishedEvt_.trigger();
    c.creditAvail_.pulse();
    c.rxReady_.pulse();
    c.ackProgress_.trigger();
    c.txActivity_.trigger();
}

Coro<void>
TcpStack::rtoLoop(std::uint64_t token)
{
    Connection *c = connFor(token);
    Tick rto = cfg_.rtoInitial;
    unsigned attempts = 0;
    for (;;) {
        if (c->aborted_)
            co_return;
        if (c->retransQ_.empty()) {
            if (c->localClosed_)
                co_return; // closed and fully acked: wind down
            c->txActivity_.reset();
            if (c->retransQ_.empty() && !c->localClosed_ && !c->aborted_)
                co_await c->txActivity_.wait();
            rto = cfg_.rtoInitial;
            attempts = 0;
            continue;
        }
        const std::uint64_t una = c->sndUna_;
        c->ackProgress_.reset();
        co_await sim::waitWithTimeout(host_.sim, c->ackProgress_, rto);
        if (c->aborted_)
            co_return;
        if (c->sndUna_ > una || c->retransQ_.empty()) {
            // Ack progress: back off resets.
            rto = cfg_.rtoInitial;
            attempts = 0;
            continue;
        }
        // RTO expired with no progress: go-back-N resend of the
        // oldest segment, exponential backoff, bounded attempts.
        if (++attempts > cfg_.maxRetransmits) {
            abortConnection(*c);
            co_return;
        }
        retransmits_.inc();
        ++c->rtoFires_;
        ++c->retrans_;
        host_.sim.spawn(retransmitTask(token, c->retransQ_.front()));
        rto = std::min(rto * 2, cfg_.rtoMax);
    }
}

Coro<void>
TcpStack::retransmitTask(std::uint64_t token, TxSegment seg)
{
    Connection *c = connFor(token);
    const Tick rtx_t0 = host_.sim.now();
    co_await host_.cpu.compute(cfg_.retransmitCost + cfg_.txPerSegment);
    if (c->aborted_)
        co_return;
    if (sim::RequestTracer *rt = host_.sim.requestTracer();
        rt && seg.trace != 0)
        rt->record(sim::TraceContext::unpack(seg.trace),
                   "tcp.retransmit", sim::CostCat::retx, rtx_t0,
                   host_.sim.now());
    host_.bus.consume(sim::Bytes{seg.payload});
    Burst b;
    b.dst = c->remoteNode_;
    b.flow = c->flow_;
    b.wireBytes = static_cast<std::uint32_t>(
        nic_.wireBytesFor(sim::Bytes{seg.payload}).count());
    b.frames = nic_.framesFor(sim::Bytes{seg.payload});
    b.payloadBytes = seg.payload;
    b.kind = static_cast<std::uint32_t>(BurstKind::Data);
    b.connToken = c->remoteToken_;
    b.arg = seg.seq;
    b.trace = seg.trace;
    if (seg.hasMeta) {
        b.hasMeta = true;
        for (int i = 0; i < net::kBurstMetaWords; ++i)
            b.meta[i] = seg.meta[i];
    }
    nic_.transmit(b);
}

Coro<Connection *>
TcpStack::connect(NodeId remote, std::uint16_t port, Tick timeout)
{
    Connection *c = newConnection();
    c->remoteNode_ = remote;
    c->flow_ = nodeId() * 7919 + flowCounter_++;

    co_await host_.cpu.compute(cfg_.connSetupCost);
    // The SYN advertises our receive buffer; the peer's send credit
    // is bounded by it (and vice versa via the SYN-ACK).
    if (!cfg_.reliable && timeout == Tick{0}) {
        sendControl(remote, c->flow_, BurstKind::Syn, c->localToken_,
                    port, cfg_.sockBuf);
        co_await c->establishedEvt_.wait();
        co_return c;
    }

    // Bounded open: retry the SYN with backoff (reliable mode), or
    // give the single attempt a deadline (explicit timeout).  Either
    // way an unreachable peer yields an aborted() connection, not a
    // hang.
    Tick rto = cfg_.reliable ? cfg_.synRetryTimeout : timeout;
    const unsigned tries = cfg_.reliable ? cfg_.maxSynRetries : 1;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0)
            synRetries_.inc();
        sendControl(remote, c->flow_, BurstKind::Syn, c->localToken_,
                    port, cfg_.sockBuf);
        co_await sim::waitWithTimeout(host_.sim, c->establishedEvt_, rto);
        if (c->established_ || c->aborted_)
            break;
        rto = std::min(rto * 2, cfg_.rtoMax);
    }
    if (!c->established_ && !c->aborted_)
        abortConnection(*c);
    co_return c;
}

Listener &
TcpStack::listen(std::uint16_t port)
{
    auto it = listeners_.find(port);
    if (it == listeners_.end()) {
        it = listeners_
                 .emplace(port, std::make_unique<Listener>(
                                    Listener::Key{}, host_.sim))
                 .first;
    }
    return *it->second;
}

void
TcpStack::sendControl(NodeId dst, std::uint64_t flow, BurstKind kind,
                      std::uint64_t conn_token, std::uint64_t arg,
                      std::uint64_t handshake_sockbuf)
{
    Burst b;
    b.dst = dst;
    b.flow = flow;
    b.wireBytes = static_cast<std::uint32_t>(
        nic_.wireBytesFor(sim::Bytes{0}).count());
    b.frames = 1;
    b.payloadBytes = 0;
    b.kind = static_cast<std::uint32_t>(kind);
    b.connToken = conn_token;
    b.arg = arg;
    if (handshake_sockbuf != 0) {
        b.hasMeta = true;
        b.meta[0] = handshake_sockbuf;
    }
    nic_.transmit(b);
}

int
TcpStack::rxCoreFor(unsigned queue, std::uint64_t /*flow*/) const
{
    // Interrupts are affinitized per *adapter*: the testbed's three
    // cards are dual-port and share one IRQ line each, so two
    // consecutive ports' queues land on the same core.  Within one
    // adapter, only the multiple-receive-queue feature spreads its
    // queues over further cores (paper SS2.2.3: without it,
    // "processing occurs on a single CPU, the CPU which handles the
    // controller's interrupt").
    if (nic_.config().rxQueuesPerPort > 1)
        return static_cast<int>(queue % host_.cpu.coreCount());
    return static_cast<int>((queue / 2) % host_.cpu.coreCount());
}

void
TcpStack::onRxBatch(unsigned queue, std::vector<Burst> &&bursts)
{
    sim::simAssert(queue < rxChannels_.size(), "bad RX queue");
    rxChannels_[queue]->push(std::move(bursts));
}

Coro<void>
TcpStack::softirqLoop(unsigned queue)
{
    for (;;) {
        auto batch = co_await rxChannels_[queue]->recv();
        if (!batch.has_value())
            co_return;
        co_await processBatch(queue, std::move(*batch));
    }
}

Coro<void>
TcpStack::processBatch(unsigned queue, std::vector<Burst> bursts)
{
    const int core = rxCoreFor(queue, bursts.front().flow);

    // NIC receive DMA deposited all of this into host memory.
    std::size_t wire_total = 0;
    for (const auto &b : bursts)
        wire_total += b.wireBytes;
    host_.bus.consume(sim::Bytes{wire_total});
    const double bus_factor = host_.bus.slowdown();
    sim::RequestTracer *rt = host_.sim.requestTracer();

    /** Per-traced-burst attribution shares, anchored after compute. */
    struct RxAttr
    {
        sim::TraceContext ctx;
        Tick off;      ///< cost accumulated before this burst
        Tick driver;
        Tick proto;
        Tick touchHot;
        Tick touchMiss;
        Tick wakeup;
        Tick ack;
    };
    std::vector<RxAttr> attrs;

    // ---- pass 1: accumulate the CPU cost of this softirq batch ----
    Tick cost =
        nic_.pollingMode() ? cfg_.rxPollEntry : cfg_.rxIrqEntry;
    for (const auto &b : bursts) {
        const Tick burst_off = cost;
        cost += cfg_.rxPerFrame * b.frames;
        switch (static_cast<BurstKind>(b.kind)) {
          case BurstKind::Data: {
            const double hdr_res =
                cfg_.splitHeader ? 1.0 : host_.cache.residency(hdrPool_);
            // Convex response: losing the last of the header pool's
            // residency hurts much more than mild pressure (misses
            // compound with DRAM queueing once the pool is evicted).
            const double miss = 1.0 - hdr_res;
            const double factor =
                1.0 + cfg_.rxHdrMissFactor * miss * miss;
            const Tick proto = sim::ticksFromDouble(
                static_cast<double>(cfg_.rxProtoPerFrame.count()) *
                b.frames * factor);
            cost += proto;
            Tick touch_cost{};
            std::size_t touch = 0;
            if (!cfg_.splitHeader && cfg_.rxPayloadTouchFraction > 0.0) {
                // Headers and payload share buffers: protocol work
                // drags payload lines through the cache.
                touch = static_cast<std::size_t>(
                    b.payloadBytes * cfg_.rxPayloadTouchFraction);
                touch_cost = host_.copy.touchTime(sim::Bytes{touch},
                                                  hdr_res, bus_factor);
                cost += touch_cost;
                host_.bus.consume(sim::Bytes{touch});
                noteStreamBytes(sim::Bytes{touch});
            }
            Tick wakeup{};
            if (connFor(b.connToken)->rxWaiting_) {
                wakeup = cfg_.rxWakeup;
                cost += wakeup;
            }
            Tick ack{};
            if (cfg_.reliable) {
                ack = cfg_.ackGenCost; // cumulative DataAck per burst
                cost += ack;
            }
            rxSegments_.inc();
            if (rt && b.trace != 0) {
                RxAttr a;
                a.ctx = sim::TraceContext::unpack(b.trace);
                a.off = burst_off;
                a.driver = cfg_.rxPerFrame * b.frames;
                a.proto = proto;
                if (touch_cost > Tick{}) {
                    const Tick hot = std::min(
                        host_.copy.touchTime(sim::Bytes{touch}, 1.0,
                                             1.0),
                        touch_cost);
                    a.touchHot = hot;
                    a.touchMiss = touch_cost - hot;
                }
                a.wakeup = wakeup;
                a.ack = ack;
                attrs.push_back(a);
            }
            break;
          }
          case BurstKind::Ack:
            cost += cfg_.txAckProcess;
            break;
          case BurstKind::Syn:
            cost += cfg_.connSetupCost;
            break;
          case BurstKind::SynAck:
          case BurstKind::Fin:
          case BurstKind::DataAck:
          case BurstKind::WinProbe:
            cost += cfg_.txAckProcess;
            break;
        }
    }

    co_await host_.cpu.compute(cost, core, /*highPriority=*/true);

    if (rt && !attrs.empty()) {
        // The batch's busy interval is the contiguous tail
        // [t1 - cost, t1]; each burst's shares lie sequentially at its
        // accumulated offset.  The softirq entry cost and control-burst
        // costs stay unattributed (request residue), by design.
        const Tick base = host_.sim.now() - cost;
        for (const auto &a : attrs)
            rt->recordComponents(
                a.ctx, base + a.off, core,
                {{"rx.driver", sim::CostCat::cpu, a.driver},
                 {"rx.proto", sim::CostCat::cpu, a.proto},
                 {"rx.touch", sim::CostCat::memcpy, a.touchHot},
                 {"rx.touch-miss", sim::CostCat::cache, a.touchMiss},
                 {"rx.wakeup", sim::CostCat::cpu, a.wakeup},
                 {"rx.ack", sim::CostCat::cpu, a.ack}});
    }

    // ---- pass 2: apply protocol effects ----
    for (const auto &b : bursts) {
        switch (static_cast<BurstKind>(b.kind)) {
          case BurstKind::Data: {
            Connection *c = connFor(b.connToken);
            if (c->aborted_)
                break; // late segment for a dead connection
            if (!cfg_.reliable) {
                c->rxBuffered_ += b.payloadBytes;
                if (b.trace != 0)
                    c->rxCtx_ = sim::TraceContext::unpack(b.trace);
                if (b.hasMeta) {
                    MsgMeta m;
                    for (int i = 0; i < net::kBurstMetaWords; ++i)
                        m.w[i] = b.meta[i];
                    c->metaQueue_.push_back(m);
                }
                c->rxReady_.pulse();
                break;
            }
            // Go-back-N receiver: accept only the in-order segment;
            // every arrival re-acks the cumulative high-water mark.
            const std::uint64_t seq = b.arg;
            if (seq == c->rcvNxt_) {
                c->rcvNxt_ += b.payloadBytes;
                c->rxBuffered_ += b.payloadBytes;
                if (b.trace != 0)
                    c->rxCtx_ = sim::TraceContext::unpack(b.trace);
                if (b.hasMeta) {
                    MsgMeta m;
                    for (int i = 0; i < net::kBurstMetaWords; ++i)
                        m.w[i] = b.meta[i];
                    c->metaQueue_.push_back(m);
                }
                c->rxReady_.pulse();
            } else if (seq < c->rcvNxt_) {
                rxDups_.inc(); // retransmit of delivered data
            } else {
                rxOoo_.inc(); // gap: discard, sender will resend
            }
            sendControl(b.src, b.flow, BurstKind::DataAck,
                        c->remoteToken_, c->rcvNxt_);
            break;
          }
          case BurstKind::Ack: {
            Connection *c = connFor(b.connToken);
            if (c->aborted_)
                break;
            if (!cfg_.reliable) {
                c->credit_ += b.arg;
                sim::simAssert(c->credit_ <= c->peerSockBuf_,
                               "credit overflow (peer buffer accounting)");
                c->creditAvail_.pulse();
                break;
            }
            // Cumulative credit: arg is the peer's drained total, so
            // a lost return is healed by any later one.
            if (b.arg > c->peerDrained_) {
                c->peerDrained_ = b.arg;
                const std::uint64_t inflight =
                    c->sndNxt_ - c->peerDrained_;
                c->credit_ = c->peerSockBuf_ > inflight
                                 ? c->peerSockBuf_ - inflight
                                 : 0;
                c->creditAvail_.pulse();
            }
            break;
          }
          case BurstKind::DataAck: {
            Connection *c = connFor(b.connToken);
            if (c->aborted_)
                break;
            if (b.arg > c->sndUna_) {
                c->sndUna_ = b.arg;
                while (!c->retransQ_.empty() &&
                       c->retransQ_.front().seq +
                               c->retransQ_.front().payload <=
                           b.arg)
                    c->retransQ_.pop_front();
                c->ackProgress_.trigger();
            }
            break;
          }
          case BurstKind::WinProbe: {
            Connection *c = connFor(b.connToken);
            if (c->aborted_)
                break;
            // Re-solicited credit return (reliable mode only).
            sendControl(b.src, b.flow, BurstKind::Ack, c->remoteToken_,
                        c->drainedTotal_);
            break;
          }
          case BurstKind::Syn: {
            const auto port = static_cast<std::uint16_t>(b.arg);
            auto it = listeners_.find(port);
            if (it == listeners_.end()) {
                sim::fatal("connection attempt to port with no "
                           "listener");
            }
            // A retransmitted SYN must not spawn a second server-side
            // connection: resend the (possibly lost) SYN-ACK instead.
            const auto key = std::make_pair(
                static_cast<std::uint64_t>(b.src), b.flow);
            auto seen = synSeen_.find(key);
            if (seen != synSeen_.end()) {
                Connection *c = connFor(seen->second);
                if (!c->aborted_)
                    sendControl(b.src, b.flow, BurstKind::SynAck,
                                b.connToken, c->localToken_,
                                cfg_.sockBuf);
                break;
            }
            Connection *c = newConnection();
            synSeen_[key] = c->localToken_;
            c->remoteNode_ = b.src;
            c->remoteToken_ = b.connToken;
            c->flow_ = b.flow;
            c->peerSockBuf_ = b.hasMeta ? b.meta[0] : cfg_.sockBuf;
            c->credit_ = c->peerSockBuf_;
            c->established_ = true;
            c->establishedAt_ = host_.sim.now();
            sendControl(b.src, b.flow, BurstKind::SynAck, b.connToken,
                        c->localToken_, cfg_.sockBuf);
            it->second->pending_.push(c);
            break;
          }
          case BurstKind::SynAck: {
            Connection *c = connFor(b.connToken);
            if (c->established_ || c->aborted_)
                break; // duplicate SYN-ACK, or we already gave up
            c->remoteToken_ = b.arg;
            c->peerSockBuf_ = b.hasMeta ? b.meta[0] : cfg_.sockBuf;
            c->credit_ = c->peerSockBuf_;
            c->established_ = true;
            c->establishedAt_ = host_.sim.now();
            handshakeHist_.sample(
                (c->establishedAt_ - c->openedAt_).count());
            c->establishedEvt_.trigger();
            break;
          }
          case BurstKind::Fin: {
            Connection *c = connFor(b.connToken);
            c->peerClosed_ = true;
            c->rxReady_.pulse();
            break;
          }
        }
    }

    // Hand the drained batch vector back to the NIC so the next
    // interrupt reuses its capacity.
    bursts.clear();
    nic_.recycleBatch(std::move(bursts));
}

Coro<void>
TcpStack::receiveCopy(sim::Bytes bytes, sim::TraceContext ctx)
{
    const std::size_t n = bytes.count();
    sim::RequestTracer *rt = host_.sim.requestTracer();
    const bool traced = rt && ctx.valid();
    if (cfg_.dmaCopyOffload && host_.dma && n >= cfg_.dmaCopyBreak) {
        // I/OAT path: pin user pages, build descriptors, let the
        // engine move the bytes while the CPU is free.
        const Tick cpu_cost = host_.pages.pinCost(n) +
                              host_.dma->submissionCost(n);
        const Tick sub_t0 = host_.sim.now();
        co_await host_.cpu.compute(cpu_cost);
        if (traced)
            rt->recordComputeSplit(
                ctx, sub_t0, host_.sim.now(),
                {{"rx.dma-submit", sim::CostCat::cpu, cpu_cost}});
        host_.bus.consume(2 * bytes);
        co_await host_.dma->transfer(
            n, traced ? ctx : sim::TraceContext{});
        const Tick unpin_t0 = host_.sim.now();
        const Tick unpin_cost = host_.pages.unpinCost(n);
        co_await host_.cpu.compute(unpin_cost);
        if (traced)
            rt->recordComputeSplit(
                ctx, unpin_t0, host_.sim.now(),
                {{"rx.unpin", sim::CostCat::cpu, unpin_cost}});
        dmaCopies_.inc();
    } else {
        // Classic CPU copy.  The source (freshly DMA-written kernel
        // buffer) is cold; destination residency depends on load.
        const double res =
            0.4 * host_.cache.transientResidency(n);
        const Tick t =
            host_.copy.copyTime(bytes, res, host_.bus.slowdown());
        const Tick copy_t0 = host_.sim.now();
        co_await host_.cpu.compute(t);
        if (traced) {
            const Tick hot = std::min(host_.copy.hotCopyTime(bytes), t);
            rt->recordComputeSplit(
                ctx, copy_t0, host_.sim.now(),
                {{"rx.copy", sim::CostCat::memcpy, hot},
                 {"rx.copy-miss", sim::CostCat::cache, t - hot}});
        }
        host_.bus.consume(2 * bytes);
        noteStreamBytes(2 * bytes);
        cpuCopies_.inc();
    }
}

void
TcpStack::noteFlowFinished(Connection &c)
{
    if (!c.established_ || c.finishedAt_ > Tick{0})
        return;
    c.finishedAt_ = host_.sim.now();
    lifetimeHist_.sample((c.finishedAt_ - c.establishedAt_).count());
}

void
TcpStack::instrument(sim::telemetry::Registry &reg)
{
    reg.counter("txPayloadBytes", txPayload_, "payload bytes sent");
    reg.counter("rxPayloadBytes", rxPayload_,
                "payload bytes delivered to apps");
    reg.counter("rxSegments", rxSegments_, "data segments received");
    reg.counter("dmaCopies", dmaCopies_,
                "recv copies offloaded to the DMA engine");
    reg.counter("cpuCopies", cpuCopies_, "recv copies done by the CPU");
    reg.counter("retransmits", retransmits_,
                "data segments resent by the RTO path");
    reg.counter("rxDuplicateSegments", rxDups_,
                "already-delivered segments received");
    reg.counter("rxOutOfOrderDrops", rxOoo_, "go-back-N discards");
    reg.counter("windowProbes", winProbes_,
                "persist probes while credit-starved");
    reg.counter("synRetries", synRetries_, "SYN retransmissions");
    reg.counter("abortedConnections", aborts_,
                "connections that gave up after retry exhaustion");
    reg.scalar(
        "connections",
        [this] { return static_cast<double>(conns_.size()); },
        "connections created");
    reg.probe(
        "usableConns", sim::telemetry::ProbeKind::gauge,
        [this] {
            std::size_t n = 0;
            for (const auto &c : conns_)
                if (c->usable())
                    ++n;
            return static_cast<double>(n);
        },
        "established, unaborted, peer-open connections");
    reg.probe(
        "creditBytes", sim::telemetry::ProbeKind::gauge,
        [this] {
            std::uint64_t n = 0;
            for (const auto &c : conns_)
                n += c->credit_;
            return static_cast<double>(n);
        },
        "unused peer-socket-buffer send credit, all connections");
    reg.probe(
        "unackedBytes", sim::telemetry::ProbeKind::gauge,
        [this] {
            std::uint64_t n = 0;
            for (const auto &c : conns_)
                n += c->sndNxt_ - c->sndUna_;
            return static_cast<double>(n);
        },
        "sent-but-unacked stream bytes (the RTO window)");
    reg.histogram("handshakeTicks", handshakeHist_,
                  "active-open handshake latency (ticks)");
    reg.histogram("flowLifetimeTicks", lifetimeHist_,
                  "established -> FIN/abort (ticks)");
    reg.flows("flows", [this] {
        std::vector<sim::telemetry::FlowSample> out;
        out.reserve(conns_.size());
        for (const auto &c : conns_) {
            sim::telemetry::FlowSample f;
            f.flow = c->flow();
            f.bytesSent = c->bytesSent();
            f.bytesReceived = c->bytesReceived();
            f.retransmits = c->flowRetransmits();
            f.rtoFires = c->rtoFires();
            f.handshakeLatency = c->handshakeLatency();
            f.finLatency = c->finLatency();
            f.open = c->usable();
            out.push_back(f);
        }
        return out;
    });
}

} // namespace ioat::tcp
