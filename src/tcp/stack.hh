/**
 * @file
 * The transport stack: connections, flow control and — critically —
 * the sender/receiver CPU cost accounting the paper measures.
 *
 * Data is virtual (only byte counts move); what the stack simulates
 * faithfully is *where time goes*: syscalls, per-frame protocol work,
 * kernel↔user copies (CPU or I/OAT DMA engine), interrupts, wakeups,
 * credit returns, and their interaction with the cache and memory-bus
 * models.
 *
 * Flow control is credit-based: a sender may have at most the peer's
 * socket-buffer size outstanding; credit returns when the receiving
 * *application* drains bytes with recv(), which is what couples
 * receiver CPU load to achieved bandwidth (the paper's central
 * effect).
 */

#ifndef IOAT_TCP_STACK_HH
#define IOAT_TCP_STACK_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/rolling_bytes.hh"
#include "net/burst.hh"
#include "nic/nic.hh"
#include "simcore/channel.hh"
#include "simcore/coro.hh"
#include "simcore/pool.hh"
#include "simcore/reqtrace.hh"
#include "simcore/stats.hh"
#include "simcore/sync.hh"
#include "simcore/telemetry/histogram.hh"
#include "simcore/telemetry/registry.hh"
#include "sock/types.hh"
#include "tcp/config.hh"
#include "tcp/host.hh"

namespace ioat::tcp {

using net::Burst;
using net::NodeId;
using sim::Coro;
using sim::Tick;

class TcpStack;

/** Transport-level packet types carried in Burst::kind. */
enum class BurstKind : std::uint32_t {
    Syn = 1,
    SynAck = 2,
    Data = 3,
    Ack = 4, ///< credit return
    Fin = 5,
    DataAck = 6,  ///< cumulative sequence ack (reliable mode)
    WinProbe = 7, ///< persist probe re-soliciting a credit return
};

/**
 * Sender-side copy of one in-flight data segment, kept until it is
 * cumulatively acked so an RTO can rebuild and resend it.
 */
struct TxSegment
{
    std::uint64_t seq = 0;      ///< stream offset of the first byte
    std::uint32_t payload = 0;  ///< segment payload bytes
    bool hasMeta = false;       ///< first segment of a message
    std::uint64_t meta[net::kBurstMetaWords] = {};
    std::uint64_t trace = 0;    ///< packed TraceContext (0 = untraced)
};

/** Per-send options: now a first-class sock:: type (migration alias). */
using SendOptions = sock::SendOptions;

/** In-band message metadata: now a first-class sock:: type. */
using MsgMeta = sock::MsgMeta;

/**
 * One established connection (single writer, single reader).
 *
 * Owned by its TcpStack; applications hold non-owning pointers.
 */
class Connection
{
  public:
    /**
     * Blocking send of @p bytes.  Returns when the last byte has been
     * accepted by the NIC (credit may stall us on the peer's buffer).
     *
     * @param meta optional application header delivered to the
     *        peer's metadata queue together with the first segment.
     */
    Coro<void> send(std::size_t bytes, SendOptions opts = {},
                    const MsgMeta *meta = nullptr);

    /** Pop the oldest delivered application header. */
    MsgMeta popMeta();

    /** Number of delivered-but-unpopped application headers. */
    std::size_t metaAvailable() const { return metaQueue_.size(); }

    /**
     * Blocking receive: waits for data, drains up to @p max_bytes
     * from the socket buffer (kernel→user copy happens here).
     * @param ctx request context the copy is attributed to; when
     *        invalid, the last context seen on arriving data is used.
     * @return bytes received; 0 means the peer closed.
     */
    Coro<std::size_t> recv(std::size_t max_bytes,
                           sim::TraceContext ctx = {});

    /** Receive exactly @p bytes (looping) unless the peer closes. */
    Coro<std::size_t> recvAll(std::size_t bytes,
                              sim::TraceContext ctx = {});

    /** Half-close: peer's recv() returns 0 after draining. */
    void close();

    /**
     * Locally abort the connection (the simulated equivalent of
     * closing a stuck socket): blocked send()/recv() callers are
     * released, recv() returns 0, later send()s are no-ops, and
     * `aborted()` reports the typed failure.  Also how the stack
     * surfaces retry exhaustion instead of hanging.
     */
    void abortLocal();

    bool established() const { return established_; }
    /** True once the connection failed (RTO exhaustion or abortLocal). */
    bool aborted() const { return aborted_; }
    /** Established, not aborted, peer still open: safe to use. */
    bool
    usable() const
    {
        return established_ && !aborted_ && !peerClosed_;
    }
    bool peerClosed() const { return peerClosed_; }
    /** Peer receive-buffer size learned in the handshake. */
    std::size_t peerSockBuf() const { return peerSockBuf_; }
    std::size_t rxAvailable() const { return rxBuffered_; }
    std::uint64_t flow() const { return flow_; }
    NodeId remoteNode() const { return remoteNode_; }

    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesReceived() const { return bytesReceived_; }

    /** @name Flow telemetry (see telemetry::FlowSample)
     *  @{ */
    /** Data segments this connection resent via the RTO path. */
    std::uint64_t flowRetransmits() const { return retrans_; }
    /** Retransmission timeouts that fired on this connection. */
    std::uint64_t rtoFires() const { return rtoFires_; }
    /** connect()/accept -> established (0 until established). */
    Tick
    handshakeLatency() const
    {
        return established_ ? establishedAt_ - openedAt_ : Tick{0};
    }
    /** established -> local FIN/abort (0 while still open). */
    Tick
    finLatency() const
    {
        return finishedAt_ > Tick{0} ? finishedAt_ - establishedAt_
                                     : Tick{0};
    }
    /** @} */

    /** The simulation this connection's stack runs in. */
    sim::Simulation &simulation();

    /** Passkey: only TcpStack can mint one, so construction stays
     *  stack-owned while std::make_unique does the allocation. */
    class Key
    {
        friend class TcpStack;
        Key() = default;
    };

    Connection(Key, TcpStack &stack, std::uint64_t local_token);

  private:
    friend class TcpStack;

    TcpStack &stack_;
    std::uint64_t localToken_;
    std::uint64_t remoteToken_ = 0;
    NodeId remoteNode_ = net::kInvalidNode;
    std::uint64_t flow_ = 0;
    bool established_ = false;
    sim::Event establishedEvt_;

    // --- sender state ---
    std::size_t credit_ = 0;      ///< unused peer-buffer bytes
    std::size_t peerSockBuf_ = 0; ///< learned during the handshake
    sim::Event creditAvail_;

    // --- receiver state ---
    std::size_t rxBuffered_ = 0; ///< bytes in the kernel socket buffer
    bool rxWaiting_ = false;     ///< a recv() is blocked on data
    sim::Event rxReady_;
    bool peerClosed_ = false;
    bool localClosed_ = false;
    std::deque<MsgMeta> metaQueue_; ///< delivered application headers
    /** Context of the most recent traced data arrival: lets recv()
     *  attribute its copy when the caller didn't thread a context
     *  (sink-style receivers). */
    sim::TraceContext rxCtx_{};

    // --- loss tolerance (live only with TcpConfig::reliable) ---
    bool aborted_ = false;
    std::uint64_t sndNxt_ = 0;       ///< next stream offset to send
    std::uint64_t sndUna_ = 0;       ///< oldest unacked stream offset
    std::uint64_t peerDrained_ = 0;  ///< cumulative bytes peer app drained
    std::uint64_t rcvNxt_ = 0;       ///< next expected stream offset
    std::uint64_t drainedTotal_ = 0; ///< cumulative bytes our app drained
    /** Sent-but-unacked segments; nodes come from the stack's arena. */
    sim::PooledFifo<TxSegment> retransQ_;
    sim::Event txActivity_;          ///< retransQ went non-empty / closed
    sim::Event ackProgress_;         ///< sndUna_ advanced (or abort)

    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;

    // --- flow telemetry ---
    std::uint64_t retrans_ = 0;  ///< segments resent on this flow
    std::uint64_t rtoFires_ = 0; ///< RTO expiries on this flow
    Tick openedAt_{};            ///< connection object creation
    Tick establishedAt_{};       ///< handshake completion
    Tick finishedAt_{};          ///< local FIN or abort (0 = open)
};

/**
 * Passive endpoint: a queue of connections accepted on a port.
 */
class Listener
{
  public:
    /** Awaitable: next established connection on this port. */
    Coro<Connection *> accept();

    /** Passkey: see Connection::Key. */
    class Key
    {
        friend class TcpStack;
        Key() = default;
    };

    Listener(Key, sim::Simulation &sim) : pending_(sim) {}

  private:
    friend class TcpStack;

    sim::Channel<Connection *> pending_;
};

/**
 * One node's transport stack, bound to its NIC and hardware models.
 */
class TcpStack
{
  public:
    TcpStack(const Host &host, nic::Nic &nic, const TcpConfig &cfg);
    ~TcpStack();

    TcpStack(const TcpStack &) = delete;
    TcpStack &operator=(const TcpStack &) = delete;

    /**
     * Active open to (remote node, port).
     *
     * With `TcpConfig::reliable`, the SYN is retried with backoff and
     * the returned connection may come back `aborted()` instead of
     * hanging when the peer is unreachable.  A nonzero @p timeout
     * bounds the wait the same way for non-reliable stacks (0 = wait
     * forever, the seed behaviour).
     */
    Coro<Connection *> connect(NodeId remote, std::uint16_t port,
                               Tick timeout = Tick{0});

    /** Passive open; one listener per port. */
    Listener &listen(std::uint16_t port);

    /**
     * Process-crash semantics (used by sim::Lifecycle): abort every
     * connection — blocked senders/receivers/connectors are released
     * and see the typed failure — and forget the SYN-dedup state, as
     * a freshly exec'd process would.  Listeners persist: the restart
     * re-listens on the same ports, so the accept loops parked on
     * them simply start receiving post-restart connections.
     */
    void crashReset();

    const TcpConfig &config() const { return cfg_; }
    const Host &host() const { return host_; }
    nic::Nic &nicDev() { return nic_; }
    NodeId nodeId() const { return nic_.id(); }

    /** @name Stack-level statistics
     *  @{ */
    std::uint64_t txPayloadBytes() const { return txPayload_.value(); }
    std::uint64_t rxPayloadBytes() const { return rxPayload_.value(); }
    std::uint64_t rxSegments() const { return rxSegments_.value(); }
    std::uint64_t dmaOffloadedCopies() const { return dmaCopies_.value(); }
    std::uint64_t cpuCopies() const { return cpuCopies_.value(); }
    /** Data segments resent by the RTO path. */
    std::uint64_t retransmits() const { return retransmits_.value(); }
    /** Received data segments below rcvNxt (already-delivered dups). */
    std::uint64_t rxDuplicateSegments() const { return rxDups_.value(); }
    /** Received data segments beyond rcvNxt (go-back-N discards). */
    std::uint64_t rxOutOfOrderDrops() const { return rxOoo_.value(); }
    /** Persist probes sent while credit-starved. */
    std::uint64_t windowProbes() const { return winProbes_.value(); }
    /** SYN retransmissions during active opens. */
    std::uint64_t synRetries() const { return synRetries_.value(); }
    /** Connections that gave up after retry exhaustion. */
    std::uint64_t abortedConnections() const { return aborts_.value(); }
    /** @} */

    /**
     * Publish counters, handshake/lifetime histograms, the live-
     * connection probe and the per-flow table (called by the owning
     * Node's hierarchy walk under its "tcp" scope).
     */
    void instrument(sim::telemetry::Registry &reg);

  private:
    friend class Connection;

    /** NIC interrupt entry point. */
    void onRxBatch(unsigned queue, std::vector<Burst> &&bursts);

    /**
     * Per-queue softirq service loop (NAPI-style): batches of one RX
     * queue are processed strictly in order, one at a time.
     */
    Coro<void> softirqLoop(unsigned queue);

    /** Process one interrupt's worth of bursts. */
    Coro<void> processBatch(unsigned queue, std::vector<Burst> bursts);

    /** Core that services interrupts for a given flow's port. */
    int rxCoreFor(unsigned queue, std::uint64_t flow) const;

    /**
     * Transmit a zero-payload control burst on a connection's flow.
     * @param handshake_sockbuf nonzero on SYN/SYN-ACK: advertises the
     *        local receive buffer to bound the peer's send credit.
     */
    void sendControl(NodeId dst, std::uint64_t flow, BurstKind kind,
                     std::uint64_t conn_token, std::uint64_t arg,
                     std::uint64_t handshake_sockbuf = 0);

    /** Kernel→user copy inside recv() (CPU or DMA-engine path). */
    Coro<void> receiveCopy(sim::Bytes bytes, sim::TraceContext ctx = {});

    /** Record CPU-streamed payload bytes (cache-pollution tracking). */
    void noteStreamBytes(sim::Bytes bytes);

    /** @name Loss-tolerance machinery (reliable mode only)
     *  @{ */
    /** Per-connection retransmission timer (spawned when reliable). */
    Coro<void> rtoLoop(std::uint64_t token);
    /** Rebuild and resend the oldest unacked segment. */
    Coro<void> retransmitTask(std::uint64_t token, TxSegment seg);
    /** Mark @p c failed and release every blocked waiter on it. */
    void abortConnection(Connection &c);
    /** @} */

    Connection *newConnection();
    Connection *connFor(std::uint64_t token);

    Host host_;
    nic::Nic &nic_;
    TcpConfig cfg_;

    /**
     * Shared arena for every connection's retransmission queue —
     * declared before conns_ so it outlives the queues built on it.
     */
    sim::PooledFifo<TxSegment>::NodePool txSegPool_;

    std::vector<std::unique_ptr<Connection>> conns_;
    std::unordered_map<std::uint16_t, std::unique_ptr<Listener>> listeners_;
    std::uint64_t flowCounter_ = 0;
    /** (src node, flow) → local token: dedups retransmitted SYNs. */
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        synSeen_;

    /** One pending-batch channel per RX queue (softirq mailboxes). */
    std::vector<std::unique_ptr<sim::Channel<std::vector<Burst>>>>
        rxChannels_;

    /** Header/metadata pool footprint (protected iff split-header). */
    mem::FootprintId hdrPool_;
    /** Streaming payload footprint from recent CPU copies/touches. */
    mem::FootprintId netStream_;
    /** Cached size slot: noteStreamBytes runs per segment. */
    std::size_t *netStreamSize_ = nullptr;
    mem::RollingBytes streamWindow_;

    sim::stats::Counter txPayload_;
    sim::stats::Counter rxPayload_;
    sim::stats::Counter rxSegments_;
    sim::stats::Counter dmaCopies_;
    sim::stats::Counter cpuCopies_;
    sim::stats::Counter retransmits_;
    sim::stats::Counter rxDups_;
    sim::stats::Counter rxOoo_;
    sim::stats::Counter winProbes_;
    sim::stats::Counter synRetries_;
    sim::stats::Counter aborts_;

    /** Active-open handshake latency distribution (ticks). */
    sim::telemetry::Histogram handshakeHist_;
    /** Flow lifetime, established -> FIN/abort (ticks). */
    sim::telemetry::Histogram lifetimeHist_;

    /** Record the FIN/abort instant once per connection. */
    void noteFlowFinished(Connection &c);
};

} // namespace ioat::tcp

#endif // IOAT_TCP_STACK_HH
