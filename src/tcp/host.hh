/**
 * @file
 * Bundle of one node's hardware models, as seen by the protocol stack.
 *
 * Construction/ownership lives in core::Node; the stack and the
 * applications only ever borrow these references.
 */

#ifndef IOAT_TCP_HOST_HH
#define IOAT_TCP_HOST_HH

#include "cpu/cpu.hh"
#include "dma/dma_engine.hh"
#include "mem/cache_model.hh"
#include "mem/copy_model.hh"
#include "mem/memory_bus.hh"
#include "mem/page_model.hh"
#include "simcore/sim.hh"

namespace ioat::tcp {

/** Non-owning view of a node's hardware. */
struct Host
{
    sim::Simulation &sim;
    cpu::CpuSet &cpu;
    mem::CacheModel &cache;
    mem::CopyModel &copy;
    mem::PageModel &pages;
    mem::MemoryBus &bus;
    /** Copy-offload engine; nullptr on platforms without I/OAT. */
    dma::DmaEngine *dma = nullptr;
};

} // namespace ioat::tcp

#endif // IOAT_TCP_HOST_HH
