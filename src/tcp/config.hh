/**
 * @file
 * Transport configuration: flow-control sizes, feature switches and
 * the per-operation CPU cost table.
 *
 * The cost values are calibrated against the paper's Testbed 1 (dual
 * dual-core 3.46 GHz Xeon, Linux 2.6, e1000-class NICs); see
 * core/calibration.hh for the derivation of each number from the
 * paper's figures.
 */

#ifndef IOAT_TCP_CONFIG_HH
#define IOAT_TCP_CONFIG_HH

#include <cstddef>

#include "simcore/types.hh"

namespace ioat::tcp {

using sim::Tick;

struct TcpConfig
{
    /** @name Flow control and segmentation
     *  @{ */
    /** Receiver kernel socket buffer = flow-control credit. */
    std::size_t sockBuf = 256 * 1024;
    /** Largest segment handed to the NIC in one burst. */
    std::size_t maxSegment = 64 * 1024;
    /** @} */

    /** @name I/OAT receive-path features (paper §2.2)
     *  @{ */
    /** Offload kernel→user receive copies to the DMA engine. */
    bool dmaCopyOffload = false;
    /** NIC separates headers from payload (cache-locality feature). */
    bool splitHeader = false;
    /** Minimum receive copy size routed to the DMA engine. */
    std::size_t dmaCopyBreak = 4096;
    /** @} */

    /** @name Sender-side CPU costs
     *  @{ */
    /** Entry/exit of a send syscall. */
    Tick txSyscall = sim::nanoseconds(700);
    /** Per-segment bookkeeping (skb alloc, descriptor, doorbell). */
    Tick txPerSegment = sim::nanoseconds(500);
    /** Per-frame segmentation work when the NIC lacks TSO. */
    Tick txPerFrame = sim::nanoseconds(1200);
    /** Fixed cost of a zero-copy (sendfile) segment. */
    Tick txSendfileFixed = sim::nanoseconds(600);
    /** Processing an incoming ACK/credit return. */
    Tick txAckProcess = sim::nanoseconds(400);
    /** @} */

    /** @name Receiver-side CPU costs
     *  @{ */
    /** Interrupt entry/exit + NAPI scheduling, per interrupt. */
    Tick rxIrqEntry = sim::nanoseconds(1800);
    /** Soft-timer poll entry (piggybacks on existing kernel events). */
    Tick rxPollEntry = sim::nanoseconds(300);
    /** Driver ring processing per frame. */
    Tick rxPerFrame = sim::nanoseconds(600);
    /** TCP/IP protocol processing per frame, headers cache-hot. */
    Tick rxProtoPerFrame = sim::nanoseconds(1400);
    /** Extra proto multiplier when header lines all miss; applied as
     *  1 + factor * (1 - residency)^2 (convex in pollution). */
    double rxHdrMissFactor = 6.0;
    /**
     * Fraction of payload the CPU streams through cache during
     * protocol processing when headers and data share buffers
     * (i.e. when split-header is off).
     */
    double rxPayloadTouchFraction = 0.6;
    /** Waking a blocked receiver. */
    Tick rxWakeup = sim::nanoseconds(900);
    /** Entry/exit of a recv syscall. */
    Tick rxSyscall = sim::nanoseconds(700);
    /** Building and sending a credit-return (ACK) packet. */
    Tick ackGenCost = sim::nanoseconds(300);
    /** @} */

    /** @name Connection management
     *  @{ */
    /** Handshake CPU cost per endpoint. */
    Tick connSetupCost = sim::microseconds(5);
    /** Size of the header/metadata pool footprint (skbs, PCBs). */
    std::size_t headerPoolBytes = 256 * 1024;
    /** @} */

    /** @name Loss tolerance
     * The paper's testbed is lossless, so everything here defaults to
     * off and the fast path stays bit-identical to the seed model.
     * With `reliable` on, data segments carry stream sequence numbers,
     * the receiver acks cumulatively, and a per-connection RTO timer
     * (exponential backoff) drives go-back-N retransmission; credit
     * returns become cumulative so a lost ack can never wedge the
     * window, and a persist probe re-solicits credit when starved.
     *  @{ */
    /** Master gate: sequence/ack tracking + RTO retransmission. */
    bool reliable = false;
    /** Initial retransmission timeout. */
    Tick rtoInitial = sim::milliseconds(3);
    /** Ceiling for the exponential RTO backoff. */
    Tick rtoMax = sim::milliseconds(200);
    /** RTO expiries without ack progress before the connection aborts. */
    unsigned maxRetransmits = 8;
    /** Probe period while blocked on (possibly lost) credit returns. */
    Tick persistTimeout = sim::milliseconds(10);
    /** Initial SYN retransmission timeout (also backed off). */
    Tick synRetryTimeout = sim::milliseconds(5);
    /** SYN (re)transmissions before an active open aborts. */
    unsigned maxSynRetries = 5;
    /** CPU cost to rebuild and requeue one retransmitted segment. */
    Tick retransmitCost = sim::nanoseconds(2000);
    /** @} */
};

} // namespace ioat::tcp

#endif // IOAT_TCP_CONFIG_HH
