/**
 * @file
 * PVFS striping layout (Carns et al., ALS 2000).
 *
 * Files are striped round-robin across N I/O servers in fixed-size
 * stripe units.  `split()` maps a contiguous byte range of a file to
 * the per-server byte counts — contiguous per server, so the client
 * issues exactly one request per server holding data.
 */

#ifndef IOAT_PVFS_LAYOUT_HH
#define IOAT_PVFS_LAYOUT_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/assert.hh"

namespace ioat::pvfs {

/** One server's share of a striped range. */
struct StripeChunk
{
    unsigned server;      ///< I/O server index 0..N-1
    std::uint64_t offset; ///< byte offset within that server's stream
    std::size_t bytes;    ///< contiguous bytes this server owns
};

/** One server's share of a strided (noncontiguous) access. */
struct StridedChunk
{
    unsigned server;
    std::size_t bytes;  ///< total bytes on this server
    unsigned extents;   ///< separate extents the iod must gather
};

/**
 * Round-robin striping over a fixed server count.
 */
class StripeLayout
{
  public:
    StripeLayout(unsigned servers, std::size_t stripe_size)
        : servers_(servers), stripe_(stripe_size)
    {
        sim::simAssert(servers > 0, "layout needs at least one server");
        sim::simAssert(stripe_size > 0, "stripe size must be positive");
    }

    unsigned serverCount() const { return servers_; }
    std::size_t stripeSize() const { return stripe_; }

    /** Which server owns the stripe containing file offset @p off. */
    unsigned
    serverFor(std::uint64_t off) const
    {
        return static_cast<unsigned>((off / stripe_) % servers_);
    }

    /** Offset within the owning server's local stream. */
    std::uint64_t
    localOffset(std::uint64_t off) const
    {
        const std::uint64_t stripe_idx = off / stripe_;
        const std::uint64_t local_stripe = stripe_idx / servers_;
        return local_stripe * stripe_ + off % stripe_;
    }

    /**
     * Split [offset, offset+bytes) into per-server chunks.  Only
     * servers that own data appear; order is by server index.
     */
    std::vector<StripeChunk>
    split(std::uint64_t offset, std::size_t bytes) const
    {
        std::vector<std::uint64_t> per_server(servers_, 0);
        std::vector<std::uint64_t> first_local(
            servers_, ~std::uint64_t{0});

        std::uint64_t pos = offset;
        std::size_t left = bytes;
        while (left > 0) {
            const std::size_t in_stripe =
                static_cast<std::size_t>(stripe_ - pos % stripe_);
            const std::size_t take = std::min(left, in_stripe);
            const unsigned srv = serverFor(pos);
            if (first_local[srv] == ~std::uint64_t{0})
                first_local[srv] = localOffset(pos);
            per_server[srv] += take;
            pos += take;
            left -= take;
        }

        std::vector<StripeChunk> out;
        for (unsigned s = 0; s < servers_; ++s) {
            if (per_server[s] > 0) {
                out.push_back(StripeChunk{
                    s, first_local[s],
                    static_cast<std::size_t>(per_server[s])});
            }
        }
        return out;
    }

    /**
     * Split a strided (noncontiguous) access into per-server chunks.
     *
     * The region is `count` blocks of `block` bytes, the k-th block
     * starting at `offset + k*stride` (PVFS's strided/listio pattern;
     * the paper cites Ching et al., "Noncontiguous I/O through
     * PVFS").  Per server we report total bytes and the number of
     * separate extents, which drives per-extent request costs.
     */
    std::vector<StridedChunk>
    splitStrided(std::uint64_t offset, std::size_t block,
                 std::size_t stride, unsigned count) const
    {
        sim::simAssert(stride >= block,
                       "stride must be at least the block size");
        std::vector<std::uint64_t> bytes(servers_, 0);
        std::vector<std::uint64_t> extents(servers_, 0);

        for (unsigned k = 0; k < count; ++k) {
            const std::uint64_t start = offset + k * stride;
            for (const StripeChunk &c : split(start, block)) {
                bytes[c.server] += c.bytes;
                // Each block contributes at least one extent per
                // server it touches; stripe crossings add more.
                extents[c.server] +=
                    (c.bytes + stripe_ - 1) / stripe_;
            }
        }

        std::vector<StridedChunk> out;
        for (unsigned s = 0; s < servers_; ++s) {
            if (bytes[s] > 0) {
                out.push_back(StridedChunk{
                    s, static_cast<std::size_t>(bytes[s]),
                    static_cast<unsigned>(extents[s])});
            }
        }
        return out;
    }

  private:
    unsigned servers_;
    std::size_t stripe_;
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_LAYOUT_HH
