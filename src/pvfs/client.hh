/**
 * @file
 * PVFS client library (the native-API equivalent).
 *
 * One PvfsClient per compute process.  Reads and writes are striped
 * per the layout and issued to all involved iods in parallel, with
 * data flowing directly between iods and the compute node (the
 * manager never touches the data path).
 */

#ifndef IOAT_PVFS_CLIENT_HH
#define IOAT_PVFS_CLIENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "pvfs/config.hh"
#include "pvfs/fs_state.hh"
#include "pvfs/layout.hh"
#include "simcore/stats.hh"
#include "sock/socket.hh"

namespace ioat::pvfs {

/** Network address of one daemon. */
struct DaemonAddr
{
    net::NodeId node;
    std::uint16_t port;
};

/** Typed PVFS operation failures (a dead server degrades the mount). */
enum class PvfsErrc {
    Ok = 0,
    Timeout,       ///< RPC deadline expired (after retries)
    ServerClosed,  ///< daemon closed / transport aborted mid-op
    ConnectFailed, ///< could not (re)connect to the daemon
    Protocol,      ///< unexpected reply tag or short transfer
};

/**
 * Operation result: a value plus a PvfsErrc.  Implicitly converts to
 * the value so success-path call sites read like the plain API.
 */
template <typename T>
struct PvfsResult
{
    T value{};
    PvfsErrc err = PvfsErrc::Ok;

    bool ok() const { return err == PvfsErrc::Ok; }
    operator T() const { return value; }
};

/**
 * Client-side PVFS access.  Registers with the simulation's telemetry
 * hub as "pvfsClient" (byte counters, retry counters, an
 * outstanding-RPC gauge).
 */
class PvfsClient : public sim::telemetry::Instrumented
{
  public:
    /**
     * @param mgr metadata manager address
     * @param iods I/O daemon addresses, in stripe order
     */
    PvfsClient(core::Node &node, const PvfsConfig &cfg, DaemonAddr mgr,
               std::vector<DaemonAddr> iods);

    ~PvfsClient() override;

    PvfsClient(const PvfsClient &) = delete;
    PvfsClient &operator=(const PvfsClient &) = delete;

    /** Open connections to the manager and every iod. */
    sim::Coro<PvfsErrc> connect();

    /** @name Metadata operations (through the manager)
     *  @{ */
    sim::Coro<PvfsResult<FileHandle>> create(std::uint64_t name_key);
    sim::Coro<PvfsResult<FileHandle>> lookup(std::uint64_t name_key);
    sim::Coro<PvfsResult<std::uint64_t>> fileSize(FileHandle h);
    /** @} */

    /** @name Data operations (directly to the iods)
     *  @{ */
    /** Read [offset, offset+bytes); returns bytes transferred. */
    sim::Coro<PvfsResult<std::size_t>> read(FileHandle h,
                                            std::uint64_t offset,
                                            std::size_t bytes);
    /** Write [offset, offset+bytes); extends the file metadata. */
    sim::Coro<PvfsResult<std::size_t>> write(FileHandle h,
                                             std::uint64_t offset,
                                             std::size_t bytes);

    /**
     * Noncontiguous (strided/listio) read: `count` blocks of `block`
     * bytes, the k-th at offset + k*stride.  One list request per
     * involved iod (Ching et al.'s noncontiguous PVFS interface).
     * @return total bytes transferred.
     */
    sim::Coro<PvfsResult<std::size_t>> readStrided(FileHandle h,
                                                   std::uint64_t offset,
                                                   std::size_t block,
                                                   std::size_t stride,
                                                   unsigned count);

    /** Noncontiguous (strided/listio) write; extends metadata. */
    sim::Coro<PvfsResult<std::size_t>> writeStrided(FileHandle h,
                                                    std::uint64_t offset,
                                                    std::size_t block,
                                                    std::size_t stride,
                                                    unsigned count);
    /** @} */

    const StripeLayout &layout() const { return layout_; }
    std::uint64_t bytesRead() const { return bytesRead_.value(); }
    std::uint64_t bytesWritten() const { return bytesWritten_.value(); }
    /** RPC attempts beyond the first (timeouts / dead conns). */
    std::uint64_t rpcRetries() const { return rpcRetries_.value(); }
    /** Reconnections performed on the retry path. */
    std::uint64_t reconnects() const { return reconnects_.value(); }
    /** Operations that failed even after retries. */
    std::uint64_t rpcFailures() const { return rpcFailures_.value(); }
    /** RPCs in flight right now (iod data ops + manager ops). */
    std::uint64_t outstandingRpcs() const { return *outstanding_; }

    /**
     * Acked writes (id -> payload bytes), recorded when
     * `cfg.trackDurability` is on.  A durability harness checks that
     * every id here is still applied on some iod at the end of the
     * run — the "no acked write lost" invariant.
     */
    const std::map<std::uint64_t, std::size_t> &
    ackedWrites() const
    {
        return ackedWrites_;
    }

    /** Publish client telemetry (Hub name "pvfsClient"). */
    void instrument(sim::telemetry::Registry &reg) override;

  private:
    sim::Coro<PvfsErrc> readChunk(const StripeChunk &chunk, FileHandle h,
                                  sim::TraceContext ctx);
    sim::Coro<PvfsErrc> writeChunk(const StripeChunk &chunk, FileHandle h,
                                   sim::TraceContext ctx);
    sim::Coro<PvfsErrc> readListChunk(const StridedChunk &chunk,
                                      FileHandle h,
                                      sim::TraceContext ctx);
    sim::Coro<PvfsErrc> writeListChunk(const StridedChunk &chunk,
                                       FileHandle h,
                                       sim::TraceContext ctx);
    sim::Coro<PvfsResult<sock::Message>> mgrOp(
        const sock::Message &request, sim::TraceContext ctx = {});

    /** Usable manager connection, reconnecting if needed. */
    sim::Coro<sock::Socket> ensureMgr();
    /** Usable connection to iod @p server, reconnecting if needed. */
    sim::Coro<sock::Socket> ensureIod(unsigned server);
    /** Reconnect deadline (0 when fault handling is off). */
    sim::Tick connectDeadline() const
    {
        return cfg_.rpcTimeout > sim::Tick{0} ? cfg_.connectTimeout
                                              : sim::Tick{0};
    }
    /**
     * Unique id for one logical write (0 when durability tracking is
     * off).  Minted once per chunk, *before* the retry loop: the id
     * is what lets the iod deduplicate a retry whose first attempt
     * timed out after the body already ran (withTimeout does not
     * cancel).  Namespaced by node id so ids from different clients
     * never collide on a shared iod.
     */
    std::uint64_t
    mintWriteId()
    {
        if (!cfg_.trackDurability)
            return 0;
        return (static_cast<std::uint64_t>(node_.id()) << 32) |
               nextWriteId_++;
    }

    core::Node &node_;
    PvfsConfig cfg_;
    DaemonAddr mgrAddr_;
    std::vector<DaemonAddr> iodAddrs_;
    StripeLayout layout_;
    core::AppMemory mem_;

    sock::Socket mgr_;
    std::vector<sock::Socket> iods_;

    sim::stats::Counter bytesRead_;
    sim::stats::Counter bytesWritten_;
    sim::stats::Counter rpcRetries_;
    sim::stats::Counter reconnects_;
    sim::stats::Counter rpcFailures_;
    /** Next per-client write sequence number (durability tracking). */
    std::uint64_t nextWriteId_ = 1;
    /** Acked write ids -> bytes (durability tracking). */
    std::map<std::uint64_t, std::size_t> ackedWrites_;
    /**
     * RPCs in flight.  Shared-owned: the in-frame RpcInFlight guards
     * keep it alive, so coroutines that outlive the client (torn down
     * later by their Simulation) can still release their slot safely.
     */
    std::shared_ptr<std::uint64_t> outstanding_ =
        std::make_shared<std::uint64_t>(0);
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_CLIENT_HH
