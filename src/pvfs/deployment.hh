/**
 * @file
 * PVFS deployment helper: place a manager and N I/O daemons across a
 * set of nodes and hand clients ready-made addresses.
 *
 * The paper ran everything on one server node (Testbed 1 had two
 * machines); real PVFS installations spread iods across many nodes.
 * This helper supports both: pass one node, or a whole rack.
 */

#ifndef IOAT_PVFS_DEPLOYMENT_HH
#define IOAT_PVFS_DEPLOYMENT_HH

#include <memory>
#include <vector>

#include "core/node.hh"
#include "pvfs/client.hh"
#include "pvfs/fs_state.hh"
#include "pvfs/server.hh"

namespace ioat::pvfs {

/**
 * Owns the daemons of one PVFS file system.
 */
class Deployment
{
  public:
    /**
     * @param mgr_node node hosting the metadata manager
     * @param iod_nodes nodes hosting I/O daemons, assigned
     *        round-robin (one node may host several iods, as on the
     *        paper's testbed)
     */
    Deployment(const PvfsConfig &cfg, core::Node &mgr_node,
               std::vector<core::Node *> iod_nodes)
        : cfg_(cfg), mgr_(std::make_unique<MetadataManager>(
                         mgr_node, cfg_, fs_)),
          mgrAddr_{mgr_node.id(), cfg_.mgrPort}
    {
        sim::simAssert(!iod_nodes.empty(),
                       "deployment needs at least one iod node");
        for (unsigned i = 0; i < cfg_.iodCount; ++i) {
            core::Node &node = *iod_nodes[i % iod_nodes.size()];
            iods_.push_back(
                std::make_unique<IodServer>(node, cfg_, i));
            addrs_.push_back({node.id(), iods_.back()->port()});
        }
    }

    /** Start the manager and every iod. */
    void
    start()
    {
        mgr_->start();
        for (auto &iod : iods_)
            iod->start();
    }

    const PvfsConfig &config() const { return cfg_; }
    FsState &fs() { return fs_; }
    MetadataManager &manager() { return *mgr_; }
    IodServer &iod(std::size_t i) { return *iods_.at(i); }
    std::size_t iodCount() const { return iods_.size(); }
    DaemonAddr managerAddr() const { return mgrAddr_; }
    const std::vector<DaemonAddr> &iodAddrs() const { return addrs_; }

    /** Create a client for a compute node of this file system. */
    std::unique_ptr<PvfsClient>
    makeClient(core::Node &compute_node)
    {
        return std::make_unique<PvfsClient>(compute_node, cfg_,
                                            mgrAddr_, addrs_);
    }

    /** Pre-create a file of a given size (metadata-only setup). */
    FileHandle
    presizeFile(const std::string &name, std::uint64_t bytes)
    {
        const FileHandle h = fs_.create(name);
        fs_.extendTo(h, bytes);
        return h;
    }

    /** Aggregate iod counters. */
    std::uint64_t
    totalBytesRead() const
    {
        std::uint64_t sum = 0;
        for (const auto &iod : iods_)
            sum += iod->bytesRead();
        return sum;
    }

    std::uint64_t
    totalBytesWritten() const
    {
        std::uint64_t sum = 0;
        for (const auto &iod : iods_)
            sum += iod->bytesWritten();
        return sum;
    }

  private:
    PvfsConfig cfg_;
    FsState fs_;
    std::unique_ptr<MetadataManager> mgr_;
    DaemonAddr mgrAddr_;
    std::vector<std::unique_ptr<IodServer>> iods_;
    std::vector<DaemonAddr> addrs_;
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_DEPLOYMENT_HH
