/**
 * @file
 * PVFS daemons implementation.
 */

#include "pvfs/server.hh"

#include "pvfs/protocol.hh"
#include "sock/socket.hh"

namespace ioat::pvfs {

using sim::Coro;

// --------------------------------------------------------------------
// MetadataManager
// --------------------------------------------------------------------

MetadataManager::MetadataManager(core::Node &node, const PvfsConfig &cfg,
                                 FsState &fs)
    : node_(node), cfg_(cfg), fs_(fs)
{
    node_.simulation().telemetry().add("pvfsMgr", this);
}

MetadataManager::~MetadataManager()
{
    node_.simulation().telemetry().remove(this);
}

void
MetadataManager::start()
{
    node_.simulation().spawn(acceptLoop());
}

Coro<void>
MetadataManager::acceptLoop()
{
    sock::Listener listener(node_.transport(), cfg_.mgrPort);
    for (;;) {
        sock::Socket conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<void>
MetadataManager::serveConnection(sock::Socket conn)
{
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    for (;;) {
        auto msg = co_await conn.recvMessage();
        if (!msg.has_value())
            co_return;

        sim::ScopedSpan op(rt, msg->trace, "mgr.op",
                           sim::CostCat::queueWait);
        const sim::Tick op_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.mgrOpCost);
        if (rt && op.ctx().valid())
            rt->recordComputeSplit(op.ctx(), op_t0,
                                   node_.simulation().now(),
                                   {{"mgr.handle", sim::CostCat::cpu,
                                     cfg_.mgrOpCost}});
        ops_.inc();

        sock::Message reply;
        reply.tag = static_cast<std::uint64_t>(PvfsTag::OpOk);
        reply.trace = op.ctx();

        switch (static_cast<PvfsTag>(msg->tag)) {
          case PvfsTag::Create: {
            const FileHandle h =
                fs_.create("f" + std::to_string(msg->a));
            reply.a = h;
            reply.b = fs_.size(h);
            break;
          }
          case PvfsTag::Lookup: {
            const FileHandle h =
                fs_.lookup("f" + std::to_string(msg->a));
            if (h == kInvalidHandle) {
                reply.tag = static_cast<std::uint64_t>(PvfsTag::OpErr);
            } else {
                reply.a = h;
                reply.b = fs_.size(h);
            }
            break;
          }
          case PvfsTag::GetSize:
            if (!fs_.valid(msg->a)) {
                reply.tag = static_cast<std::uint64_t>(PvfsTag::OpErr);
            } else {
                reply.a = msg->a;
                reply.b = fs_.size(msg->a);
            }
            break;
          case PvfsTag::ExtendTo:
            fs_.extendTo(msg->a, msg->b);
            reply.a = msg->a;
            reply.b = fs_.size(msg->a);
            break;
          case PvfsTag::Truncate:
            fs_.truncate(msg->a, msg->b);
            reply.a = msg->a;
            reply.b = fs_.size(msg->a);
            break;
          default:
            sim::panic("metadata manager got a non-metadata op");
        }

        co_await conn.sendMessage(reply);
        op.end();
    }
}

// --------------------------------------------------------------------
// IodServer
// --------------------------------------------------------------------

IodServer::IodServer(core::Node &node, const PvfsConfig &cfg,
                     unsigned index)
    : node_(node), cfg_(cfg), index_(index),
      mem_(node.host(), "pvfs.iod" + std::to_string(index))
{
    node_.simulation().telemetry().add("iod", this);
}

IodServer::~IodServer() { node_.simulation().telemetry().remove(this); }

void
IodServer::start()
{
    node_.simulation().spawn(acceptLoop());
}

void
IodServer::onCrash(sim::Tick)
{
    // ramfs dies with the node: every applied-but-unjournaled write
    // is gone.  The intent log models an fsync'd journal and stays.
    applied_.clear();
}

void
IodServer::onRestart(sim::Tick)
{
    if (journal_.empty())
        return;
    for (const auto &e : journal_) {
        applied_[e.first] = e.second;
        replays_.inc();
    }
    node_.simulation().spawn(replayCost(journal_.size()));
}

Coro<void>
IodServer::replayCost(std::size_t entries)
{
    // Recovery competes for the CPU with freshly arriving requests;
    // the re-applied state itself was restored synchronously above
    // (connections from before the crash are gone, so no request can
    // observe the in-between).
    co_await node_.cpu().compute(cfg_.journalReplayCost *
                                 static_cast<unsigned>(entries));
}

Coro<void>
IodServer::acceptLoop()
{
    sock::Listener listener(node_.transport(), port());
    for (;;) {
        sock::Socket conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<void>
IodServer::serveConnection(sock::Socket conn)
{
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    for (;;) {
        auto msg = co_await conn.recvMessage();
        if (!msg.has_value())
            co_return;

        // The daemon's tenure on one data op, parented on the
        // client-side stripe span that rode the request header.
        sim::ScopedSpan serve(rt, msg->trace, "iod.serve",
                              sim::CostCat::queueWait);

        switch (static_cast<PvfsTag>(msg->tag)) {
          case PvfsTag::Read: {
            const std::size_t bytes = msg->c;
            const sim::Tick t0 = node_.simulation().now();
            co_await node_.cpu().compute(cfg_.iodRequestCost +
                                         cfg_.ramfsLookupCost);
            if (rt && serve.ctx().valid())
                rt->recordComputeSplit(
                    serve.ctx(), t0, node_.simulation().now(),
                    {{"iod.handle", sim::CostCat::cpu,
                      cfg_.iodRequestCost + cfg_.ramfsLookupCost}});
            // ramfs pages go straight out via sendfile: zero copy.
            sock::Message resp;
            resp.tag = static_cast<std::uint64_t>(PvfsTag::ReadResp);
            resp.a = msg->a;
            resp.payloadBytes = bytes;
            resp.trace = serve.ctx();
            co_await conn.sendMessage(
                resp, sock::SendOptions{.zeroCopy = true});
            bytesRead_.inc(bytes);
            break;
          }
          case PvfsTag::Write: {
            const std::size_t bytes = msg->payloadBytes;
            const sim::Tick t0 = node_.simulation().now();
            co_await node_.cpu().compute(cfg_.iodRequestCost +
                                         cfg_.ramfsLookupCost);
            if (rt && serve.ctx().valid())
                rt->recordComputeSplit(
                    serve.ctx(), t0, node_.simulation().now(),
                    {{"iod.handle", sim::CostCat::cpu,
                      cfg_.iodRequestCost + cfg_.ramfsLookupCost}});
            const std::size_t got =
                co_await conn.recvAll(bytes, serve.ctx());
            if (got != bytes)
                co_return; // connection died mid-payload: no ack
            const std::uint64_t wid = msg->c;
            bool duplicate = false;
            if (cfg_.trackDurability && wid != 0 &&
                applied_.count(wid) > 0) {
                // A timed-out RPC whose body completed anyway: the
                // retry must not apply twice (withTimeout does not
                // cancel; the write id is the dedup key).
                sim::simDebugAssert(
                    applied_[wid] == bytes,
                    "write retry with a different payload");
                dupWrites_.inc();
                duplicate = true;
            }
            if (!duplicate) {
                if (cfg_.journaledWrites && wid != 0) {
                    // Ack-after-journal: the intent is durable
                    // before the client can ever see the ack.
                    co_await node_.cpu().compute(
                        cfg_.journalAppendCost);
                    journal_[wid] = bytes;
                }
                // Store into ramfs: one more copy into page memory
                // (the pages are written once, not re-read, so they
                // do not join the daemon's working set).
                co_await mem_.streamCopy(bytes, serve.ctx());
                bytesWritten_.inc(bytes);
                if (cfg_.trackDurability && wid != 0)
                    applied_[wid] = bytes;
            }

            sock::Message ack;
            ack.tag = static_cast<std::uint64_t>(PvfsTag::WriteAck);
            ack.a = msg->a;
            ack.c = wid;
            ack.trace = serve.ctx();
            co_await conn.sendMessage(ack);
            break;
          }
          case PvfsTag::ReadList: {
            const std::size_t bytes = msg->c;
            const auto extents = static_cast<unsigned>(msg->b);
            // Gathering scattered extents costs per-extent CPU on
            // top of the base request handling.
            const sim::Tick t0 = node_.simulation().now();
            co_await node_.cpu().compute(cfg_.iodRequestCost +
                                         cfg_.ramfsLookupCost +
                                         cfg_.iodExtentCost * extents);
            if (rt && serve.ctx().valid())
                rt->recordComputeSplit(
                    serve.ctx(), t0, node_.simulation().now(),
                    {{"iod.handle", sim::CostCat::cpu,
                      cfg_.iodRequestCost + cfg_.ramfsLookupCost +
                          cfg_.iodExtentCost * extents}});
            sock::Message resp;
            resp.tag = static_cast<std::uint64_t>(PvfsTag::ReadResp);
            resp.a = msg->a;
            resp.payloadBytes = bytes;
            resp.trace = serve.ctx();
            co_await conn.sendMessage(
                resp, sock::SendOptions{.zeroCopy = true});
            bytesRead_.inc(bytes);
            break;
          }
          case PvfsTag::WriteList: {
            const std::size_t bytes = msg->payloadBytes;
            const auto extents = static_cast<unsigned>(msg->b);
            const sim::Tick t0 = node_.simulation().now();
            co_await node_.cpu().compute(cfg_.iodRequestCost +
                                         cfg_.ramfsLookupCost +
                                         cfg_.iodExtentCost * extents);
            if (rt && serve.ctx().valid())
                rt->recordComputeSplit(
                    serve.ctx(), t0, node_.simulation().now(),
                    {{"iod.handle", sim::CostCat::cpu,
                      cfg_.iodRequestCost + cfg_.ramfsLookupCost +
                          cfg_.iodExtentCost * extents}});
            const std::size_t got =
                co_await conn.recvAll(bytes, serve.ctx());
            if (got != bytes)
                co_return; // connection died mid-payload: no ack
            const std::uint64_t wid = msg->c;
            bool duplicate = false;
            if (cfg_.trackDurability && wid != 0 &&
                applied_.count(wid) > 0) {
                sim::simDebugAssert(
                    applied_[wid] == bytes,
                    "write retry with a different payload");
                dupWrites_.inc();
                duplicate = true;
            }
            if (!duplicate) {
                if (cfg_.journaledWrites && wid != 0) {
                    co_await node_.cpu().compute(
                        cfg_.journalAppendCost);
                    journal_[wid] = bytes;
                }
                co_await mem_.streamCopy(bytes, serve.ctx());
                bytesWritten_.inc(bytes);
                if (cfg_.trackDurability && wid != 0)
                    applied_[wid] = bytes;
            }

            sock::Message ack;
            ack.tag = static_cast<std::uint64_t>(PvfsTag::WriteAck);
            ack.a = msg->a;
            ack.c = wid;
            ack.trace = serve.ctx();
            co_await conn.sendMessage(ack);
            break;
          }
          default:
            sim::panic("iod got a non-I/O op");
        }
    }
}

} // namespace ioat::pvfs
