/**
 * @file
 * PVFS daemons implementation.
 */

#include "pvfs/server.hh"

#include "pvfs/protocol.hh"
#include "sock/message.hh"

namespace ioat::pvfs {

using sim::Coro;
using tcp::Connection;

// --------------------------------------------------------------------
// MetadataManager
// --------------------------------------------------------------------

MetadataManager::MetadataManager(core::Node &node, const PvfsConfig &cfg,
                                 FsState &fs)
    : node_(node), cfg_(cfg), fs_(fs)
{
    node_.simulation().telemetry().add("pvfsMgr", this);
}

MetadataManager::~MetadataManager()
{
    node_.simulation().telemetry().remove(this);
}

void
MetadataManager::start()
{
    node_.simulation().spawn(acceptLoop());
}

Coro<void>
MetadataManager::acceptLoop()
{
    auto &listener = node_.stack().listen(cfg_.mgrPort);
    for (;;) {
        Connection *conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<void>
MetadataManager::serveConnection(Connection *conn)
{
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    for (;;) {
        auto msg = co_await sock::recvMessage(*conn);
        if (!msg.has_value())
            co_return;

        sim::ScopedSpan op(rt, msg->trace, "mgr.op",
                           sim::CostCat::queueWait);
        const sim::Tick op_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.mgrOpCost);
        if (rt && op.ctx().valid())
            rt->recordComputeSplit(op.ctx(), op_t0,
                                   node_.simulation().now(),
                                   {{"mgr.handle", sim::CostCat::cpu,
                                     cfg_.mgrOpCost}});
        ops_.inc();

        sock::Message reply;
        reply.tag = static_cast<std::uint64_t>(PvfsTag::OpOk);
        reply.trace = op.ctx();

        switch (static_cast<PvfsTag>(msg->tag)) {
          case PvfsTag::Create: {
            const FileHandle h =
                fs_.create("f" + std::to_string(msg->a));
            reply.a = h;
            reply.b = fs_.size(h);
            break;
          }
          case PvfsTag::Lookup: {
            const FileHandle h =
                fs_.lookup("f" + std::to_string(msg->a));
            if (h == kInvalidHandle) {
                reply.tag = static_cast<std::uint64_t>(PvfsTag::OpErr);
            } else {
                reply.a = h;
                reply.b = fs_.size(h);
            }
            break;
          }
          case PvfsTag::GetSize:
            if (!fs_.valid(msg->a)) {
                reply.tag = static_cast<std::uint64_t>(PvfsTag::OpErr);
            } else {
                reply.a = msg->a;
                reply.b = fs_.size(msg->a);
            }
            break;
          case PvfsTag::ExtendTo:
            fs_.extendTo(msg->a, msg->b);
            reply.a = msg->a;
            reply.b = fs_.size(msg->a);
            break;
          case PvfsTag::Truncate:
            fs_.truncate(msg->a, msg->b);
            reply.a = msg->a;
            reply.b = fs_.size(msg->a);
            break;
          default:
            sim::panic("metadata manager got a non-metadata op");
        }

        co_await sock::sendMessage(*conn, reply);
        op.end();
    }
}

// --------------------------------------------------------------------
// IodServer
// --------------------------------------------------------------------

IodServer::IodServer(core::Node &node, const PvfsConfig &cfg,
                     unsigned index)
    : node_(node), cfg_(cfg), index_(index),
      mem_(node.host(), "pvfs.iod" + std::to_string(index))
{
    node_.simulation().telemetry().add("iod", this);
}

IodServer::~IodServer() { node_.simulation().telemetry().remove(this); }

void
IodServer::start()
{
    node_.simulation().spawn(acceptLoop());
}

Coro<void>
IodServer::acceptLoop()
{
    auto &listener = node_.stack().listen(port());
    for (;;) {
        Connection *conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<void>
IodServer::serveConnection(Connection *conn)
{
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    for (;;) {
        auto msg = co_await sock::recvMessage(*conn);
        if (!msg.has_value())
            co_return;

        // The daemon's tenure on one data op, parented on the
        // client-side stripe span that rode the request header.
        sim::ScopedSpan serve(rt, msg->trace, "iod.serve",
                              sim::CostCat::queueWait);

        switch (static_cast<PvfsTag>(msg->tag)) {
          case PvfsTag::Read: {
            const std::size_t bytes = msg->c;
            const sim::Tick t0 = node_.simulation().now();
            co_await node_.cpu().compute(cfg_.iodRequestCost +
                                         cfg_.ramfsLookupCost);
            if (rt && serve.ctx().valid())
                rt->recordComputeSplit(
                    serve.ctx(), t0, node_.simulation().now(),
                    {{"iod.handle", sim::CostCat::cpu,
                      cfg_.iodRequestCost + cfg_.ramfsLookupCost}});
            // ramfs pages go straight out via sendfile: zero copy.
            sock::Message resp;
            resp.tag = static_cast<std::uint64_t>(PvfsTag::ReadResp);
            resp.a = msg->a;
            resp.payloadBytes = bytes;
            resp.trace = serve.ctx();
            co_await sock::sendMessage(
                *conn, resp, tcp::SendOptions{.zeroCopy = true});
            bytesRead_.inc(bytes);
            break;
          }
          case PvfsTag::Write: {
            const std::size_t bytes = msg->payloadBytes;
            const sim::Tick t0 = node_.simulation().now();
            co_await node_.cpu().compute(cfg_.iodRequestCost +
                                         cfg_.ramfsLookupCost);
            if (rt && serve.ctx().valid())
                rt->recordComputeSplit(
                    serve.ctx(), t0, node_.simulation().now(),
                    {{"iod.handle", sim::CostCat::cpu,
                      cfg_.iodRequestCost + cfg_.ramfsLookupCost}});
            const std::size_t got =
                co_await conn->recvAll(bytes, serve.ctx());
            sim::simAssert(got == bytes, "short PVFS write payload");
            // Store into ramfs: one more copy into page memory (the
            // pages are written once, not re-read, so they do not
            // join the daemon's working set).
            co_await mem_.streamCopy(bytes, serve.ctx());
            bytesWritten_.inc(bytes);

            sock::Message ack;
            ack.tag = static_cast<std::uint64_t>(PvfsTag::WriteAck);
            ack.a = msg->a;
            ack.trace = serve.ctx();
            co_await sock::sendMessage(*conn, ack);
            break;
          }
          case PvfsTag::ReadList: {
            const std::size_t bytes = msg->c;
            const auto extents = static_cast<unsigned>(msg->b);
            // Gathering scattered extents costs per-extent CPU on
            // top of the base request handling.
            const sim::Tick t0 = node_.simulation().now();
            co_await node_.cpu().compute(cfg_.iodRequestCost +
                                         cfg_.ramfsLookupCost +
                                         cfg_.iodExtentCost * extents);
            if (rt && serve.ctx().valid())
                rt->recordComputeSplit(
                    serve.ctx(), t0, node_.simulation().now(),
                    {{"iod.handle", sim::CostCat::cpu,
                      cfg_.iodRequestCost + cfg_.ramfsLookupCost +
                          cfg_.iodExtentCost * extents}});
            sock::Message resp;
            resp.tag = static_cast<std::uint64_t>(PvfsTag::ReadResp);
            resp.a = msg->a;
            resp.payloadBytes = bytes;
            resp.trace = serve.ctx();
            co_await sock::sendMessage(
                *conn, resp, tcp::SendOptions{.zeroCopy = true});
            bytesRead_.inc(bytes);
            break;
          }
          case PvfsTag::WriteList: {
            const std::size_t bytes = msg->payloadBytes;
            const auto extents = static_cast<unsigned>(msg->b);
            const sim::Tick t0 = node_.simulation().now();
            co_await node_.cpu().compute(cfg_.iodRequestCost +
                                         cfg_.ramfsLookupCost +
                                         cfg_.iodExtentCost * extents);
            if (rt && serve.ctx().valid())
                rt->recordComputeSplit(
                    serve.ctx(), t0, node_.simulation().now(),
                    {{"iod.handle", sim::CostCat::cpu,
                      cfg_.iodRequestCost + cfg_.ramfsLookupCost +
                          cfg_.iodExtentCost * extents}});
            const std::size_t got =
                co_await conn->recvAll(bytes, serve.ctx());
            sim::simAssert(got == bytes, "short PVFS list payload");
            co_await mem_.streamCopy(bytes, serve.ctx());
            bytesWritten_.inc(bytes);

            sock::Message ack;
            ack.tag = static_cast<std::uint64_t>(PvfsTag::WriteAck);
            ack.a = msg->a;
            ack.trace = serve.ctx();
            co_await sock::sendMessage(*conn, ack);
            break;
          }
          default:
            sim::panic("iod got a non-I/O op");
        }
    }
}

} // namespace ioat::pvfs
