/**
 * @file
 * PVFS wire protocol tags (rides sock::Message).
 */

#ifndef IOAT_PVFS_PROTOCOL_HH
#define IOAT_PVFS_PROTOCOL_HH

#include <cstdint>

namespace ioat::pvfs {

enum class PvfsTag : std::uint64_t {
    // Metadata manager ops
    Lookup = 10,   ///< a = name key
    Create = 11,   ///< a = name key
    GetSize = 12,  ///< a = handle
    ExtendTo = 13, ///< a = handle, b = new end offset
    Truncate = 14, ///< a = handle, b = new size
    OpOk = 15,     ///< a = handle, b = size
    OpErr = 16,

    // I/O daemon ops
    Read = 20,     ///< a = handle, b = offset, c = bytes
    ReadResp = 21, ///< payloadBytes = data
    Write = 22,    ///< a = handle, b = offset, payloadBytes = data
    WriteAck = 23, ///< a = handle
    ReadList = 24, ///< a = handle, b = extents, c = total bytes
    WriteList = 25,///< a = handle, b = extents, payloadBytes = data
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_PROTOCOL_HH
