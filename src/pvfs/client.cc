/**
 * @file
 * PVFS client implementation.
 *
 * Fault handling: when `PvfsConfig::rpcTimeout` is nonzero every RPC
 * (manager op or iod data op) runs under a watchdog that aborts the
 * underlying connection when the deadline expires; the op then backs
 * off, reconnects if the connection died, and retries up to
 * `rpcMaxRetries` attempts before surfacing a typed PvfsErrc.  With
 * the default `rpcTimeout == 0` the event sequence is identical to
 * the lossless client (no watchdogs, no retries, no reconnects).
 */

#include "pvfs/client.hh"

#include <algorithm>
#include <memory>
#include <optional>

#include "pvfs/protocol.hh"
#include "simcore/sync.hh"
#include "simcore/timeout.hh"

namespace ioat::pvfs {

using sim::Coro;

namespace {

/**
 * Deadline guard for one RPC attempt.
 *
 * A cancellable timer-wheel entry instead of a detached delay
 * coroutine: finish() (or scope exit) revokes the deadline outright,
 * so an answered RPC leaves nothing behind in the event queue.
 *
 * Aborting the connection is the *whole* cancellation story: per the
 * no-cancellation contract (simcore/timeout.hh), the server-side body
 * of a timed-out attempt still runs to completion.  Every mutating
 * RPC therefore carries a retry-stable write id minted before the
 * retry loop, and the iod deduplicates on it (asserting in debug
 * builds that a duplicate carries the same payload) — otherwise a
 * timed-out write whose body later applied would apply *again* when
 * the retry lands, or double-apply after a restart replays the
 * journal.
 */
struct OpWatch
{
    sim::Watchdog dog;
    bool fired = false; ///< watchdog aborted the connection

    explicit OpWatch(sim::Simulation &s) : dog(s) {}

    void
    arm(sock::Socket c, sim::Tick t)
    {
        dog.arm(t, [this, conn = c]() mutable {
            fired = true;
            conn.abort();
        });
    }

    /** The attempt concluded; the deadline must not fire. */
    void finish() { dog.cancel(); }
};

constexpr std::uint64_t
tag(PvfsTag t)
{
    return static_cast<std::uint64_t>(t);
}

/** Scope guard for the outstanding-RPC gauge.  Lives in the
 *  coroutine frame, so suspension keeps the RPC counted; co-owns the
 *  counter, so a frame the Simulation tears down *after* its client
 *  died still decrements valid memory. */
struct RpcInFlight
{
    std::shared_ptr<std::uint64_t> n;
    explicit RpcInFlight(std::shared_ptr<std::uint64_t> count)
        : n(std::move(count))
    {
        ++*n;
    }
    ~RpcInFlight() { --*n; }
    RpcInFlight(const RpcInFlight &) = delete;
    RpcInFlight &operator=(const RpcInFlight &) = delete;
};

} // namespace

PvfsClient::PvfsClient(core::Node &node, const PvfsConfig &cfg,
                       DaemonAddr mgr, std::vector<DaemonAddr> iods)
    : node_(node), cfg_(cfg), mgrAddr_(mgr), iodAddrs_(std::move(iods)),
      layout_(static_cast<unsigned>(iodAddrs_.size()), cfg.stripeSize),
      mem_(node.host(), "pvfs.client")
{
    node_.simulation().telemetry().add("pvfsClient", this);
}

PvfsClient::~PvfsClient()
{
    node_.simulation().telemetry().remove(this);
}

void
PvfsClient::instrument(sim::telemetry::Registry &reg)
{
    reg.counter("bytesRead", bytesRead_, "payload bytes read from iods");
    reg.counter("bytesWritten", bytesWritten_,
                "payload bytes written to iods");
    reg.counter("rpcRetries", rpcRetries_,
                "RPC attempts beyond the first");
    reg.counter("reconnects", reconnects_,
                "reconnections on the retry path");
    reg.counter("rpcFailures", rpcFailures_,
                "operations failed after all retries");
    reg.probe(
        "outstandingRpcs", sim::telemetry::ProbeKind::gauge,
        [this] { return static_cast<double>(*outstanding_); },
        "RPCs in flight at the sample instant");
}

Coro<PvfsErrc>
PvfsClient::connect()
{
    mgr_ = co_await node_.transport().connect(
        mgrAddr_.node, mgrAddr_.port, connectDeadline());
    if (!mgr_.valid() || !mgr_.usable())
        co_return PvfsErrc::ConnectFailed;
    iods_.clear();
    for (const auto &addr : iodAddrs_) {
        sock::Socket c = co_await node_.transport().connect(
            addr.node, addr.port, connectDeadline());
        if (!c.valid() || !c.usable())
            co_return PvfsErrc::ConnectFailed;
        iods_.push_back(c);
    }
    co_return PvfsErrc::Ok;
}

Coro<sock::Socket>
PvfsClient::ensureMgr()
{
    if (mgr_.valid() && mgr_.usable())
        co_return mgr_;
    reconnects_.inc();
    sock::Socket c = co_await node_.transport().connect(
        mgrAddr_.node, mgrAddr_.port, connectDeadline());
    if (c.valid() && c.usable())
        mgr_ = c;
    co_return c;
}

Coro<sock::Socket>
PvfsClient::ensureIod(unsigned server)
{
    sock::Socket c = iods_[server];
    if (c.valid() && c.usable())
        co_return c;
    reconnects_.inc();
    c = co_await node_.transport().connect(iodAddrs_[server].node,
                                           iodAddrs_[server].port,
                                           connectDeadline());
    if (c.valid() && c.usable())
        iods_[server] = c;
    co_return c;
}

Coro<PvfsResult<sock::Message>>
PvfsClient::mgrOp(const sock::Message &request, sim::TraceContext ctx)
{
    sim::simAssert(mgr_.valid(), "PvfsClient not connected");
    RpcInFlight rpc(outstanding_);
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    // One span for the whole manager exchange, retries included.
    sim::ScopedSpan op(rt, ctx, "mgr", sim::CostCat::queueWait);
    PvfsErrc lastErr = PvfsErrc::ServerClosed;
    const unsigned tries = std::max(1u, cfg_.rpcMaxRetries);
    sim::Tick backoff = cfg_.rpcRetryBackoff;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0) {
            rpcRetries_.inc();
            co_await node_.simulation().delay(backoff);
            backoff *= 2;
        }
        sock::Socket conn = co_await ensureMgr();
        if (!conn.valid() || !conn.usable()) {
            lastErr = PvfsErrc::ConnectFailed;
            continue;
        }
        OpWatch watch(node_.simulation());
        if (cfg_.rpcTimeout > sim::Tick{0})
            watch.arm(conn, cfg_.rpcTimeout);

        const sim::Tick req_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.clientRequestCost);
        if (rt && op.ctx().valid())
            rt->recordComputeSplit(op.ctx(), req_t0,
                                   node_.simulation().now(),
                                   {{"pvfs.request", sim::CostCat::cpu,
                                     cfg_.clientRequestCost}});
        sock::Message traced = request;
        traced.trace = op.ctx();
        co_await conn.sendMessage(traced);
        std::optional<sock::Message> reply;
        if (!conn.aborted())
            reply = co_await conn.recvMessage(op.ctx());
        watch.finish();
        if (reply)
            co_return PvfsResult<sock::Message>{*reply, PvfsErrc::Ok};
        lastErr = watch.fired ? PvfsErrc::Timeout
                               : PvfsErrc::ServerClosed;
    }
    rpcFailures_.inc();
    co_return PvfsResult<sock::Message>{{}, lastErr};
}

Coro<PvfsResult<FileHandle>>
PvfsClient::create(std::uint64_t name_key)
{
    sock::Message req;
    req.tag = tag(PvfsTag::Create);
    req.a = name_key;
    const PvfsResult<sock::Message> reply = co_await mgrOp(req);
    if (!reply.ok())
        co_return PvfsResult<FileHandle>{kInvalidHandle, reply.err};
    if (reply.value.tag != tag(PvfsTag::OpOk))
        co_return PvfsResult<FileHandle>{kInvalidHandle,
                                         PvfsErrc::Protocol};
    co_return PvfsResult<FileHandle>{reply.value.a, PvfsErrc::Ok};
}

Coro<PvfsResult<FileHandle>>
PvfsClient::lookup(std::uint64_t name_key)
{
    sock::Message req;
    req.tag = tag(PvfsTag::Lookup);
    req.a = name_key;
    const PvfsResult<sock::Message> reply = co_await mgrOp(req);
    if (!reply.ok())
        co_return PvfsResult<FileHandle>{kInvalidHandle, reply.err};
    if (reply.value.tag == tag(PvfsTag::OpErr)) {
        // Name not found: a valid reply, not a transport failure.
        co_return PvfsResult<FileHandle>{kInvalidHandle, PvfsErrc::Ok};
    }
    co_return PvfsResult<FileHandle>{reply.value.a, PvfsErrc::Ok};
}

Coro<PvfsResult<std::uint64_t>>
PvfsClient::fileSize(FileHandle h)
{
    sock::Message req;
    req.tag = tag(PvfsTag::GetSize);
    req.a = h;
    const PvfsResult<sock::Message> reply = co_await mgrOp(req);
    if (!reply.ok())
        co_return PvfsResult<std::uint64_t>{0, reply.err};
    if (reply.value.tag != tag(PvfsTag::OpOk))
        co_return PvfsResult<std::uint64_t>{0, PvfsErrc::Protocol};
    co_return PvfsResult<std::uint64_t>{reply.value.b, PvfsErrc::Ok};
}

Coro<PvfsErrc>
PvfsClient::readChunk(const StripeChunk &chunk, FileHandle h,
                      sim::TraceContext ctx)
{
    RpcInFlight rpc(outstanding_);
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    // One stripe = one span; the slowest stripe is the critical path.
    sim::ScopedSpan stripe(rt, ctx,
                           "iod" + std::to_string(chunk.server),
                           sim::CostCat::queueWait);
    PvfsErrc lastErr = PvfsErrc::ServerClosed;
    const unsigned tries = std::max(1u, cfg_.rpcMaxRetries);
    sim::Tick backoff = cfg_.rpcRetryBackoff;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0) {
            rpcRetries_.inc();
            co_await node_.simulation().delay(backoff);
            backoff *= 2;
        }
        sock::Socket conn = co_await ensureIod(chunk.server);
        if (!conn.valid() || !conn.usable()) {
            lastErr = PvfsErrc::ConnectFailed;
            continue;
        }
        OpWatch watch(node_.simulation());
        if (cfg_.rpcTimeout > sim::Tick{0})
            watch.arm(conn, cfg_.rpcTimeout);

        const sim::Tick req_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.clientRequestCost);
        if (rt && stripe.ctx().valid())
            rt->recordComputeSplit(stripe.ctx(), req_t0,
                                   node_.simulation().now(),
                                   {{"pvfs.request", sim::CostCat::cpu,
                                     cfg_.clientRequestCost}});
        sock::Message req;
        req.tag = tag(PvfsTag::Read);
        req.a = h;
        req.b = chunk.offset;
        req.c = chunk.bytes;
        req.trace = stripe.ctx();
        co_await conn.sendMessage(req);

        std::optional<sock::Message> resp;
        if (!conn.aborted())
            resp = co_await conn.recvMessage(stripe.ctx());
        if (!resp) {
            watch.finish();
            lastErr = watch.fired ? PvfsErrc::Timeout
                                   : PvfsErrc::ServerClosed;
            continue;
        }
        if (resp->tag != tag(PvfsTag::ReadResp)) {
            watch.finish();
            lastErr = PvfsErrc::Protocol;
            continue;
        }
        std::size_t got = 0;
        while (got < resp->payloadBytes) {
            const std::size_t n = co_await conn.recv(
                resp->payloadBytes - got, stripe.ctx());
            if (n == 0)
                break;
            got += n;
            // Fine-grained progress for benchmarks.  A retried
            // partial drain counts its delivered prefix twice; that
            // only happens on the (rare, faulted) retry path.
            bytesRead_.inc(n);
        }
        watch.finish();
        if (got == chunk.bytes)
            co_return PvfsErrc::Ok;
        lastErr = watch.fired ? PvfsErrc::Timeout
                               : PvfsErrc::ServerClosed;
    }
    rpcFailures_.inc();
    co_return lastErr;
}

Coro<PvfsResult<std::size_t>>
PvfsClient::read(FileHandle h, std::uint64_t offset, std::size_t bytes)
{
    sim::simAssert(!iods_.empty(), "PvfsClient not connected");
    const auto chunks = layout_.split(offset, bytes);

    sim::RequestTracer *rt = node_.simulation().requestTracer();
    sim::TraceContext tc{};
    if (rt)
        tc = rt->beginRequest("pvfs.read",
                              static_cast<int>(node_.id()));

    // Issue one request per involved iod, all in parallel.
    sim::WaitGroup wg(node_.simulation());
    std::vector<PvfsErrc> errs(chunks.size(), PvfsErrc::Ok);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        wg.add();
        node_.simulation().spawn(
            [](PvfsClient &self, StripeChunk ck, FileHandle fh,
               sim::WaitGroup &w, PvfsErrc *slot,
               sim::TraceContext c) -> Coro<void> {
                *slot = co_await self.readChunk(ck, fh, c);
                w.done();
            }(*this, chunks[i], h, wg, &errs[i], tc));
    }
    co_await wg.wait();
    if (rt)
        rt->endRequest(tc);

    std::size_t done = 0;
    PvfsErrc err = PvfsErrc::Ok;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        if (errs[i] == PvfsErrc::Ok)
            done += chunks[i].bytes;
        else if (err == PvfsErrc::Ok)
            err = errs[i];
    }
    co_return PvfsResult<std::size_t>{err == PvfsErrc::Ok ? bytes : done,
                                      err};
}

Coro<PvfsErrc>
PvfsClient::writeChunk(const StripeChunk &chunk, FileHandle h,
                       sim::TraceContext ctx)
{
    RpcInFlight rpc(outstanding_);
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    sim::ScopedSpan stripe(rt, ctx,
                           "iod" + std::to_string(chunk.server),
                           sim::CostCat::queueWait);
    const std::uint64_t wid = mintWriteId(); // same id on every retry
    PvfsErrc lastErr = PvfsErrc::ServerClosed;
    const unsigned tries = std::max(1u, cfg_.rpcMaxRetries);
    sim::Tick backoff = cfg_.rpcRetryBackoff;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0) {
            rpcRetries_.inc();
            co_await node_.simulation().delay(backoff);
            backoff *= 2;
        }
        sock::Socket conn = co_await ensureIod(chunk.server);
        if (!conn.valid() || !conn.usable()) {
            lastErr = PvfsErrc::ConnectFailed;
            continue;
        }
        OpWatch watch(node_.simulation());
        if (cfg_.rpcTimeout > sim::Tick{0})
            watch.arm(conn, cfg_.rpcTimeout);

        const sim::Tick req_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.clientRequestCost);
        if (rt && stripe.ctx().valid())
            rt->recordComputeSplit(stripe.ctx(), req_t0,
                                   node_.simulation().now(),
                                   {{"pvfs.request", sim::CostCat::cpu,
                                     cfg_.clientRequestCost}});
        sock::Message req;
        req.tag = tag(PvfsTag::Write);
        req.a = h;
        req.b = chunk.offset;
        req.c = wid; // retry-stable id: dedup + durability tracking
        req.payloadBytes = chunk.bytes;
        req.trace = stripe.ctx();
        co_await conn.sendMessage(req);

        std::optional<sock::Message> ack;
        if (!conn.aborted())
            ack = co_await conn.recvMessage(stripe.ctx());
        watch.finish();
        if (ack && ack->tag == tag(PvfsTag::WriteAck)) {
            bytesWritten_.inc(chunk.bytes);
            if (wid != 0)
                ackedWrites_[wid] = chunk.bytes;
            co_return PvfsErrc::Ok;
        }
        lastErr = !ack ? (watch.fired ? PvfsErrc::Timeout
                                       : PvfsErrc::ServerClosed)
                       : PvfsErrc::Protocol;
    }
    rpcFailures_.inc();
    co_return lastErr;
}

Coro<PvfsResult<std::size_t>>
PvfsClient::write(FileHandle h, std::uint64_t offset, std::size_t bytes)
{
    sim::simAssert(!iods_.empty(), "PvfsClient not connected");
    const auto chunks = layout_.split(offset, bytes);

    sim::RequestTracer *rt = node_.simulation().requestTracer();
    sim::TraceContext tc{};
    if (rt)
        tc = rt->beginRequest("pvfs.write",
                              static_cast<int>(node_.id()));

    sim::WaitGroup wg(node_.simulation());
    std::vector<PvfsErrc> errs(chunks.size(), PvfsErrc::Ok);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        wg.add();
        node_.simulation().spawn(
            [](PvfsClient &self, StripeChunk ck, FileHandle fh,
               sim::WaitGroup &w, PvfsErrc *slot,
               sim::TraceContext c) -> Coro<void> {
                *slot = co_await self.writeChunk(ck, fh, c);
                w.done();
            }(*this, chunks[i], h, wg, &errs[i], tc));
    }
    co_await wg.wait();

    std::size_t done = 0;
    PvfsErrc err = PvfsErrc::Ok;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        if (errs[i] == PvfsErrc::Ok)
            done += chunks[i].bytes;
        else if (err == PvfsErrc::Ok)
            err = errs[i];
    }
    if (err != PvfsErrc::Ok) {
        // Do not extend metadata over holes left by failed writes.
        if (rt)
            rt->endRequest(tc);
        co_return PvfsResult<std::size_t>{done, err};
    }

    // Update the manager's size metadata (out of the data path).
    sock::Message ext;
    ext.tag = tag(PvfsTag::ExtendTo);
    ext.a = h;
    ext.b = offset + bytes;
    const PvfsResult<sock::Message> reply = co_await mgrOp(ext, tc);
    if (rt)
        rt->endRequest(tc);
    if (!reply.ok())
        co_return PvfsResult<std::size_t>{done, reply.err};
    if (reply.value.tag != tag(PvfsTag::OpOk))
        co_return PvfsResult<std::size_t>{done, PvfsErrc::Protocol};

    co_return PvfsResult<std::size_t>{bytes, PvfsErrc::Ok};
}

Coro<PvfsErrc>
PvfsClient::readListChunk(const StridedChunk &chunk, FileHandle h,
                          sim::TraceContext ctx)
{
    RpcInFlight rpc(outstanding_);
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    sim::ScopedSpan stripe(rt, ctx,
                           "iod" + std::to_string(chunk.server),
                           sim::CostCat::queueWait);
    PvfsErrc lastErr = PvfsErrc::ServerClosed;
    const unsigned tries = std::max(1u, cfg_.rpcMaxRetries);
    sim::Tick backoff = cfg_.rpcRetryBackoff;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0) {
            rpcRetries_.inc();
            co_await node_.simulation().delay(backoff);
            backoff *= 2;
        }
        sock::Socket conn = co_await ensureIod(chunk.server);
        if (!conn.valid() || !conn.usable()) {
            lastErr = PvfsErrc::ConnectFailed;
            continue;
        }
        OpWatch watch(node_.simulation());
        if (cfg_.rpcTimeout > sim::Tick{0})
            watch.arm(conn, cfg_.rpcTimeout);

        const sim::Tick req_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.clientRequestCost +
                                     cfg_.clientExtentCost *
                                         chunk.extents);
        if (rt && stripe.ctx().valid())
            rt->recordComputeSplit(
                stripe.ctx(), req_t0, node_.simulation().now(),
                {{"pvfs.request", sim::CostCat::cpu,
                  cfg_.clientRequestCost +
                      cfg_.clientExtentCost * chunk.extents}});
        sock::Message req;
        req.tag = tag(PvfsTag::ReadList);
        req.a = h;
        req.b = chunk.extents;
        req.c = chunk.bytes;
        req.trace = stripe.ctx();
        co_await conn.sendMessage(req);

        std::optional<sock::Message> resp;
        if (!conn.aborted())
            resp = co_await conn.recvMessage(stripe.ctx());
        if (!resp) {
            watch.finish();
            lastErr = watch.fired ? PvfsErrc::Timeout
                                   : PvfsErrc::ServerClosed;
            continue;
        }
        if (resp->tag != tag(PvfsTag::ReadResp)) {
            watch.finish();
            lastErr = PvfsErrc::Protocol;
            continue;
        }
        std::size_t got = 0;
        while (got < resp->payloadBytes) {
            const std::size_t n = co_await conn.recv(
                resp->payloadBytes - got, stripe.ctx());
            if (n == 0)
                break;
            got += n;
            bytesRead_.inc(n);
        }
        watch.finish();
        if (got == chunk.bytes)
            co_return PvfsErrc::Ok;
        lastErr = watch.fired ? PvfsErrc::Timeout
                               : PvfsErrc::ServerClosed;
    }
    rpcFailures_.inc();
    co_return lastErr;
}

Coro<PvfsResult<std::size_t>>
PvfsClient::readStrided(FileHandle h, std::uint64_t offset,
                        std::size_t block, std::size_t stride,
                        unsigned count)
{
    sim::simAssert(!iods_.empty(), "PvfsClient not connected");
    const auto chunks =
        layout_.splitStrided(offset, block, stride, count);

    sim::RequestTracer *rt = node_.simulation().requestTracer();
    sim::TraceContext tc{};
    if (rt)
        tc = rt->beginRequest("pvfs.readList",
                              static_cast<int>(node_.id()));

    sim::WaitGroup wg(node_.simulation());
    std::vector<PvfsErrc> errs(chunks.size(), PvfsErrc::Ok);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        wg.add();
        node_.simulation().spawn(
            [](PvfsClient &self, StridedChunk ck, FileHandle fh,
               sim::WaitGroup &w, PvfsErrc *slot,
               sim::TraceContext c) -> Coro<void> {
                *slot = co_await self.readListChunk(ck, fh, c);
                w.done();
            }(*this, chunks[i], h, wg, &errs[i], tc));
    }
    co_await wg.wait();
    if (rt)
        rt->endRequest(tc);

    const std::size_t total = static_cast<std::size_t>(block) * count;
    std::size_t done = 0;
    PvfsErrc err = PvfsErrc::Ok;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        if (errs[i] == PvfsErrc::Ok)
            done += chunks[i].bytes;
        else if (err == PvfsErrc::Ok)
            err = errs[i];
    }
    co_return PvfsResult<std::size_t>{err == PvfsErrc::Ok ? total : done,
                                      err};
}

Coro<PvfsErrc>
PvfsClient::writeListChunk(const StridedChunk &chunk, FileHandle h,
                           sim::TraceContext ctx)
{
    RpcInFlight rpc(outstanding_);
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    sim::ScopedSpan stripe(rt, ctx,
                           "iod" + std::to_string(chunk.server),
                           sim::CostCat::queueWait);
    const std::uint64_t wid = mintWriteId(); // same id on every retry
    PvfsErrc lastErr = PvfsErrc::ServerClosed;
    const unsigned tries = std::max(1u, cfg_.rpcMaxRetries);
    sim::Tick backoff = cfg_.rpcRetryBackoff;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0) {
            rpcRetries_.inc();
            co_await node_.simulation().delay(backoff);
            backoff *= 2;
        }
        sock::Socket conn = co_await ensureIod(chunk.server);
        if (!conn.valid() || !conn.usable()) {
            lastErr = PvfsErrc::ConnectFailed;
            continue;
        }
        OpWatch watch(node_.simulation());
        if (cfg_.rpcTimeout > sim::Tick{0})
            watch.arm(conn, cfg_.rpcTimeout);

        const sim::Tick req_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.clientRequestCost +
                                     cfg_.clientExtentCost *
                                         chunk.extents);
        if (rt && stripe.ctx().valid())
            rt->recordComputeSplit(
                stripe.ctx(), req_t0, node_.simulation().now(),
                {{"pvfs.request", sim::CostCat::cpu,
                  cfg_.clientRequestCost +
                      cfg_.clientExtentCost * chunk.extents}});
        sock::Message req;
        req.tag = tag(PvfsTag::WriteList);
        req.a = h;
        req.b = chunk.extents;
        req.c = wid; // retry-stable id: dedup + durability tracking
        req.payloadBytes = chunk.bytes;
        req.trace = stripe.ctx();
        co_await conn.sendMessage(req);

        std::optional<sock::Message> ack;
        if (!conn.aborted())
            ack = co_await conn.recvMessage(stripe.ctx());
        watch.finish();
        if (ack && ack->tag == tag(PvfsTag::WriteAck)) {
            bytesWritten_.inc(chunk.bytes);
            if (wid != 0)
                ackedWrites_[wid] = chunk.bytes;
            co_return PvfsErrc::Ok;
        }
        lastErr = !ack ? (watch.fired ? PvfsErrc::Timeout
                                       : PvfsErrc::ServerClosed)
                       : PvfsErrc::Protocol;
    }
    rpcFailures_.inc();
    co_return lastErr;
}

Coro<PvfsResult<std::size_t>>
PvfsClient::writeStrided(FileHandle h, std::uint64_t offset,
                         std::size_t block, std::size_t stride,
                         unsigned count)
{
    sim::simAssert(!iods_.empty(), "PvfsClient not connected");
    const auto chunks =
        layout_.splitStrided(offset, block, stride, count);

    sim::RequestTracer *rt = node_.simulation().requestTracer();
    sim::TraceContext tc{};
    if (rt)
        tc = rt->beginRequest("pvfs.writeList",
                              static_cast<int>(node_.id()));

    sim::WaitGroup wg(node_.simulation());
    std::vector<PvfsErrc> errs(chunks.size(), PvfsErrc::Ok);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        wg.add();
        node_.simulation().spawn(
            [](PvfsClient &self, StridedChunk ck, FileHandle fh,
               sim::WaitGroup &w, PvfsErrc *slot,
               sim::TraceContext c) -> Coro<void> {
                *slot = co_await self.writeListChunk(ck, fh, c);
                w.done();
            }(*this, chunks[i], h, wg, &errs[i], tc));
    }
    co_await wg.wait();

    const std::size_t total = static_cast<std::size_t>(block) * count;
    std::size_t done = 0;
    PvfsErrc err = PvfsErrc::Ok;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        if (errs[i] == PvfsErrc::Ok)
            done += chunks[i].bytes;
        else if (err == PvfsErrc::Ok)
            err = errs[i];
    }
    if (err != PvfsErrc::Ok) {
        if (rt)
            rt->endRequest(tc);
        co_return PvfsResult<std::size_t>{done, err};
    }

    sock::Message ext;
    ext.tag = tag(PvfsTag::ExtendTo);
    ext.a = h;
    ext.b = offset + static_cast<std::uint64_t>(stride) * (count - 1) +
            block;
    const PvfsResult<sock::Message> reply = co_await mgrOp(ext, tc);
    if (rt)
        rt->endRequest(tc);
    if (!reply.ok())
        co_return PvfsResult<std::size_t>{done, reply.err};
    if (reply.value.tag != tag(PvfsTag::OpOk))
        co_return PvfsResult<std::size_t>{done, PvfsErrc::Protocol};
    co_return PvfsResult<std::size_t>{total, PvfsErrc::Ok};
}

} // namespace ioat::pvfs
