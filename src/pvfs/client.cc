/**
 * @file
 * PVFS client implementation.
 */

#include "pvfs/client.hh"

#include "pvfs/protocol.hh"
#include "simcore/sync.hh"

namespace ioat::pvfs {

using sim::Coro;
using tcp::Connection;

PvfsClient::PvfsClient(core::Node &node, const PvfsConfig &cfg,
                       DaemonAddr mgr, std::vector<DaemonAddr> iods)
    : node_(node), cfg_(cfg), mgrAddr_(mgr), iodAddrs_(std::move(iods)),
      layout_(static_cast<unsigned>(iodAddrs_.size()), cfg.stripeSize),
      mem_(node.host(), "pvfs.client")
{}

Coro<void>
PvfsClient::connect()
{
    mgr_ = co_await node_.stack().connect(mgrAddr_.node, mgrAddr_.port);
    iods_.clear();
    for (const auto &addr : iodAddrs_) {
        iods_.push_back(
            co_await node_.stack().connect(addr.node, addr.port));
    }
}

Coro<sock::Message>
PvfsClient::mgrOp(const sock::Message &request)
{
    sim::simAssert(mgr_ != nullptr, "PvfsClient not connected");
    co_await node_.cpu().compute(cfg_.clientRequestCost);
    co_await sock::sendMessage(*mgr_, request);
    auto reply = co_await sock::recvMessage(*mgr_);
    sim::simAssert(reply.has_value(), "manager closed connection");
    co_return *reply;
}

Coro<FileHandle>
PvfsClient::create(std::uint64_t name_key)
{
    sock::Message req;
    req.tag = static_cast<std::uint64_t>(PvfsTag::Create);
    req.a = name_key;
    const sock::Message reply = co_await mgrOp(req);
    sim::simAssert(reply.tag == static_cast<std::uint64_t>(PvfsTag::OpOk),
                   "create failed");
    co_return reply.a;
}

Coro<FileHandle>
PvfsClient::lookup(std::uint64_t name_key)
{
    sock::Message req;
    req.tag = static_cast<std::uint64_t>(PvfsTag::Lookup);
    req.a = name_key;
    const sock::Message reply = co_await mgrOp(req);
    if (reply.tag == static_cast<std::uint64_t>(PvfsTag::OpErr))
        co_return kInvalidHandle;
    co_return reply.a;
}

Coro<std::uint64_t>
PvfsClient::fileSize(FileHandle h)
{
    sock::Message req;
    req.tag = static_cast<std::uint64_t>(PvfsTag::GetSize);
    req.a = h;
    const sock::Message reply = co_await mgrOp(req);
    sim::simAssert(reply.tag == static_cast<std::uint64_t>(PvfsTag::OpOk),
                   "stat failed");
    co_return reply.b;
}

Coro<void>
PvfsClient::readChunk(const StripeChunk &chunk, FileHandle h)
{
    Connection *conn = iods_[chunk.server];
    co_await node_.cpu().compute(cfg_.clientRequestCost);

    sock::Message req;
    req.tag = static_cast<std::uint64_t>(PvfsTag::Read);
    req.a = h;
    req.b = chunk.offset;
    req.c = chunk.bytes;
    co_await sock::sendMessage(*conn, req);

    auto resp = co_await sock::recvMessage(*conn);
    sim::simAssert(resp.has_value(), "iod closed mid-read");
    sim::simAssert(resp->tag ==
                       static_cast<std::uint64_t>(PvfsTag::ReadResp),
                   "unexpected iod reply");
    std::size_t got = 0;
    while (got < resp->payloadBytes) {
        const std::size_t n =
            co_await conn->recv(resp->payloadBytes - got);
        if (n == 0)
            break;
        got += n;
        bytesRead_.inc(n); // fine-grained progress for benchmarks
    }
    sim::simAssert(got == chunk.bytes, "short PVFS read");
}

Coro<std::size_t>
PvfsClient::read(FileHandle h, std::uint64_t offset, std::size_t bytes)
{
    sim::simAssert(!iods_.empty(), "PvfsClient not connected");
    const auto chunks = layout_.split(offset, bytes);

    // Issue one request per involved iod, all in parallel.
    sim::WaitGroup wg(node_.simulation());
    for (const auto &chunk : chunks) {
        wg.add();
        node_.simulation().spawn(
            [](PvfsClient &self, StripeChunk ck, FileHandle fh,
               sim::WaitGroup &w) -> Coro<void> {
                co_await self.readChunk(ck, fh);
                w.done();
            }(*this, chunk, h, wg));
    }
    co_await wg.wait();
    co_return bytes;
}

Coro<void>
PvfsClient::writeChunk(const StripeChunk &chunk, FileHandle h)
{
    Connection *conn = iods_[chunk.server];
    co_await node_.cpu().compute(cfg_.clientRequestCost);

    sock::Message req;
    req.tag = static_cast<std::uint64_t>(PvfsTag::Write);
    req.a = h;
    req.b = chunk.offset;
    req.payloadBytes = chunk.bytes;
    co_await sock::sendMessage(*conn, req);

    auto ack = co_await sock::recvMessage(*conn);
    sim::simAssert(ack.has_value(), "iod closed mid-write");
    sim::simAssert(ack->tag ==
                       static_cast<std::uint64_t>(PvfsTag::WriteAck),
                   "unexpected iod reply");
    bytesWritten_.inc(chunk.bytes);
}

Coro<std::size_t>
PvfsClient::write(FileHandle h, std::uint64_t offset, std::size_t bytes)
{
    sim::simAssert(!iods_.empty(), "PvfsClient not connected");
    const auto chunks = layout_.split(offset, bytes);

    sim::WaitGroup wg(node_.simulation());
    for (const auto &chunk : chunks) {
        wg.add();
        node_.simulation().spawn(
            [](PvfsClient &self, StripeChunk ck, FileHandle fh,
               sim::WaitGroup &w) -> Coro<void> {
                co_await self.writeChunk(ck, fh);
                w.done();
            }(*this, chunk, h, wg));
    }
    co_await wg.wait();

    // Update the manager's size metadata (out of the data path).
    sock::Message ext;
    ext.tag = static_cast<std::uint64_t>(PvfsTag::ExtendTo);
    ext.a = h;
    ext.b = offset + bytes;
    const sock::Message reply = co_await mgrOp(ext);
    sim::simAssert(reply.tag == static_cast<std::uint64_t>(PvfsTag::OpOk),
                   "extend failed");

    co_return bytes;
}

Coro<void>
PvfsClient::readListChunk(const StridedChunk &chunk, FileHandle h)
{
    Connection *conn = iods_[chunk.server];
    co_await node_.cpu().compute(cfg_.clientRequestCost +
                                 cfg_.clientExtentCost * chunk.extents);

    sock::Message req;
    req.tag = static_cast<std::uint64_t>(PvfsTag::ReadList);
    req.a = h;
    req.b = chunk.extents;
    req.c = chunk.bytes;
    co_await sock::sendMessage(*conn, req);

    auto resp = co_await sock::recvMessage(*conn);
    sim::simAssert(resp.has_value(), "iod closed mid-read");
    sim::simAssert(resp->tag ==
                       static_cast<std::uint64_t>(PvfsTag::ReadResp),
                   "unexpected iod reply");
    std::size_t got = 0;
    while (got < resp->payloadBytes) {
        const std::size_t n =
            co_await conn->recv(resp->payloadBytes - got);
        if (n == 0)
            break;
        got += n;
        bytesRead_.inc(n);
    }
    sim::simAssert(got == chunk.bytes, "short PVFS list read");
}

Coro<std::size_t>
PvfsClient::readStrided(FileHandle h, std::uint64_t offset,
                        std::size_t block, std::size_t stride,
                        unsigned count)
{
    sim::simAssert(!iods_.empty(), "PvfsClient not connected");
    const auto chunks =
        layout_.splitStrided(offset, block, stride, count);

    sim::WaitGroup wg(node_.simulation());
    for (const auto &chunk : chunks) {
        wg.add();
        node_.simulation().spawn(
            [](PvfsClient &self, StridedChunk ck, FileHandle fh,
               sim::WaitGroup &w) -> Coro<void> {
                co_await self.readListChunk(ck, fh);
                w.done();
            }(*this, chunk, h, wg));
    }
    co_await wg.wait();
    co_return static_cast<std::size_t>(block) * count;
}

Coro<void>
PvfsClient::writeListChunk(const StridedChunk &chunk, FileHandle h)
{
    Connection *conn = iods_[chunk.server];
    co_await node_.cpu().compute(cfg_.clientRequestCost +
                                 cfg_.clientExtentCost * chunk.extents);

    sock::Message req;
    req.tag = static_cast<std::uint64_t>(PvfsTag::WriteList);
    req.a = h;
    req.b = chunk.extents;
    req.payloadBytes = chunk.bytes;
    co_await sock::sendMessage(*conn, req);

    auto ack = co_await sock::recvMessage(*conn);
    sim::simAssert(ack.has_value(), "iod closed mid-write");
    sim::simAssert(ack->tag ==
                       static_cast<std::uint64_t>(PvfsTag::WriteAck),
                   "unexpected iod reply");
    bytesWritten_.inc(chunk.bytes);
}

Coro<std::size_t>
PvfsClient::writeStrided(FileHandle h, std::uint64_t offset,
                         std::size_t block, std::size_t stride,
                         unsigned count)
{
    sim::simAssert(!iods_.empty(), "PvfsClient not connected");
    const auto chunks =
        layout_.splitStrided(offset, block, stride, count);

    sim::WaitGroup wg(node_.simulation());
    for (const auto &chunk : chunks) {
        wg.add();
        node_.simulation().spawn(
            [](PvfsClient &self, StridedChunk ck, FileHandle fh,
               sim::WaitGroup &w) -> Coro<void> {
                co_await self.writeListChunk(ck, fh);
                w.done();
            }(*this, chunk, h, wg));
    }
    co_await wg.wait();

    sock::Message ext;
    ext.tag = static_cast<std::uint64_t>(PvfsTag::ExtendTo);
    ext.a = h;
    ext.b = offset + static_cast<std::uint64_t>(stride) * (count - 1) +
            block;
    const sock::Message reply = co_await mgrOp(ext);
    sim::simAssert(reply.tag == static_cast<std::uint64_t>(PvfsTag::OpOk),
                   "extend failed");
    co_return static_cast<std::size_t>(block) * count;
}

} // namespace ioat::pvfs
