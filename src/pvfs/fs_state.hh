/**
 * @file
 * Cluster-wide PVFS namespace state.
 *
 * The metadata manager owns this; it maps file names to handles and
 * tracks sizes.  File *content* is virtual (the experiments run over
 * ramfs, so only sizes and striping matter), but sizes are kept
 * consistent across concurrent writers the way the real manager's
 * metadata does.
 */

#ifndef IOAT_PVFS_FS_STATE_HH
#define IOAT_PVFS_FS_STATE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/assert.hh"

namespace ioat::pvfs {

/** Opaque file handle (index into the file table). */
using FileHandle = std::uint64_t;

inline constexpr FileHandle kInvalidHandle = ~FileHandle{0};

/** Per-file metadata. */
struct FileMeta
{
    std::string name;
    std::uint64_t size = 0;
};

/**
 * The manager's file table.
 */
class FsState
{
  public:
    /** Create a file (or return the existing handle). */
    FileHandle
    create(const std::string &name)
    {
        auto it = byName_.find(name);
        if (it != byName_.end())
            return it->second;
        const FileHandle h = files_.size();
        files_.push_back(FileMeta{name, 0});
        byName_[name] = h;
        return h;
    }

    /** Look up by name. @return handle or kInvalidHandle. */
    FileHandle
    lookup(const std::string &name) const
    {
        auto it = byName_.find(name);
        return it == byName_.end() ? kInvalidHandle : it->second;
    }

    bool valid(FileHandle h) const { return h < files_.size(); }

    std::uint64_t
    size(FileHandle h) const
    {
        sim::simAssert(valid(h), "bad file handle");
        return files_[h].size;
    }

    const std::string &
    name(FileHandle h) const
    {
        sim::simAssert(valid(h), "bad file handle");
        return files_[h].name;
    }

    /** Writers extend the file (manager metadata update). */
    void
    extendTo(FileHandle h, std::uint64_t end_offset)
    {
        sim::simAssert(valid(h), "bad file handle");
        files_[h].size = std::max(files_[h].size, end_offset);
    }

    /** Truncate (metadata op; Fig. 2b's manager duties). */
    void
    truncate(FileHandle h, std::uint64_t new_size)
    {
        sim::simAssert(valid(h), "bad file handle");
        files_[h].size = new_size;
    }

    std::size_t fileCount() const { return files_.size(); }

  private:
    std::vector<FileMeta> files_;
    std::unordered_map<std::string, FileHandle> byName_;
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_FS_STATE_HH
