/**
 * @file
 * PVFS server daemons: the metadata manager and the I/O daemon (iod).
 *
 * Mirrors the paper's Fig. 2b: one manager provides a consistent
 * namespace and handles metadata (it is *not* in the read/write data
 * path); N iods store file stripes on their local file system — here
 * ramfs, matching the paper's §6.1 choice to take disks out of the
 * picture — and move data directly to/from compute nodes.
 */

#ifndef IOAT_PVFS_SERVER_HH
#define IOAT_PVFS_SERVER_HH

#include <cstdint>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "pvfs/config.hh"
#include "pvfs/fs_state.hh"
#include "simcore/stats.hh"

namespace ioat::pvfs {

/**
 * The metadata manager daemon.  Hub name "pvfsMgr".
 */
class MetadataManager : public sim::telemetry::Instrumented
{
  public:
    MetadataManager(core::Node &node, const PvfsConfig &cfg,
                    FsState &fs);

    ~MetadataManager() override;

    MetadataManager(const MetadataManager &) = delete;
    MetadataManager &operator=(const MetadataManager &) = delete;

    /** Begin accepting on cfg.mgrPort. */
    void start();

    std::uint64_t opsServed() const { return ops_.value(); }

    void
    instrument(sim::telemetry::Registry &reg) override
    {
        reg.counter("opsServed", ops_, "metadata operations answered");
    }

  private:
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(tcp::Connection *conn);

    core::Node &node_;
    PvfsConfig cfg_;
    FsState &fs_;
    sim::stats::Counter ops_;
};

/**
 * One I/O daemon, serving its stripe of every file from ramfs.
 * Hub name "iod".
 */
class IodServer : public sim::telemetry::Instrumented
{
  public:
    IodServer(core::Node &node, const PvfsConfig &cfg, unsigned index);

    ~IodServer() override;

    IodServer(const IodServer &) = delete;
    IodServer &operator=(const IodServer &) = delete;

    /** Begin accepting on cfg.iodBasePort + index. */
    void start();

    unsigned index() const { return index_; }
    std::uint16_t port() const
    {
        return static_cast<std::uint16_t>(cfg_.iodBasePort + index_);
    }
    std::uint64_t bytesRead() const { return bytesRead_.value(); }
    std::uint64_t bytesWritten() const { return bytesWritten_.value(); }

    void
    instrument(sim::telemetry::Registry &reg) override
    {
        reg.counter("bytesRead", bytesRead_,
                    "stripe bytes served to clients");
        reg.counter("bytesWritten", bytesWritten_,
                    "stripe bytes stored from clients");
    }

  private:
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(tcp::Connection *conn);

    core::Node &node_;
    PvfsConfig cfg_;
    unsigned index_;
    core::AppMemory mem_;
    sim::stats::Counter bytesRead_;
    sim::stats::Counter bytesWritten_;
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_SERVER_HH
