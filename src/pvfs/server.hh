/**
 * @file
 * PVFS server daemons: the metadata manager and the I/O daemon (iod).
 *
 * Mirrors the paper's Fig. 2b: one manager provides a consistent
 * namespace and handles metadata (it is *not* in the read/write data
 * path); N iods store file stripes on their local file system — here
 * ramfs, matching the paper's §6.1 choice to take disks out of the
 * picture — and move data directly to/from compute nodes.
 */

#ifndef IOAT_PVFS_SERVER_HH
#define IOAT_PVFS_SERVER_HH

#include <cstdint>
#include <map>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "pvfs/config.hh"
#include "pvfs/fs_state.hh"
#include "simcore/lifecycle.hh"
#include "simcore/stats.hh"

namespace ioat::pvfs {

/**
 * The metadata manager daemon.  Hub name "pvfsMgr".
 */
class MetadataManager : public sim::telemetry::Instrumented,
                        public sim::Restartable
{
  public:
    MetadataManager(core::Node &node, const PvfsConfig &cfg,
                    FsState &fs);

    ~MetadataManager() override;

    MetadataManager(const MetadataManager &) = delete;
    MetadataManager &operator=(const MetadataManager &) = delete;

    /** Begin accepting on cfg.mgrPort. */
    void start();

    /** @name Crash–restart hooks (sim::Restartable)
     * The namespace (FsState) models the manager's *on-disk* metadata
     * and survives; the transport teardown happens in the Node's
     * hook, so the manager itself has no volatile state to wipe.
     *  @{ */
    void onCrash(sim::Tick) override {}
    void onRestart(sim::Tick) override {}
    /** @} */

    std::uint64_t opsServed() const { return ops_.value(); }

    void
    instrument(sim::telemetry::Registry &reg) override
    {
        reg.counter("opsServed", ops_, "metadata operations answered");
    }

  private:
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(sock::Socket conn);

    core::Node &node_;
    PvfsConfig cfg_;
    FsState &fs_;
    sim::stats::Counter ops_;
};

/**
 * One I/O daemon, serving its stripe of every file from ramfs.
 * Hub name "iod".
 */
class IodServer : public sim::telemetry::Instrumented,
                  public sim::Restartable
{
  public:
    IodServer(core::Node &node, const PvfsConfig &cfg, unsigned index);

    ~IodServer() override;

    IodServer(const IodServer &) = delete;
    IodServer &operator=(const IodServer &) = delete;

    /** Begin accepting on cfg.iodBasePort + index. */
    void start();

    /** @name Crash–restart hooks (sim::Restartable)
     * A crash loses the volatile applied-write state (ramfs contents
     * die with the node); the intent journal models an fsync'd log
     * and survives.  The restart replays it — re-applying every
     * journaled write, charging `journalReplayCost` per entry — which
     * restores "no acked write lost".  Without `journaledWrites`,
     * acked-but-volatile writes are gone after a crash, which is
     * exactly the regression a durability harness should catch.
     *  @{ */
    void onCrash(sim::Tick) override;
    void onRestart(sim::Tick) override;
    /** @} */

    unsigned index() const { return index_; }
    std::uint16_t port() const
    {
        return static_cast<std::uint16_t>(cfg_.iodBasePort + index_);
    }
    std::uint64_t bytesRead() const { return bytesRead_.value(); }
    std::uint64_t bytesWritten() const { return bytesWritten_.value(); }

    /** @name Durability-tracking state (cfg.trackDurability)
     *  @{ */
    /** Is write @p id currently applied (answerable from state)? */
    bool
    writeApplied(std::uint64_t id) const
    {
        return applied_.count(id) > 0;
    }
    std::size_t appliedWrites() const { return applied_.size(); }
    std::size_t journalEntries() const { return journal_.size(); }
    /** Writes acked whose payload was already applied (retry dedup). */
    std::uint64_t duplicateWrites() const { return dupWrites_.value(); }
    /** Journal entries re-applied across all restarts. */
    std::uint64_t journalReplays() const { return replays_.value(); }
    /** @} */

    void
    instrument(sim::telemetry::Registry &reg) override
    {
        reg.counter("bytesRead", bytesRead_,
                    "stripe bytes served to clients");
        reg.counter("bytesWritten", bytesWritten_,
                    "stripe bytes stored from clients");
        reg.counter("duplicateWrites", dupWrites_,
                    "retried writes deduplicated by id");
        reg.counter("journalReplays", replays_,
                    "journal entries re-applied on restart");
    }

  private:
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(sock::Socket conn);
    /** CPU work of replaying @p entries journal entries on restart. */
    sim::Coro<void> replayCost(std::size_t entries);

    core::Node &node_;
    PvfsConfig cfg_;
    unsigned index_;
    core::AppMemory mem_;
    sim::stats::Counter bytesRead_;
    sim::stats::Counter bytesWritten_;
    sim::stats::Counter dupWrites_;
    sim::stats::Counter replays_;
    // std::map: deterministic iteration (simlint bans unordered).
    /** Volatile: write ids whose payload is in ramfs right now. */
    std::map<std::uint64_t, std::size_t> applied_;
    /** Durable: the ack-after-journal intent log (id -> bytes). */
    std::map<std::uint64_t, std::size_t> journal_;
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_SERVER_HH
