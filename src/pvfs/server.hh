/**
 * @file
 * PVFS server daemons: the metadata manager and the I/O daemon (iod).
 *
 * Mirrors the paper's Fig. 2b: one manager provides a consistent
 * namespace and handles metadata (it is *not* in the read/write data
 * path); N iods store file stripes on their local file system — here
 * ramfs, matching the paper's §6.1 choice to take disks out of the
 * picture — and move data directly to/from compute nodes.
 */

#ifndef IOAT_PVFS_SERVER_HH
#define IOAT_PVFS_SERVER_HH

#include <cstdint>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "pvfs/config.hh"
#include "pvfs/fs_state.hh"
#include "simcore/stats.hh"

namespace ioat::pvfs {

/**
 * The metadata manager daemon.
 */
class MetadataManager
{
  public:
    MetadataManager(core::Node &node, const PvfsConfig &cfg,
                    FsState &fs);

    /** Begin accepting on cfg.mgrPort. */
    void start();

    std::uint64_t opsServed() const { return ops_.value(); }

  private:
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(tcp::Connection *conn);

    core::Node &node_;
    PvfsConfig cfg_;
    FsState &fs_;
    sim::stats::Counter ops_;
};

/**
 * One I/O daemon, serving its stripe of every file from ramfs.
 */
class IodServer
{
  public:
    IodServer(core::Node &node, const PvfsConfig &cfg, unsigned index);

    /** Begin accepting on cfg.iodBasePort + index. */
    void start();

    unsigned index() const { return index_; }
    std::uint16_t port() const
    {
        return static_cast<std::uint16_t>(cfg_.iodBasePort + index_);
    }
    std::uint64_t bytesRead() const { return bytesRead_.value(); }
    std::uint64_t bytesWritten() const { return bytesWritten_.value(); }

  private:
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(tcp::Connection *conn);

    core::Node &node_;
    PvfsConfig cfg_;
    unsigned index_;
    core::AppMemory mem_;
    sim::stats::Counter bytesRead_;
    sim::stats::Counter bytesWritten_;
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_SERVER_HH
