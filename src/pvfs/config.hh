/**
 * @file
 * PVFS deployment configuration and cost model.
 */

#ifndef IOAT_PVFS_CONFIG_HH
#define IOAT_PVFS_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "simcore/types.hh"

namespace ioat::pvfs {

using sim::Tick;

struct PvfsConfig
{
    /** Striping unit (PVFS default 64 KB). */
    std::size_t stripeSize = 64 * 1024;
    /** Number of I/O daemons. */
    unsigned iodCount = 6;

    /** @name Per-operation CPU costs
     *  @{ */
    /** Metadata manager op (open/lookup/create). */
    Tick mgrOpCost = sim::microseconds(40);
    /** I/O daemon request decode + job setup. */
    Tick iodRequestCost = sim::microseconds(20);
    /** Client-side request construction per I/O server. */
    Tick clientRequestCost = sim::microseconds(8);
    /** ramfs lookup per request (dentry + page refs). */
    Tick ramfsLookupCost = sim::microseconds(5);
    /** iod-side cost per gathered extent of a noncontiguous access. */
    Tick iodExtentCost = sim::microseconds(3);
    /** Client-side cost per extent when building a list request. */
    Tick clientExtentCost = sim::microseconds(1);
    /** @} */

    std::uint16_t mgrPort = 3000;
    std::uint16_t iodBasePort = 3100;

    /** @name Loss tolerance (defaults off: seed behaviour)
     * With a nonzero `rpcTimeout`, every manager/iod RPC gets a
     * deadline; an expired deadline aborts the stuck connection and
     * the op retries (reconnecting) with exponential backoff up to
     * `rpcMaxRetries` attempts before surfacing a typed error.
     *  @{ */
    /** Per-RPC deadline (0 = wait forever, the seed behaviour). */
    Tick rpcTimeout{};
    /** Attempts per RPC (first try + retries) before giving up. */
    unsigned rpcMaxRetries = 3;
    /** Delay before the first retry; doubled each further retry. */
    Tick rpcRetryBackoff = sim::milliseconds(2);
    /** Deadline for each reconnect attempt on the retry path. */
    Tick connectTimeout = sim::milliseconds(20);
    /** @} */

    /** @name Write durability (defaults off: seed behaviour)
     * With `trackDurability` the client stamps every Write/WriteList
     * with a unique write id (the header's spare `c` word) and records
     * which ids were acked; the iods record which ids they hold, so a
     * crash harness can machine-check "no acked write lost".  With
     * `journaledWrites` the iod additionally appends each write to a
     * durable intent log *before* acking (paying `journalAppendCost`)
     * and replays it on restart (paying `journalReplayCost` per
     * entry), which is what makes the invariant hold across crashes.
     * The id doubles as the retry-dedup key: a timed-out RPC whose
     * body later completed must not apply twice (see
     * simcore/timeout.hh on the no-cancellation contract).
     *  @{ */
    /** Stamp writes with ids and track acks (client + iod). */
    bool trackDurability = false;
    /** Journal write intents on the iods (ack-after-journal). */
    bool journaledWrites = false;
    /** CPU cost of one journal append (charged before the ack). */
    Tick journalAppendCost = sim::microseconds(10);
    /** CPU cost per journal entry replayed on iod restart. */
    Tick journalReplayCost = sim::microseconds(5);
    /** @} */
};

} // namespace ioat::pvfs

#endif // IOAT_PVFS_CONFIG_HH
