/**
 * @file
 * Socket facade over the transports: the API applications and
 * benchmarks program against.
 *
 * `sock::Socket` wraps a stack-owned stream endpoint — kernel TCP
 * (`tcp::Connection`) or the user-space bypass library
 * (`xpt::Endpoint`) — behind one small value type, and
 * `sock::Listener` wraps passive opens.  `sock::Transport` is the
 * once-per-connection control-path interface (connect/listen); a
 * node exposes one via `core::Node::transport()`.  No transport type
 * appears in this facade's public signatures: callers never name
 * `tcp::` or `xpt::` internals.
 *
 * Devirtualization rule (the transport-interface contract, DESIGN.md
 * §12): `Transport` is virtual because it runs once per connection.
 * The data-path members (sendAll, recv, recvAll) are *not* virtual
 * and *not* coroutines; they branch on which endpoint pointer is set
 * and return the underlying awaitable directly, so
 * `co_await sock.recvAll(n)` compiles to exactly the frames the raw
 * endpoint call would — both transports return identical Coro types
 * by design.  Only connect()/accept() — once per connection — add a
 * frame.
 *
 * The message-framing helpers (sendMessage/recvMessage/...) that used
 * to live in sock/message.hh as free functions over tcp::Connection&
 * are members here, written against the facade's own forwarders, so
 * they work unchanged on every transport.
 */

#ifndef IOAT_SOCK_SOCKET_HH
#define IOAT_SOCK_SOCKET_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "simcore/assert.hh"
#include "simcore/coro.hh"
#include "sock/types.hh"
#include "tcp/stack.hh"
#include "xpt/bypass.hh"

namespace ioat::sock {

class Transport;
class TcpTransport;
class BypassTransport;
class Listener;

/**
 * Non-owning handle to one established byte-stream connection.
 *
 * Copyable (it is a view); the endpoint object lives in its stack
 * until the stack is destroyed.  A default-constructed Socket is
 * invalid; connect()/accept() failures yield a Socket whose
 * `usable()` is false (with `aborted()` holding the typed reason),
 * mirroring a failed ::connect.
 */
class Socket
{
  public:
    Socket() = default;

    /** A connection was ever attached (even if it later failed). */
    bool valid() const { return tcp_ != nullptr || byp_ != nullptr; }

    /** @name Data path (non-coroutine forwarders; see file header)
     *  @{ */

    /**
     * Send @p bytes; resumes when the last byte has been accepted by
     * the NIC (peer-buffer credit may stall us).
     * @param meta optional application header delivered to the
     *        peer's metadata queue together with the first segment.
     */
    sim::Coro<void>
    sendAll(std::size_t bytes, SendOptions opts = {},
            const MsgMeta *meta = nullptr)
    {
        if (tcp_)
            return tcp_->send(bytes, opts, meta);
        return checkedByp().send(bytes, opts, meta);
    }

    /** Receive up to @p max_bytes; 0 means the peer closed. */
    sim::Coro<std::size_t>
    recv(std::size_t max_bytes, sim::TraceContext ctx = {})
    {
        if (tcp_)
            return tcp_->recv(max_bytes, ctx);
        return checkedByp().recv(max_bytes, ctx);
    }

    /** Receive exactly @p bytes unless the peer closes first. */
    sim::Coro<std::size_t>
    recvAll(std::size_t bytes, sim::TraceContext ctx = {})
    {
        if (tcp_)
            return tcp_->recvAll(bytes, ctx);
        return checkedByp().recvAll(bytes, ctx);
    }
    /** @} */

    /** Half-close: the peer's recv() returns 0 after draining. */
    void
    close()
    {
        if (tcp_)
            tcp_->close();
        else
            checkedByp().close();
    }

    /** Locally abort (the simulated close of a stuck socket). */
    void
    abort()
    {
        if (tcp_)
            tcp_->abortLocal();
        else
            checkedByp().abortLocal();
    }

    /** @name In-band message metadata
     *  @{ */
    MsgMeta
    popMeta()
    {
        if (tcp_)
            return tcp_->popMeta();
        return checkedByp().popMeta();
    }
    std::size_t
    metaAvailable() const
    {
        if (tcp_)
            return tcp_->metaAvailable();
        return byp_ ? byp_->metaAvailable() : 0;
    }
    /** @} */

    /** @name State
     *  @{ */
    bool
    established() const
    {
        return tcp_ ? tcp_->established()
                    : byp_ && byp_->established();
    }
    bool
    aborted() const
    {
        return tcp_ ? tcp_->aborted() : byp_ && byp_->aborted();
    }
    bool
    peerClosed() const
    {
        return tcp_ ? tcp_->peerClosed() : byp_ && byp_->peerClosed();
    }
    /** Established, not aborted, peer still open: safe to use. */
    bool
    usable() const
    {
        return tcp_ ? tcp_->usable() : byp_ && byp_->usable();
    }
    std::uint64_t
    bytesSent() const
    {
        return tcp_ ? tcp_->bytesSent() : byp_ ? byp_->bytesSent() : 0;
    }
    std::uint64_t
    bytesReceived() const
    {
        return tcp_   ? tcp_->bytesReceived()
               : byp_ ? byp_->bytesReceived()
                      : 0;
    }
    /** Transport flow id (keys the telemetry flow table). */
    std::uint64_t
    flow() const
    {
        return tcp_ ? tcp_->flow() : byp_ ? byp_->flow() : 0;
    }
    /** @} */

    /** The simulation the connection's stack runs in. */
    sim::Simulation &
    simulation()
    {
        if (tcp_)
            return tcp_->simulation();
        return checkedByp().simulation();
    }

    /** @name Message framing (formerly sock/message.hh)
     *  @{ */

    /**
     * Send a message header, then its payload (if any).
     * @param payload_opts options for the payload bytes (e.g.
     *        zero-copy sendfile for static file content).
     */
    sim::Coro<void> sendMessage(const Message &msg,
                                SendOptions payload_opts = {});

    /**
     * Receive the next message header.  The caller is responsible
     * for consuming `payloadBytes` afterwards (recvAll).
     * @param ctx request context the header receive is attributed to
     *        (the message carries its own onward context in .trace).
     * @return std::nullopt on orderly EOF.
     */
    sim::Coro<std::optional<Message>>
    recvMessage(sim::TraceContext ctx = {});

    /** Receive a message header and drain its payload in one call. */
    sim::Coro<std::optional<Message>>
    recvMessageAndPayload(sim::TraceContext ctx = {});

    /**
     * Receive the next message with a deadline.  If the deadline
     * expires first, the connection is locally aborted (releasing
     * the blocked read) and std::nullopt is returned with @p status
     * (when given) set to MsgStatus::Timeout.  A @p timeout of 0
     * means no deadline.
     */
    sim::Coro<std::optional<Message>>
    recvMessageTimed(sim::Tick timeout, MsgStatus *status = nullptr,
                     sim::TraceContext ctx = {});

    /**
     * Receive exactly @p bytes with a deadline, aborting the
     * connection when it expires (same contract as recvMessageTimed).
     * Bounds the *payload* read that follows a timed header read.  A
     * @p timeout of 0 means no deadline.  @return bytes actually
     * received (short on EOF / abort / deadline).
     */
    sim::Coro<std::size_t> recvAllTimed(std::size_t bytes,
                                        sim::Tick timeout,
                                        sim::TraceContext ctx = {});
    /** @} */

  private:
    friend class TcpTransport;
    friend class BypassTransport;
    friend class Listener;

    explicit Socket(tcp::Connection *conn) : tcp_(conn) {}
    explicit Socket(xpt::Endpoint *ep) : byp_(ep) {}

    xpt::Endpoint &
    checkedByp() const
    {
        sim::simAssert(byp_ != nullptr, "operation on invalid Socket");
        return *byp_;
    }

    /** At most one of these is non-null. */
    tcp::Connection *tcp_ = nullptr;
    xpt::Endpoint *byp_ = nullptr;
};

/**
 * Passive endpoint on one port: accept() yields established Sockets.
 *
 * A value type minted by `Transport::listen()`; default construction
 * yields an invalid listener (`valid()` false) and accept() on it is
 * a simulator assertion — the typed-failure surface mirroring
 * Socket's.
 */
class Listener
{
  public:
    Listener() = default;

    /** Convenience: `Listener l(node.transport(), port)`. */
    Listener(Transport &transport, std::uint16_t port);

    /** A transport endpoint is attached; accept() is legal. */
    bool valid() const { return tcp_ != nullptr || byp_ != nullptr; }

    /** Awaitable: the next established connection on this port. */
    sim::Coro<Socket> accept();

  private:
    friend class TcpTransport;
    friend class BypassTransport;

    explicit Listener(tcp::Listener *inner) : tcp_(inner) {}
    explicit Listener(xpt::Listener *inner) : byp_(inner) {}

    tcp::Listener *tcp_ = nullptr;
    xpt::Listener *byp_ = nullptr;
};

/**
 * The once-per-connection control path a transport must provide (the
 * transport-interface contract; DESIGN.md §12).  Virtual dispatch is
 * confined to here — the per-byte data path lives in Socket's
 * devirtualized forwarders.
 */
class Transport
{
  public:
    virtual ~Transport() = default;

    Transport() = default;
    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;

    /** Transport name for tables and CLI flags ("tcp", "bypass"). */
    virtual const char *name() const = 0;

    /**
     * Active open to (remote, port).  A nonzero @p timeout bounds
     * the handshake wait; on failure the returned socket reports
     * !usable() (never a hang, never a null).
     */
    sim::Coro<Socket>
    connect(net::NodeId remote, std::uint16_t port,
            sim::Tick timeout = sim::Tick{0})
    {
        return doConnect(remote, port, timeout);
    }

    /** Passive open; repeated calls on one port share the queue. */
    virtual Listener listen(std::uint16_t port) = 0;

    /** The simulation this transport's stack runs in. */
    virtual sim::Simulation &simulation() = 0;

    /** @name Transport-agnostic stack statistics (for benches)
     *  @{ */
    virtual std::uint64_t txPayloadBytes() const = 0;
    virtual std::uint64_t rxPayloadBytes() const = 0;
    /** Data segments resent by the transport's loss recovery. */
    virtual std::uint64_t retransmits() const = 0;
    /** Endpoints that failed after retry exhaustion. */
    virtual std::uint64_t abortedConnections() const = 0;
    /** @} */

  protected:
    virtual sim::Coro<Socket> doConnect(net::NodeId remote,
                                        std::uint16_t port,
                                        sim::Tick timeout) = 0;
};

/** Kernel-TCP transport: adapts tcp::TcpStack to the facade. */
class TcpTransport final : public Transport
{
  public:
    explicit TcpTransport(tcp::TcpStack &stack) : stack_(stack) {}

    const char *name() const override { return "tcp"; }

    Listener
    listen(std::uint16_t port) override
    {
        return Listener(&stack_.listen(port));
    }

    sim::Simulation &simulation() override { return stack_.host().sim; }

    std::uint64_t
    txPayloadBytes() const override
    {
        return stack_.txPayloadBytes();
    }
    std::uint64_t
    rxPayloadBytes() const override
    {
        return stack_.rxPayloadBytes();
    }
    std::uint64_t
    retransmits() const override
    {
        return stack_.retransmits();
    }
    std::uint64_t
    abortedConnections() const override
    {
        return stack_.abortedConnections();
    }

  protected:
    sim::Coro<Socket>
    doConnect(net::NodeId remote, std::uint16_t port,
              sim::Tick timeout) override
    {
        tcp::Connection *c =
            co_await stack_.connect(remote, port, timeout);
        co_return Socket(c);
    }

  private:
    tcp::TcpStack &stack_;
};

/** Kernel-bypass transport: adapts xpt::BypassStack to the facade. */
class BypassTransport final : public Transport
{
  public:
    explicit BypassTransport(xpt::BypassStack &stack) : stack_(stack) {}

    const char *name() const override { return "bypass"; }

    Listener
    listen(std::uint16_t port) override
    {
        return Listener(&stack_.listen(port));
    }

    sim::Simulation &simulation() override { return stack_.host().sim; }

    std::uint64_t
    txPayloadBytes() const override
    {
        return stack_.txPayloadBytes();
    }
    std::uint64_t
    rxPayloadBytes() const override
    {
        return stack_.rxPayloadBytes();
    }
    std::uint64_t
    retransmits() const override
    {
        return stack_.retransmits();
    }
    std::uint64_t
    abortedConnections() const override
    {
        return stack_.abortedConnections();
    }

  protected:
    sim::Coro<Socket>
    doConnect(net::NodeId remote, std::uint16_t port,
              sim::Tick timeout) override
    {
        xpt::Endpoint *e = co_await stack_.connect(remote, port, timeout);
        co_return Socket(e);
    }

  private:
    xpt::BypassStack &stack_;
};

// --------------------------------------------------------------------
// Inline implementations
// --------------------------------------------------------------------

inline Listener::Listener(Transport &transport, std::uint16_t port)
{
    *this = transport.listen(port);
}

inline sim::Coro<Socket>
Listener::accept()
{
    sim::simAssert(valid(), "accept on invalid Listener");
    if (tcp_) {
        tcp::Connection *c = co_await tcp_->accept();
        co_return Socket(c);
    }
    xpt::Endpoint *e = co_await byp_->accept();
    co_return Socket(e);
}

inline sim::Coro<void>
Socket::sendMessage(const Message &msg, SendOptions payload_opts)
{
    MsgMeta meta;
    meta.w[0] = msg.tag;
    meta.w[1] = msg.a;
    meta.w[2] = msg.b;
    meta.w[3] = msg.c;
    meta.w[4] = msg.payloadBytes;
    meta.w[5] = msg.trace.pack();
    SendOptions header_opts;
    header_opts.trace = msg.trace;
    if (!payload_opts.trace.valid())
        payload_opts.trace = msg.trace;
    co_await sendAll(kMessageHeaderBytes, header_opts, &meta);
    if (msg.payloadBytes > 0)
        co_await sendAll(msg.payloadBytes, payload_opts);
}

inline sim::Coro<std::optional<Message>>
Socket::recvMessage(sim::TraceContext ctx)
{
    const std::size_t got = co_await recvAll(kMessageHeaderBytes, ctx);
    if (got != kMessageHeaderBytes || metaAvailable() == 0) {
        // Orderly EOF, or a close/abort truncated the header.
        co_return std::nullopt;
    }
    const MsgMeta meta = popMeta();
    Message msg;
    msg.tag = meta.w[0];
    msg.a = meta.w[1];
    msg.b = meta.w[2];
    msg.c = meta.w[3];
    msg.payloadBytes = meta.w[4];
    msg.trace = sim::TraceContext::unpack(meta.w[5]);
    co_return msg;
}

inline sim::Coro<std::optional<Message>>
Socket::recvMessageAndPayload(sim::TraceContext ctx)
{
    auto msg = co_await recvMessage(ctx);
    if (msg && msg->payloadBytes > 0) {
        const sim::TraceContext pctx =
            msg->trace.valid() ? msg->trace : ctx;
        const std::size_t got =
            co_await recvAll(msg->payloadBytes, pctx);
        if (got != msg->payloadBytes)
            co_return std::nullopt; // closed/aborted mid-payload
    }
    co_return msg;
}

inline sim::Coro<std::optional<Message>>
Socket::recvMessageTimed(sim::Tick timeout, MsgStatus *status,
                         sim::TraceContext ctx)
{
    if (timeout == sim::Tick{0}) {
        auto msg = co_await recvMessage(ctx);
        if (status)
            *status = msg         ? MsgStatus::Ok
                      : aborted() ? MsgStatus::Aborted
                                  : MsgStatus::Eof;
        co_return msg;
    }

    struct Watch
    {
        bool done = false;
        bool fired = false;
    };
    auto watch = std::make_shared<Watch>();
    simulation().spawn(
        [](Socket s, sim::Tick t,
           std::shared_ptr<Watch> w) -> sim::Coro<void> {
            co_await s.simulation().delay(t);
            if (!w->done) {
                w->fired = true;
                s.abort();
            }
        }(*this, timeout, watch));

    auto msg = co_await recvMessage(ctx);
    watch->done = true;
    if (status) {
        *status = msg            ? MsgStatus::Ok
                  : watch->fired ? MsgStatus::Timeout
                  : aborted()    ? MsgStatus::Aborted
                                 : MsgStatus::Eof;
    }
    co_return msg;
}

inline sim::Coro<std::size_t>
Socket::recvAllTimed(std::size_t bytes, sim::Tick timeout,
                     sim::TraceContext ctx)
{
    if (timeout == sim::Tick{0})
        co_return co_await recvAll(bytes, ctx);

    struct Watch
    {
        bool done = false;
    };
    auto watch = std::make_shared<Watch>();
    simulation().spawn(
        [](Socket s, sim::Tick t,
           std::shared_ptr<Watch> w) -> sim::Coro<void> {
            co_await s.simulation().delay(t);
            if (!w->done)
                s.abort();
        }(*this, timeout, watch));
    const std::size_t got = co_await recvAll(bytes, ctx);
    watch->done = true;
    co_return got;
}

} // namespace ioat::sock

#endif // IOAT_SOCK_SOCKET_HH
