/**
 * @file
 * Socket facade over the transport: the API applications and
 * benchmarks program against.
 *
 * `sock::Socket` wraps a stack-owned `tcp::Connection*` behind a small
 * value type (connect / sendAll / recv / recvAll / close), and
 * `sock::Listener` wraps passive opens.  Callers never name
 * `tcp::Stack` internals — the facade plus sock/message.hh is the
 * whole application-level surface.
 *
 * Zero-cost by construction: the data-path members (sendAll, recv,
 * recvAll) are *not* coroutines; they return the underlying
 * connection's awaitable directly, so `co_await sock.recvAll(n)`
 * compiles to exactly the frames the raw connection call would.  Only
 * connect()/accept() — once per connection — add a frame.
 */

#ifndef IOAT_SOCK_SOCKET_HH
#define IOAT_SOCK_SOCKET_HH

#include <cstdint>

#include "simcore/assert.hh"
#include "simcore/coro.hh"
#include "tcp/stack.hh"

namespace ioat::sock {

/** Send-path options (zero-copy etc.), re-exported from the transport. */
using tcp::SendOptions;

/**
 * Non-owning handle to one established byte-stream connection.
 *
 * Copyable (it is a view); the connection object lives in its
 * TcpStack until the stack is destroyed.  A default-constructed
 * Socket is invalid; connect()/accept() failures yield a Socket whose
 * `usable()` is false (with `aborted()` holding the typed reason),
 * mirroring a failed ::connect.
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(tcp::Connection *conn) : conn_(conn) {}

    /**
     * Active open through @p stack to (remote, port).  A nonzero
     * @p timeout bounds the handshake wait; on failure the returned
     * socket reports !usable().
     */
    static sim::Coro<Socket>
    connect(tcp::TcpStack &stack, net::NodeId remote, std::uint16_t port,
            sim::Tick timeout = sim::Tick{0})
    {
        tcp::Connection *c = co_await stack.connect(remote, port, timeout);
        co_return Socket(c);
    }

    /** A connection was ever attached (even if it later failed). */
    bool valid() const { return conn_ != nullptr; }

    /** @name Data path (non-coroutine forwarders; see file header)
     *  @{ */

    /**
     * Send @p bytes; resumes when the last byte has been accepted by
     * the NIC (peer-buffer credit may stall us).
     */
    auto
    sendAll(std::size_t bytes, tcp::SendOptions opts = {},
            const tcp::MsgMeta *meta = nullptr)
    {
        return checked().send(bytes, opts, meta);
    }

    /** Receive up to @p max_bytes; 0 means the peer closed. */
    auto
    recv(std::size_t max_bytes, sim::TraceContext ctx = {})
    {
        return checked().recv(max_bytes, ctx);
    }

    /** Receive exactly @p bytes unless the peer closes first. */
    auto
    recvAll(std::size_t bytes, sim::TraceContext ctx = {})
    {
        return checked().recvAll(bytes, ctx);
    }
    /** @} */

    /** Half-close: the peer's recv() returns 0 after draining. */
    void close() { checked().close(); }

    /** Locally abort (the simulated close of a stuck socket). */
    void abort() { checked().abortLocal(); }

    /** @name In-band message metadata (sock/message.hh)
     *  @{ */
    tcp::MsgMeta popMeta() { return checked().popMeta(); }
    std::size_t metaAvailable() const
    {
        return conn_ ? conn_->metaAvailable() : 0;
    }
    /** @} */

    /** @name State
     *  @{ */
    bool established() const { return conn_ && conn_->established(); }
    bool aborted() const { return conn_ && conn_->aborted(); }
    bool peerClosed() const { return conn_ && conn_->peerClosed(); }
    /** Established, not aborted, peer still open: safe to use. */
    bool usable() const { return conn_ && conn_->usable(); }
    std::uint64_t bytesSent() const
    {
        return conn_ ? conn_->bytesSent() : 0;
    }
    std::uint64_t bytesReceived() const
    {
        return conn_ ? conn_->bytesReceived() : 0;
    }
    /** Transport flow id (keys the telemetry flow table). */
    std::uint64_t flow() const { return conn_ ? conn_->flow() : 0; }
    /** @} */

    /** The simulation the connection's stack runs in. */
    sim::Simulation &simulation() { return checked().simulation(); }

    /**
     * Escape hatch to the underlying stream, for helpers written
     * against `tcp::Connection&` (sock/message.hh).  Application code
     * should not need it.
     */
    tcp::Connection &stream() { return checked(); }

  private:
    tcp::Connection &
    checked() const
    {
        sim::simAssert(conn_ != nullptr, "operation on invalid Socket");
        return *conn_;
    }

    tcp::Connection *conn_ = nullptr;
};

/**
 * Passive endpoint on one port: accept() yields established Sockets.
 */
class Listener
{
  public:
    Listener(tcp::TcpStack &stack, std::uint16_t port)
        : inner_(stack.listen(port))
    {}

    /** Awaitable: the next established connection on this port. */
    sim::Coro<Socket>
    accept()
    {
        tcp::Connection *c = co_await inner_.accept();
        co_return Socket(c);
    }

  private:
    tcp::Listener &inner_;
};

} // namespace ioat::sock

#endif // IOAT_SOCK_SOCKET_HH
