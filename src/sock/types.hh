/**
 * @file
 * Transport-agnostic application-level types: per-send options, the
 * in-band message metadata words, and the message-framing structs the
 * facade's send/recv-message members exchange.
 *
 * These used to live in tcp/stack.hh (SendOptions, MsgMeta) and
 * sock/message.hh (Message, MsgStatus); with more than one transport
 * under the facade they belong to `sock::` proper.  The transports
 * alias them (`tcp::SendOptions` = `sock::SendOptions`) so the wire
 * formats stay shared and the aliases can be retired later.
 */

#ifndef IOAT_SOCK_TYPES_HH
#define IOAT_SOCK_TYPES_HH

#include <cstddef>
#include <cstdint>

#include "net/burst.hh"
#include "simcore/reqtrace.hh"

namespace ioat::sock {

/** Per-send options, honoured by every transport. */
struct SendOptions
{
    /** sendfile()-style zero-copy: skip the user→kernel copy.  The
     *  bypass transport is always zero-copy; it ignores this. */
    bool zeroCopy = false;
    /** Request context this send serves (invalid = untraced). */
    sim::TraceContext trace{};
};

/**
 * Application metadata that rides in-band with a message's first
 * segment.  Data content is virtual in this simulator (only byte
 * counts move); this is how message-structured applications attach
 * the few words of real information a request/response needs.
 */
struct MsgMeta
{
    std::uint64_t w[net::kBurstMetaWords] = {};
};

/** Outcome of a timed message exchange. */
enum class MsgStatus {
    Ok,      ///< message delivered
    Eof,     ///< peer closed in an orderly way
    Timeout, ///< deadline expired; the connection was aborted
    Aborted, ///< transport failed (retry exhaustion / local abort)
};

/** Wire size of a message header. */
inline constexpr std::size_t kMessageHeaderBytes = 64;

/** Application-level message header. */
struct Message
{
    std::uint64_t tag = 0; ///< message type, application-defined
    std::uint64_t a = 0;   ///< argument words
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t payloadBytes = 0; ///< payload following the header
    /** Request context the message serves; rides the header's sixth
     *  metadata word, so causality crosses the connection. */
    sim::TraceContext trace{};
};

} // namespace ioat::sock

#endif // IOAT_SOCK_TYPES_HH
