/**
 * @file
 * Message framing over the byte-stream transport.
 *
 * Applications in the paper (HTTP between data-center tiers, PVFS
 * request/response) are message-structured.  A Message is a small
 * fixed-size header (64 bytes on the wire) plus an optional payload;
 * the header's fields ride the transport's in-band metadata channel
 * while the byte counts move through the normal send/recv path, so
 * all CPU/NIC/cache costs are charged exactly as for opaque data.
 *
 * Failure handling: a connection that closes or aborts mid-message
 * yields std::nullopt (never an assert), and `recvMessageTimed` adds
 * a deadline by aborting the underlying connection when it expires —
 * the simulated equivalent of closing a stuck socket.
 */

#ifndef IOAT_SOCK_MESSAGE_HH
#define IOAT_SOCK_MESSAGE_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "simcore/coro.hh"
#include "tcp/stack.hh"

namespace ioat::sock {

using sim::Coro;
using tcp::Connection;
using tcp::SendOptions;

/** Outcome of a timed message exchange. */
enum class MsgStatus {
    Ok,      ///< message delivered
    Eof,     ///< peer closed in an orderly way
    Timeout, ///< deadline expired; the connection was aborted
    Aborted, ///< transport failed (retry exhaustion / local abort)
};

/** Wire size of a message header. */
inline constexpr std::size_t kMessageHeaderBytes = 64;

/** Application-level message header. */
struct Message
{
    std::uint64_t tag = 0; ///< message type, application-defined
    std::uint64_t a = 0;   ///< argument words
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t payloadBytes = 0; ///< payload following the header
    /** Request context the message serves; rides the header's sixth
     *  metadata word, so causality crosses the connection. */
    sim::TraceContext trace{};
};

/**
 * Send a message header, then its payload (if any).
 *
 * @param payload_opts options for the payload bytes (e.g. zero-copy
 *        sendfile for static file content).
 */
inline Coro<void>
sendMessage(Connection &conn, const Message &msg,
            SendOptions payload_opts = {})
{
    tcp::MsgMeta meta;
    meta.w[0] = msg.tag;
    meta.w[1] = msg.a;
    meta.w[2] = msg.b;
    meta.w[3] = msg.c;
    meta.w[4] = msg.payloadBytes;
    meta.w[5] = msg.trace.pack();
    SendOptions header_opts;
    header_opts.trace = msg.trace;
    if (!payload_opts.trace.valid())
        payload_opts.trace = msg.trace;
    co_await conn.send(kMessageHeaderBytes, header_opts, &meta);
    if (msg.payloadBytes > 0)
        co_await conn.send(msg.payloadBytes, payload_opts);
}

/**
 * Receive the next message header.  The caller is responsible for
 * consuming `payloadBytes` afterwards (conn.recvAll).
 *
 * @param ctx request context the header receive is attributed to (the
 *        delivered message carries its own onward context in .trace).
 * @return std::nullopt on orderly EOF.
 */
inline Coro<std::optional<Message>>
recvMessage(Connection &conn, sim::TraceContext ctx = {})
{
    const std::size_t got =
        co_await conn.recvAll(kMessageHeaderBytes, ctx);
    if (got != kMessageHeaderBytes || conn.metaAvailable() == 0) {
        // Orderly EOF, or a close/abort truncated the header.
        co_return std::nullopt;
    }
    const tcp::MsgMeta meta = conn.popMeta();
    Message msg;
    msg.tag = meta.w[0];
    msg.a = meta.w[1];
    msg.b = meta.w[2];
    msg.c = meta.w[3];
    msg.payloadBytes = meta.w[4];
    msg.trace = sim::TraceContext::unpack(meta.w[5]);
    co_return msg;
}

/** Receive a message header and drain its payload in one call. */
inline Coro<std::optional<Message>>
recvMessageAndPayload(Connection &conn, sim::TraceContext ctx = {})
{
    auto msg = co_await recvMessage(conn, ctx);
    if (msg && msg->payloadBytes > 0) {
        const sim::TraceContext pctx =
            msg->trace.valid() ? msg->trace : ctx;
        const std::size_t got =
            co_await conn.recvAll(msg->payloadBytes, pctx);
        if (got != msg->payloadBytes)
            co_return std::nullopt; // closed/aborted mid-payload
    }
    co_return msg;
}

/**
 * Receive the next message with a deadline.
 *
 * If the deadline expires first, the connection is locally aborted
 * (releasing the blocked read) and std::nullopt is returned with
 * @p status (when given) set to MsgStatus::Timeout.  A @p timeout of
 * 0 means no deadline.
 */
inline Coro<std::optional<Message>>
recvMessageTimed(Connection &conn, sim::Tick timeout,
                 MsgStatus *status = nullptr,
                 sim::TraceContext ctx = {})
{
    if (timeout == sim::Tick{0}) {
        auto msg = co_await recvMessage(conn, ctx);
        if (status)
            *status = msg             ? MsgStatus::Ok
                      : conn.aborted() ? MsgStatus::Aborted
                                       : MsgStatus::Eof;
        co_return msg;
    }

    struct Watch
    {
        bool done = false;
        bool fired = false;
    };
    auto watch = std::make_shared<Watch>();
    conn.simulation().spawn(
        [](Connection &c, sim::Tick t,
           std::shared_ptr<Watch> w) -> Coro<void> {
            co_await c.simulation().delay(t);
            if (!w->done) {
                w->fired = true;
                c.abortLocal();
            }
        }(conn, timeout, watch));

    auto msg = co_await recvMessage(conn, ctx);
    watch->done = true;
    if (status) {
        *status = msg            ? MsgStatus::Ok
                  : watch->fired ? MsgStatus::Timeout
                  : conn.aborted() ? MsgStatus::Aborted
                                   : MsgStatus::Eof;
    }
    co_return msg;
}

/**
 * Receive exactly @p bytes with a deadline, aborting the connection
 * when it expires (same contract as recvMessageTimed).  Bounds the
 * *payload* read that follows a timed header read: without it, a peer
 * that crashes mid-body leaves the reader parked forever — the
 * transport never notifies remote halves of a crash, and an idle
 * receiver has no retransmission timer to abort it.  A @p timeout of
 * 0 means no deadline.  @return bytes actually received (short on
 * EOF / abort / deadline).
 */
inline Coro<std::size_t>
recvAllTimed(Connection &conn, std::size_t bytes, sim::Tick timeout,
             sim::TraceContext ctx = {})
{
    if (timeout == sim::Tick{0})
        co_return co_await conn.recvAll(bytes, ctx);

    struct Watch
    {
        bool done = false;
    };
    auto watch = std::make_shared<Watch>();
    conn.simulation().spawn(
        [](Connection &c, sim::Tick t,
           std::shared_ptr<Watch> w) -> Coro<void> {
            co_await c.simulation().delay(t);
            if (!w->done)
                c.abortLocal();
        }(conn, timeout, watch));
    const std::size_t got = co_await conn.recvAll(bytes, ctx);
    watch->done = true;
    co_return got;
}

} // namespace ioat::sock

#endif // IOAT_SOCK_MESSAGE_HH
