/**
 * @file
 * The cluster switch: routes bursts between attached devices.
 *
 * Models a non-blocking store-and-forward switch (the testbed's
 * 24-port Netgear GigE switch): infinite backplane, fixed forwarding
 * latency.  Link-level serialization happens in the NIC ports on both
 * sides, so the switch itself only routes.
 */

#ifndef IOAT_NET_SWITCH_HH
#define IOAT_NET_SWITCH_HH

#include <functional>
#include <vector>

#include "net/burst.hh"
#include "simcore/assert.hh"
#include "simcore/sim.hh"

namespace ioat::net {

using sim::Simulation;
using sim::Tick;

/**
 * Routes bursts to attached receivers after a fixed latency.
 */
class Switch
{
  public:
    /** Receiver callback: invoked when a burst reaches the egress port. */
    using RxHandler = std::function<void(const Burst &)>;

    explicit Switch(Simulation &sim, Tick forward_latency = sim::nanoseconds(2000))
        : sim_(sim), latency_(forward_latency)
    {}

    /** Attach a device; returns its NodeId. */
    NodeId
    attach(RxHandler handler)
    {
        ports_.push_back(std::move(handler));
        return static_cast<NodeId>(ports_.size() - 1);
    }

    std::size_t attachedCount() const { return ports_.size(); }
    Tick forwardLatency() const { return latency_; }

    /**
     * Accept a burst that finished serializing into the switch at the
     * current simulated time; deliver it to the destination device
     * after the forwarding latency.
     */
    void
    forward(const Burst &burst)
    {
        sim::simAssert(burst.dst < ports_.size(),
                       "burst addressed to unattached node");
        sim_.queue().scheduleIn(latency_, [this, burst] {
            ports_[burst.dst](burst);
        });
    }

  private:
    Simulation &sim_;
    Tick latency_;
    std::vector<RxHandler> ports_;
};

} // namespace ioat::net

#endif // IOAT_NET_SWITCH_HH
