/**
 * @file
 * The cluster switch: routes bursts between attached devices.
 *
 * Models a non-blocking store-and-forward switch (the testbed's
 * 24-port Netgear GigE switch): infinite backplane, fixed forwarding
 * latency.  Link-level serialization happens in the NIC ports on both
 * sides, so the switch itself only routes.
 *
 * The switch is also the simulator's only cross-node (and therefore
 * only cross-shard) edge.  Every forwarded burst is scheduled with a
 * cross-lane key — priority lane = sender, execution lane = receiver
 * (see simcore/event_queue.hh) — so delivery order at a tick is fixed
 * by the sender's deterministic stream no matter how nodes are
 * partitioned.  Built over a `sim::ShardGroup`, deliveries whose
 * destination lives on another shard are mailed through the group's
 * horizon mailboxes instead of scheduled locally; the forwarding
 * latency must then be at least the group's lookahead, which is
 * exactly the conservative-synchronization window.
 *
 * The switch is also the network's fault-injection point: with a
 * `sim::FaultInjector` attached, every forwarded burst consults the
 * per-link fault site ("link.<src>.<dst>") for drop / duplicate /
 * extra-delay faults, and deliveries to nodes inside a crash window
 * are dropped.  Sites are keyed by the (src, dst) pair — not just the
 * egress — so each site's RNG stream is drawn only from the sender's
 * execution, keeping fault schedules shard-count-invariant.  Without
 * an injector the routing path is untouched.
 */

#ifndef IOAT_NET_SWITCH_HH
#define IOAT_NET_SWITCH_HH

#include <functional>
#include <string>
#include <vector>

#include "net/burst.hh"
#include "simcore/assert.hh"
#include "simcore/fault.hh"
#include "simcore/shard.hh"
#include "simcore/sim.hh"

namespace ioat::net {

using sim::Simulation;
using sim::Tick;

/**
 * Routes bursts to attached receivers after a fixed latency.
 */
class Switch : public sim::telemetry::Instrumented
{
  public:
    /** Receiver callback: invoked when a burst reaches the egress port. */
    using RxHandler = std::function<void(const Burst &)>;

    explicit Switch(Simulation &sim, Tick forward_latency = sim::nanoseconds(2000))
        : sim_(sim), latency_(forward_latency)
    {
        sim_.telemetry().add("fabric", this);
    }

    /**
     * A switch spanning every shard of @p group.  Ports then attach
     * with the Simulation they live on, and cross-shard deliveries go
     * through the group's mailboxes.  The forwarding latency is the
     * lookahead that makes conservative execution sound, so it must
     * cover the group's window.
     */
    Switch(sim::ShardGroup &group,
           Tick forward_latency = sim::nanoseconds(2000))
        : sim_(group.shard(0)), latency_(forward_latency), group_(&group)
    {
        sim::simAssert(latency_ >= group.lookahead(),
                       "switch latency below the shard lookahead "
                       "window breaks conservative execution");
        sim_.telemetry().add("fabric", this);
    }

    ~Switch() override { sim_.telemetry().remove(this); }

    Switch(const Switch &) = delete;
    Switch &operator=(const Switch &) = delete;

    /** Attach a device living on @p sim; returns its NodeId. */
    NodeId
    attach(Simulation &sim, RxHandler handler)
    {
        ports_.push_back(std::move(handler));
        portSims_.push_back(&sim);
        portShards_.push_back(shardOf(sim));
        linkSites_.resize(ports_.size());
        return static_cast<NodeId>(ports_.size() - 1);
    }

    /** Attach a device on the primary Simulation (classic setups). */
    NodeId attach(RxHandler handler)
    {
        return attach(sim_, std::move(handler));
    }

    /**
     * Detach a device: its NodeId stays reserved, but bursts still in
     * flight toward it (or addressed to it later) are dropped instead
     * of invoking the stale handler.
     */
    void
    detach(NodeId id)
    {
        sim::simAssert(id < ports_.size(), "detach of unattached node");
        ports_[id] = nullptr;
    }

    std::size_t attachedCount() const { return ports_.size(); }
    Tick forwardLatency() const { return latency_; }

    /** Route every burst through @p injector (nullptr to disable). */
    void
    setFaultInjector(sim::FaultInjector *injector)
    {
        faults_ = injector;
        linkSites_.clear();
        linkSites_.resize(ports_.size());
    }

    /**
     * Accept a burst that finished serializing into the switch at the
     * current simulated time; deliver it to the destination device
     * after the forwarding latency.  Runs on the sender's shard.
     */
    void
    forward(const Burst &burst)
    {
        sim::simAssert(burst.dst < ports_.size(),
                       "burst addressed to unattached node");
        Tick latency = latency_;
        if (faults_) {
            const Tick now = portSims_[burst.src]->now();
            // A burst leaving a node that crashed while it was
            // serializing never makes it into the backplane.
            if (faults_->nodeDown(burst.src, now)) {
                faults_->noteOutageDrop(now);
                return;
            }
            sim::FaultDecision d =
                linkSite(burst.src, burst.dst).decide();
            if (d.drop) {
                traceFault("fault:drop link", burst.dst);
                return;
            }
            if (d.extraDelay > sim::Tick{0}) {
                traceFault("fault:delay link", burst.dst);
                latency += d.extraDelay;
            }
            if (d.duplicate) {
                traceFault("fault:dup link", burst.dst);
                send(burst, latency);
            }
        }
        send(burst, latency);
    }

    /** @name Statistics
     *  @{ */
    /** Deliveries dropped because the destination had detached. */
    std::uint64_t deadLetters() const { return deadLetters_.value(); }
    /** @} */

    /** Publish switch telemetry (registered with the Hub as "fabric"). */
    void
    instrument(sim::telemetry::Registry &reg) override
    {
        reg.scalar(
            "attachedPorts",
            [this] { return static_cast<double>(ports_.size()); },
            "devices ever attached to the switch");
        reg.counter("deadLetters", deadLetters_,
                    "deliveries dropped at detached ports");
    }

  private:
    /**
     * Schedule one delivery.  The key is drawn on the sender's lane
     * (and, for a cross-shard hop, on the sender's queue) so the
     * destination executes deliveries in a partition-invariant order.
     */
    void
    send(const Burst &burst, Tick latency)
    {
        Simulation &src = *portSims_[burst.src];
        const auto prio = static_cast<std::uint32_t>(burst.src) + 1;
        const auto exec = static_cast<std::uint32_t>(burst.dst) + 1;
        const Tick when = src.now() + latency;
        if (group_ == nullptr ||
            portShards_[burst.src] == portShards_[burst.dst]) {
            src.queue().scheduleCross(
                when, prio, exec, [this, burst] { deliver(burst); });
        } else {
            group_->postCross(
                portShards_[burst.src], portShards_[burst.dst], when,
                prio, src.queue().drawSeq(prio), exec,
                sim::SmallFn([this, burst] { deliver(burst); }));
        }
    }

    /** Complete one delivery at the egress port (receiver's shard). */
    void
    deliver(const Burst &burst)
    {
        // The destination may have detached or crashed while the
        // burst was in flight; finish the drop here rather than
        // invoking a dead handler.
        if (!ports_[burst.dst]) {
            deadLetters_.inc();
            return;
        }
        if (faults_ &&
            faults_->nodeDown(burst.dst, portSims_[burst.dst]->now())) {
            faults_->noteOutageDrop(portSims_[burst.dst]->now());
            return;
        }
        ports_[burst.dst](burst);
    }

    /**
     * Per-(src, dst) fault site, created lazily and cached.  The
     * outer vector is sized at attach/setFaultInjector time (setup);
     * the inner row for @p src is touched only by code executing on
     * src's shard, so the lazy fill needs no locking.
     */
    sim::FaultSite &
    linkSite(NodeId src, NodeId dst)
    {
        auto &row = linkSites_[src];
        if (dst >= row.size())
            row.resize(dst + 1, nullptr);
        if (!row[dst])
            row[dst] = &faults_->site("link." + std::to_string(src) +
                                      "." + std::to_string(dst));
        return *row[dst];
    }

    void
    traceFault(const char *what, NodeId dst)
    {
        if (sim::TraceWriter *tw = faults_->tracer())
            tw->instant(std::string(what) + std::to_string(dst), "fault",
                        sim_.now(), sim::TraceWriter::Lanes::fault);
    }

    /** Shard index of @p sim within the group (0 when ungrouped). */
    unsigned
    shardOf(const Simulation &sim) const
    {
        if (group_ == nullptr)
            return 0;
        for (unsigned i = 0; i < group_->shardCount(); ++i)
            if (&group_->shard(i) == &sim)
                return i;
        sim::panic("attached Simulation is not a shard of the group");
    }

    Simulation &sim_;
    Tick latency_;
    sim::ShardGroup *group_ = nullptr;
    std::vector<RxHandler> ports_;
    std::vector<Simulation *> portSims_;
    std::vector<unsigned> portShards_;
    sim::FaultInjector *faults_ = nullptr;
    std::vector<std::vector<sim::FaultSite *>> linkSites_;
    sim::stats::Counter deadLetters_;
};

} // namespace ioat::net

#endif // IOAT_NET_SWITCH_HH
