/**
 * @file
 * The cluster switch: routes bursts between attached devices.
 *
 * Models a non-blocking store-and-forward switch (the testbed's
 * 24-port Netgear GigE switch): infinite backplane, fixed forwarding
 * latency.  Link-level serialization happens in the NIC ports on both
 * sides, so the switch itself only routes.
 *
 * The switch is also the network's fault-injection point: with a
 * `sim::FaultInjector` attached, every forwarded burst consults the
 * per-egress-link fault site ("link.<dst>") for drop / duplicate /
 * extra-delay faults, and deliveries to nodes inside a crash window
 * are dropped.  Without an injector the routing path is untouched.
 */

#ifndef IOAT_NET_SWITCH_HH
#define IOAT_NET_SWITCH_HH

#include <functional>
#include <string>
#include <vector>

#include "net/burst.hh"
#include "simcore/assert.hh"
#include "simcore/fault.hh"
#include "simcore/sim.hh"

namespace ioat::net {

using sim::Simulation;
using sim::Tick;

/**
 * Routes bursts to attached receivers after a fixed latency.
 */
class Switch : public sim::telemetry::Instrumented
{
  public:
    /** Receiver callback: invoked when a burst reaches the egress port. */
    using RxHandler = std::function<void(const Burst &)>;

    explicit Switch(Simulation &sim, Tick forward_latency = sim::nanoseconds(2000))
        : sim_(sim), latency_(forward_latency)
    {
        sim_.telemetry().add("fabric", this);
    }

    ~Switch() override { sim_.telemetry().remove(this); }

    Switch(const Switch &) = delete;
    Switch &operator=(const Switch &) = delete;

    /** Attach a device; returns its NodeId. */
    NodeId
    attach(RxHandler handler)
    {
        ports_.push_back(std::move(handler));
        return static_cast<NodeId>(ports_.size() - 1);
    }

    /**
     * Detach a device: its NodeId stays reserved, but bursts still in
     * flight toward it (or addressed to it later) are dropped instead
     * of invoking the stale handler.
     */
    void
    detach(NodeId id)
    {
        sim::simAssert(id < ports_.size(), "detach of unattached node");
        ports_[id] = nullptr;
    }

    std::size_t attachedCount() const { return ports_.size(); }
    Tick forwardLatency() const { return latency_; }

    /** Route every burst through @p injector (nullptr to disable). */
    void
    setFaultInjector(sim::FaultInjector *injector)
    {
        faults_ = injector;
        linkSites_.clear();
    }

    /**
     * Accept a burst that finished serializing into the switch at the
     * current simulated time; deliver it to the destination device
     * after the forwarding latency.
     */
    void
    forward(const Burst &burst)
    {
        sim::simAssert(burst.dst < ports_.size(),
                       "burst addressed to unattached node");
        Tick latency = latency_;
        if (faults_) {
            // A burst leaving a node that crashed while it was
            // serializing never makes it into the backplane.
            if (faults_->nodeDown(burst.src, sim_.now())) {
                faults_->noteOutageDrop(sim_.now());
                return;
            }
            sim::FaultDecision d = linkSite(burst.dst).decide();
            if (d.drop) {
                traceFault("fault:drop link", burst.dst);
                return;
            }
            if (d.extraDelay > sim::Tick{0}) {
                traceFault("fault:delay link", burst.dst);
                latency += d.extraDelay;
            }
            if (d.duplicate) {
                traceFault("fault:dup link", burst.dst);
                sim_.queue().scheduleIn(latency, [this, burst] {
                    deliver(burst);
                });
            }
        }
        sim_.queue().scheduleIn(latency, [this, burst] { deliver(burst); });
    }

    /** @name Statistics
     *  @{ */
    /** Deliveries dropped because the destination had detached. */
    std::uint64_t deadLetters() const { return deadLetters_.value(); }
    /** @} */

    /** Publish switch telemetry (registered with the Hub as "fabric"). */
    void
    instrument(sim::telemetry::Registry &reg) override
    {
        reg.scalar(
            "attachedPorts",
            [this] { return static_cast<double>(ports_.size()); },
            "devices ever attached to the switch");
        reg.counter("deadLetters", deadLetters_,
                    "deliveries dropped at detached ports");
    }

  private:
    /** Complete one delivery at the egress port. */
    void
    deliver(const Burst &burst)
    {
        // The destination may have detached or crashed while the
        // burst was in flight; finish the drop here rather than
        // invoking a dead handler.
        if (!ports_[burst.dst]) {
            deadLetters_.inc();
            return;
        }
        if (faults_ && faults_->nodeDown(burst.dst, sim_.now())) {
            faults_->noteOutageDrop(sim_.now());
            return;
        }
        ports_[burst.dst](burst);
    }

    /** Per-egress-link fault site, created lazily and cached. */
    sim::FaultSite &
    linkSite(NodeId dst)
    {
        if (dst >= linkSites_.size())
            linkSites_.resize(dst + 1, nullptr);
        if (!linkSites_[dst])
            linkSites_[dst] = &faults_->site("link." + std::to_string(dst));
        return *linkSites_[dst];
    }

    void
    traceFault(const char *what, NodeId dst)
    {
        if (sim::TraceWriter *tw = faults_->tracer())
            tw->instant(std::string(what) + std::to_string(dst), "fault",
                        sim_.now(), sim::TraceWriter::Lanes::fault);
    }

    Simulation &sim_;
    Tick latency_;
    std::vector<RxHandler> ports_;
    sim::FaultInjector *faults_ = nullptr;
    std::vector<sim::FaultSite *> linkSites_;
    sim::stats::Counter deadLetters_;
};

} // namespace ioat::net

#endif // IOAT_NET_SWITCH_HH
