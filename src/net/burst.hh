/**
 * @file
 * Wire-level data unit exchanged through the fabric.
 *
 * The simulator models traffic at *burst* granularity: a burst is a
 * train of back-to-back Ethernet frames belonging to one flow (e.g.
 * one TSO segment, or one small control message).  Individual frames
 * are never simulated as events — `frames` only feeds per-frame CPU
 * cost formulas — which keeps event counts proportional to segments,
 * not MTUs.
 *
 * The trailing fields (`kind`, `connToken`, `arg`) are owned by the
 * transport layer; the fabric and NIC treat them as opaque.
 */

#ifndef IOAT_NET_BURST_HH
#define IOAT_NET_BURST_HH

#include <cstdint>

#include "simcore/types.hh"

namespace ioat::net {

/** Identifies a node (one NIC) attached to the fabric. */
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

/** Application message-header words carried in-band with a burst. */
inline constexpr int kBurstMetaWords = 6;

/** A train of frames from one flow, delivered as a unit. */
struct Burst
{
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    /** Flow label: selects the NIC port (VLAN pairing) and RX queue. */
    std::uint64_t flow = 0;
    /** Total bytes on the wire (payload + per-frame headers). */
    std::uint32_t wireBytes = 0;
    /** Number of Ethernet frames in the train. */
    std::uint32_t frames = 1;
    /** Transport payload bytes carried. */
    std::uint32_t payloadBytes = 0;

    /** @name Transport-owned metadata (opaque to net/nic)
     *  @{ */
    std::uint32_t kind = 0;
    std::uint64_t connToken = 0;
    std::uint64_t arg = 0;
    /** Application message header riding the first segment, if any. */
    bool hasMeta = false;
    std::uint64_t meta[kBurstMetaWords] = {};
    /** Packed sim::TraceContext of the request this burst serves
     *  (0 = untraced), and when the NIC started serializing it —
     *  together they let the receive side record the wire span. */
    std::uint64_t trace = 0;
    sim::Tick traceTxStart{};
    /** @} */
};

} // namespace ioat::net

#endif // IOAT_NET_BURST_HH
