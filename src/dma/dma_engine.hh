/**
 * @file
 * Model of the I/OAT asynchronous DMA copy engine.
 *
 * The engine is a chipset device with a small number of channels,
 * each working through a descriptor ring.  A copy costs the *CPU*
 * only the submission (descriptor build + doorbell, growing with the
 * number of physical pages spanned); the byte movement itself runs on
 * the engine and overlaps with computation — the effect quantified in
 * the paper's Fig. 6 ("Overlap" reaches ~93% at 64 KB).
 *
 * Constraints modelled straight from §2.2.2:
 *  - transfers are split at page boundaries (physical addressing),
 *    charged via a per-page descriptor cost;
 *  - pages must be pinned first (cost lives in mem::PageModel; kernel
 *    buffers are permanently pinned, user buffers are not);
 *  - post-transfer cache coherence is a per-transfer flat cost.
 */

#ifndef IOAT_DMA_DMA_ENGINE_HH
#define IOAT_DMA_DMA_ENGINE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "mem/page_model.hh"
#include "simcore/coro.hh"
#include "simcore/fault.hh"
#include "simcore/sim.hh"
#include "simcore/stats.hh"
#include "simcore/sync.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/trace.hh"
#include "simcore/types.hh"

namespace ioat::dma {

using sim::Coro;
using sim::Rate;
using sim::Simulation;
using sim::Tick;

/** Engine parameters (defaults calibrated in core/calibration.hh). */
struct DmaConfig
{
    /** Independent channels that can move data concurrently. */
    unsigned channels = 4;
    /** Sustained copy rate of one channel. */
    Rate rate = Rate::bytesPerSec(2.0e9);
    /** CPU-side submission cost: ring slot setup + MMIO doorbell. */
    Tick submitBase = sim::nanoseconds(1500);
    /** CPU-side cost per page descriptor (physical scatter/gather). */
    Tick perPageDescriptor = sim::nanoseconds(55);
    /** Cache-coherence transaction after the transfer lands. */
    Tick coherenceCost = sim::nanoseconds(150);
    /** Page geometry used to split transfers. */
    std::size_t pageSize = 4096;
};

/**
 * One node's DMA copy engine.
 *
 * Two usage styles:
 *  - `co_await engine.transfer(bytes)` from a coroutine that wants to
 *    wait for completion (the CPU is *not* held — callers overlap by
 *    doing CPU work between submit and await);
 *  - `transferAsync(bytes, done)` for callback-style device code.
 *
 * Submission cost is returned by `submissionCost()` so the caller can
 * charge it to the CPU model — the engine itself never touches the
 * CPU, mirroring the hardware split.
 */
class DmaEngine : public sim::telemetry::Instrumented
{
  public:
    DmaEngine(Simulation &sim, const DmaConfig &cfg)
        : sim_(sim), cfg_(cfg), channels_(sim, cfg.channels)
    {
        sim::simAssert(cfg.channels > 0, "DMA engine needs >= 1 channel");
        sim::simAssert(cfg.rate.valid(), "DMA rate must be positive");
    }

    const DmaConfig &config() const { return cfg_; }

    /** Attach a trace writer (nullptr = tracing off). */
    void setTracer(sim::TraceWriter *t) { tracer_ = t; }

    void attachTracer(sim::TraceWriter *t) override { setTracer(t); }

    /**
     * Inject descriptor-completion faults from @p site_name: a "drop"
     * decision is a completion error (the engine re-executes the
     * descriptor), a "delay" decision is a channel stall.
     */
    void
    setFaultInjector(sim::FaultInjector *injector,
                     const std::string &site_name)
    {
        faultSite_ = injector ? &injector->site(site_name) : nullptr;
    }

    /** Pages spanned by a transfer of @p bytes. */
    std::size_t
    pagesFor(std::size_t bytes) const
    {
        return (bytes + cfg_.pageSize - 1) / cfg_.pageSize;
    }

    /**
     * CPU time to submit a copy of @p bytes (Fig. 6 "DMA-overhead").
     * Charged by the caller to its CpuSet.
     */
    Tick
    submissionCost(std::size_t bytes) const
    {
        return cfg_.submitBase + cfg_.perPageDescriptor * pagesFor(bytes);
    }

    /** Engine-side time to move @p bytes once a channel is granted. */
    Tick
    engineTime(std::size_t bytes) const
    {
        return cfg_.rate.transferTime(bytes) + cfg_.coherenceCost;
    }

    /**
     * Total wall time of a synchronous copy (submission + engine),
     * i.e. Fig. 6's "DMA-copy" series, ignoring channel queueing.
     */
    Tick
    syncCopyTime(std::size_t bytes) const
    {
        return submissionCost(bytes) + engineTime(bytes);
    }

    /**
     * Fraction of a synchronous DMA copy that can be overlapped with
     * computation (Fig. 6 "Overlap"): everything but the submission.
     */
    double
    overlapFraction(std::size_t bytes) const
    {
        return sim::fractionOf(engineTime(bytes), syncCopyTime(bytes));
    }

    /**
     * Awaitable: acquire a channel, move @p bytes, release.
     * Resumes the caller when the data (and the coherence
     * transaction) has landed.
     */
    Coro<void>
    transfer(std::size_t bytes, sim::TraceContext ctx = {})
    {
        co_await channels_.acquire();
        busySignal_.update(sim_.now(),
                           static_cast<double>(cfg_.channels -
                                               channels_.available()));
        const Tick start = sim_.now();
        co_await sim_.delay(engineTime(bytes));
        if (faultSite_) {
            // Completion errors re-execute the descriptor; stalls hold
            // the channel.  Bounded so p=1 can't loop forever.
            for (unsigned retry = 0; retry < kMaxFaultRetries; ++retry) {
                const sim::FaultDecision d = faultSite_->decide();
                if (d.drop) {
                    dmaErrors_.inc();
                    co_await sim_.delay(engineTime(bytes));
                    continue;
                }
                if (d.extraDelay > sim::Tick{0}) {
                    dmaStalls_.inc();
                    co_await sim_.delay(d.extraDelay);
                }
                break;
            }
        }
        if (tracer_) {
            tracer_->complete("dma " + std::to_string(bytes) + "B",
                              "dma", start, sim_.now() - start,
                              sim::TraceWriter::Lanes::dma);
        }
        if (ctx.valid()) {
            // Channel queueing before acquire stays unattributed (it
            // surfaces as the parent's residual), the engine time is a
            // dma-category span on the dma lane.
            if (sim::RequestTracer *rt = sim_.requestTracer())
                rt->record(ctx, "dma", sim::CostCat::dma, start,
                           sim_.now(), sim::TraceWriter::Lanes::dma);
        }
        transfers_.inc();
        bytesCopied_.inc(bytes);
        channels_.release();
        busySignal_.update(sim_.now(),
                           static_cast<double>(cfg_.channels -
                                               channels_.available()));
    }

    /** Callback-style transfer for non-coroutine contexts. */
    void
    transferAsync(std::size_t bytes, std::function<void()> done)
    {
        sim_.spawn(asyncBody(bytes, std::move(done)));
    }

    /** @name Statistics
     *  @{ */
    std::uint64_t completedTransfers() const { return transfers_.value(); }
    std::uint64_t bytesCopied() const { return bytesCopied_.value(); }
    /** Injected descriptor completion errors (each re-executed). */
    std::uint64_t dmaErrors() const { return dmaErrors_.value(); }
    /** Injected channel stalls. */
    std::uint64_t dmaStalls() const { return dmaStalls_.value(); }
    double
    averageBusyChannels() const
    {
        return busySignal_.average(sim_.now());
    }
    /** Channels moving data right now. */
    unsigned
    busyChannels() const
    {
        return cfg_.channels -
               static_cast<unsigned>(channels_.available());
    }
    /** Transfers waiting for a free channel (the submit queue). */
    std::size_t queueDepth() const { return channels_.waiterCount(); }
    /** @} */

    /** Publish DMA telemetry (called under the node's "dma" scope). */
    void
    instrument(sim::telemetry::Registry &reg) override
    {
        reg.counter("completedTransfers", transfers_,
                    "DMA transfers completed");
        reg.counter("bytesCopied", bytesCopied_,
                    "bytes moved by the engine");
        reg.counter("errors", dmaErrors_,
                    "injected descriptor completion errors");
        reg.counter("stalls", dmaStalls_, "injected channel stalls");
        reg.scalar(
            "averageBusyChannels",
            [this] { return averageBusyChannels(); },
            "time-weighted busy channels");
        reg.probe(
            "busyChannels", sim::telemetry::ProbeKind::gauge,
            [this] { return static_cast<double>(busyChannels()); },
            "channels moving data at the sample instant");
        reg.probe(
            "queueDepth", sim::telemetry::ProbeKind::gauge,
            [this] { return static_cast<double>(queueDepth()); },
            "transfers waiting for a free channel");
    }

  private:
    Coro<void>
    asyncBody(std::size_t bytes, std::function<void()> done)
    {
        co_await transfer(bytes);
        if (done)
            done();
    }

    static constexpr unsigned kMaxFaultRetries = 8;

    Simulation &sim_;
    DmaConfig cfg_;
    sim::TraceWriter *tracer_ = nullptr;
    sim::FaultSite *faultSite_ = nullptr;
    sim::Semaphore channels_;
    sim::stats::Counter transfers_;
    sim::stats::Counter bytesCopied_;
    sim::stats::Counter dmaErrors_;
    sim::stats::Counter dmaStalls_;
    sim::stats::TimeWeighted busySignal_{0.0};
};

} // namespace ioat::dma

#endif // IOAT_DMA_DMA_ENGINE_HH
