/**
 * @file
 * Deterministic hierarchical profiler: folded call-stack cost ledgers
 * built from the request tracer's span trees.
 *
 * The profiler piggybacks on the reqtrace machinery instead of adding
 * its own hot-path hooks: model code keeps emitting `ScopedSpan`s
 * exactly as before (zero new work per span), and when a request
 * *finalizes*, the tracer's clipped-interval attribution walk — the
 * one that already partitions the request's latency exactly across
 * cost categories — also reports each charge here together with the
 * root-to-span *name path* it was charged on.  Folding those paths
 * yields, per cost category, a classic flame-graph profile: the cost
 * of `GET;proxy.backend;tcp.rx;softirq` is the time the attribution
 * rule charged to the `tcp.rx`→`softirq` frames of GET requests, and
 * the per-category ledger sums to exactly the summed request
 * breakdowns (the partition property, pinned by `ctest -L profile`).
 *
 * Output is the Brendan Gregg folded-stack format — one line per
 * (stack, category): `frames;...;[cat] <ticks>` — which
 * `flamegraph.pl` and speedscope render directly.  Lines are sorted
 * lexically and counts are simulated ticks, so the bytes are
 * reproducible run to run and across `--shards` counts.
 *
 * Costs: nothing on the span hot path (begin/end span never touch the
 * profiler), allocation only at request finalize (one string per tree
 * level of the walk), and nothing at all when no profiler is attached
 * — the tracer's null pointer is the off fast path, and golden
 * digests are byte-identical with the profiler compiled in.
 */

#ifndef IOAT_SIMCORE_PROFILE_HH
#define IOAT_SIMCORE_PROFILE_HH

#include <array>
#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <string>

#include "simcore/assert.hh"
#include "simcore/reqtrace.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/**
 * Folded-stack cost ledger.  Attach to a RequestTracer
 * (`tracer.attachProfiler(&p)`); every finalized request's exact
 * attribution is folded in, keyed by the semicolon-joined span-name
 * path from the request root.
 */
class Profiler : public ProfileSink
{
  public:
    /** Per-stack ticks, one slot per cost category. */
    using CatTicks = std::array<std::uint64_t, kCostCatCount>;

    /**
     * Charge @p ticks of @p cat against @p stack (semicolon-joined
     * span names, root first).  Called by RequestTracer::finalize —
     * not by model code.
     */
    void
    add(const std::string &stack, CostCat cat, Tick ticks) override
    {
        if (ticks <= Tick{})
            return;
        folded_[stack][static_cast<std::size_t>(cat)] +=
            static_cast<std::uint64_t>(ticks.count());
    }

    /** Ledger totals per category (the partition-property check). */
    CatTicks
    totals() const
    {
        CatTicks t{};
        for (const auto &[stack, cats] : folded_) {
            (void)stack;
            for (std::size_t i = 0; i < kCostCatCount; ++i)
                t[i] += cats[i];
        }
        return t;
    }

    /** Distinct (stack) keys folded so far. */
    std::size_t stackCount() const { return folded_.size(); }

    const std::map<std::string, CatTicks> &folded() const
    {
        return folded_;
    }

    /**
     * Brendan Gregg folded-stack lines: `a;b;[cat] ticks`, sorted
     * (std::map iteration + fixed category order), one line per
     * non-zero (stack, category) pair.  The `[cat]` leaf frame keeps
     * one flame graph renderable per category mix while staying a
     * plain frame for tools that don't know our categories.
     */
    void
    writeFolded(std::ostream &os) const
    {
        for (const auto &[stack, cats] : folded_) {
            for (std::size_t i = 0; i < kCostCatCount; ++i) {
                if (cats[i] == 0)
                    continue;
                os << stack << ";["
                   << costCatName(static_cast<CostCat>(i)) << "] "
                   << cats[i] << "\n";
            }
        }
    }

    void
    saveFolded(const std::string &path) const
    {
        std::ofstream out(path);
        simAssert(out.good(), "cannot open folded-stack file");
        writeFolded(out);
    }

  private:
    /** stack -> per-category ticks; std::map for sorted iteration. */
    std::map<std::string, CatTicks> folded_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_PROFILE_HH
