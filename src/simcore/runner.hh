/**
 * @file
 * The minimal "thing that advances simulated time" interface.
 *
 * Benches and harnesses drive a run through this, so the same
 * measurement code works whether the cluster lives on one
 * `sim::Simulation` (the classic single-threaded engine) or is
 * partitioned across worker threads by a `sim::ShardGroup`.
 */

#ifndef IOAT_SIMCORE_RUNNER_HH
#define IOAT_SIMCORE_RUNNER_HH

#include <cstdint>

#include "simcore/types.hh"

namespace ioat::sim {

/** Abstract event-loop driver: a clock that can be run forward. */
class Runner
{
  public:
    virtual ~Runner() = default;

    /** Current simulated time (for a shard group: the global floor). */
    virtual Tick now() const = 0;

    /** Run all events with time <= @p when, then advance to it. */
    virtual void runUntil(Tick when) = 0;

    /** Run for @p duration ticks past the current time. */
    void runFor(Tick duration) { runUntil(now() + duration); }

    /** Total events executed since construction (all shards). */
    virtual std::uint64_t executedEvents() const = 0;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_RUNNER_HH
