/**
 * @file
 * Plain-text table printer for benchmark output.
 *
 * Every figure-reproduction binary prints its series through this so
 * the rows line up with the paper's tables/plots and are trivially
 * grep-able / plottable.
 */

#ifndef IOAT_SIMCORE_TABLE_HH
#define IOAT_SIMCORE_TABLE_HH

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace ioat::sim {

/** printf-style formatting into a std::string. */
#ifdef __GNUC__
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

/** Format helpers used across benches. */
inline std::string
fmtDouble(double v, int precision = 1)
{
    return strprintf("%.*f", precision, v);
}

inline std::string
fmtPercent(double fraction, int precision = 1)
{
    return strprintf("%.*f%%", precision, fraction * 100.0);
}

/**
 * A fixed-column table that sizes columns from contents.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    void
    addRow(std::vector<std::string> row)
    {
        rows_.push_back(std::move(row));
    }

    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> widths(header_.size());
        for (std::size_t i = 0; i < header_.size(); ++i)
            widths[i] = header_[i].size();
        for (const auto &row : rows_)
            for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
                widths[i] = std::max(widths[i], row[i].size());

        printRow(os, header_, widths);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
        for (const auto &row : rows_)
            printRow(os, row, widths);
    }

  private:
    static void
    printRow(std::ostream &os, const std::vector<std::string> &row,
             const std::vector<std::size_t> &widths)
    {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size()) {
                const std::size_t pad =
                    (i < widths.size() ? widths[i] : row[i].size()) -
                    row[i].size() + 2;
                os << std::string(pad, ' ');
            }
        }
        os << '\n';
    }

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_TABLE_HH
