/**
 * @file
 * Lazy coroutine task type used for all simulated activities.
 *
 * `Coro<T>` is a single-awaiter, lazily-started coroutine: creating it
 * does nothing; `co_await`-ing it starts the body via symmetric
 * transfer and resumes the awaiter when the body finishes.  Values and
 * exceptions propagate through `co_await`.
 *
 * Root ("detached") coroutines are started with `Simulation::spawn`,
 * which keeps ownership of the frame so everything can be torn down
 * deterministically at end of simulation.
 */

#ifndef IOAT_SIMCORE_CORO_HH
#define IOAT_SIMCORE_CORO_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <optional>
#include <utility>

#include "simcore/assert.hh"

namespace ioat::sim {

template <typename T>
class Coro;

namespace detail {

/**
 * Size-bucketed free-list recycler for coroutine frames.
 *
 * Simulated activities allocate a frame per send/recv/compute call;
 * recycling them through 64-byte size classes turns that steady-state
 * malloc/free churn into two pointer moves.  The free lists are
 * thread_local: each shard worker (simcore/shard.hh) recycles frames
 * through its own lists with no locking, exactly as the classic
 * single-threaded engine does.  A frame freed on a different thread
 * than it was allocated on simply migrates lists — the arena hands
 * out raw `::operator new` storage, so ownership is not
 * thread-bound.  Oversized frames fall through to the global
 * allocator.
 */
class FrameArena
{
  public:
    static void *
    allocate(std::size_t n)
    {
        const std::size_t b = bucket(n);
        if (b < kBuckets && free_[b] != nullptr) {
            void *p = free_[b];
            free_[b] = *static_cast<void **>(p);
            return p;
        }
        if (b < kBuckets)
            return ::operator new((b + 1) * kGranule);
        return ::operator new(n);
    }

    static void
    deallocate(void *p, std::size_t n)
    {
        const std::size_t b = bucket(n);
        if (b < kBuckets) {
            *static_cast<void **>(p) = free_[b];
            free_[b] = p;
            return;
        }
        ::operator delete(p);
    }

  private:
    static constexpr std::size_t kGranule = 64;
    static constexpr std::size_t kBuckets = 16; ///< recycle up to 1 KiB

    static std::size_t
    bucket(std::size_t n)
    {
        return n == 0 ? 0 : (n - 1) / kGranule;
    }

    inline static thread_local void *free_[kBuckets] = {};
};

/** Shared promise behaviour: remember who awaits us, resume them last. */
struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    static void *
    operator new(std::size_t n)
    {
        return FrameArena::allocate(n);
    }

    static void
    operator delete(void *p, std::size_t n)
    {
        FrameArena::deallocate(p, n);
    }

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) const noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }
};

} // namespace detail

/**
 * A lazily-started coroutine returning T.
 *
 * Move-only; owns the coroutine frame.  Must be awaited exactly once
 * (or destroyed without being awaited, which destroys the un-started
 * or suspended body and, transitively, anything it owns).
 */
template <typename T>
class [[nodiscard]] Coro
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Coro
        get_return_object()
        {
            return Coro(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        template <typename U>
        void
        return_value(U &&v)
        {
            value.emplace(std::forward<U>(v));
        }
    };

    Coro() = default;

    Coro(Coro &&o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Coro &
    operator=(Coro &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    Coro(const Coro &) = delete;
    Coro &operator=(const Coro &) = delete;

    ~Coro() { destroy(); }

    bool valid() const { return handle_ != nullptr; }
    bool done() const { return handle_ && handle_.done(); }

    /** Awaiter: start the body, resume the awaiter at completion. */
    struct Awaiter
    {
        std::coroutine_handle<promise_type> handle;

        bool await_ready() const noexcept { return !handle || handle.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> cont) noexcept
        {
            handle.promise().continuation = cont;
            return handle;
        }

        T
        await_resume()
        {
            simAssert(handle != nullptr, "awaiting an empty Coro");
            auto &p = handle.promise();
            if (p.exception)
                std::rethrow_exception(p.exception);
            simAssert(p.value.has_value(), "Coro finished without a value");
            return std::move(*p.value);
        }
    };

    Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }

    /** Release ownership of the frame (used by Simulation::spawn). */
    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, nullptr);
    }

  private:
    explicit Coro(std::coroutine_handle<promise_type> h) : handle_(h) {}

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

/** Specialization for coroutines that produce no value. */
template <>
class [[nodiscard]] Coro<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Coro
        get_return_object()
        {
            return Coro(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() const noexcept {}
    };

    Coro() = default;

    Coro(Coro &&o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Coro &
    operator=(Coro &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    Coro(const Coro &) = delete;
    Coro &operator=(const Coro &) = delete;

    ~Coro() { destroy(); }

    bool valid() const { return handle_ != nullptr; }
    bool done() const { return handle_ && handle_.done(); }

    struct Awaiter
    {
        std::coroutine_handle<promise_type> handle;

        bool await_ready() const noexcept { return !handle || handle.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> cont) noexcept
        {
            handle.promise().continuation = cont;
            return handle;
        }

        void
        await_resume()
        {
            simAssert(handle != nullptr, "awaiting an empty Coro");
            if (handle.promise().exception)
                std::rethrow_exception(handle.promise().exception);
        }
    };

    Awaiter operator co_await() && noexcept { return Awaiter{handle_}; }

    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, nullptr);
    }

  private:
    friend class Simulation;

    explicit Coro(std::coroutine_handle<promise_type> h) : handle_(h) {}

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_CORO_HH
