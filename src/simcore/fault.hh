/**
 * @file
 * Deterministic fault-injection framework.
 *
 * A `FaultInjector` owns a seeded fault plan for a whole simulation.
 * Components pull per-site decision streams from it: each named site
 * (a switch link, a NIC RX path, a DMA engine, ...) gets its own
 * `FaultSite` whose PRNG is derived from the global seed and the site
 * name, so the fault schedule at one site is a pure function of
 * (seed, site name, number of decisions taken there).  Adding or
 * removing sites never perturbs the streams of the others, and the
 * same seed replays the exact same schedule.
 *
 * Two kinds of fault are modeled:
 *  - probabilistic per-unit faults (drop / duplicate / extra delay),
 *    decided by `FaultSite::decide()`;
 *  - scheduled whole-node outage windows (pause, crash, restart),
 *    queried with `nodeDown()` — delivery to (or from) a down node is
 *    the injection point for crash semantics.
 *
 * Everything is observable: per-site counters, aggregate counters,
 * optional trace instants, and `instrument()` for end-of-run reports.
 */

#ifndef IOAT_SIMCORE_FAULT_HH
#define IOAT_SIMCORE_FAULT_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/random.hh"
#include "simcore/stats.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/trace.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/** Probabilistic fault mix for one site (probabilities sum to <= 1). */
struct FaultSiteConfig
{
    double dropProb = 0.0;  ///< unit vanishes
    double dupProb = 0.0;   ///< unit delivered twice
    double delayProb = 0.0; ///< unit delivered late by delayTicks
    Tick delayTicks{};    ///< extra latency applied on a delay fault
};

/** What the injector decided for one unit of work at a site. */
struct FaultDecision
{
    bool drop = false;
    bool duplicate = false;
    Tick extraDelay{};
};

/** A scheduled whole-node outage window [start, end). */
struct OutageWindow
{
    std::uint32_t node = 0;
    Tick start{};
    Tick end = kTickMax; ///< kTickMax = permanent crash
};

class FaultInjector;

/**
 * One named fault-injection point with its own deterministic
 * decision stream and counters.
 */
class FaultSite
{
  public:
    const std::string &name() const { return name_; }
    const FaultSiteConfig &config() const { return cfg_; }
    void configure(const FaultSiteConfig &cfg) { cfg_ = cfg; }

    /**
     * Decide the fate of the next unit of work at this site.  Exactly
     * one PRNG draw per call, so the stream stays aligned across runs
     * even when the configured probabilities differ.
     */
    FaultDecision decide(); // defined after FaultInjector

    /** @name Per-site counters
     *  @{ */
    std::uint64_t decisions() const { return decisions_.value(); }
    std::uint64_t drops() const { return drops_.value(); }
    std::uint64_t dups() const { return dups_.value(); }
    std::uint64_t delays() const { return delays_.value(); }
    /** @} */

    /** Passkey: only FaultInjector can mint one, so sites are
     *  injector-owned while std::make_unique does the allocation. */
    class Key
    {
        friend class FaultInjector;
        Key() = default;
    };

    FaultSite(Key, FaultInjector &parent, std::string name,
              std::uint64_t seed, const FaultSiteConfig &cfg)
        : parent_(parent), name_(std::move(name)), rng_(seed), cfg_(cfg)
    {}

  private:
    friend class FaultInjector;

    FaultInjector &parent_;
    std::string name_;
    Rng rng_;
    FaultSiteConfig cfg_;
    stats::Counter decisions_;
    stats::Counter drops_;
    stats::Counter dups_;
    stats::Counter delays_;
};

/**
 * The simulation-wide fault plan: site registry, outage schedule,
 * aggregate counters, optional tracing.
 */
class FaultInjector : public telemetry::Instrumented
{
  public:
    explicit FaultInjector(std::uint64_t seed = 1) : seed_(seed) {}

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    std::uint64_t seed() const { return seed_; }

    /**
     * Default config applied to sites created on demand (handy for
     * "uniform loss on every link" sweeps).  Affects only sites
     * created after the call.
     */
    void setDefaultConfig(const FaultSiteConfig &cfg) { defaultCfg_ = cfg; }

    /**
     * Get or create the site named @p name.  Creation is serialized:
     * shard workers fault-in their per-link sites lazily and may race
     * on the directory (never on a site — each site's RNG stream is
     * drawn from a single node's execution).  A site's seed depends
     * only on its name, so creation *order* does not matter.
     */
    FaultSite &
    site(const std::string &name)
    {
        std::lock_guard<std::mutex> lk(sitesMu_);
        auto it = sites_.find(name);
        if (it == sites_.end()) {
            it = sites_
                     .emplace(name, std::make_unique<FaultSite>(
                                        FaultSite::Key{}, *this, name,
                                        siteSeed(name), defaultCfg_))
                     .first;
        }
        return *it->second;
    }

    /** Get or create the site named @p name and (re)configure it. */
    FaultSite &
    site(const std::string &name, const FaultSiteConfig &cfg)
    {
        FaultSite &s = site(name);
        s.configure(cfg);
        return s;
    }

    /** @name Scheduled node outages
     *  @{ */

    /** Take @p node down over [start, end); end defaults to forever.
     *  Inverted or empty windows (`end <= start`) are rejected. */
    void
    addOutage(std::uint32_t node, Tick start, Tick end = kTickMax)
    {
        simAssert(end > start,
                  "outage window must satisfy end > start");
        outages_.push_back(OutageWindow{node, start, end});
        insertIndexed(node, start, end);
    }

    /**
     * Is @p node inside any of its outage windows at @p now?
     *
     * Queried on every switch delivery, so it is indexed: windows are
     * kept per node, merged and sorted by start, and the lookup is one
     * map find plus a binary search instead of a scan over the whole
     * schedule.
     */
    bool
    nodeDown(std::uint32_t node, Tick now) const
    {
        const auto it = index_.find(node);
        if (it == index_.end())
            return false;
        const auto &wins = it->second;
        // First window starting strictly after `now`; its predecessor
        // is the only candidate (windows are merged, so disjoint).
        auto up = std::upper_bound(
            wins.begin(), wins.end(), now,
            [](Tick t, const OutageWindow &w) { return t < w.start; });
        if (up == wins.begin())
            return false;
        return now < std::prev(up)->end;
    }

    /** The raw outage schedule, in the order it was added. */
    const std::vector<OutageWindow> &outages() const { return outages_; }

    /**
     * Per-node outage windows, merged (overlaps and adjacencies
     * coalesced) and sorted by start — the process-level view a
     * crash/restart supervisor needs: one merged window is one
     * crash + one restart, however many raw windows produced it.
     * @return empty when @p node has no scheduled outages.
     */
    std::vector<OutageWindow>
    mergedOutages(std::uint32_t node) const
    {
        const auto it = index_.find(node);
        if (it == index_.end())
            return {};
        return it->second;
    }

    /** Nodes with at least one scheduled outage, ascending. */
    std::vector<std::uint32_t>
    outageNodes() const
    {
        std::vector<std::uint32_t> nodes;
        nodes.reserve(index_.size());
        for (const auto &[node, wins] : index_)
            nodes.push_back(node);
        return nodes;
    }

    /** Record a delivery dropped because an endpoint was down. */
    void
    noteOutageDrop(Tick now)
    {
        outageDrops_.inc();
        if (trace_)
            trace_->instant("fault:outage-drop", "fault", now,
                            TraceWriter::Lanes::fault);
    }
    /** @} */

    /** Emit fault instants into @p tw (injected vs recovered audit). */
    void setTracer(TraceWriter *tw) { trace_ = tw; }
    TraceWriter *tracer() const { return trace_; }

    /** Instrumented hook: same as setTracer. */
    void attachTracer(TraceWriter *tw) override { trace_ = tw; }

    /** @name Aggregate counters (sum over all sites + outages)
     *  @{ */
    std::uint64_t totalDrops() const { return drops_.value(); }
    std::uint64_t totalDups() const { return dups_.value(); }
    std::uint64_t totalDelays() const { return delays_.value(); }
    std::uint64_t outageDrops() const { return outageDrops_.value(); }
    /** @} */

    /**
     * Publish the fault plan's counters under the caller's scope
     * (aggregate + one group per site; sites_ is a std::map, so the
     * order is deterministic).
     */
    void
    instrument(telemetry::Registry &reg) override
    {
        reg.counter("drops", drops_, "bursts dropped by injector");
        reg.counter("dups", dups_, "bursts duplicated by injector");
        reg.counter("delays", delays_, "bursts delayed by injector");
        reg.counter("outageDrops", outageDrops_,
                    "deliveries dropped at crashed nodes");
        // Echo the outage *plan* itself (not just its effects) so a
        // chaos run's report is self-describing: one scope per raw
        // window, in schedule order.
        reg.scalar(
            "outageWindows",
            [this] { return static_cast<double>(outages_.size()); },
            "scheduled outage windows in the fault plan");
        for (std::size_t i = 0; i < outages_.size(); ++i) {
            telemetry::Registry::Scope scope(
                reg, "outage" + std::to_string(i));
            const OutageWindow w = outages_[i];
            reg.scalar(
                "node", [w] { return static_cast<double>(w.node); },
                "node taken down by this window");
            reg.scalar(
                "startUs",
                [w] { return toMicroseconds(w.start); },
                "window start (us)");
            reg.scalar(
                "endUs",
                [w] {
                    return w.end == kTickMax ? -1.0
                                             : toMicroseconds(w.end);
                },
                "window end (us; -1 = permanent crash)");
        }
        for (const auto &[name, s] : sites_) {
            telemetry::Registry::Scope scope(reg, name);
            reg.counter("drops", s->drops_);
            reg.counter("dups", s->dups_);
            reg.counter("delays", s->delays_);
        }
    }

  private:
    friend class FaultSite;

    /** Per-site seed: mix the site name into the global seed. */
    std::uint64_t
    siteSeed(const std::string &name) const
    {
        // FNV-1a over the name, then xor into the plan seed.
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (unsigned char c : name) {
            h ^= c;
            h *= 0x100000001b3ULL;
        }
        return seed_ ^ h;
    }

    /** Keep the per-node index merged and sorted by start. */
    void
    insertIndexed(std::uint32_t node, Tick start, Tick end)
    {
        auto &wins = index_[node];
        auto pos = std::lower_bound(
            wins.begin(), wins.end(), start,
            [](const OutageWindow &w, Tick t) { return w.start < t; });
        pos = wins.insert(pos, OutageWindow{node, start, end});
        // Coalesce with the predecessor, then with any successors the
        // (possibly grown) window swallows.
        if (pos != wins.begin() && std::prev(pos)->end >= pos->start) {
            auto prev = std::prev(pos);
            prev->end = std::max(prev->end, pos->end);
            pos = wins.erase(pos);
            pos = std::prev(pos);
        }
        while (std::next(pos) != wins.end() &&
               pos->end >= std::next(pos)->start) {
            pos->end = std::max(pos->end, std::next(pos)->end);
            wins.erase(std::next(pos));
        }
    }

    std::uint64_t seed_;
    FaultSiteConfig defaultCfg_;
    // std::map: deterministic iteration order for stats registration.
    std::map<std::string, std::unique_ptr<FaultSite>> sites_;
    /** Guards the sites_ directory (not the sites themselves). */
    std::mutex sitesMu_;
    std::vector<OutageWindow> outages_;
    /** node → merged windows sorted by start (nodeDown fast path). */
    std::map<std::uint32_t, std::vector<OutageWindow>> index_;
    TraceWriter *trace_ = nullptr;
    stats::Counter drops_;
    stats::Counter dups_;
    stats::Counter delays_;
    stats::Counter outageDrops_;
};

inline FaultDecision
FaultSite::decide()
{
    decisions_.inc();
    FaultDecision d;
    const double sum = cfg_.dropProb + cfg_.dupProb + cfg_.delayProb;
    if (sum <= 0.0) {
        // Keep the stream aligned even for a currently-clean site.
        (void)rng_.uniform();
        return d;
    }
    const double u = rng_.uniform();
    if (u < cfg_.dropProb) {
        d.drop = true;
        drops_.inc();
        parent_.drops_.inc();
    } else if (u < cfg_.dropProb + cfg_.dupProb) {
        d.duplicate = true;
        dups_.inc();
        parent_.dups_.inc();
    } else if (u < sum) {
        d.extraDelay = cfg_.delayTicks;
        delays_.inc();
        parent_.delays_.inc();
    }
    return d;
}

} // namespace ioat::sim

#endif // IOAT_SIMCORE_FAULT_HH
