/**
 * @file
 * Fixed-interval time series: the storage behind sampled probes.
 *
 * A TimeSeries is an append-only vector of doubles plus the (start,
 * interval) pair that positions every element on the simulated
 * timeline — sample i covers (start + i*interval, start +
 * (i+1)*interval].  The deterministic Sampler (sampler.hh) appends
 * one value per registered probe per tick; nothing here reads the
 * host clock or allocates on the simulation hot path (growth happens
 * only while sampling is explicitly enabled).
 */

#ifndef IOAT_SIMCORE_TELEMETRY_TIMESERIES_HH
#define IOAT_SIMCORE_TELEMETRY_TIMESERIES_HH

#include <cstddef>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/types.hh"

namespace ioat::sim::telemetry {

/** How the Sampler turns a probe reading into a series value. */
enum class ProbeKind {
    /** Record the instantaneous reading (queue depth, busy cores). */
    gauge,
    /**
     * Record the increase since the previous sample (per-interval
     * rate of a monotonic counter, e.g. link bytes per interval).
     */
    delta,
};

/** One sampled signal over simulated time. */
class TimeSeries
{
  public:
    /** Fix the timeline; must happen before the first append. */
    void
    configure(Tick start, Tick interval)
    {
        simAssert(values_.empty(), "TimeSeries reconfigured mid-run");
        simAssert(interval > Tick{0}, "sampling interval must be > 0");
        start_ = start;
        interval_ = interval;
    }

    void append(double v) { values_.push_back(v); }

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    double at(std::size_t i) const { return values_.at(i); }
    const std::vector<double> &values() const { return values_; }

    Tick startTime() const { return start_; }
    Tick interval() const { return interval_; }

    /** End of sample i's interval on the simulated timeline. */
    Tick
    timeAt(std::size_t i) const
    {
        return start_ + interval_ * (static_cast<std::uint64_t>(i) + 1);
    }

  private:
    std::vector<double> values_;
    Tick start_{};
    Tick interval_{};
};

} // namespace ioat::sim::telemetry

#endif // IOAT_SIMCORE_TELEMETRY_TIMESERIES_HH
