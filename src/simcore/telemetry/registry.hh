/**
 * @file
 * The redesigned instrumentation API: one `Instrumented` interface,
 * one `Registry` every component publishes into, one `Hub` that walks
 * the component hierarchy.
 *
 * Replaces the scattered `registerStats(stats::Registry&)`
 * conventions: a component implements `instrument(Registry&)` once,
 * registering scalars, sampled probes, histograms and flow tables
 * under its *local* names ("utilization", "wireBytes"); the caller
 * brings the dotted prefix ("node0.cpu") via Registry::Scope, so the
 * same component code yields "node0.cpu.utilization" and
 * "node3.cpu.utilization" with zero per-call-site boilerplate.
 *
 * Components register themselves with their Simulation's Hub at
 * construction (Node, Switch, Proxy, PvfsClient, ...), so building a
 * full report is a single hierarchy walk — `hub.instrumentAll(reg)` —
 * with no bench-side wiring.  Registration is registration-order
 * deterministic (a vector, never a hash map), matching the
 * simulator's bit-identical-replay contract.
 *
 * Pay-for-what-you-use: a Registry only exists while a report or
 * sampler is live; components that merely *declare* instrument() pay
 * nothing on the simulation hot path.
 */

#ifndef IOAT_SIMCORE_TELEMETRY_REGISTRY_HH
#define IOAT_SIMCORE_TELEMETRY_REGISTRY_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/stats.hh"
#include "simcore/telemetry/histogram.hh"
#include "simcore/telemetry/timeseries.hh"
#include "simcore/trace.hh"
#include "simcore/types.hh"

namespace ioat::sim::telemetry {

/**
 * Per-connection transport flow record (bytes, retransmits, RTO
 * fires, handshake/FIN latency) — the TCP flow telemetry the paper's
 * per-stream figures need.
 */
struct FlowSample
{
    std::uint64_t flow = 0;          ///< stack-assigned flow id
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t retransmits = 0;   ///< data segments resent
    std::uint64_t rtoFires = 0;      ///< retransmission timeouts
    Tick handshakeLatency{};         ///< connect() -> established
    Tick finLatency{};               ///< established -> FIN/abort (0 if open)
    bool open = true;                ///< still usable at capture time
};

/**
 * Everything one run publishes: scalars, sampled probes, histograms
 * and flow tables, each under a dotted hierarchical name.
 */
class Registry
{
  public:
    /** A named point-in-time numeric reading. */
    struct Scalar
    {
        std::string name;
        std::string description;
        std::function<double()> read;
    };

    /** A named signal polled by the Sampler into a TimeSeries. */
    struct Probe
    {
        std::string name;
        std::string description;
        ProbeKind kind = ProbeKind::gauge;
        std::function<double()> read;
        double lastRaw = 0.0; ///< previous reading (delta probes)
        TimeSeries series;
        /**
         * Distribution of sampled values in milli-units (value *
         * 1000, rounded), so fractional gauges like utilization keep
         * three decimal digits through the integer histogram.
         */
        Histogram dist;
    };

    /** A named view onto a component-owned histogram. */
    struct HistogramRef
    {
        std::string name;
        std::string description;
        /** Multiply reported bounds by this to recover the unit
         *  (1 for raw tick/byte histograms). */
        double scale = 1.0;
        const Histogram *hist = nullptr;
    };

    /** A named per-flow table provider. */
    struct FlowSource
    {
        std::string name;
        std::function<std::vector<FlowSample>()> read;
    };

    /** RAII dotted-name prefix: Scope s(reg, "cpu"). */
    class Scope
    {
      public:
        Scope(Registry &reg, std::string_view segment) : reg_(reg)
        {
            reg_.push(segment);
        }
        ~Scope() { reg_.pop(); }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Registry &reg_;
    };

    void
    push(std::string_view segment)
    {
        simAssert(!segment.empty(), "empty registry scope segment");
        prefix_.emplace_back(segment);
    }

    void
    pop()
    {
        simAssert(!prefix_.empty(), "registry scope underflow");
        prefix_.pop_back();
    }

    /** Current dotted prefix applied to @p name. */
    std::string
    qualify(std::string_view name) const
    {
        std::string out;
        for (const auto &seg : prefix_) {
            out += seg;
            out += '.';
        }
        out += name;
        return out;
    }

    /** @name Registration (called from Instrumented::instrument)
     *  @{ */
    void
    scalar(std::string_view name, std::function<double()> read,
           std::string desc = "")
    {
        scalars_.push_back(
            {qualify(name), std::move(desc), std::move(read)});
    }

    /** Convenience: a stats::Counter published as a scalar. */
    void
    counter(std::string_view name, const stats::Counter &c,
            std::string desc = "")
    {
        scalar(
            name,
            [&c] { return static_cast<double>(c.value()); },
            std::move(desc));
    }

    void
    probe(std::string_view name, ProbeKind kind,
          std::function<double()> read, std::string desc = "")
    {
        probes_.push_back(Probe{qualify(name), std::move(desc), kind,
                                std::move(read), 0.0, {}, {}});
    }

    void
    histogram(std::string_view name, const Histogram &h,
              std::string desc = "", double scale = 1.0)
    {
        histograms_.push_back(
            {qualify(name), std::move(desc), scale, &h});
    }

    void
    flows(std::string_view name,
          std::function<std::vector<FlowSample>()> read)
    {
        flowSources_.push_back({qualify(name), std::move(read)});
    }
    /** @} */

    /**
     * Sort every table by qualified name.  A registry built by
     * walking *several* hubs (one per shard of a partitioned cluster)
     * sees components in shard order, which depends on the partition;
     * sorting restores a shard-count-invariant capture order.
     */
    void
    sortByName()
    {
        const auto byName = [](const auto &a, const auto &b) {
            return a.name < b.name;
        };
        std::sort(scalars_.begin(), scalars_.end(), byName);
        std::sort(probes_.begin(), probes_.end(), byName);
        std::sort(histograms_.begin(), histograms_.end(), byName);
        std::sort(flowSources_.begin(), flowSources_.end(), byName);
    }

    /** @name Access (Sampler, RunReport, tests)
     *  @{ */
    const std::vector<Scalar> &scalars() const { return scalars_; }
    std::deque<Probe> &probes() { return probes_; }
    const std::deque<Probe> &probes() const { return probes_; }
    const std::vector<HistogramRef> &histograms() const
    {
        return histograms_;
    }
    const std::vector<FlowSource> &flowSources() const
    {
        return flowSources_;
    }
    /** @} */

  private:
    std::vector<std::string> prefix_;
    std::vector<Scalar> scalars_;
    /** deque: Probe addresses stay stable as registration grows. */
    std::deque<Probe> probes_;
    std::vector<HistogramRef> histograms_;
    std::vector<FlowSource> flowSources_;
};

/**
 * The one registration interface every observable component
 * implements.  instrument() publishes under the registry's *current*
 * prefix; attachTracer() opts the component's internal models into an
 * externally-owned Chrome trace (default: no-op).
 */
class Instrumented
{
  public:
    virtual ~Instrumented() = default;
    virtual void instrument(Registry &reg) = 0;
    virtual void attachTracer(TraceWriter *) {}
};

/**
 * Component directory owned by a Simulation: top-level components add
 * themselves at construction under a base name ("node", "fabric",
 * "proxy") and get a unique indexed prefix back ("node0", "node1",
 * ...).  instrumentAll() is the hierarchy walk that builds a whole
 * run's registry.
 */
class Hub
{
  public:
    /** Register @p c; returns the assigned dotted-name prefix. */
    std::string
    add(const std::string &base, Instrumented *c)
    {
        const unsigned idx = nextIndex_[base]++;
        std::string name = base + std::to_string(idx);
        entries_.push_back({name, c});
        return name;
    }

    /**
     * Register under an exact, caller-chosen name.  Components with a
     * cluster-global identity (nodes, keyed by switch-port id) use
     * this so their telemetry names stay stable when the cluster is
     * partitioned across several Simulations, each with its own Hub —
     * per-hub auto-numbering would restart on every shard.
     */
    std::string
    addNamed(std::string name, Instrumented *c)
    {
        entries_.push_back({name, c});
        return entries_.back().name;
    }

    /** Unregister (component destruction). */
    void
    remove(const Instrumented *c)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->component == c) {
                entries_.erase(it);
                return;
            }
        }
    }

    std::size_t size() const { return entries_.size(); }

    /** Walk every registered component in registration order. */
    void
    instrumentAll(Registry &reg) const
    {
        for (const auto &e : entries_) {
            Registry::Scope scope(reg, e.name);
            e.component->instrument(reg);
        }
    }

    /** Attach (or detach, with nullptr) a tracer everywhere. */
    void
    attachTracerAll(TraceWriter *t) const
    {
        for (const auto &e : entries_)
            e.component->attachTracer(t);
    }

  private:
    struct Entry
    {
        std::string name;
        Instrumented *component;
    };

    std::vector<Entry> entries_;
    /** Next per-base index; std::map for deterministic behaviour. */
    std::map<std::string, unsigned> nextIndex_;
};

} // namespace ioat::sim::telemetry

#endif // IOAT_SIMCORE_TELEMETRY_REGISTRY_HH
