/**
 * @file
 * Periodic metrics snapshots: OpenMetrics-style gauge/counter dumps
 * sampled on simulated-time intervals.
 *
 * Where the Sampler (sampler.hh) accumulates per-probe TimeSeries for
 * the RunReport, MetricsSnapshot captures the *whole registry* —
 * every scalar and probe — at fixed simulated ticks and renders the
 * result in the Prometheus/OpenMetrics text exposition format (or a
 * JSON twin for jq), so the queue depths, credit occupancy, ring
 * depths and shed counters that are invisible in end-of-run totals
 * become a reproducible time-lapse.
 *
 * Determinism contract (pinned by `ctest -L profile`):
 *
 *  - sampling is event-queue driven at fixed ticks, never wall-clock;
 *  - on a sharded run each shard samples its *own* components from a
 *    lane-0 event on its *own* queue.  Lane 0 sorts before every node
 *    lane, so a sample at tick T observes exactly the state after all
 *    events < T and before any node event at T — the same cut in
 *    every partitioning.  Model snapshot bytes are therefore
 *    byte-identical across `--shards {1,2,4}`;
 *  - the fabric (switch) spans shards and its counters move under
 *    other shards' workers mid-window, so it is excluded from
 *    snapshots entirely (its totals live in the RunReport, captured
 *    after the run when everything is quiescent);
 *  - engine metrics (wheel depths, executed events, live tasks,
 *    barrier counts) describe the *simulator*, not the model, and
 *    legitimately differ across shard counts — they are emitted only
 *    with Config::engine and are exempt from the cross-shard byte
 *    gate.
 */

#ifndef IOAT_SIMCORE_TELEMETRY_SNAPSHOT_HH
#define IOAT_SIMCORE_TELEMETRY_SNAPSHOT_HH

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/shard.hh"
#include "simcore/sim.hh"
#include "simcore/telemetry/registry.hh"

namespace ioat::sim::telemetry {

class MetricsSnapshot
{
  public:
    struct Config
    {
        /** Spacing between snapshots (> 0). */
        Tick interval = microseconds(100);
        /** Stop after this many snapshot ticks per shard. */
        std::size_t maxSnapshots = 4096;
        /** Also emit the engine (simulator-internals) section. */
        bool engine = false;
    };

    /** Snapshot a single-Simulation run. */
    MetricsSnapshot(Simulation &sim, Config cfg) : cfg_(cfg)
    {
        simAssert(cfg_.interval > Tick{0},
                  "snapshot interval must be > 0");
        addShard(sim);
        armAll();
    }

    /** Snapshot a sharded run: every shard samples its own hub. */
    MetricsSnapshot(ShardGroup &group, Config cfg)
        : cfg_(cfg), group_(&group)
    {
        simAssert(cfg_.interval > Tick{0},
                  "snapshot interval must be > 0");
        for (unsigned i = 0; i < group.shardCount(); ++i)
            addShard(group.shard(i));
        armAll();
    }

    MetricsSnapshot(const MetricsSnapshot &) = delete;
    MetricsSnapshot &operator=(const MetricsSnapshot &) = delete;

    /** Snapshot ticks taken so far, summed over shards. */
    std::size_t
    sampleCount() const
    {
        std::size_t n = 0;
        for (const auto &sh : shards_)
            n += sh->taken;
        return n;
    }

    /**
     * OpenMetrics text exposition: `# HELP`/`# TYPE` per family, then
     * `family{instance="node3"} value tick` lines sorted by (family,
     * instance, tick).  Call after the run, before teardown.
     */
    void
    writeText(std::ostream &os) const
    {
        os << "# ioat-metrics-snapshot-v1\n";
        const auto rows = collect();
        std::string family;
        for (const auto &[key, recs] : rows) {
            if (key.family != family) {
                family = key.family;
                os << "# HELP " << family << " " << key.help << "\n";
                os << "# TYPE " << family << " " << key.type << "\n";
            }
            for (const auto &rec : recs)
                os << family << "{instance=\"" << key.instance
                   << "\"} " << formatValue(rec.value) << " "
                   << rec.when.count() << "\n";
        }
        os << "# EOF\n";
    }

    /** JSON twin ("ioat-metrics-snapshot-v1") for jq validation. */
    void
    writeJson(std::ostream &os) const
    {
        os << "{\"schema\":\"ioat-metrics-snapshot-v1\",\n"
           << "\"intervalTicks\":" << cfg_.interval.count() << ",\n"
           << "\"metrics\":[";
        const auto rows = collect();
        bool first = true;
        for (const auto &[key, recs] : rows) {
            os << (first ? "\n" : ",\n");
            first = false;
            os << " {\"family\":\"" << key.family
               << "\",\"instance\":\"" << key.instance
               << "\",\"type\":\"" << key.type << "\",\"samples\":[";
            for (std::size_t i = 0; i < recs.size(); ++i)
                os << (i ? "," : "") << "[" << recs[i].when.count()
                   << "," << formatValue(recs[i].value) << "]";
            os << "]}";
        }
        os << "\n]}\n";
    }

    /** Write @p path: JSON when it ends in ".json", else text. */
    void
    save(const std::string &path) const
    {
        std::ofstream out(path);
        simAssert(out.good(), "cannot open metrics snapshot file");
        const bool json = path.size() >= 5 &&
                          path.compare(path.size() - 5, 5, ".json") == 0;
        if (json)
            writeJson(out);
        else
            writeText(out);
    }

    /**
     * Capture the end-of-run engine totals that may not be read from
     * inside a window (the shard group's coordinator state).  Call
     * once, after the run, from the driver thread.  No-op unless
     * Config::engine.
     */
    void
    captureFinal()
    {
        if (!cfg_.engine || finalDone_)
            return;
        finalDone_ = true;
        if (group_) {
            finals_.push_back(
                {"ioat_engine_barriers", "group",
                 static_cast<double>(group_->barriers())});
            finals_.push_back(
                {"ioat_engine_crossEvents", "group",
                 static_cast<double>(group_->crossEvents())});
        }
    }

  private:
    /** One metric a shard samples every snapshot tick. */
    struct Metric
    {
        std::string family;   ///< ioat_-prefixed OpenMetrics name
        std::string instance; ///< first dotted segment ("node3")
        std::string help;
        const char *type; ///< "gauge" or "counter"
        std::function<double()> read;
        bool engine; ///< engine section (shard-count-variant)
    };

    struct Rec
    {
        std::uint32_t metric;
        Tick when;
        double value;
    };

    /** Everything one shard owns; samples only touched by its queue. */
    struct Shard
    {
        Simulation *sim = nullptr;
        Registry reg; ///< keeps probe read-lambdas alive
        std::vector<Metric> metrics;
        std::vector<Rec> recs;
        std::size_t taken = 0;
    };

    struct FinalRec
    {
        std::string family;
        std::string instance;
        double value;
    };

    void
    addShard(Simulation &sim)
    {
        shards_.push_back(std::make_unique<Shard>());
        Shard &sh = *shards_.back();
        sh.sim = &sim;
        sim.telemetry().instrumentAll(sh.reg);
        for (const auto &s : sh.reg.scalars())
            addMetric(sh, s.name, s.description, "counter",
                      [read = s.read] { return read(); });
        for (const auto &p : sh.reg.probes())
            addMetric(sh, p.name, p.description,
                      p.kind == ProbeKind::delta ? "counter" : "gauge",
                      [read = p.read] { return read(); });
        if (cfg_.engine) {
            const std::string inst =
                "shard" + std::to_string(shards_.size() - 1);
            EventQueue &q = sim.queue();
            addEngine(sh, "queueDepthL0", inst, "gauge", [&q] {
                return static_cast<double>(q.l0Depth());
            });
            addEngine(sh, "queueDepthL1", inst, "gauge", [&q] {
                return static_cast<double>(q.l1Depth());
            });
            addEngine(sh, "queueDepthL2", inst, "gauge", [&q] {
                return static_cast<double>(q.l2Depth());
            });
            addEngine(sh, "queueDepthHeap", inst, "gauge", [&q] {
                return static_cast<double>(q.heapDepth());
            });
            addEngine(sh, "executedEvents", inst, "counter", [&q] {
                return static_cast<double>(q.executedEvents());
            });
            addEngine(sh, "liveTasks", inst, "gauge", [&sim] {
                return static_cast<double>(sim.liveRootTasks());
            });
        }
    }

    /**
     * Register one model metric from its dotted registry name.  The
     * fabric is skipped (cross-shard state; see file comment) so the
     * model section is the same metric set at every shard count.
     */
    void
    addMetric(Shard &sh, const std::string &qualified,
              const std::string &help, const char *type,
              std::function<double()> read)
    {
        if (qualified.rfind("fabric", 0) == 0)
            return;
        const std::size_t dot = qualified.find('.');
        std::string instance =
            dot == std::string::npos ? std::string("sim")
                                     : qualified.substr(0, dot);
        std::string metric = dot == std::string::npos
                                 ? qualified
                                 : qualified.substr(dot + 1);
        for (char &c : metric)
            if (c == '.')
                c = '_';
        sh.metrics.push_back(Metric{"ioat_" + metric,
                                    std::move(instance), help, type,
                                    std::move(read), false});
    }

    void
    addEngine(Shard &sh, const char *name, const std::string &inst,
              const char *type, std::function<double()> read)
    {
        sh.metrics.push_back(Metric{std::string("ioat_engine_") + name,
                                    inst, "simulator engine internals",
                                    type, std::move(read), true});
    }

    void
    armAll()
    {
        for (auto &sh : shards_)
            arm(*sh);
    }

    /**
     * Self-rearming lane-0 snapshot event on the shard's own queue.
     * Setup and rearm both run on lane 0, so scheduleIn draws the
     * lane-0 key that makes the T-tick cut partition-invariant.
     */
    void
    arm(Shard &sh)
    {
        sh.sim->queue().scheduleIn(cfg_.interval, [this, &sh] {
            const Tick now = sh.sim->now();
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(sh.metrics.size()); ++i)
                sh.recs.push_back(
                    Rec{i, now, sh.metrics[i].read()});
            if (++sh.taken < cfg_.maxSnapshots)
                arm(sh);
        });
    }

    struct RowKey
    {
        std::string family;
        std::string instance;
        std::string help;
        const char *type;

        bool
        operator<(const RowKey &o) const
        {
            if (family != o.family)
                return family < o.family;
            return instance < o.instance;
        }
    };

    /** Merge every shard's records into sorted (family, instance)
     *  rows.  Node instances are cluster-unique; should two shards
     *  ever share an auto-indexed service name, the stable per-tick
     *  sort (shard order breaks ties) keeps the bytes deterministic
     *  anyway. */
    std::map<RowKey, std::vector<Rec>>
    collect() const
    {
        std::map<RowKey, std::vector<Rec>> rows;
        for (const auto &sh : shards_) {
            for (const auto &rec : sh->recs) {
                const Metric &m = sh->metrics[rec.metric];
                if (m.engine && !cfg_.engine)
                    continue;
                rows[RowKey{m.family, m.instance, m.help, m.type}]
                    .push_back(rec);
            }
        }
        for (const auto &f : finals_)
            rows[RowKey{f.family, f.instance,
                        "simulator engine internals", "counter"}]
                .push_back(Rec{0, lastTick(), f.value});
        for (auto &[key, recs] : rows) {
            (void)key;
            std::stable_sort(recs.begin(), recs.end(),
                             [](const Rec &a, const Rec &b) {
                                 return a.when < b.when;
                             });
        }
        return rows;
    }

    Tick
    lastTick() const
    {
        return group_ ? group_->now() : shards_[0]->sim->now();
    }

    /** Integers stay integral; everything model-side is integral. */
    static std::string
    formatValue(double v)
    {
        if (v == static_cast<double>(static_cast<std::int64_t>(v)))
            return strprintf("%lld",
                             static_cast<long long>(
                                 static_cast<std::int64_t>(v)));
        return strprintf("%.17g", v);
    }

    Config cfg_;
    ShardGroup *group_ = nullptr;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<FinalRec> finals_;
    bool finalDone_ = false;
};

} // namespace ioat::sim::telemetry

#endif // IOAT_SIMCORE_TELEMETRY_SNAPSHOT_HH
