/**
 * @file
 * RunReport: serialize one instrumented run — config echo, seed, git
 * revision, every registry scalar/histogram/series/flow table — as
 * JSON (machine-readable, jq-friendly) or CSV (series, for plotting).
 *
 * capture() snapshots the registry *by value* at a chosen instant, so
 * the report stays valid after the Simulation and its components are
 * torn down; writers are pure functions of the snapshot.  All output
 * is registration-ordered and locale-independent (strprintf with
 * explicit formats), keeping report bytes deterministic for a given
 * run.
 */

#ifndef IOAT_SIMCORE_TELEMETRY_REPORT_HH
#define IOAT_SIMCORE_TELEMETRY_REPORT_HH

#include <cmath>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "simcore/table.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/types.hh"

namespace ioat::sim::telemetry {

/** Git revision baked in at configure time (root CMakeLists.txt). */
inline const char *
gitRevision()
{
#ifdef IOAT_GIT_REV
    return IOAT_GIT_REV;
#else
    return "unknown";
#endif
}

class RunReport
{
  public:
    /** @name Run metadata
     *  @{ */
    void setBench(std::string name) { bench_ = std::move(name); }
    void setSeed(std::uint64_t seed) { seed_ = seed; }

    /** Echo one config knob (flag values, figure parameters). */
    void
    addConfig(std::string key, std::string value)
    {
        config_.emplace_back(std::move(key), std::move(value));
    }
    /** @} */

    /**
     * Snapshot @p reg: read every scalar, copy every histogram and
     * probe series, materialize every flow table.  Call while the
     * instrumented components are still alive (typically right after
     * the measurement window, before teardown).
     */
    void
    capture(const Registry &reg, Tick now)
    {
        capturedAt_ = now;
        captured_ = true;
        scalars_.clear();
        hists_.clear();
        series_.clear();
        flows_.clear();
        for (const auto &s : reg.scalars())
            scalars_.push_back({s.name, s.read()});
        for (const auto &h : reg.histograms())
            hists_.push_back({h.name, h.scale, *h.hist});
        for (const auto &p : reg.probes()) {
            series_.push_back({p.name, p.kind, p.series});
            hists_.push_back({p.name + ".dist", 1.0e-3, p.dist});
        }
        for (const auto &f : reg.flowSources())
            flows_.push_back({f.name, f.read()});
    }

    bool captured() const { return captured_; }
    Tick capturedAt() const { return capturedAt_; }

    /** @name JSON export
     *  @{ */
    void
    writeJson(std::ostream &os) const
    {
        os << "{\n";
        os << "  \"schema\": \"ioat-run-report-v1\",\n";
        os << "  \"bench\": " << quoted(bench_) << ",\n";
        os << "  \"seed\": " << seed_ << ",\n";
        os << "  \"gitRev\": " << quoted(gitRevision()) << ",\n";
        os << "  \"capturedAtTick\": " << capturedAt_.count() << ",\n";

        os << "  \"config\": {";
        for (std::size_t i = 0; i < config_.size(); ++i) {
            os << (i ? ", " : "") << quoted(config_[i].first) << ": "
               << quoted(config_[i].second);
        }
        os << "},\n";

        os << "  \"stats\": {";
        for (std::size_t i = 0; i < scalars_.size(); ++i) {
            os << (i ? "," : "") << "\n    " << quoted(scalars_[i].name)
               << ": " << number(scalars_[i].value);
        }
        os << (scalars_.empty() ? "" : "\n  ") << "},\n";

        os << "  \"histograms\": {";
        for (std::size_t i = 0; i < hists_.size(); ++i) {
            const auto &h = hists_[i];
            os << (i ? "," : "") << "\n    " << quoted(h.name) << ": {"
               << "\"count\": " << h.hist.count()
               << ", \"scale\": " << number(h.scale)
               << ", \"mean\": " << number(h.hist.mean() * h.scale)
               << ", \"min\": " << scaled(h.hist.min(), h.scale)
               << ", \"p50\": " << scaled(h.hist.p50(), h.scale)
               << ", \"p95\": " << scaled(h.hist.p95(), h.scale)
               << ", \"p99\": " << scaled(h.hist.p99(), h.scale)
               << ", \"max\": " << scaled(h.hist.max(), h.scale)
               << "}";
        }
        os << (hists_.empty() ? "" : "\n  ") << "},\n";

        os << "  \"series\": {";
        for (std::size_t i = 0; i < series_.size(); ++i) {
            const auto &s = series_[i];
            os << (i ? "," : "") << "\n    " << quoted(s.name) << ": {"
               << "\"kind\": "
               << (s.kind == ProbeKind::delta ? "\"delta\"" : "\"gauge\"")
               << ", \"startTick\": " << s.series.startTime().count()
               << ", \"intervalTicks\": " << s.series.interval().count()
               << ", \"values\": [";
            for (std::size_t j = 0; j < s.series.size(); ++j)
                os << (j ? ", " : "") << number(s.series.at(j));
            os << "]}";
        }
        os << (series_.empty() ? "" : "\n  ") << "},\n";

        os << "  \"flows\": {";
        for (std::size_t i = 0; i < flows_.size(); ++i) {
            os << (i ? "," : "") << "\n    " << quoted(flows_[i].name)
               << ": [";
            const auto &list = flows_[i].samples;
            for (std::size_t j = 0; j < list.size(); ++j) {
                const auto &f = list[j];
                os << (j ? ", " : "")
                   << "{\"flow\": " << f.flow
                   << ", \"bytesSent\": " << f.bytesSent
                   << ", \"bytesReceived\": " << f.bytesReceived
                   << ", \"retransmits\": " << f.retransmits
                   << ", \"rtoFires\": " << f.rtoFires
                   << ", \"handshakeTicks\": "
                   << f.handshakeLatency.count()
                   << ", \"finTicks\": " << f.finLatency.count()
                   << ", \"open\": " << (f.open ? "true" : "false")
                   << "}";
            }
            os << "]";
        }
        os << (flows_.empty() ? "" : "\n  ") << "}\n";
        os << "}\n";
    }

    bool
    saveJson(const std::string &path) const
    {
        std::ofstream os(path);
        if (!os)
            return false;
        writeJson(os);
        return os.good();
    }
    /** @} */

    /** @name CSV export (long format: series,tick,value)
     *  @{ */
    void
    writeCsv(std::ostream &os) const
    {
        os << "series,tick,value\n";
        for (const auto &s : series_) {
            for (std::size_t j = 0; j < s.series.size(); ++j) {
                os << s.name << ',' << s.series.timeAt(j).count() << ','
                   << number(s.series.at(j)) << '\n';
            }
        }
    }

    bool
    saveCsv(const std::string &path) const
    {
        std::ofstream os(path);
        if (!os)
            return false;
        writeCsv(os);
        return os.good();
    }
    /** @} */

  private:
    /** JSON string literal with the escapes our names can contain. */
    static std::string
    quoted(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20)
                    out += strprintf("\\u%04x", c);
                else
                    out += c;
            }
        }
        out += '"';
        return out;
    }

    /** Shortest round-trippable decimal; integers stay integral.
     *  Non-finite values become 0 — JSON has no NaN/Inf literal. */
    static std::string
    number(double v)
    {
        if (!std::isfinite(v))
            return "0";
        if (std::abs(v) < 9.0e15 &&
            v == static_cast<double>(static_cast<std::int64_t>(v))) {
            return strprintf("%lld",
                             static_cast<long long>(
                                 static_cast<std::int64_t>(v)));
        }
        return strprintf("%.17g", v);
    }

    static std::string
    scaled(std::uint64_t v, double scale)
    {
        if (scale == 1.0)
            return strprintf("%llu",
                             static_cast<unsigned long long>(v));
        return number(static_cast<double>(v) * scale);
    }

    struct ScalarSample
    {
        std::string name;
        double value;
    };

    struct HistSample
    {
        std::string name;
        double scale;
        Histogram hist;
    };

    struct SeriesSample
    {
        std::string name;
        ProbeKind kind;
        TimeSeries series;
    };

    struct FlowTable
    {
        std::string name;
        std::vector<FlowSample> samples;
    };

    std::string bench_ = "unnamed";
    std::uint64_t seed_ = 0;
    std::vector<std::pair<std::string, std::string>> config_;
    Tick capturedAt_{};
    bool captured_ = false;
    std::vector<ScalarSample> scalars_;
    std::vector<HistSample> hists_;
    std::vector<SeriesSample> series_;
    std::vector<FlowTable> flows_;
};

} // namespace ioat::sim::telemetry

#endif // IOAT_SIMCORE_TELEMETRY_REPORT_HH
