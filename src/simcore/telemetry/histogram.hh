/**
 * @file
 * Log-bucketed histogram with bounded relative error.
 *
 * The telemetry layer needs latency/size *distributions* (p50, p95,
 * p99, max), not just means — the tails are where receive-livelock,
 * RTO storms and DMA channel contention show up.  Buckets follow the
 * HdrHistogram idea in miniature: values below 2^(P+1) are recorded
 * exactly; above that, each power-of-two range is split into 2^P
 * linear sub-buckets, so any reported quantile is within 1/2^P
 * (12.5% for P=3) of the true value while the whole table stays a
 * fixed ~4 KB array with O(1) insertion — cheap enough to live on
 * hot objects that are only *read* at report time.
 */

#ifndef IOAT_SIMCORE_TELEMETRY_HISTOGRAM_HH
#define IOAT_SIMCORE_TELEMETRY_HISTOGRAM_HH

#include <bit>
#include <cstdint>
#include <limits>

#include "simcore/assert.hh"

namespace ioat::sim::telemetry {

/**
 * Fixed-footprint log-linear histogram of unsigned 64-bit samples.
 *
 * Insertion is branch-light integer math (no allocation); quantile
 * queries walk the bucket table.  Copyable, so reports can snapshot
 * one by value.
 */
class Histogram
{
  public:
    /** Linear sub-buckets per power-of-two range: 2^P. */
    static constexpr unsigned kPrecisionBits = 3;
    /** Values below this are bucketed exactly. */
    static constexpr std::uint64_t kLinearLimit =
        std::uint64_t{1} << (kPrecisionBits + 1);

    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        ++count_;
        sum_ += static_cast<double>(v);
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /**
     * Upper bound of the bucket holding the q-quantile sample
     * (0 <= q <= 1), clamped to the observed maximum.  quantile(0.5)
     * is the median estimate; quantile(1.0) is exactly max().
     */
    std::uint64_t
    quantile(double q) const
    {
        if (count_ == 0)
            return 0;
        simAssert(q >= 0.0 && q <= 1.0, "quantile out of range");
        // Rank of the target sample, 1-based; ceil so q=0.5 of two
        // samples selects the first.
        auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(count_) + 0.9999999);
        if (target < 1)
            target = 1;
        if (target > count_)
            target = count_;
        std::uint64_t seen = 0;
        for (unsigned i = 0; i < kBucketCount; ++i) {
            seen += buckets_[i];
            if (seen >= target) {
                const std::uint64_t hi = bucketUpperBound(i);
                return hi < max_ ? hi : max_;
            }
        }
        return max_;
    }

    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p95() const { return quantile(0.95); }
    std::uint64_t p99() const { return quantile(0.99); }

    /** Raw bucket access for exporters/tests. */
    static constexpr unsigned kBucketCount =
        static_cast<unsigned>(kLinearLimit) +
        (63 - kPrecisionBits) * (1u << kPrecisionBits);

    std::uint64_t bucketCount(unsigned i) const
    {
        return i < kBucketCount ? buckets_[i] : 0;
    }

    /** Bucket index a value lands in (exposed for tests). */
    static unsigned
    bucketIndex(std::uint64_t v)
    {
        if (v < kLinearLimit)
            return static_cast<unsigned>(v);
        const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(v));
        const auto sub = static_cast<unsigned>(
            (v >> (msb - kPrecisionBits)) & ((1u << kPrecisionBits) - 1));
        return static_cast<unsigned>(kLinearLimit) +
               (msb - kPrecisionBits - 1) * (1u << kPrecisionBits) + sub;
    }

    /** Largest value mapping to bucket @p i (exposed for tests). */
    static std::uint64_t
    bucketUpperBound(unsigned i)
    {
        if (i < kLinearLimit)
            return i;
        const unsigned rel = i - static_cast<unsigned>(kLinearLimit);
        const unsigned msb = rel / (1u << kPrecisionBits)
                             + kPrecisionBits + 1;
        const unsigned sub = rel % (1u << kPrecisionBits);
        const std::uint64_t base = std::uint64_t{1} << msb;
        const std::uint64_t step = base >> kPrecisionBits;
        return base + step * (sub + 1) - 1;
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        count_ = 0;
        sum_ = 0.0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
    }

  private:
    std::uint64_t buckets_[kBucketCount] = {};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

} // namespace ioat::sim::telemetry

#endif // IOAT_SIMCORE_TELEMETRY_HISTOGRAM_HH
