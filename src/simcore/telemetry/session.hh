/**
 * @file
 * Session: one instrumented run, end to end.
 *
 * Construction walks the Simulation's Hub (every self-registered
 * component) into a fresh Registry, adds the simulator's built-in
 * probes ("sim.events" per interval, "sim.liveTasks"), and — when a
 * sampling interval is given — starts the deterministic Sampler.
 * `captureInto()` stops sampling and snapshots everything into a
 * RunReport.  A Session is what `--report`/`--sample-interval` turn
 * on in the bench harness; without one, no telemetry code runs at
 * all.
 */

#ifndef IOAT_SIMCORE_TELEMETRY_SESSION_HH
#define IOAT_SIMCORE_TELEMETRY_SESSION_HH

#include <optional>
#include <string>

#include "simcore/sim.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/telemetry/report.hh"
#include "simcore/telemetry/sampler.hh"

namespace ioat::sim::telemetry {

class Session
{
  public:
    struct Config
    {
        /** Probe sampling spacing; 0 disables the sampler. */
        Tick sampleInterval{};
        std::size_t maxSamples = Sampler::kDefaultMaxSamples;
    };

    explicit Session(Simulation &sim) : Session(sim, Config{}) {}

    Session(Simulation &sim, Config cfg) : sim_(sim)
    {
        {
            Registry::Scope scope(reg_, "sim");
            reg_.probe(
                "events", ProbeKind::delta,
                [&sim] {
                    return static_cast<double>(
                        sim.queue().executedEvents());
                },
                "events executed per interval");
            reg_.probe(
                "liveTasks", ProbeKind::gauge,
                [&sim] {
                    return static_cast<double>(sim.liveRootTasks());
                },
                "live root coroutines");
        }
        sim.telemetry().instrumentAll(reg_);
        if (cfg.sampleInterval > Tick{0}) {
            sampler_.emplace(sim, reg_, cfg.sampleInterval,
                             cfg.maxSamples);
            sampler_->start();
        }
    }

    ~Session()
    {
        if (tracer_)
            sim_.telemetry().attachTracerAll(nullptr);
    }

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Instrument a component the Hub doesn't know (FaultInjector,
     *  model-only rigs) under @p name. */
    void
    add(const std::string &name, Instrumented &component)
    {
        Registry::Scope scope(reg_, name);
        component.instrument(reg_);
    }

    /** Route component-internal traces into @p t (detached again at
     *  Session destruction). */
    void
    attachTracer(TraceWriter *t)
    {
        tracer_ = t;
        sim_.telemetry().attachTracerAll(t);
    }

    Registry &registry() { return reg_; }
    Sampler *sampler() { return sampler_ ? &*sampler_ : nullptr; }

    /** Stop sampling and snapshot the registry into @p report. */
    void
    captureInto(RunReport &report)
    {
        if (sampler_)
            sampler_->stop();
        report.capture(reg_, sim_.now());
    }

  private:
    Simulation &sim_;
    Registry reg_;
    std::optional<Sampler> sampler_;
    TraceWriter *tracer_ = nullptr;
};

} // namespace ioat::sim::telemetry

#endif // IOAT_SIMCORE_TELEMETRY_SESSION_HH
