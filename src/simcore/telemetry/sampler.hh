/**
 * @file
 * Deterministic tick-driven probe sampler.
 *
 * Every `interval` simulated ticks the sampler reads each registered
 * probe — in registration order — and appends to its TimeSeries (and
 * milli-unit distribution histogram).  Determinism properties:
 *
 *  - sampling is driven by the event queue (never the host clock),
 *    so the same run produces the same series on every host;
 *  - probes only *read* model state: enabling sampling changes no
 *    model outcome, only adds read-only events between model events
 *    at the same ticks' FIFO boundaries;
 *  - the sample count is capped (kDefaultMaxSamples) so a sampler
 *    can never keep an otherwise-drained event queue alive forever
 *    and series memory stays bounded.
 *
 * With no Sampler constructed nothing is scheduled — the
 * pay-for-what-you-use half of the telemetry contract.
 */

#ifndef IOAT_SIMCORE_TELEMETRY_SAMPLER_HH
#define IOAT_SIMCORE_TELEMETRY_SAMPLER_HH

#include <cmath>
#include <cstddef>

#include "simcore/sim.hh"
#include "simcore/telemetry/registry.hh"

namespace ioat::sim::telemetry {

class Sampler
{
  public:
    static constexpr std::size_t kDefaultMaxSamples = 4096;

    /**
     * @param interval spacing between samples (> 0)
     * @param max_samples stop after this many ticks (bounds memory
     *        and guarantees sim.run() termination)
     */
    Sampler(Simulation &sim, Registry &reg, Tick interval,
            std::size_t max_samples = kDefaultMaxSamples)
        : sim_(sim), reg_(reg), interval_(interval),
          maxSamples_(max_samples)
    {
        simAssert(interval_ > Tick{0}, "sampler interval must be > 0");
    }

    ~Sampler() { stop(); }

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /**
     * Begin sampling: the first sample lands interval ticks from
     * now.  Seeds every delta probe's baseline at the current
     * reading so the first interval reports the true increase.
     */
    void
    start()
    {
        if (running_)
            return;
        running_ = true;
        for (auto &p : reg_.probes()) {
            p.series.configure(sim_.now(), interval_);
            if (p.kind == ProbeKind::delta)
                p.lastRaw = p.read();
        }
        arm();
    }

    /** Cancel the pending sample event (idempotent). */
    void
    stop()
    {
        if (!running_)
            return;
        running_ = false;
        sim_.queue().cancel(pending_);
    }

    bool running() const { return running_; }
    std::size_t samplesTaken() const { return taken_; }

  private:
    void
    arm()
    {
        pending_ = sim_.queue().scheduleIn(interval_, [this] { tick(); });
    }

    void
    tick()
    {
        for (auto &p : reg_.probes()) {
            const double raw = p.read();
            double v = raw;
            if (p.kind == ProbeKind::delta) {
                v = raw - p.lastRaw;
                p.lastRaw = raw;
            }
            p.series.append(v);
            const double milli = v * 1000.0;
            p.dist.sample(milli > 0.0
                              ? static_cast<std::uint64_t>(
                                    std::llround(milli))
                              : 0);
        }
        ++taken_;
        if (taken_ < maxSamples_)
            arm();
        else
            running_ = false;
    }

    Simulation &sim_;
    Registry &reg_;
    Tick interval_;
    std::size_t maxSamples_;
    std::size_t taken_ = 0;
    bool running_ = false;
    EventQueue::TimerHandle pending_;
};

} // namespace ioat::sim::telemetry

#endif // IOAT_SIMCORE_TELEMETRY_SAMPLER_HH
