/**
 * @file
 * Causal request tracing: per-request span trees with exact latency
 * attribution and critical-path analysis.
 *
 * A `TraceContext` (trace id + span id) is minted when a request is
 * born (datacenter client GET, PVFS file op) and carried through the
 * coroutine call chain and across simulated connections — packed into
 * message metadata on the wire, unpacked on the receiving host — down
 * through the socket, TCP stack, NIC, copy subsystem and DMA engine.
 * Each layer contributes spans tagged with a *cost category* (cpu,
 * memcpy, dma, wire, queue-wait, retx, cache); when the request ends,
 * the tracer partitions its [start, end) interval over the span tree
 * so the per-category breakdown sums *exactly* to the end-to-end
 * latency, and extracts the critical path through any fan-out (PVFS
 * stripes, proxy backend calls).
 *
 * Attribution rule: a span's interval is charged to its category
 * except where covered by child spans; where children overlap, the
 * one whose (clipped) end is latest wins — it is the one the parent
 * actually waited for.  Time inside the request not covered by any
 * span falls to the root's category (queue-wait): transit and
 * scheduling residue, never silently dropped.  The critical path
 * follows, from the root, the child that finished last.
 *
 * Zero-cost when off: contexts are trivially copyable POD passed by
 * value, every emission point is guarded on the tracer pointer and
 * `ctx.valid()`, and no model is consulted that would perturb timing
 * — golden digests are bit-identical with tracing compiled in.
 */

#ifndef IOAT_SIMCORE_REQTRACE_HH
#define IOAT_SIMCORE_REQTRACE_HH

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/event_queue.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/trace.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/** Where one slice of a request's latency went. */
enum class CostCat : std::uint8_t {
    cpu = 0,   ///< protocol/application processing on a core
    memcpy,    ///< data movement by the CPU (hot-cache cost share)
    dma,       ///< data movement by the DMA engine
    wire,      ///< serialization + switch transit on the fabric
    queueWait, ///< waiting: credit, scheduling, transit residue
    retx,      ///< retransmissions and RTO backoff
    cache,     ///< cache-miss penalty share of copies/touches
    poll,      ///< user-space polled RX processing (kernel bypass)
};

inline constexpr std::size_t kCostCatCount = 8;

constexpr const char *
costCatName(CostCat c)
{
    switch (c) {
    case CostCat::cpu:
        return "cpu";
    case CostCat::memcpy:
        return "memcpy";
    case CostCat::dma:
        return "dma";
    case CostCat::wire:
        return "wire";
    case CostCat::queueWait:
        return "queue-wait";
    case CostCat::retx:
        return "retx";
    case CostCat::cache:
        return "cache";
    case CostCat::poll:
        return "poll";
    }
    return "?";
}

/**
 * Receiver of exact per-stack cost charges, fed by the tracer's
 * attribution walk at request finalize.  `simcore/profile.hh`'s
 * Profiler is the implementation; the interface lives here so the
 * tracer needs no profile include.  Attaching a sink changes no
 * model outcome — it only observes charges the tracer computes
 * anyway.
 */
class ProfileSink
{
  public:
    virtual ~ProfileSink() = default;
    /** @p stack: semicolon-joined span names, request root first. */
    virtual void add(const std::string &stack, CostCat cat,
                     Tick ticks) = 0;
};

/**
 * The causal identity carried along a request's path: which request
 * (trace) and which span within it is the parent of whatever work the
 * holder performs.  Trivially copyable by design — propagation is
 * passing two words, and pack() fits it into one message-metadata
 * slot for the trip across a simulated connection.
 */
struct TraceContext
{
    std::uint32_t trace = 0; ///< request id (1-based; 0 = untraced)
    std::uint32_t span = 0;  ///< parent span id within the request

    bool valid() const { return trace != 0; }

    std::uint64_t
    pack() const
    {
        return (static_cast<std::uint64_t>(trace) << 32) | span;
    }

    static TraceContext
    unpack(std::uint64_t v)
    {
        return TraceContext{static_cast<std::uint32_t>(v >> 32),
                            static_cast<std::uint32_t>(v & 0xffffffffu)};
    }
};

static_assert(std::is_trivially_copyable_v<TraceContext>,
              "contexts ride in coroutine frames and message words");

/**
 * Owns every request's span tree; computes breakdowns and critical
 * paths at endRequest(); exports Chrome traces, span JSON and
 * aggregate histograms.  Created on demand by
 * `Simulation::enableRequestTracing()` — a null tracer pointer is the
 * tracing-off fast path everywhere.
 */
class RequestTracer : public telemetry::Instrumented
{
  public:
    /** Span lane meaning "the request's own track" (not hardware). */
    static constexpr int kRequestLane = -1;

    struct Span
    {
        std::uint32_t id;     ///< 1-based within the request
        std::uint32_t parent; ///< parent span id (0: the root itself)
        std::string name;
        CostCat cat;
        int lane; ///< hardware lane, or kRequestLane
        Tick start;
        Tick end;
        bool open;
        bool critical;
    };

    struct Breakdown
    {
        Tick cat[kCostCatCount] = {};

        Tick
        total() const
        {
            Tick t{};
            for (const auto &c : cat)
                t += c;
            return t;
        }
    };

    struct Request
    {
        std::uint32_t id = 0;
        std::string name;
        int node = -1;
        Tick start{};
        Tick end{};
        bool done = false;
        /** Spans retained after finalize (first N requests only). */
        bool detailed = false;
        std::vector<Span> spans; ///< spans[0] is the root
        Breakdown breakdown;
        std::vector<std::uint32_t> critical; ///< root-to-leaf span ids
    };

    /** A named share of one compute() call, for recordComputeSplit. */
    struct Component
    {
        const char *name;
        CostCat cat;
        Tick ticks;
    };

    /**
     * @param clock the simulation clock spans are stamped from
     * @param max_detailed keep full span lists for this many requests
     *        (breakdowns and critical paths are kept for all)
     */
    explicit RequestTracer(EventQueue &clock,
                           std::uint32_t max_detailed = 512)
        : clock_(clock), maxDetailed_(max_detailed)
    {}

    /** @name Span tree construction
     *  @{ */

    /** Mint a new request; the returned context parents on its root. */
    TraceContext
    beginRequest(std::string name, int node)
    {
        const auto id = static_cast<std::uint32_t>(requests_.size() + 1);
        requests_.emplace_back();
        Request &r = requests_.back();
        r.id = id;
        r.name = std::move(name);
        r.node = node;
        r.start = clock_.now();
        r.detailed = id <= maxDetailed_;
        r.spans.push_back(Span{1, 0, r.name, CostCat::queueWait,
                               kRequestLane, r.start, Tick{}, true, false});
        ++started_;
        return TraceContext{id, 1};
    }

    /** Finish a request: close spans, attribute, sample histograms. */
    void
    endRequest(TraceContext ctx)
    {
        Request *r = liveRequest(ctx);
        if (!r)
            return;
        r->end = clock_.now();
        r->done = true;
        finalize(*r);
        ++finished_;
    }

    /** Open a child span under @p parent; invalid parent → no-op. */
    TraceContext
    beginSpan(TraceContext parent, std::string name, CostCat cat,
              int lane = kRequestLane)
    {
        Request *r = liveRequest(parent);
        if (!r)
            return {};
        const auto id = static_cast<std::uint32_t>(r->spans.size() + 1);
        r->spans.push_back(Span{id, parent.span, std::move(name), cat,
                                lane, clock_.now(), Tick{}, true, false});
        return TraceContext{parent.trace, id};
    }

    void
    endSpan(TraceContext ctx)
    {
        Request *r = liveRequest(ctx);
        if (!r || ctx.span == 0 || ctx.span > r->spans.size())
            return;
        Span &s = r->spans[ctx.span - 1];
        if (s.open) {
            s.end = clock_.now();
            s.open = false;
        }
    }

    /** Record an already-elapsed closed span (e.g. a wire transit). */
    void
    record(TraceContext parent, std::string name, CostCat cat,
           Tick start, Tick end, int lane = kRequestLane)
    {
        Request *r = liveRequest(parent);
        if (!r || end <= start)
            return;
        const auto id = static_cast<std::uint32_t>(r->spans.size() + 1);
        r->spans.push_back(Span{id, parent.span, std::move(name), cat,
                                lane, start, end, false, false});
    }

    /**
     * Record @p parts laid end-to-end starting at @p at — the
     * decomposition of one already-charged cost into its categories.
     * Zero-tick parts are skipped.
     */
    void
    recordComponents(TraceContext parent, Tick at, int lane,
                     std::initializer_list<Component> parts)
    {
        Tick cursor = at;
        for (const auto &p : parts) {
            if (p.ticks == Tick{})
                continue;
            record(parent, p.name, p.cat, cursor, cursor + p.ticks,
                   lane);
            cursor += p.ticks;
        }
    }

    /**
     * Attribute one `cpu.compute()` call that ran over [t0, t1]: the
     * busy time (sum of @p parts) occupies the tail of the interval;
     * any earlier residue was run-queue wait.  The compute call itself
     * is never split — this decomposes its cost after the fact, so
     * timing is untouched.
     */
    void
    recordComputeSplit(TraceContext parent, Tick t0, Tick t1,
                       std::initializer_list<Component> parts,
                       int lane = kRequestLane)
    {
        if (!liveRequest(parent))
            return;
        Tick total{};
        for (const auto &p : parts)
            total += p.ticks;
        const Tick elapsed = t1 - t0;
        const Tick busy = std::min(total, elapsed);
        const Tick busy_start = t1 - busy;
        if (busy_start > t0)
            record(parent, "queue", CostCat::queueWait, t0, busy_start,
                   lane);
        recordComponents(parent, busy_start, lane, parts);
    }
    /** @} */

    /**
     * Route every future finalize's attribution charges into @p sink
     * as folded stacks (null detaches).  Requests already finalized
     * are not replayed — attach before the workload runs.
     */
    void attachProfiler(ProfileSink *sink) { profiler_ = sink; }

    ProfileSink *profiler() const { return profiler_; }

    /** @name Queries
     *  @{ */
    const std::vector<Request> &requests() const { return requests_; }

    const Request *
    find(std::uint32_t id) const
    {
        if (id == 0 || id > requests_.size())
            return nullptr;
        return &requests_[id - 1];
    }

    std::uint64_t requestsStarted() const { return started_; }
    std::uint64_t requestsFinished() const { return finished_; }
    /** @} */

    /** @name Exporters
     *  @{ */

    /** Per-request span/breakdown JSON ("ioat-span-report-v1"). */
    void
    writeSpanJson(std::ostream &os) const
    {
        os << "{\"schema\":\"ioat-span-report-v1\",\n\"categories\":[";
        for (std::size_t i = 0; i < kCostCatCount; ++i)
            os << (i ? "," : "") << '"'
               << costCatName(static_cast<CostCat>(i)) << '"';
        os << "],\n\"requests\":[";
        bool first_req = true;
        for (const auto &r : requests_) {
            if (!r.done)
                continue;
            os << (first_req ? "\n" : ",\n");
            first_req = false;
            os << " {\"id\":" << r.id << ",\"name\":\""
               << jsonEscape(r.name) << "\",\"node\":" << r.node
               << ",\"startTick\":" << r.start.count()
               << ",\"endTick\":" << r.end.count()
               << ",\"durationTicks\":" << (r.end - r.start).count()
               << ",\n  \"breakdown\":{";
            for (std::size_t i = 0; i < kCostCatCount; ++i)
                os << (i ? "," : "") << '"'
                   << costCatName(static_cast<CostCat>(i))
                   << "\":" << r.breakdown.cat[i].count();
            os << "},\n  \"criticalPath\":[";
            for (std::size_t i = 0; i < r.critical.size(); ++i)
                os << (i ? "," : "") << r.critical[i];
            os << "]";
            if (r.detailed) {
                os << ",\n  \"spans\":[";
                bool first_span = true;
                for (const auto &s : r.spans) {
                    os << (first_span ? "\n" : ",\n");
                    first_span = false;
                    os << "   {\"id\":" << s.id << ",\"parent\":"
                       << s.parent << ",\"name\":\""
                       << jsonEscape(s.name) << "\",\"cat\":\""
                       << costCatName(s.cat) << "\",\"lane\":" << s.lane
                       << ",\"startTick\":" << s.start.count()
                       << ",\"endTick\":" << s.end.count() << "}";
                }
                os << "]";
            }
            os << "}";
        }
        os << "\n]}\n";
    }

    void
    saveSpanJson(const std::string &path) const
    {
        std::ofstream out(path);
        simAssert(out.good(), "cannot open span report for writing");
        writeSpanJson(out);
    }

    /**
     * Emit detailed requests into a Chrome trace: hardware-lane spans
     * on pid 0, request-track spans on pid 1 (tid = request id), with
     * flow events linking each parent span to children on a different
     * track and " [crit]" marking the critical path.
     */
    void
    exportChrome(TraceWriter &tw) const
    {
        tw.setProcessName(0, "hardware");
        tw.setProcessName(1, "requests");
        for (const auto &r : requests_) {
            if (!r.done || !r.detailed)
                continue;
            const int rtid = static_cast<int>(r.id);
            tw.setLaneName(1, rtid,
                           "request " + std::to_string(r.id) + " " +
                               r.name);
            for (const auto &s : r.spans) {
                const int pid = s.lane == kRequestLane ? 1 : 0;
                const int tid = s.lane == kRequestLane ? rtid : s.lane;
                std::string name = s.name;
                if (s.critical)
                    name += " [crit]";
                tw.complete(std::move(name), costCatName(s.cat),
                            s.start, s.end - s.start, tid, pid);
                if (s.parent != 0) {
                    const Span &p = r.spans[s.parent - 1];
                    const int ppid = p.lane == kRequestLane ? 1 : 0;
                    const int ptid =
                        p.lane == kRequestLane ? rtid : p.lane;
                    if (ppid != pid || ptid != tid) {
                        const std::uint64_t fid =
                            static_cast<std::uint64_t>(r.id) * 1000000u +
                            s.id;
                        tw.flowStart(s.name, costCatName(s.cat),
                                     s.start, ptid, ppid, fid);
                        tw.flowFinish(s.name, costCatName(s.cat),
                                      s.start, tid, pid, fid);
                    }
                }
            }
        }
    }

    /** Aggregate breakdown/latency histograms for the RunReport. */
    void
    instrument(telemetry::Registry &reg) override
    {
        reg.scalar(
            "requestsStarted",
            [this] { return static_cast<double>(started_); },
            "requests minted (beginRequest)");
        reg.scalar(
            "requestsFinished",
            [this] { return static_cast<double>(finished_); },
            "requests completed (endRequest)");
        reg.histogram("endToEndTicks", endToEnd_,
                      "request end-to-end latency", 1.0e-3);
        for (std::size_t i = 0; i < kCostCatCount; ++i)
            reg.histogram(
                std::string("breakdown.") +
                    costCatName(static_cast<CostCat>(i)),
                catHist_[i], "per-request ticks in this category",
                1.0e-3);
    }
    /** @} */

  private:
    /** The request @p ctx points into, or null if invalid/finished. */
    Request *
    liveRequest(TraceContext ctx)
    {
        if (!ctx.valid() || ctx.trace > requests_.size())
            return nullptr;
        Request &r = requests_[ctx.trace - 1];
        return r.done ? nullptr : &r;
    }

    void
    finalize(Request &r)
    {
        // Clip every still-open span (including the root) to the
        // request's end: the work it covered ends when the request
        // does, whatever cleanup the coroutine frame does later.
        for (auto &s : r.spans) {
            if (s.open) {
                s.end = r.end;
                s.open = false;
            }
        }

        std::vector<std::vector<std::uint32_t>> kids(r.spans.size() + 1);
        for (const auto &s : r.spans)
            if (s.parent != 0)
                kids[s.parent].push_back(s.id);

        if (profiler_) {
            const std::string root_path = r.spans[0].name;
            attributeSpan(r, kids, r.spans[0], r.start, r.end,
                          &root_path);
        } else {
            attributeSpan(r, kids, r.spans[0], r.start, r.end,
                          nullptr);
        }
        markCriticalPath(r, kids);

        const Tick e2e = r.end - r.start;
        endToEnd_.sample(e2e.count());
        for (std::size_t i = 0; i < kCostCatCount; ++i)
            catHist_[i].sample(r.breakdown.cat[i].count());

        if (!r.detailed)
            std::vector<Span>().swap(r.spans);
    }

    /**
     * Charge [lo, hi) of span @p s: intervals covered by children go
     * to the covering child (latest clipped end wins on overlap, then
     * larger id); the rest goes to s's category.  A recursive exact
     * partition — children's charges plus s's own always sum to
     * hi - lo.
     *
     * @p path is the semicolon-joined name chain from the request
     * root to @p s — non-null only while a ProfileSink is attached,
     * so the tracing-without-profiling walk allocates no path
     * strings.  Every tick charged to the breakdown is mirrored to
     * the sink under the same partition, which is why profiler
     * totals equal summed request breakdowns exactly.
     */
    void
    attributeSpan(Request &r,
                  const std::vector<std::vector<std::uint32_t>> &kids,
                  const Span &s, Tick lo, Tick hi,
                  const std::string *path)
    {
        if (hi <= lo)
            return;
        struct Clip
        {
            Tick lo;
            Tick hi;
            std::uint32_t id;
        };
        std::vector<Clip> cs;
        for (std::uint32_t cid : kids[s.id]) {
            const Span &c = r.spans[cid - 1];
            const Tick clo = std::max(c.start, lo);
            const Tick chi = std::min(c.end, hi);
            if (chi > clo)
                cs.push_back(Clip{clo, chi, cid});
        }
        if (cs.empty()) {
            r.breakdown.cat[static_cast<std::size_t>(s.cat)] += hi - lo;
            if (path)
                profiler_->add(*path, s.cat, hi - lo);
            return;
        }
        std::vector<Tick> pts;
        pts.reserve(cs.size() * 2 + 2);
        pts.push_back(lo);
        pts.push_back(hi);
        for (const auto &c : cs) {
            pts.push_back(c.lo);
            pts.push_back(c.hi);
        }
        std::sort(pts.begin(), pts.end());
        pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
        for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
            const Tick a = pts[i];
            const Tick b = pts[i + 1];
            const Clip *best = nullptr;
            for (const auto &c : cs) {
                if (c.lo <= a && c.hi >= b &&
                    (!best || c.hi > best->hi ||
                     (c.hi == best->hi && c.id > best->id)))
                    best = &c;
            }
            if (!best) {
                r.breakdown.cat[static_cast<std::size_t>(s.cat)] +=
                    b - a;
                if (path)
                    profiler_->add(*path, s.cat, b - a);
                continue;
            }
            const Span &child = r.spans[best->id - 1];
            if (path) {
                const std::string child_path =
                    *path + ";" + child.name;
                attributeSpan(r, kids, child, a, b, &child_path);
            } else {
                attributeSpan(r, kids, child, a, b, nullptr);
            }
        }
    }

    /** From the root, repeatedly follow the child that finished last. */
    void
    markCriticalPath(Request &r,
                     const std::vector<std::vector<std::uint32_t>> &kids)
    {
        std::uint32_t cur = 1;
        while (true) {
            r.critical.push_back(cur);
            r.spans[cur - 1].critical = true;
            const Span *next = nullptr;
            for (std::uint32_t cid : kids[cur]) {
                const Span &c = r.spans[cid - 1];
                if (!next || c.end > next->end ||
                    (c.end == next->end && c.id > next->id))
                    next = &c;
            }
            if (!next)
                break;
            cur = next->id;
        }
    }

    static std::string
    jsonEscape(const std::string &s)
    {
        static constexpr char hex[] = "0123456789abcdef";
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            const auto u = static_cast<unsigned char>(c);
            if (c == '"' || c == '\\') {
                out.push_back('\\');
                out.push_back(c);
            } else if (u < 0x20) {
                out += "\\u00";
                out.push_back(hex[(u >> 4) & 0xf]);
                out.push_back(hex[u & 0xf]);
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    EventQueue &clock_;
    ProfileSink *profiler_ = nullptr;
    std::uint32_t maxDetailed_;
    std::vector<Request> requests_;
    std::uint64_t started_ = 0;
    std::uint64_t finished_ = 0;
    telemetry::Histogram endToEnd_;
    telemetry::Histogram catHist_[kCostCatCount];
};

/**
 * RAII span: opens on construction (no-op when the tracer is null or
 * the parent context invalid), closes on destruction.  Safe inside
 * coroutine frames — the Simulation destroys frames before its
 * members, so the tracer outlives every in-flight span.
 */
class ScopedSpan
{
  public:
    ScopedSpan() = default;

    ScopedSpan(RequestTracer *rt, TraceContext parent, std::string name,
               CostCat cat, int lane = RequestTracer::kRequestLane)
        : rt_(rt)
    {
        if (rt_ && parent.valid())
            ctx_ = rt_->beginSpan(parent, std::move(name), cat, lane);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ScopedSpan(ScopedSpan &&other) noexcept
        : rt_(other.rt_), ctx_(other.ctx_)
    {
        other.ctx_ = {};
    }

    ScopedSpan &
    operator=(ScopedSpan &&other) noexcept
    {
        if (this != &other) {
            end();
            rt_ = other.rt_;
            ctx_ = other.ctx_;
            other.ctx_ = {};
        }
        return *this;
    }

    ~ScopedSpan() { end(); }

    /** The context children of this span should parent on. */
    TraceContext ctx() const { return ctx_; }

    /** Close now (idempotent; destructor becomes a no-op). */
    void
    end()
    {
        if (rt_ && ctx_.valid()) {
            rt_->endSpan(ctx_);
            ctx_ = {};
        }
    }

  private:
    RequestTracer *rt_ = nullptr;
    TraceContext ctx_{};
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_REQTRACE_HH
