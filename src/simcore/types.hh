/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The whole simulator measures time in integer nanoseconds (`Tick`)
 * and data in whole bytes (`Bytes`).  Both are *strong* types: they
 * must be constructed explicitly, only unit-preserving arithmetic is
 * defined (tick+tick, tick*scalar, tick/tick → scalar, …), and
 * mixing ticks with byte counts or untyped scalars is a compile
 * error.  Every figure in the reproduction is a golden digest of a
 * deterministic run, so a silent ticks-vs-bytes mix-up corrupts
 * results the way miscalibrated hardware would — the type system is
 * the cheapest place to catch that whole bug class.
 *
 * Helper functions build Tick values from human units and convert
 * data rates; keeping them `constexpr` lets configuration tables live
 * in headers without any runtime cost.
 */

#ifndef IOAT_SIMCORE_TYPES_HH
#define IOAT_SIMCORE_TYPES_HH

#include <compare>
#include <concepts>
#include <cstddef>
#include <cstdint>

namespace ioat::sim {

/**
 * Simulated time in nanoseconds.
 *
 * A wrapper over `uint64_t` with unit-safe arithmetic only:
 *  - Tick ± Tick → Tick
 *  - Tick * integer scalar, Tick / integer scalar → Tick
 *  - Tick / Tick → dimensionless count, Tick % Tick → Tick
 *  - comparisons only against other Ticks
 *
 * Construction from a raw integer is explicit (`Tick{5}`), and
 * construction from floating point is deleted outright: float-derived
 * durations must round through an explicit policy (see
 * `Rate::transferTime`), never an implicit truncation.
 */
class Tick
{
  public:
    constexpr Tick() = default;

    constexpr explicit Tick(std::uint64_t ns) : ns_(ns) {}

    /** No implicit (or explicit) float→tick truncation. */
    constexpr explicit Tick(std::floating_point auto) = delete;

    /** Raw nanosecond count, for formatting and bit-level indexing. */
    constexpr std::uint64_t count() const { return ns_; }

    /** A point in simulated time later than any real event. */
    static constexpr Tick
    max()
    {
        return Tick{~std::uint64_t{0}};
    }

    friend constexpr bool operator==(Tick, Tick) = default;
    friend constexpr std::strong_ordering operator<=>(Tick, Tick) = default;

    friend constexpr Tick
    operator+(Tick a, Tick b)
    {
        return Tick{a.ns_ + b.ns_};
    }

    friend constexpr Tick
    operator-(Tick a, Tick b)
    {
        return Tick{a.ns_ - b.ns_};
    }

    constexpr Tick &
    operator+=(Tick b)
    {
        ns_ += b.ns_;
        return *this;
    }

    constexpr Tick &
    operator-=(Tick b)
    {
        ns_ -= b.ns_;
        return *this;
    }

    friend constexpr Tick
    operator*(Tick a, std::integral auto s)
    {
        return Tick{a.ns_ * static_cast<std::uint64_t>(s)};
    }

    friend constexpr Tick
    operator*(std::integral auto s, Tick a)
    {
        return a * s;
    }

    friend constexpr Tick
    operator/(Tick a, std::integral auto s)
    {
        return Tick{a.ns_ / static_cast<std::uint64_t>(s)};
    }

    constexpr Tick &
    operator*=(std::integral auto s)
    {
        ns_ *= static_cast<std::uint64_t>(s);
        return *this;
    }

    constexpr Tick &
    operator/=(std::integral auto s)
    {
        ns_ /= static_cast<std::uint64_t>(s);
        return *this;
    }

    /** Ratio of two durations (how many @p b fit in @p a). */
    friend constexpr std::uint64_t
    operator/(Tick a, Tick b)
    {
        return a.ns_ / b.ns_;
    }

    friend constexpr Tick
    operator%(Tick a, Tick b)
    {
        return Tick{a.ns_ % b.ns_};
    }

    /** Scaling by a float silently truncates; route through Rate. */
    friend constexpr Tick operator*(Tick, std::floating_point auto) = delete;
    friend constexpr Tick operator*(std::floating_point auto, Tick) = delete;
    friend constexpr Tick operator/(Tick, std::floating_point auto) = delete;

  private:
    std::uint64_t ns_ = 0;
};

/** A point in simulated time that compares larger than any real time. */
inline constexpr Tick kTickMax = Tick::max();

/** @name Time-unit constructors
 *  @{ */
constexpr Tick
nanoseconds(std::uint64_t n)
{
    return Tick{n};
}

constexpr Tick
microseconds(std::uint64_t n)
{
    return Tick{n * 1000};
}

constexpr Tick
milliseconds(std::uint64_t n)
{
    return Tick{n * 1000 * 1000};
}

constexpr Tick
seconds(std::uint64_t n)
{
    return Tick{n * 1000 * 1000 * 1000};
}
/** @} */

/**
 * Explicit float→tick conversion (truncating), for models that blend
 * rates in floating point before committing to simulated time.
 *
 * This is the only sanctioned way (besides `Rate::transferTime`) to
 * turn a floating-point nanosecond figure into a Tick; simlint flags
 * ad-hoc casts so every conversion point stays greppable and audited.
 */
constexpr Tick
ticksFromDouble(double ns)
{
    return Tick{static_cast<std::uint64_t>(ns)};
}

/** Convert a tick count to (floating) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t.count()) * 1e-9;
}

/** Convert a tick count to (floating) microseconds. */
constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t.count()) * 1e-3;
}

/**
 * A byte count.
 *
 * Strong type mirroring `Tick`: explicit construction, byte-preserving
 * arithmetic only, no implicit mixing with ticks or raw scalars.  Used
 * in the mem/nic/tcp transfer-size signatures so a caller cannot pass
 * a duration (or an element count) where a size is expected.
 */
class Bytes
{
  public:
    constexpr Bytes() = default;

    constexpr explicit Bytes(std::uint64_t n) : n_(n) {}

    /** No fractional byte counts. */
    constexpr explicit Bytes(std::floating_point auto) = delete;

    /** Raw byte count, for formatting and buffer sizing. */
    constexpr std::uint64_t count() const { return n_; }

    friend constexpr bool operator==(Bytes, Bytes) = default;
    friend constexpr std::strong_ordering operator<=>(Bytes, Bytes) = default;

    friend constexpr Bytes
    operator+(Bytes a, Bytes b)
    {
        return Bytes{a.n_ + b.n_};
    }

    friend constexpr Bytes
    operator-(Bytes a, Bytes b)
    {
        return Bytes{a.n_ - b.n_};
    }

    constexpr Bytes &
    operator+=(Bytes b)
    {
        n_ += b.n_;
        return *this;
    }

    constexpr Bytes &
    operator-=(Bytes b)
    {
        n_ -= b.n_;
        return *this;
    }

    friend constexpr Bytes
    operator*(Bytes a, std::integral auto s)
    {
        return Bytes{a.n_ * static_cast<std::uint64_t>(s)};
    }

    friend constexpr Bytes
    operator*(std::integral auto s, Bytes a)
    {
        return a * s;
    }

    friend constexpr Bytes
    operator/(Bytes a, std::integral auto s)
    {
        return Bytes{a.n_ / static_cast<std::uint64_t>(s)};
    }

    /** Ratio of two sizes (how many @p b fit in @p a). */
    friend constexpr std::uint64_t
    operator/(Bytes a, Bytes b)
    {
        return a.n_ / b.n_;
    }

    friend constexpr Bytes
    operator%(Bytes a, Bytes b)
    {
        return Bytes{a.n_ % b.n_};
    }

  private:
    std::uint64_t n_ = 0;
};

/**
 * Ceiling division of two sizes: the number of @p unit -sized pieces
 * needed to cover @p total (the last piece may be partial).  This is
 * the audited door for the classic `(n + unit - 1) / unit` framing /
 * chunking idiom — writing it out against `.count()` raw values is a
 * simcheck strong-type finding.
 */
constexpr std::uint64_t
divCeil(Bytes total, Bytes unit)
{
    return unit.count() == 0
               ? 0
               : (total.count() + unit.count() - 1) / unit.count();
}

/**
 * Dimensionless fraction @p num / @p den of two durations, in
 * floating point (0.0 when @p den is zero).  The audited door for
 * utilization/overlap ratios: float-domain math on ticks happens
 * here, and re-enters Tick only through `ticksFromDouble` or
 * `Rate::transferTime`.
 */
constexpr double
fractionOf(Tick num, Tick den)
{
    return den == Tick{0}
               ? 0.0
               : static_cast<double>(num.count()) /
                     static_cast<double>(den.count());
}

/** @name Size-unit constructors
 *
 * `kib`/`mib` stay raw `std::size_t` helpers for buffer/capacity
 * arithmetic; `bytes`/`kibibytes`/`mebibytes` build the strong type
 * for transfer-size signatures.
 *  @{ */
constexpr std::size_t
kib(std::size_t n)
{
    return n * 1024;
}

constexpr std::size_t
mib(std::size_t n)
{
    return n * 1024 * 1024;
}

constexpr Bytes
bytes(std::uint64_t n)
{
    return Bytes{n};
}

constexpr Bytes
kibibytes(std::uint64_t n)
{
    return Bytes{n * 1024};
}

constexpr Bytes
mebibytes(std::uint64_t n)
{
    return Bytes{n * 1024 * 1024};
}
/** @} */

/**
 * A transfer rate expressed as bytes per simulated second.
 *
 * Stored as a double so sub-byte-per-tick rates (1 Gbps is only
 * 0.125 bytes/ns) stay exact enough for the experiments.  This class
 * is the *only* sanctioned float→Tick conversion point: every
 * "duration of a transfer" in the simulator rounds up to a whole tick
 * here, with one policy, instead of ad-hoc casts at call sites.
 */
class BytesPerSec
{
  public:
    constexpr BytesPerSec() : bytesPerSec_(0.0) {}

    /** Build a rate from bits per second. */
    static constexpr BytesPerSec
    bitsPerSec(double bps)
    {
        return BytesPerSec(bps / 8.0);
    }

    /** Build a rate from bytes per second. */
    static constexpr BytesPerSec
    bytesPerSec(double value)
    {
        return BytesPerSec(value);
    }

    /** Build a rate from gigabits per second (network convention, 1e9). */
    static constexpr BytesPerSec
    gbps(double value)
    {
        return bitsPerSec(value * 1e9);
    }

    /** Build a rate from megabytes per second (storage convention, 1e6). */
    static constexpr BytesPerSec
    mbytesPerSec(double value)
    {
        return bytesPerSec(value * 1e6);
    }

    constexpr double bytesPerSecond() const { return bytesPerSec_; }
    constexpr double bitsPerSecond() const { return bytesPerSec_ * 8.0; }

    /** Time to move @p n bytes at this rate, rounded up to a whole tick. */
    constexpr Tick
    transferTime(std::size_t n) const
    {
        if (bytesPerSec_ <= 0.0)
            return Tick{0};
        double ns = static_cast<double>(n) / bytesPerSec_ * 1e9;
        auto whole = static_cast<std::uint64_t>(ns);
        return Tick{(static_cast<double>(whole) < ns) ? whole + 1 : whole};
    }

    /** Strong-typed overload of transferTime. */
    constexpr Tick
    transferTime(Bytes n) const
    {
        return transferTime(static_cast<std::size_t>(n.count()));
    }

    constexpr bool valid() const { return bytesPerSec_ > 0.0; }

  private:
    constexpr explicit BytesPerSec(double bytes_per_sec)
        : bytesPerSec_(bytes_per_sec)
    {}

    double bytesPerSec_;
};

/** Historical name: the simulator grew up calling this Rate. */
using Rate = BytesPerSec;

/** Throughput of a byte count over a duration, in Mbps (1e6 bits). */
constexpr double
throughputMbps(std::size_t n, Tick duration)
{
    if (duration == Tick{0})
        return 0.0;
    return static_cast<double>(n) * 8.0 / toSeconds(duration) / 1e6;
}

/** Throughput of a byte count over a duration, in MB/s (1e6 bytes). */
constexpr double
throughputMBps(std::size_t n, Tick duration)
{
    if (duration == Tick{0})
        return 0.0;
    return static_cast<double>(n) / toSeconds(duration) / 1e6;
}

} // namespace ioat::sim

#endif // IOAT_SIMCORE_TYPES_HH
