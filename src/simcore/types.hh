/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The whole simulator measures time in integer nanoseconds (`Tick`).
 * Helper functions build Tick values from human units and convert data
 * rates; keeping them `constexpr` lets configuration tables live in
 * headers without any runtime cost.
 */

#ifndef IOAT_SIMCORE_TYPES_HH
#define IOAT_SIMCORE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace ioat::sim {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** A point in simulated time that compares larger than any real time. */
inline constexpr Tick kTickMax = ~Tick{0};

/** @name Time-unit constructors
 *  @{ */
constexpr Tick
nanoseconds(std::uint64_t n)
{
    return n;
}

constexpr Tick
microseconds(std::uint64_t n)
{
    return n * 1000;
}

constexpr Tick
milliseconds(std::uint64_t n)
{
    return n * 1000 * 1000;
}

constexpr Tick
seconds(std::uint64_t n)
{
    return n * 1000 * 1000 * 1000;
}
/** @} */

/** Convert a tick count to (floating) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-9;
}

/** Convert a tick count to (floating) microseconds. */
constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) * 1e-3;
}

/** @name Size-unit constructors
 *  @{ */
constexpr std::size_t
kib(std::size_t n)
{
    return n * 1024;
}

constexpr std::size_t
mib(std::size_t n)
{
    return n * 1024 * 1024;
}
/** @} */

/**
 * A transfer rate expressed as bytes per simulated second.
 *
 * Stored as a double so sub-byte-per-tick rates (1 Gbps is only
 * 0.125 bytes/ns) stay exact enough for the experiments.
 */
class Rate
{
  public:
    constexpr Rate() : bytesPerSec_(0.0) {}

    /** Build a rate from bits per second. */
    static constexpr Rate
    bitsPerSec(double bps)
    {
        return Rate(bps / 8.0);
    }

    /** Build a rate from bytes per second. */
    static constexpr Rate
    bytesPerSec(double value)
    {
        return Rate(value);
    }

    /** Build a rate from gigabits per second (network convention, 1e9). */
    static constexpr Rate
    gbps(double value)
    {
        return bitsPerSec(value * 1e9);
    }

    /** Build a rate from megabytes per second (storage convention, 1e6). */
    static constexpr Rate
    mbytesPerSec(double value)
    {
        return bytesPerSec(value * 1e6);
    }

    constexpr double bytesPerSecond() const { return bytesPerSec_; }
    constexpr double bitsPerSecond() const { return bytesPerSec_ * 8.0; }

    /** Time to move @p bytes at this rate, rounded up to a whole tick. */
    constexpr Tick
    transferTime(std::size_t bytes) const
    {
        if (bytesPerSec_ <= 0.0)
            return 0;
        double ns = static_cast<double>(bytes) / bytesPerSec_ * 1e9;
        auto whole = static_cast<Tick>(ns);
        return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
    }

    constexpr bool valid() const { return bytesPerSec_ > 0.0; }

  private:
    constexpr explicit Rate(double bytes_per_sec)
        : bytesPerSec_(bytes_per_sec)
    {}

    double bytesPerSec_;
};

/** Throughput of a byte count over a duration, in Mbps (1e6 bits). */
constexpr double
throughputMbps(std::size_t bytes, Tick duration)
{
    if (duration == 0)
        return 0.0;
    return static_cast<double>(bytes) * 8.0 / toSeconds(duration) / 1e6;
}

/** Throughput of a byte count over a duration, in MB/s (1e6 bytes). */
constexpr double
throughputMBps(std::size_t bytes, Tick duration)
{
    if (duration == 0)
        return 0.0;
    return static_cast<double>(bytes) / toSeconds(duration) / 1e6;
}

} // namespace ioat::sim

#endif // IOAT_SIMCORE_TYPES_HH
