/**
 * @file
 * Error-reporting helpers in the gem5 spirit.
 *
 * `panic()` is for conditions that indicate a bug in the simulator
 * itself and aborts; `fatal()` is for user/configuration errors and
 * exits cleanly. `simAssert()` is a always-on invariant check.
 */

#ifndef IOAT_SIMCORE_ASSERT_HH
#define IOAT_SIMCORE_ASSERT_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ioat::sim {

/** Abort with a message: something that should never happen happened. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Exit with a message: the configuration or input is invalid. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Always-on invariant check (unlike <cassert>, survives NDEBUG). */
inline void
simAssert(bool cond, const char *what)
{
    if (!cond)
        panic(std::string("assertion failed: ") + what);
}

/**
 * Debug-build-only invariant check (compiled out under NDEBUG, like
 * <cassert>).  For checks that are worth paying for while developing
 * but sit on hot or semantic-documentation paths — e.g. "a retried
 * RPC must be idempotent" cross-checks in the PVFS journal.
 */
inline void
simDebugAssert([[maybe_unused]] bool cond,
               [[maybe_unused]] const char *what)
{
#ifndef NDEBUG
    if (!cond)
        panic(std::string("debug assertion failed: ") + what);
#endif
}

} // namespace ioat::sim

#endif // IOAT_SIMCORE_ASSERT_HH
