/**
 * @file
 * Small-buffer move-only callable for event-queue hot paths.
 *
 * `std::function` heap-allocates any capture larger than two words,
 * which on the event-queue hot path means one malloc/free per
 * scheduled burst (a NIC transmit captures a ~96-byte net::Burst by
 * value).  SmallFn keeps captures up to `kInlineBytes` inline in the
 * event node itself — nodes come from the queue's arena, so the
 * common case schedules with zero heap traffic.  Oversized captures
 * still work (they fall back to one heap cell), they just lose the
 * fast path.
 */

#ifndef IOAT_SIMCORE_SMALLFN_HH
#define IOAT_SIMCORE_SMALLFN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ioat::sim {

/**
 * Move-only `void()` callable with inline storage.
 *
 * Unlike `std::function` it is not copyable and never type-erases
 * through a separate heap control block for small captures; the
 * dispatch table is one static pointer per lambda type.
 */
class SmallFn
{
  public:
    /** Inline capture capacity: fits [this + net::Burst] captures. */
    static constexpr std::size_t kInlineBytes = 120;

    SmallFn() = default;

    /** Matches std::function: a null callable is simply empty. */
    SmallFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn>>>
    SmallFn(F &&fn)
    {
        emplace(std::forward<F>(fn));
    }

    SmallFn(SmallFn &&o) noexcept { moveFrom(o); }

    SmallFn &
    operator=(SmallFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroy the held callable (if any). */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(&buf_);
            ops_ = nullptr;
        }
    }

    /** Construct a callable in place, destroying any previous one. */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(&buf_)) Fn(std::forward<F>(fn));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<void **>(&buf_) =
                // simlint: allow(raw-new) oversized-callable fallback
                new Fn(std::forward<F>(fn));
            ops_ = &boxedOps<Fn>;
        }
    }

    /** Invoke.  Undefined when empty (callers check or know). */
    void operator()() { ops_->call(&buf_); }

  private:
    struct Ops
    {
        void (*call)(void *);
        void (*destroy)(void *);
        void (*move)(void *dst, void *src);
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
        [](void *dst, void *src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops boxedOps = {
        [](void *p) { (**reinterpret_cast<Fn **>(p))(); },
        // simlint: allow(raw-new) oversized-callable fallback
        [](void *p) { delete *reinterpret_cast<Fn **>(p); },
        [](void *dst, void *src) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
    };

    void
    moveFrom(SmallFn &o)
    {
        ops_ = o.ops_;
        if (ops_) {
            ops_->move(&buf_, &o.buf_);
            o.ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_SMALLFN_HH
