/**
 * @file
 * Umbrella header for the telemetry subsystem: histograms,
 * time-series probes with a deterministic sampler, the Instrumented
 * registration interface and hierarchy Hub, and the RunReport
 * JSON/CSV exporter.  See DESIGN.md "Observability".
 */

#ifndef IOAT_SIMCORE_TELEMETRY_HH
#define IOAT_SIMCORE_TELEMETRY_HH

#include "simcore/telemetry/histogram.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/telemetry/report.hh"
#include "simcore/telemetry/sampler.hh"
#include "simcore/telemetry/session.hh"
#include "simcore/telemetry/snapshot.hh"
#include "simcore/telemetry/timeseries.hh"

#endif // IOAT_SIMCORE_TELEMETRY_HH
