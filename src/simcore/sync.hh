/**
 * @file
 * Awaitable synchronization primitives for simulated tasks.
 *
 * All wakeups are posted through the event queue (never resumed
 * inline), which keeps execution order deterministic and stack depth
 * bounded regardless of how many tasks a single trigger releases.
 */

#ifndef IOAT_SIMCORE_SYNC_HH
#define IOAT_SIMCORE_SYNC_HH

#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/sim.hh"

namespace ioat::sim {

/**
 * A one-shot (optionally resettable) event flag.
 *
 * Waiters suspend until `trigger()`; once triggered, `wait()` is a
 * no-op until `reset()`.
 *
 * Waiters may attach a deadline (see `waitWithTimeout` in
 * timeout.hh): such a waiter carries a `TimedTag` linking it to a
 * cancellable event-queue timer.  Whichever side fires first —
 * release or timer — synchronously detaches the other, so a timed
 * waiter resumes exactly once.
 */
class Event
{
  public:
    /**
     * Links a timed waiter to its deadline timer.  Owned by the
     * awaiter object (stable address on the coroutine frame).
     */
    struct TimedTag
    {
        EventQueue::TimerHandle timer;
    };

    explicit Event(Simulation &sim) : sim_(sim) {}

    bool triggered() const { return triggered_; }

    /** Release all current waiters and latch the flag. */
    void
    trigger()
    {
        triggered_ = true;
        releaseAll();
    }

    /** Wake all current waiters without latching (condvar pulse). */
    void
    pulse()
    {
        releaseAll();
    }

    /** Clear the latch so future wait() calls block again. */
    void reset() { triggered_ = false; }

    /** Awaitable: suspend until the event is (or was) triggered. */
    auto
    wait()
    {
        struct Awaiter
        {
            Event &ev;

            bool await_ready() const noexcept { return ev.triggered_; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ev.addWaiter(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    /** Park a coroutine, optionally tagged as a timed wait. */
    void
    addWaiter(std::coroutine_handle<> h, TimedTag *tag = nullptr)
    {
        waiters_.push_back(Waiter{h, tag});
    }

    /**
     * Detach a timed waiter whose deadline fired first.
     * @return true if the waiter was still parked (caller resumes it).
     */
    bool
    removeWaiter(const TimedTag *tag)
    {
        for (std::size_t i = 0; i < waiters_.size(); ++i) {
            if (waiters_[i].tag == tag) {
                waiters_.erase(waiters_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                return true;
            }
        }
        return false;
    }

    std::size_t waiterCount() const { return waiters_.size(); }

  private:
    struct Waiter
    {
        std::coroutine_handle<> h;
        TimedTag *tag;
    };

    void
    releaseAll()
    {
        // post() only enqueues (no user code runs here), so iterating
        // in place is safe and the vector keeps its capacity — no
        // per-release allocation.
        for (const Waiter &w : waiters_) {
            if (w.tag != nullptr)
                sim_.queue().cancel(w.tag->timer);
            sim_.queue().post([h = w.h] { h.resume(); });
        }
        waiters_.clear();
    }

    Simulation &sim_;
    bool triggered_ = false;
    std::vector<Waiter> waiters_;
};

/**
 * Counting semaphore with FIFO hand-off.
 *
 * `release()` passes the permit directly to the longest-waiting task,
 * so acquisition order is strictly first-come first-served.
 */
class Semaphore
{
  public:
    Semaphore(Simulation &sim, std::size_t permits)
        : sim_(sim), permits_(permits)
    {}

    std::size_t available() const { return permits_; }
    std::size_t waiterCount() const { return waiters_.size(); }

    /** Awaitable: obtain one permit, waiting if none are free. */
    auto
    acquire()
    {
        struct Awaiter
        {
            Semaphore &sem;

            bool
            await_ready() noexcept
            {
                // Fast path: take a free permit immediately.
                if (sem.waiters_.empty() && sem.permits_ > 0) {
                    --sem.permits_;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sem.waiters_.push_back(h);
            }

            // Slow path: release() handed its permit straight to us,
            // so there is nothing left to account for here.
            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    /** Non-blocking acquire. @return true if a permit was taken. */
    bool
    tryAcquire()
    {
        if (waiters_.empty() && permits_ > 0) {
            --permits_;
            return true;
        }
        return false;
    }

    /**
     * Return one permit.  If anyone is waiting the permit is handed
     * directly to the longest waiter (it never becomes visible to
     * tryAcquire), preserving FIFO order.
     */
    void
    release()
    {
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            sim_.queue().post([h] { h.resume(); });
        } else {
            ++permits_;
        }
    }

  private:
    Simulation &sim_;
    std::size_t permits_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Join-point for a dynamic set of tasks (Go-style wait group).
 *
 * The spawner calls add() per task; each task calls done(); a joiner
 * awaits wait() which resumes once the count hits zero.
 */
class WaitGroup
{
  public:
    explicit WaitGroup(Simulation &sim) : done_(sim) {}

    void
    add(std::size_t n = 1)
    {
        count_ += n;
        if (count_ > 0)
            done_.reset();
    }

    void
    done()
    {
        simAssert(count_ > 0, "WaitGroup::done() without matching add()");
        if (--count_ == 0)
            done_.trigger();
    }

    std::size_t pending() const { return count_; }

    /** Awaitable: resumes when the pending count reaches zero. */
    auto
    wait()
    {
        if (count_ == 0)
            done_.trigger();
        return done_.wait();
    }

  private:
    std::size_t count_ = 0;
    Event done_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_SYNC_HH
