/**
 * @file
 * Free-list arenas for simulator hot-path bookkeeping.
 *
 * Three building blocks, all single-threaded like the simulator:
 *  - `Pool<T>`: chunked bump/free-list allocator for fixed-size nodes
 *    (event-queue entries, retransmission-queue links).  Chunks are
 *    never returned to the OS until the pool dies, so steady-state
 *    scheduling performs no heap traffic at all.
 *  - `PooledFifo<T>`: a FIFO queue over `Pool` nodes, replacing
 *    `std::deque` where only push_back/pop_front/front are needed.
 *  - `VectorPool<T>`: recycles `std::vector<T>` buffers (NIC receive
 *    batches) so per-interrupt vectors keep their capacity instead of
 *    being reallocated each time.
 */

#ifndef IOAT_SIMCORE_POOL_HH
#define IOAT_SIMCORE_POOL_HH

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "simcore/assert.hh"

namespace ioat::sim {

/**
 * Chunked free-list allocator for raw (uninitialized) T-sized slots.
 *
 * allocate() returns uninitialized storage; callers placement-new
 * into it and call the destructor themselves before deallocate().
 */
template <typename T, std::size_t ChunkSlots = 256>
class Pool
{
  public:
    Pool() = default;
    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    ~Pool()
    {
        for (Slot *chunk : chunks_)
            ::operator delete[](chunk, std::align_val_t{alignof(Slot)});
    }

    /** Uninitialized storage for one T. */
    T *
    allocate()
    {
        if (free_ == nullptr)
            grow();
        Slot *s = free_;
        free_ = s->next;
        ++live_;
        return reinterpret_cast<T *>(s);
    }

    /** Return storage (T already destroyed) to the free list. */
    void
    deallocate(T *p)
    {
        auto *s = reinterpret_cast<Slot *>(p);
        s->next = free_;
        free_ = s;
        simAssert(live_ > 0, "Pool::deallocate without allocate");
        --live_;
    }

    /** Slots currently handed out. */
    std::size_t liveCount() const { return live_; }

    /** Total slots ever reserved from the OS. */
    std::size_t capacity() const { return chunks_.size() * ChunkSlots; }

  private:
    union Slot
    {
        Slot *next;
        alignas(T) std::byte storage[sizeof(T)];
    };

    void
    grow()
    {
        Slot *chunk = static_cast<Slot *>(::operator new[](
            sizeof(Slot) * ChunkSlots, std::align_val_t{alignof(Slot)}));
        chunks_.push_back(chunk);
        for (std::size_t i = ChunkSlots; i-- > 0;) {
            chunk[i].next = free_;
            free_ = &chunk[i];
        }
    }

    std::vector<Slot *> chunks_;
    Slot *free_ = nullptr;
    std::size_t live_ = 0;
};

/**
 * FIFO queue of T backed by a `Pool`.
 *
 * Drop-in for the std::deque subset the transport uses for
 * retransmission bookkeeping: push_back / front / pop_front / empty /
 * size.  The pool may be shared by many queues (one per connection).
 */
template <typename T>
class PooledFifo
{
  public:
    struct Node
    {
        T value;
        Node *next;
    };

    using NodePool = Pool<Node>;

    explicit PooledFifo(NodePool &pool) : pool_(pool) {}

    PooledFifo(const PooledFifo &) = delete;
    PooledFifo &operator=(const PooledFifo &) = delete;

    ~PooledFifo() { clear(); }

    bool empty() const { return head_ == nullptr; }
    std::size_t size() const { return size_; }

    T &
    front()
    {
        simAssert(head_ != nullptr, "PooledFifo::front on empty queue");
        return head_->value;
    }

    const T &
    front() const
    {
        simAssert(head_ != nullptr, "PooledFifo::front on empty queue");
        return head_->value;
    }

    void
    push_back(T value)
    {
        Node *n = pool_.allocate();
        ::new (static_cast<void *>(n)) Node{std::move(value), nullptr};
        if (tail_ != nullptr)
            tail_->next = n;
        else
            head_ = n;
        tail_ = n;
        ++size_;
    }

    void
    pop_front()
    {
        simAssert(head_ != nullptr, "PooledFifo::pop_front on empty queue");
        Node *n = head_;
        head_ = n->next;
        if (head_ == nullptr)
            tail_ = nullptr;
        n->~Node();
        pool_.deallocate(n);
        --size_;
    }

    void
    clear()
    {
        while (head_ != nullptr)
            pop_front();
    }

  private:
    NodePool &pool_;
    Node *head_ = nullptr;
    Node *tail_ = nullptr;
    std::size_t size_ = 0;
};

/**
 * Recycler for `std::vector<T>` buffers.
 *
 * acquire() hands back a previously-released vector with its capacity
 * intact (cleared), so steady-state producers reuse the same handful
 * of allocations instead of growing a fresh vector per batch.
 */
template <typename T>
class VectorPool
{
  public:
    VectorPool() = default;
    VectorPool(const VectorPool &) = delete;
    VectorPool &operator=(const VectorPool &) = delete;

    std::vector<T>
    acquire()
    {
        if (spare_.empty())
            return {};
        std::vector<T> v = std::move(spare_.back());
        spare_.pop_back();
        return v;
    }

    void
    release(std::vector<T> &&v)
    {
        if (spare_.size() >= kMaxSpare)
            return; // let it free; keeps the pool bounded
        v.clear();
        spare_.push_back(std::move(v));
    }

    std::size_t spareCount() const { return spare_.size(); }

  private:
    static constexpr std::size_t kMaxSpare = 64;

    std::vector<std::vector<T>> spare_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_POOL_HH
