/**
 * @file
 * Timeout and timing combinators for simulated tasks.
 *
 * `withTimeout` races a coroutine against a deadline without
 * cancelling it (the body keeps running; the caller just stops
 * waiting) — the right semantics for timing out waits on shared
 * state.  `Stopwatch` measures simulated elapsed time, and
 * `everyUntil` drives fixed-rate periodic work.
 */

#ifndef IOAT_SIMCORE_TIMEOUT_HH
#define IOAT_SIMCORE_TIMEOUT_HH

#include <functional>
#include <memory>
#include <optional>

#include "simcore/coro.hh"
#include "simcore/sim.hh"
#include "simcore/sync.hh"

namespace ioat::sim {

/**
 * Await an event with a deadline.
 *
 * @return true if the event triggered before the deadline, false on
 *         timeout (the waiter is released either way).
 */
inline Coro<bool>
waitWithTimeout(Simulation &sim, Event &event, Tick timeout)
{
    if (event.triggered())
        co_return true;

    struct Shared
    {
        bool done = false;
    };
    auto state = std::make_shared<Shared>();
    auto gate = std::make_shared<Event>(sim);

    // Watcher: relay the event.
    sim.spawn([](Event &ev, std::shared_ptr<Shared> st,
                 std::shared_ptr<Event> g) -> Coro<void> {
        co_await ev.wait();
        if (!st->done) {
            st->done = true;
            g->trigger();
        }
    }(event, state, gate));
    // Timer: relay the deadline.
    sim.spawn([](Simulation &s, Tick d, std::shared_ptr<Shared> st,
                 std::shared_ptr<Event> g) -> Coro<void> {
        co_await s.delay(d);
        if (!st->done) {
            st->done = true;
            g->trigger();
        }
    }(sim, timeout, state, gate));

    co_await gate->wait();
    co_return event.triggered();
}

/** Measures simulated elapsed time. */
class Stopwatch
{
  public:
    explicit Stopwatch(Simulation &sim) : sim_(sim), start_(sim.now()) {}

    void restart() { start_ = sim_.now(); }
    Tick elapsed() const { return sim_.now() - start_; }
    double elapsedUs() const { return toMicroseconds(elapsed()); }

  private:
    Simulation &sim_;
    Tick start_;
};

/**
 * Run @p body every @p period until @p until (inclusive of the last
 * tick at or before it).  Spawn the returned coroutine.
 */
inline Coro<void>
everyUntil(Simulation &sim, Tick period, Tick until,
           std::function<void()> body)
{
    simAssert(period > 0, "everyUntil needs a positive period");
    while (sim.now() + period <= until) {
        co_await sim.delay(period);
        body();
    }
}

} // namespace ioat::sim

#endif // IOAT_SIMCORE_TIMEOUT_HH
