/**
 * @file
 * Timeout and timing combinators for simulated tasks.
 *
 * `withTimeout` races a coroutine against a deadline without
 * cancelling it (the body keeps running; the caller just stops
 * waiting) — the right semantics for timing out waits on shared
 * state.  `Stopwatch` measures simulated elapsed time, and
 * `everyUntil` drives fixed-rate periodic work.
 *
 * NO-CANCELLATION CONTRACT.  Timing out a wait here never cancels the
 * work being waited on: the peer may still be executing the request
 * body, and its effect may land *after* the caller has given up and
 * retried — even after a crash–restart in between.  Any RPC whose
 * effect is not idempotent must therefore carry an identity the
 * server can deduplicate on.  The PVFS write path is the canonical
 * case: a timed-out write that the iod later journals must not be
 * applied a second time when the client retries it (see
 * `PvfsConfig::journaledWrites` and the writeId dedup in
 * `IodServer`); debug builds assert the dedup invariant.
 */

#ifndef IOAT_SIMCORE_TIMEOUT_HH
#define IOAT_SIMCORE_TIMEOUT_HH

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>

#include "simcore/coro.hh"
#include "simcore/sim.hh"
#include "simcore/sync.hh"

namespace ioat::sim {

/**
 * Awaitable that races an Event against a deadline.
 *
 * Entirely allocation-free: the awaiter parks on the event's waiter
 * list with a `TimedTag` and arms one cancellable timer.  If the
 * event releases first, the release synchronously cancels the timer;
 * if the timer fires first, it synchronously detaches the waiter —
 * either way the coroutine resumes exactly once.
 *
 * `co_await` yields true if the event triggered before the deadline,
 * false on timeout or pulse-wake (matching `Event::triggered()` at
 * resume time).
 */
class EventTimedWait : private Event::TimedTag
{
  public:
    EventTimedWait(Simulation &sim, Event &event, Tick timeout)
        : sim_(sim), event_(event), timeout_(timeout)
    {}

    EventTimedWait(const EventTimedWait &) = delete;
    EventTimedWait &operator=(const EventTimedWait &) = delete;

    bool await_ready() const noexcept { return event_.triggered(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        timer = sim_.queue().scheduleIn(timeout_, [this, h] {
            // Deadline fired first: detach from the event and resume.
            // (If a release beat us to this tick it cancelled the
            // timer, so reaching here means we are still parked.)
            const bool parked = event_.removeWaiter(this);
            simAssert(parked, "timed waiter fired but was not parked");
            h.resume();
        });
        event_.addWaiter(h, this);
    }

    /** @return whether the event (ever) triggered, i.e. not a timeout. */
    bool await_resume() const noexcept { return event_.triggered(); }

  private:
    Simulation &sim_;
    Event &event_;
    Tick timeout_;
};

/**
 * Await an event with a deadline.
 *
 * @return true if the event triggered before the deadline, false on
 *         timeout (the waiter is released either way).
 */
inline EventTimedWait
waitWithTimeout(Simulation &sim, Event &event, Tick timeout)
{
    return EventTimedWait(sim, event, timeout);
}

/**
 * One-shot re-armable deadline timer for non-coroutine contexts
 * (RPC watchdogs).  `arm()` replaces any pending deadline; `cancel()`
 * revokes it; the destructor cancels, so a Watchdog member can never
 * fire into a destroyed object.
 */
class Watchdog
{
  public:
    explicit Watchdog(Simulation &sim) : sim_(sim) {}

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    ~Watchdog() { cancel(); }

    /** Schedule @p fn to run in @p delay ticks, replacing any pending arm. */
    template <typename F>
    void
    arm(Tick delay, F &&fn)
    {
        cancel();
        timer_ = sim_.queue().scheduleIn(delay, std::forward<F>(fn));
    }

    /** Revoke the pending deadline (no-op when idle or already fired). */
    void cancel() { sim_.queue().cancel(timer_); }

  private:
    Simulation &sim_;
    EventQueue::TimerHandle timer_;
};

/**
 * Deterministic capped exponential backoff schedule.
 *
 * `next()` returns the current delay and doubles it up to @p cap;
 * `reset()` rewinds to the base after a success.  With `cap == base`
 * the schedule degenerates to a fixed delay — which is how components
 * keep their default event sequence byte-identical to the seed while
 * still routing every reconnect wait through one helper.
 */
class CappedBackoff
{
  public:
    CappedBackoff(Tick base, Tick cap)
        : base_(base), cap_(cap < base ? base : cap), cur_(base)
    {
        simAssert(base > Tick{0}, "backoff base must be positive");
    }

    /** The delay to wait now; advances the schedule. */
    Tick
    next()
    {
        const Tick d = cur_;
        cur_ = std::min(cur_ * 2, cap_);
        return d;
    }

    /** Peek at the delay next() would return, without advancing. */
    Tick current() const { return cur_; }

    /** A success: the next failure starts over from the base. */
    void reset() { cur_ = base_; }

  private:
    Tick base_;
    Tick cap_;
    Tick cur_;
};

/** Measures simulated elapsed time. */
class Stopwatch
{
  public:
    explicit Stopwatch(Simulation &sim) : sim_(sim), start_(sim.now()) {}

    void restart() { start_ = sim_.now(); }
    Tick elapsed() const { return sim_.now() - start_; }
    double elapsedUs() const { return toMicroseconds(elapsed()); }

  private:
    Simulation &sim_;
    Tick start_;
};

/**
 * Run @p body every @p period until @p until (inclusive of the last
 * tick at or before it).  Spawn the returned coroutine.
 */
inline Coro<void>
everyUntil(Simulation &sim, Tick period, Tick until,
           std::function<void()> body)
{
    simAssert(period > Tick{0}, "everyUntil needs a positive period");
    while (sim.now() + period <= until) {
        co_await sim.delay(period);
        body();
    }
}

} // namespace ioat::sim

#endif // IOAT_SIMCORE_TIMEOUT_HH
