/**
 * @file
 * Minimal leveled logger stamped with simulated time.
 *
 * Logging is off (WARN) by default so benches stay quiet; tests and
 * debugging sessions can raise the level per component or globally.
 */

#ifndef IOAT_SIMCORE_LOG_HH
#define IOAT_SIMCORE_LOG_HH

#include <cstdio>
#include <string>

#include "simcore/table.hh"
#include "simcore/types.hh"

namespace ioat::sim {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Off = 4 };

/** Global log threshold; messages below it are suppressed. */
inline LogLevel &
globalLogLevel()
{
    static LogLevel level = LogLevel::Warn;
    return level;
}

/**
 * Per-component logger. Cheap to copy; holds only a name pointer and
 * an optional clock source for timestamps.
 */
class Logger
{
  public:
    explicit Logger(std::string component, const Tick *clock = nullptr)
        : component_(std::move(component)), clock_(clock)
    {}

    void
    log(LogLevel level, const std::string &msg) const
    {
        if (level < globalLogLevel())
            return;
        const char *tag = "?";
        switch (level) {
          case LogLevel::Trace: tag = "TRACE"; break;
          case LogLevel::Debug: tag = "DEBUG"; break;
          case LogLevel::Info: tag = "INFO"; break;
          case LogLevel::Warn: tag = "WARN"; break;
          case LogLevel::Off: return;
        }
        if (clock_) {
            std::fprintf(stderr, "[%12.3fus] %-5s %s: %s\n",
                         toMicroseconds(*clock_), tag, component_.c_str(),
                         msg.c_str());
        } else {
            std::fprintf(stderr, "%-5s %s: %s\n", tag, component_.c_str(),
                         msg.c_str());
        }
    }

    void trace(const std::string &m) const { log(LogLevel::Trace, m); }
    void debug(const std::string &m) const { log(LogLevel::Debug, m); }
    void info(const std::string &m) const { log(LogLevel::Info, m); }
    void warn(const std::string &m) const { log(LogLevel::Warn, m); }

  private:
    std::string component_;
    const Tick *clock_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_LOG_HH
