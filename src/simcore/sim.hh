/**
 * @file
 * The Simulation object: event queue + coroutine runtime.
 *
 * All simulated activities are coroutines spawned onto a Simulation.
 * The Simulation owns every root frame it spawns, so destroying it
 * (even mid-run) releases all coroutine state deterministically.
 */

#ifndef IOAT_SIMCORE_SIM_HH
#define IOAT_SIMCORE_SIM_HH

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/coro.hh"
#include "simcore/event_queue.hh"
#include "simcore/reqtrace.hh"
#include "simcore/runner.hh"
#include "simcore/telemetry/registry.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/**
 * Owns the event queue and all detached ("root") coroutines.
 *
 * Usage:
 * @code
 *   Simulation sim;
 *   sim.spawn(myTask(sim));
 *   sim.runFor(seconds(1));
 * @endcode
 */
class Simulation : public Runner
{
  public:
    Simulation() = default;
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    ~Simulation() override
    {
        // Drop pending events first: they may hold handles into frames
        // the root teardown below is about to destroy.
        eq_.clear();
        // Destroying a root frame cascades into every child Coro it
        // owns, so this releases the entire suspended task tree.
        // Spawn order, so teardown is independent of pointer values.
        auto roots = std::move(roots_);
        roots_.clear();
        for (void *addr : roots) {
            std::coroutine_handle<RootPromise>::from_address(addr)
                .destroy();
        }
    }

    EventQueue &queue() { return eq_; }
    Tick now() const override { return eq_.now(); }

    /**
     * Component directory for the telemetry hierarchy walk: top-level
     * components (nodes, fabrics, services) self-register here and a
     * telemetry::Session turns the lot into one dotted-name registry.
     */
    telemetry::Hub &telemetry() { return hub_; }

    /**
     * Turn on causal request tracing (idempotent).  Until this is
     * called, requestTracer() is null and every emission point in the
     * stack short-circuits on that — the tracing-off fast path.
     */
    RequestTracer &
    enableRequestTracing(std::uint32_t max_detailed = 512)
    {
        if (!reqTracer_)
            reqTracer_ =
                std::make_unique<RequestTracer>(eq_, max_detailed);
        return *reqTracer_;
    }

    /** The request tracer, or null when tracing is off. */
    RequestTracer *requestTracer() const { return reqTracer_.get(); }

    /** Number of root tasks that have not yet completed. */
    std::size_t liveRootTasks() const { return roots_.size(); }

    /**
     * Start a detached coroutine.  It begins running at the current
     * simulated time, after already-queued events.
     */
    void
    spawn(Coro<void> body)
    {
        spawnLane(eq_.currentLane(), std::move(body));
    }

    /**
     * Start a detached coroutine on an explicit lane (see
     * event_queue.hh): node-affine work spawned by the lane-0 driver
     * gets the node's lane so its whole activity stream carries a
     * partition-invariant ordering key.  `Node::spawn` is the usual
     * caller.
     */
    void
    spawnLane(std::uint32_t lane, Coro<void> body)
    {
        RootTask task = runRoot(std::move(body));
        auto h = task.handle;
        h.promise().sim = this;
        roots_.push_back(h.address());
        eq_.scheduleLane(eq_.now(), lane, [h] { h.resume(); });
    }

    /** Awaitable: suspend the calling coroutine for @p d ticks. */
    auto
    delay(Tick d)
    {
        struct Awaiter
        {
            EventQueue &eq;
            Tick d;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                eq.scheduleIn(d, [h] { h.resume(); });
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{eq_, d};
    }

    /** Awaitable: suspend until absolute time @p when (>= now). */
    auto
    waitUntil(Tick when)
    {
        return delay(when > now() ? when - now() : Tick{0});
    }

    /** @name Event-loop drivers (see EventQueue)
     *  @{ */
    void runFor(Tick duration) { eq_.runFor(duration); }
    void runUntil(Tick when) override { eq_.runUntil(when); }
    std::uint64_t run(std::uint64_t limit = ~std::uint64_t{0})
    {
        return eq_.run(limit);
    }
    std::uint64_t executedEvents() const override
    {
        return eq_.executedEvents();
    }
    /** @} */

  private:
    struct RootPromise;

    struct RootTask
    {
        using promise_type = RootPromise;
        std::coroutine_handle<RootPromise> handle;
    };

    struct RootPromise
    {
        Simulation *sim = nullptr;

        RootTask
        get_return_object()
        {
            return RootTask{
                std::coroutine_handle<RootPromise>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() const noexcept { return {}; }

        /** On completion: unregister from the Simulation and free. */
        struct Final
        {
            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<RootPromise> h) const noexcept
            {
                auto &roots = h.promise().sim->roots_;
                roots.erase(std::find(roots.begin(), roots.end(),
                                      h.address()));
                h.destroy();
            }

            void await_resume() const noexcept {}
        };

        Final final_suspend() const noexcept { return {}; }
        void return_void() const noexcept {}

        void
        unhandled_exception() const
        {
            try {
                throw;
            } catch (const std::exception &e) {
                panic(std::string("unhandled exception in task: ") +
                      e.what());
            } catch (...) {
                panic("unhandled non-std exception in task");
            }
        }
    };

    static RootTask
    runRoot(Coro<void> body)
    {
        co_await std::move(body);
    }

    EventQueue eq_;
    std::vector<void *> roots_;
    telemetry::Hub hub_;
    /**
     * Declared after hub_/roots_, and root frames are destroyed in the
     * destructor *body*: RAII spans ending during frame teardown still
     * find a live tracer.
     */
    std::unique_ptr<RequestTracer> reqTracer_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_SIM_HH
