/**
 * @file
 * Convenience umbrella header for the simulation core.
 */

#ifndef IOAT_SIMCORE_SIMCORE_HH
#define IOAT_SIMCORE_SIMCORE_HH

#include "simcore/assert.hh"
#include "simcore/channel.hh"
#include "simcore/coro.hh"
#include "simcore/event_queue.hh"
#include "simcore/fault.hh"
#include "simcore/log.hh"
#include "simcore/mutex.hh"
#include "simcore/random.hh"
#include "simcore/runner.hh"
#include "simcore/shard.hh"
#include "simcore/sim.hh"
#include "simcore/stats.hh"
#include "simcore/sync.hh"
#include "simcore/table.hh"
#include "simcore/timeout.hh"
#include "simcore/trace.hh"
#include "simcore/types.hh"

#endif // IOAT_SIMCORE_SIMCORE_HH
