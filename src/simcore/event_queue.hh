/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callables scheduled at an absolute Tick.  Ties
 * are broken by a (lane, sequence) key so simulations are fully
 * deterministic *and* partition-invariant: a lane is a node-confined
 * scheduling stream (lane = NodeId + 1; lane 0 is the driver/default),
 * each lane has its own monotonic sequence counter, and an event's
 * key is fixed at schedule time.  Because a lane's sequence draws all
 * happen inside that one node's deterministic execution, the key an
 * event gets does not depend on how nodes are partitioned across
 * shards — which is what lets the sharded engine (simcore/shard.hh)
 * merge cross-shard events at horizon barriers in an order identical
 * to the single-queue run.  With everything on lane 0 (the default),
 * keys reduce to plain insertion order, the historical contract.
 * The queue itself is strictly single-threaded; parallelism happens
 * one queue per shard, above this layer.
 *
 * Internally this is a three-level calendar / timer-wheel hybrid with
 * a far-horizon overflow heap, replacing the original binary heap:
 *
 *  - L0: 2^12 one-tick buckets covering the 4096 ns around `now` —
 *    O(1) schedule and pop for the NIC/TCP traffic that dominates
 *    event counts, located through a two-level occupancy bitmap.
 *  - L1: 256 buckets of 4096 ticks (≈1 ms span) for segment wire
 *    times, coalescing timers and softirq latencies.
 *  - L2: 256 buckets of 2^20 ticks (≈268 ms span) for RTO/watchdog
 *    timers and bench measurement windows.
 *  - Overflow heap, keyed (when, lane, seq), for anything further out.
 *
 * Buckets hold intrusive doubly-linked key-sorted lists of
 * pool-allocated nodes, so steady-state scheduling performs no heap
 * allocation and same-tick (lane, seq) order (the determinism
 * contract) is structural.
 * Events cascade level-by-level as `now` approaches them; each event
 * cascades at most three times, so scheduling stays amortized O(1).
 *
 * Every schedule returns a TimerHandle that can cancel the event in
 * O(1) before it fires (lazily for heap residents), which is what the
 * timeout/RTO machinery in simcore/timeout.hh is built on.
 */

#ifndef IOAT_SIMCORE_EVENT_QUEUE_HH
#define IOAT_SIMCORE_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/smallfn.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/**
 * A time-ordered queue of callbacks.
 *
 * `now()` only moves forward; scheduling in the past is a simulator
 * bug and panics.
 */
class EventQueue
{
    struct Node;

  public:
    /**
     * Names a scheduled event so it can be cancelled.  Generation
     * counted: a handle to an event that already fired (or whose node
     * was recycled) cancels as a harmless no-op.
     */
    class TimerHandle
    {
      public:
        TimerHandle() = default;

        /** True if the handle was ever armed (not: still pending). */
        explicit operator bool() const { return node_ != nullptr; }

      private:
        friend class EventQueue;

        TimerHandle(Node *node, std::uint32_t gen)
            : node_(node), gen_(gen)
        {}

        Node *node_ = nullptr;
        std::uint32_t gen_ = 0;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        clear();
        for (Node *chunk : chunks_)
            // simlint: allow(raw-new) node-arena chunk teardown
            delete[] chunk;
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Lane of the event currently executing (0 between events).
     * Events scheduled while another event runs inherit this, so a
     * node's activity stays on that node's lane without plumbing.
     */
    std::uint32_t currentLane() const { return currentLane_; }

    /**
     * Draw the next sequence number on @p lane.  Public so the shard
     * engine can fix a cross-shard event's key on the *source* shard
     * (where the draw is deterministic) before mailing it.
     */
    std::uint64_t
    drawSeq(std::uint32_t lane)
    {
        if (lane >= laneSeq_.size())
            laneSeq_.resize(lane + 1, 0);
        return laneSeq_[lane]++;
    }

    /** Schedule @p fn to run at absolute time @p when. */
    template <typename F>
    TimerHandle
    schedule(Tick when, F &&fn)
    {
        return injectKeyed(when, currentLane_, drawSeq(currentLane_),
                           currentLane_, std::forward<F>(fn));
    }

    /**
     * Schedule with an explicit lane (priority and execution): the
     * entry point for node-affine work (Node::spawn) where the caller
     * is the lane-0 driver but the activity belongs to a node.
     */
    template <typename F>
    TimerHandle
    scheduleLane(Tick when, std::uint32_t lane, F &&fn)
    {
        return injectKeyed(when, lane, drawSeq(lane), lane,
                           std::forward<F>(fn));
    }

    /**
     * Schedule across a node boundary: the key is drawn on the sender
     * lane @p prioLane (so it is fixed by the sender's deterministic
     * stream) while the callback executes under @p execLane (the
     * receiver).  The switch uses this for every forwarded burst.
     */
    template <typename F>
    TimerHandle
    scheduleCross(Tick when, std::uint32_t prioLane,
                  std::uint32_t execLane, F &&fn)
    {
        return injectKeyed(when, prioLane, drawSeq(prioLane), execLane,
                           std::forward<F>(fn));
    }

    /**
     * Insert an event whose full key (when, lane, seq) was already
     * drawn elsewhere — on another shard's queue, for cross-shard
     * mailbox delivery at a horizon barrier.  Injection *order* is
     * irrelevant: the key alone decides execution order.
     */
    template <typename F>
    TimerHandle
    injectKeyed(Tick when, std::uint32_t lane, std::uint64_t seq,
                std::uint32_t execLane, F &&fn)
    {
        simAssert(when >= now_, "event scheduled in the past");
        Node *n = allocNode();
        n->when = when;
        n->seq = seq;
        n->lane = lane;
        n->execLane = execLane;
        n->fn.emplace(std::forward<F>(fn));
        place(n);
        ++size_;
        return TimerHandle(n, n->gen);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    TimerHandle
    scheduleIn(Tick delay, F &&fn)
    {
        return schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Schedule @p fn at the current time (after already-queued ties). */
    template <typename F>
    TimerHandle
    post(F &&fn)
    {
        return schedule(now_, std::forward<F>(fn));
    }

    /**
     * Cancel a pending event.
     * @return true if the event was still pending and is now dropped;
     *         false if it already fired, was already cancelled, or the
     *         handle was never armed.
     */
    bool
    cancel(TimerHandle &h)
    {
        Node *n = h.node_;
        if (n == nullptr || n->gen != h.gen_) {
            h = TimerHandle();
            return false;
        }
        h = TimerHandle();
        const std::uint64_t w = n->when.count();
        switch (n->where) {
          case Where::L0:
            listRemove(l0_[w & kL0Mask], n);
            if (l0_[w & kL0Mask].head == nullptr)
                l0Clear(static_cast<unsigned>(w & kL0Mask));
            --l0Count_;
            break;
          case Where::L1:
            listRemove(l1_[(w >> kL0Bits) & kLvlMask], n);
            if (l1_[(w >> kL0Bits) & kLvlMask].head == nullptr)
                bmClear(l1Bits_, (w >> kL0Bits) & kLvlMask);
            --l1Count_;
            break;
          case Where::L2:
            listRemove(l2_[(w >> kL1Shift) & kLvlMask], n);
            if (l2_[(w >> kL1Shift) & kLvlMask].head == nullptr)
                bmClear(l2Bits_, (w >> kL1Shift) & kLvlMask);
            --l2Count_;
            break;
          case Where::Heap:
            // The heap vector holds a raw pointer we cannot cheaply
            // remove; drop the payload now, free the node on pop.
            n->fn.reset();
            ++n->gen; // invalidate any other copies of the handle
            n->where = Where::HeapDead;
            --heapLive_;
            --size_;
            return true;
          default:
            return false; // not reachable with a gen-valid handle
        }
        freeNode(n);
        --size_;
        return true;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Time of the earliest pending event; kTickMax when empty. */
    Tick
    nextEventTick() const
    {
        if (l0Count_ > 0)
            return Tick{(now_.count() & ~kL0Mask) | l0First()};
        if (l1Count_ > 0)
            return listMinWhen(l1_[bmFirst(l1Bits_)]);
        if (l2Count_ > 0)
            return listMinWhen(l2_[bmFirst(l2Bits_)]);
        purgeDeadHeapTops();
        if (!heap_.empty())
            return heap_.top()->when;
        return kTickMax;
    }

    /**
     * Run the single earliest event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool
    runOne()
    {
        Node *n = takeEarliest();
        if (n == nullptr)
            return false;
        now_ = n->when;
        ++executed_;
        --size_;
        // Move the callback out and recycle the node *before* running:
        // the callback may schedule (possibly reusing this very slot)
        // or cancel other events.
        const std::uint32_t lane = n->execLane;
        SmallFn fn = std::move(n->fn);
        freeNode(n);
        currentLane_ = lane;
        fn();
        currentLane_ = 0;
        return true;
    }

    /**
     * Run events until the queue drains or @p limit events have run.
     * @return number of events executed.
     */
    std::uint64_t
    run(std::uint64_t limit = ~std::uint64_t{0})
    {
        std::uint64_t n = 0;
        while (n < limit && runOne())
            ++n;
        return n;
    }

    /**
     * Run all events with time <= @p until, then advance now() to
     * @p until even if the queue drained earlier.
     */
    void
    runUntil(Tick until)
    {
        for (;;) {
            // Fast path: earliest event is in L0 (the common case in
            // steady state).  Its tick is computable straight from the
            // occupancy bitmap, skipping the generic peek-then-pop.
            if (l0Count_ > 0) {
                const unsigned idx = l0First();
                const Tick when{(now_.count() & ~kL0Mask) | idx};
                if (when > until)
                    break;
                Node *n = l0_[idx].head;
                listRemove(l0_[idx], n);
                if (l0_[idx].head == nullptr)
                    l0Clear(idx);
                --l0Count_;
                now_ = when;
                ++executed_;
                --size_;
                const std::uint32_t lane = n->execLane;
                SmallFn fn = std::move(n->fn);
                freeNode(n);
                currentLane_ = lane;
                fn();
                currentLane_ = 0;
                continue;
            }
            if (nextEventTick() > until)
                break;
            runOne();
        }
        if (until > now_) {
            now_ = until;
            // `now` may have crossed wheel-window boundaries without
            // running an event; pull newly-near events inward so the
            // placement invariants keep holding for future schedules.
            syncWheels();
        }
    }

    /** Run for @p duration ticks past the current time. */
    void runFor(Tick duration) { runUntil(now_ + duration); }

    /** Drop all pending events without running them. */
    void
    clear()
    {
        for (auto &bucket : l0_)
            freeList(bucket);
        for (auto &bucket : l1_)
            freeList(bucket);
        for (auto &bucket : l2_)
            freeList(bucket);
        for (auto &word : l0Words_)
            word = 0;
        l0Summary_ = 0;
        l1Bits_[0] = l1Bits_[1] = l1Bits_[2] = l1Bits_[3] = 0;
        l2Bits_[0] = l2Bits_[1] = l2Bits_[2] = l2Bits_[3] = 0;
        l0Count_ = l1Count_ = l2Count_ = 0;
        while (!heap_.empty()) {
            Node *n = heap_.top();
            heap_.pop();
            if (n->where == Where::Heap)
                n->fn.reset();
            freeNode(n);
        }
        heapLive_ = 0;
        size_ = 0;
    }

    /** Total number of events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

    /** @name Wheel-occupancy introspection
     * Pending-event counts per calendar level, for the engine
     * telemetry snapshots (telemetry/snapshot.hh).  Read-only: which
     * level an event sits on is a cascading detail, so these are
     * wall-clock-ish engine facts, not model state.
     *  @{ */
    std::size_t l0Depth() const { return l0Count_; }
    std::size_t l1Depth() const { return l1Count_; }
    std::size_t l2Depth() const { return l2Count_; }
    std::size_t heapDepth() const { return heapLive_; }
    /** @} */

  private:
    /** @name Geometry
     *  @{ */
    static constexpr unsigned kL0Bits = 12; ///< 4096 one-tick buckets
    static constexpr std::uint64_t kL0Mask =
        (std::uint64_t{1} << kL0Bits) - 1;
    static constexpr unsigned kLvlBits = 8; ///< 256 buckets per level
    static constexpr unsigned kLvlMask = (1u << kLvlBits) - 1;
    static constexpr unsigned kL1Shift = kL0Bits + kLvlBits;  ///< 20
    static constexpr unsigned kL2Shift = kL1Shift + kLvlBits; ///< 28
    /** @} */

    enum class Where : std::uint8_t {
        Free = 0,
        L0,
        L1,
        L2,
        Heap,
        HeapDead, ///< cancelled while heap-resident; freed on pop
    };

    struct Node
    {
        Tick when{};
        std::uint64_t seq = 0;
        Node *prev = nullptr;
        Node *next = nullptr;
        std::uint32_t gen = 0;
        Where where = Where::Free;
        /** Priority lane: same-tick ties order by (lane, seq). */
        std::uint32_t lane = 0;
        /** Lane exposed as currentLane() while the callback runs. */
        std::uint32_t execLane = 0;
        SmallFn fn;
    };

    struct List
    {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    /** The total order: (when, lane, seq). */
    static bool
    keyLess(const Node *a, const Node *b)
    {
        if (a->when != b->when)
            return a->when < b->when;
        if (a->lane != b->lane)
            return a->lane < b->lane;
        return a->seq < b->seq;
    }

    struct HeapCmp
    {
        bool
        operator()(const Node *a, const Node *b) const
        {
            return keyLess(b, a);
        }
    };

    // ---- node arena -------------------------------------------------

    Node *
    allocNode()
    {
        if (freeHead_ == nullptr) {
            // simlint: allow(raw-new) this IS the node arena
            Node *chunk = new Node[kChunkNodes];
            chunks_.push_back(chunk);
            for (std::size_t i = kChunkNodes; i-- > 0;) {
                chunk[i].next = freeHead_;
                freeHead_ = &chunk[i];
            }
        }
        Node *n = freeHead_;
        freeHead_ = n->next;
        n->prev = n->next = nullptr;
        return n;
    }

    /** Return a node (fn already empty or reset here) to the arena. */
    void
    freeNode(Node *n) const
    {
        n->fn.reset();
        ++n->gen; // invalidates all outstanding handles to this slot
        n->where = Where::Free;
        n->prev = nullptr;
        n->next = freeHead_;
        freeHead_ = n;
    }

    // ---- intrusive bucket lists ------------------------------------

    /**
     * Insert in key order.  Local schedules draw ascending seqs, so
     * the scan from the tail is O(1) in steady state; only barrier
     * injection of foreign-lane keys ever walks further.
     */
    static void
    listInsert(List &l, Node *n)
    {
        Node *cur = l.tail;
        while (cur != nullptr && keyLess(n, cur))
            cur = cur->prev;
        n->prev = cur;
        if (cur != nullptr) {
            n->next = cur->next;
            cur->next = n;
        } else {
            n->next = l.head;
            l.head = n;
        }
        if (n->next != nullptr)
            n->next->prev = n;
        else
            l.tail = n;
    }

    static void
    listRemove(List &l, Node *n)
    {
        if (n->prev != nullptr)
            n->prev->next = n->next;
        else
            l.head = n->next;
        if (n->next != nullptr)
            n->next->prev = n->prev;
        else
            l.tail = n->prev;
    }

    /** Earliest `when` in an (unsorted across ticks) bucket list. */
    static Tick
    listMinWhen(const List &l)
    {
        Tick min = kTickMax;
        for (const Node *n = l.head; n != nullptr; n = n->next)
            if (n->when < min)
                min = n->when;
        return min;
    }

    void
    freeList(List &l)
    {
        Node *n = l.head;
        while (n != nullptr) {
            Node *next = n->next;
            freeNode(n);
            n = next;
        }
        l.head = l.tail = nullptr;
    }

    // ---- occupancy bitmaps -----------------------------------------

    void
    l0Set(unsigned idx)
    {
        l0Words_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        l0Summary_ |= std::uint64_t{1} << (idx >> 6);
    }

    void
    l0Clear(unsigned idx)
    {
        const unsigned w = idx >> 6;
        l0Words_[w] &= ~(std::uint64_t{1} << (idx & 63));
        if (l0Words_[w] == 0)
            l0Summary_ &= ~(std::uint64_t{1} << w);
    }

    /** Index of the first occupied L0 bucket (l0Count_ > 0). */
    unsigned
    l0First() const
    {
        const unsigned w =
            static_cast<unsigned>(__builtin_ctzll(l0Summary_));
        return (w << 6) +
               static_cast<unsigned>(__builtin_ctzll(l0Words_[w]));
    }

    static void
    bmSet(std::uint64_t *bits, std::uint64_t idx)
    {
        bits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }

    static void
    bmClear(std::uint64_t *bits, std::uint64_t idx)
    {
        bits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    /** First set bit in a 256-bit map (caller knows one is set). */
    static unsigned
    bmFirst(const std::uint64_t *bits)
    {
        for (unsigned w = 0;; ++w)
            if (bits[w] != 0)
                return (w << 6) + static_cast<unsigned>(
                                      __builtin_ctzll(bits[w]));
    }

    // ---- placement and cascading -----------------------------------

    /**
     * File a node by distance from `now`.  The level windows are the
     * aligned ranges containing `now`, so membership is a shift
     * compare, and every pending event in a nearer level sorts before
     * every event in a farther one.
     */
    void
    place(Node *n)
    {
        const std::uint64_t when = n->when.count();
        const std::uint64_t nw = now_.count();
        if ((when >> kL0Bits) == (nw >> kL0Bits)) {
            n->where = Where::L0;
            const auto idx = static_cast<unsigned>(when & kL0Mask);
            listInsert(l0_[idx], n);
            l0Set(idx);
            ++l0Count_;
        } else if ((when >> kL1Shift) == (nw >> kL1Shift)) {
            n->where = Where::L1;
            const auto idx =
                static_cast<unsigned>((when >> kL0Bits) & kLvlMask);
            listInsert(l1_[idx], n);
            bmSet(l1Bits_, idx);
            ++l1Count_;
        } else if ((when >> kL2Shift) == (nw >> kL2Shift)) {
            n->where = Where::L2;
            const auto idx =
                static_cast<unsigned>((when >> kL1Shift) & kLvlMask);
            listInsert(l2_[idx], n);
            bmSet(l2Bits_, idx);
            ++l2Count_;
        } else {
            n->where = Where::Heap;
            heap_.push(n);
            ++heapLive_;
        }
    }

    /** Move one L1 bucket down into L0 (order-preserving). */
    void
    cascadeL1(unsigned idx)
    {
        Node *n = l1_[idx].head;
        l1_[idx].head = l1_[idx].tail = nullptr;
        bmClear(l1Bits_, idx);
        while (n != nullptr) {
            Node *next = n->next;
            n->where = Where::L0;
            const auto slot =
                static_cast<unsigned>(n->when.count() & kL0Mask);
            listInsert(l0_[slot], n);
            l0Set(slot);
            --l1Count_;
            ++l0Count_;
            n = next;
        }
    }

    /** Move one L2 bucket down into L1 (order-preserving). */
    void
    cascadeL2(unsigned idx)
    {
        Node *n = l2_[idx].head;
        l2_[idx].head = l2_[idx].tail = nullptr;
        bmClear(l2Bits_, idx);
        while (n != nullptr) {
            Node *next = n->next;
            n->where = Where::L1;
            const auto slot = static_cast<unsigned>(
                (n->when.count() >> kL0Bits) & kLvlMask);
            listInsert(l1_[slot], n);
            bmSet(l1Bits_, slot);
            --l2Count_;
            ++l1Count_;
            n = next;
        }
    }

    void
    purgeDeadHeapTops() const
    {
        while (!heap_.empty() && heap_.top()->where == Where::HeapDead) {
            Node *n = heap_.top();
            heap_.pop();
            freeNode(n);
        }
    }

    /**
     * Move the heap's next 2^28-tick round into the L2/L1/L0 wheels.
     * Pops arrive in (when, lane, seq) order, so the sorted inserts
     * below are O(1) appends.
     */
    void
    refillFromHeap()
    {
        purgeDeadHeapTops();
        if (heap_.empty())
            return;
        const std::uint64_t round = heap_.top()->when.count() >> kL2Shift;
        while (!heap_.empty()) {
            Node *n = heap_.top();
            if (n->where == Where::HeapDead) {
                heap_.pop();
                freeNode(n);
                continue;
            }
            if ((n->when.count() >> kL2Shift) != round)
                break;
            heap_.pop();
            --heapLive_;
            n->where = Where::L2;
            const auto slot = static_cast<unsigned>(
                (n->when.count() >> kL1Shift) & kLvlMask);
            listInsert(l2_[slot], n);
            bmSet(l2Bits_, slot);
            ++l2Count_;
        }
    }

    /** Unlink and return the earliest pending node (or nullptr). */
    Node *
    takeEarliest()
    {
        for (;;) {
            if (l0Count_ > 0) {
                const unsigned idx = l0First();
                Node *n = l0_[idx].head;
                listRemove(l0_[idx], n);
                if (l0_[idx].head == nullptr)
                    l0Clear(idx);
                --l0Count_;
                return n;
            }
            if (l1Count_ > 0) {
                cascadeL1(bmFirst(l1Bits_));
                continue;
            }
            if (l2Count_ > 0) {
                cascadeL2(bmFirst(l2Bits_));
                continue;
            }
            if (heapLive_ > 0) {
                refillFromHeap();
                continue;
            }
            return nullptr;
        }
    }

    /**
     * After `now` jumps forward without running an event (runUntil on
     * a drained window), cascade any buckets whose window `now` just
     * entered, restoring the placement invariants.  Each affected
     * level is provably either empty or already current, so no
     * cross-round mixing can occur.
     */
    void
    syncWheels()
    {
        if (heapLive_ > 0) {
            purgeDeadHeapTops();
            if (!heap_.empty() &&
                (heap_.top()->when.count() >> kL2Shift) ==
                    (now_.count() >> kL2Shift))
                refillFromHeap();
        }
        const auto c = static_cast<unsigned>(
            (now_.count() >> kL1Shift) & kLvlMask);
        if (l2_[c].head != nullptr)
            cascadeL2(c);
        const auto b = static_cast<unsigned>(
            (now_.count() >> kL0Bits) & kLvlMask);
        if (l1_[b].head != nullptr)
            cascadeL1(b);
    }

    static constexpr std::size_t kChunkNodes = 256;

    std::array<List, std::size_t{1} << kL0Bits> l0_{};
    std::array<List, std::size_t{1} << kLvlBits> l1_{};
    std::array<List, std::size_t{1} << kLvlBits> l2_{};
    std::uint64_t l0Words_[(1u << kL0Bits) / 64] = {};
    std::uint64_t l0Summary_ = 0;
    std::uint64_t l1Bits_[4] = {};
    std::uint64_t l2Bits_[4] = {};
    std::size_t l0Count_ = 0;
    std::size_t l1Count_ = 0;
    std::size_t l2Count_ = 0;

    /** Far-horizon overflow; lazily purged of cancelled nodes. */
    mutable std::priority_queue<Node *, std::vector<Node *>, HeapCmp>
        heap_;
    std::size_t heapLive_ = 0;

    std::vector<Node *> chunks_;
    mutable Node *freeHead_ = nullptr;

    Tick now_{};
    /** Per-lane sequence counters (index = lane). */
    std::vector<std::uint64_t> laneSeq_;
    std::uint32_t currentLane_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t size_ = 0;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_EVENT_QUEUE_HH
