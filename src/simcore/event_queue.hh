/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callables scheduled at an absolute Tick.  Ties
 * are broken by insertion order so simulations are fully deterministic.
 * The queue is strictly single-threaded.
 */

#ifndef IOAT_SIMCORE_EVENT_QUEUE_HH
#define IOAT_SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/**
 * A time-ordered queue of callbacks.
 *
 * `now()` only moves forward; scheduling in the past is a simulator
 * bug and panics.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when. */
    void
    schedule(Tick when, Callback fn)
    {
        simAssert(when >= now_, "event scheduled in the past");
        heap_.push(Entry{when, nextSeq_++, std::move(fn)});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** Schedule @p fn at the current time (after already-queued ties). */
    void post(Callback fn) { schedule(now_, std::move(fn)); }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event; kTickMax when empty. */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? kTickMax : heap_.top().when;
    }

    /**
     * Run the single earliest event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        // Move the entry out before running: the callback may schedule.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.fn();
        return true;
    }

    /**
     * Run events until the queue drains or @p limit events have run.
     * @return number of events executed.
     */
    std::uint64_t
    run(std::uint64_t limit = ~std::uint64_t{0})
    {
        std::uint64_t n = 0;
        while (n < limit && runOne())
            ++n;
        return n;
    }

    /**
     * Run all events with time <= @p until, then advance now() to
     * @p until even if the queue drained earlier.
     */
    void
    runUntil(Tick until)
    {
        while (!heap_.empty() && heap_.top().when <= until)
            runOne();
        if (until > now_)
            now_ = until;
    }

    /** Run for @p duration ticks past the current time. */
    void runFor(Tick duration) { runUntil(now_ + duration); }

    /** Drop all pending events without running them. */
    void
    clear()
    {
        while (!heap_.empty())
            heap_.pop();
    }

    /** Total number of events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_EVENT_QUEUE_HH
