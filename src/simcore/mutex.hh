/**
 * @file
 * Awaitable mutual exclusion for simulated tasks, with an RAII guard.
 *
 * A thin wrapper over Semaphore(1) that adds lock-guard ergonomics
 * and owner-error checking.  Used where simulated components protect
 * multi-await critical sections (e.g. one writer per connection).
 */

#ifndef IOAT_SIMCORE_MUTEX_HH
#define IOAT_SIMCORE_MUTEX_HH

#include <optional>

#include "simcore/assert.hh"
#include "simcore/coro.hh"
#include "simcore/sync.hh"

namespace ioat::sim {

/** FIFO mutex for coroutines. */
class Mutex
{
  public:
    explicit Mutex(Simulation &sim) : sem_(sim, 1) {}

    /** RAII lock ownership; unlocks on destruction. */
    class Guard
    {
      public:
        Guard(Guard &&o) noexcept : mutex_(o.mutex_)
        {
            o.mutex_ = nullptr;
        }

        Guard &operator=(Guard &&) = delete;
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

        ~Guard()
        {
            if (mutex_)
                mutex_->unlock();
        }

      private:
        friend class Mutex;
        explicit Guard(Mutex *m) : mutex_(m) {}
        Mutex *mutex_;
    };

    /** Awaitable: acquire the lock and get an RAII guard. */
    Coro<Guard>
    lock()
    {
        co_await sem_.acquire();
        locked_ = true;
        co_return Guard(this);
    }

    /** Non-blocking attempt; nullopt if contended. */
    std::optional<Guard>
    tryLock()
    {
        if (!sem_.tryAcquire())
            return std::nullopt;
        locked_ = true;
        return Guard(this);
    }

    bool locked() const { return locked_; }

  private:
    void
    unlock()
    {
        simAssert(locked_, "unlock of an unlocked Mutex");
        locked_ = sem_.waiterCount() > 0; // hand-off keeps it locked
        sem_.release();
    }

    Semaphore sem_;
    bool locked_ = false;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_MUTEX_HH
