/**
 * @file
 * Conservative parallel shard engine.
 *
 * A ShardGroup partitions a cluster across N independent Simulations
 * ("shards"), each advanced by its own worker thread, synchronized by
 * the classic conservative-PDES argument: if every cross-shard
 * interaction takes at least `lookahead` ticks of simulated latency
 * (the switch forwarding latency), then inside a window [B, B+L) no
 * shard can affect another, so all shards may run the window
 * concurrently.  At the window's end — the *horizon barrier* — the
 * coordinator drains the cross-shard mailboxes and injects the
 * mailed events into their destination queues, then opens the next
 * window.
 *
 * Determinism and partition-invariance do NOT come from the barrier
 * protocol; they come from the event key.  Every event carries a
 * (tick, lane, seq) key fixed at schedule time on its *source* shard
 * (see event_queue.hh), so the order in which mailed events are
 * injected is irrelevant — the destination queue sorts by key, and
 * the keys a run produces are identical whether the cluster runs on
 * 1 shard or 8.  The shard-equivalence suite (`ctest -L shard`)
 * asserts exactly that, byte-for-byte.
 *
 * Threading model:
 *  - setup (construction, spawning, attaching) is single-threaded;
 *  - during a window each shard's queue is touched only by its
 *    worker; a cross-shard send appends to a single-writer mailbox
 *    owned by the (srcShard, dstShard) pair;
 *  - at a barrier only the coordinator runs; the barrier's
 *    mutex/condvar handoff provides the happens-before edges that
 *    make the mailbox reads and `executedEvents()` sums safe.
 *
 * Progress is unconditional: every window advances the global floor
 * by min(lookahead, remaining), so no barrier deadlock is possible —
 * a property the shard property suite pins alongside the lookahead
 * invariant (nothing is ever mailed into the current window).
 */

#ifndef IOAT_SIMCORE_SHARD_HH
#define IOAT_SIMCORE_SHARD_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/runner.hh"
#include "simcore/sim.hh"
#include "simcore/smallfn.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/**
 * N Simulations advancing in lockstep windows of `lookahead` ticks.
 *
 * With count == 1 the group is a thin pass-through around a single
 * Simulation: no worker threads are created and runUntil() delegates
 * directly, so `--shards 1` is the classic engine, bit for bit.
 */
class ShardGroup : public Runner
{
  public:
    explicit ShardGroup(unsigned count,
                        Tick lookahead = nanoseconds(2000))
        : lookahead_(lookahead)
    {
        simAssert(count >= 1, "shard group needs at least one shard");
        simAssert(lookahead > Tick{0},
                  "conservative execution needs positive lookahead");
        sims_.reserve(count);
        for (unsigned i = 0; i < count; ++i)
            sims_.push_back(std::make_unique<Simulation>());
        mailboxes_.resize(static_cast<std::size_t>(count) * count);
        if (count > 1) {
            workers_.reserve(count);
            for (unsigned i = 0; i < count; ++i)
                workers_.emplace_back(
                    [this, i] { workerLoop(i); });
        }
    }

    ~ShardGroup() override
    {
        if (!workers_.empty()) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                quit_ = true;
            }
            cvGo_.notify_all();
            for (std::thread &t : workers_)
                t.join();
        }
    }

    ShardGroup(const ShardGroup &) = delete;
    ShardGroup &operator=(const ShardGroup &) = delete;

    unsigned shardCount() const
    {
        return static_cast<unsigned>(sims_.size());
    }

    Tick lookahead() const { return lookahead_; }

    /** The i-th shard's Simulation (setup and barrier-time access). */
    Simulation &shard(unsigned i) { return *sims_[i]; }

    /**
     * Mail an event to another shard.  Must be called from code
     * executing on shard @p srcShard, with the full ordering key
     * already drawn on that shard's queue (drawSeq on @p lane).
     * The event is injected into @p dstShard's queue at the next
     * horizon barrier.
     */
    void
    postCross(unsigned srcShard, unsigned dstShard, Tick when,
              std::uint32_t lane, std::uint64_t seq,
              std::uint32_t execLane, SmallFn fn)
    {
        // The lookahead invariant: a cross-shard event may never land
        // inside the window being executed, or the destination could
        // already have run past it.
        simAssert(when > windowEnd_,
                  "cross-shard event violates the lookahead window");
        mailboxes_[srcShard * sims_.size() + dstShard].push_back(
            {when, seq, lane, execLane, std::move(fn)});
    }

    /** @name Runner
     *  @{ */
    Tick now() const override { return now_; }

    void
    runUntil(Tick until) override
    {
        if (sims_.size() == 1) {
            sims_[0]->runUntil(until);
            now_ = until;
            return;
        }
        if (until <= now_)
            return;
        // Every window stops one tick short of its horizon: events
        // *at* the horizon may still be mailed in from another shard
        // during the window, so no shard may execute that tick until
        // the barrier has drained the mailboxes.
        while (now_ < until) {
            const Tick horizon = until - now_ > lookahead_
                                     ? now_ + lookahead_
                                     : until;
            runWindow(horizon - Tick{1});
            drainMailboxes();
            now_ = horizon;
        }
        // The last tick gets its own window: anything it mails out
        // lands at >= until + lookahead, safely in the future.
        runWindow(until);
        drainMailboxes();
    }

    std::uint64_t
    executedEvents() const override
    {
        std::uint64_t total = 0;
        for (const auto &s : sims_)
            total += s->queue().executedEvents();
        return total;
    }
    /** @} */

    /** Events that crossed a shard boundary (drained at barriers). */
    std::uint64_t crossEvents() const { return crossEvents_; }

    /** Horizon barriers executed. */
    std::uint64_t barriers() const { return barriers_; }

  private:
    struct CrossEvent
    {
        Tick when{};
        std::uint64_t seq = 0;
        std::uint32_t lane = 0;
        std::uint32_t execLane = 0;
        SmallFn fn;
    };

    /** One (src, dst) mailbox: written only by src's worker during a
     *  window, drained only by the coordinator at the barrier. */
    using Mailbox = std::vector<CrossEvent>;

    /** Run all shards concurrently up to and including @p end. */
    void
    runWindow(Tick end)
    {
        std::unique_lock<std::mutex> lk(mu_);
        windowEnd_ = end;
        done_ = 0;
        ++epoch_;
        cvGo_.notify_all();
        cvDone_.wait(lk, [this] { return done_ == workers_.size(); });
        ++barriers_;
    }

    /**
     * Inject every mailed event into its destination queue.  The scan
     * order (src-major) is fixed but immaterial: execution order is
     * decided by the events' own keys.
     */
    void
    drainMailboxes()
    {
        for (unsigned src = 0; src < sims_.size(); ++src) {
            for (unsigned dst = 0; dst < sims_.size(); ++dst) {
                Mailbox &mb =
                    mailboxes_[src * sims_.size() + dst];
                for (CrossEvent &ev : mb) {
                    sims_[dst]->queue().injectKeyed(
                        ev.when, ev.lane, ev.seq, ev.execLane,
                        std::move(ev.fn));
                    ++crossEvents_;
                }
                mb.clear();
            }
        }
    }

    void
    workerLoop(unsigned shard)
    {
        std::uint64_t seen = 0;
        for (;;) {
            Tick end;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cvGo_.wait(lk, [this, seen] {
                    return quit_ || epoch_ != seen;
                });
                if (quit_)
                    return;
                seen = epoch_;
                end = windowEnd_;
            }
            sims_[shard]->runUntil(end);
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++done_;
            }
            cvDone_.notify_one();
        }
    }

    Tick lookahead_;
    std::vector<std::unique_ptr<Simulation>> sims_;
    std::vector<Mailbox> mailboxes_;

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cvGo_;
    std::condition_variable cvDone_;
    std::uint64_t epoch_ = 0;
    std::size_t done_ = 0;
    bool quit_ = false;
    Tick windowEnd_{};

    Tick now_{};
    std::uint64_t crossEvents_ = 0;
    std::uint64_t barriers_ = 0;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_SHARD_HH
