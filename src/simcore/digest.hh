/**
 * @file
 * Output digesting for determinism checks.
 *
 * One tiny, dependency-free hash (FNV-1a, 64-bit) rendered as 16 hex
 * digits.  Golden tests, the shard-equivalence harness, and benches
 * all funnel rendered output through the same function, so "the same
 * digest" means the same thing everywhere: byte-identical text.
 */

#ifndef IOAT_SIMCORE_DIGEST_HH
#define IOAT_SIMCORE_DIGEST_HH

#include <cstdint>
#include <cstdio>
#include <string>

namespace ioat::sim {

/** FNV-1a over @p text, as 16 lowercase hex digits. */
inline std::string
digestOf(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

} // namespace ioat::sim

#endif // IOAT_SIMCORE_DIGEST_HH
