/**
 * @file
 * Deterministic random number generation and workload distributions.
 *
 * Uses xoshiro256++ seeded via splitmix64, so every experiment is
 * reproducible from its seed.  Includes the Zipf distribution used by
 * the paper's data-center traces (Breslau et al., INFOCOM'99).
 */

#ifndef IOAT_SIMCORE_RANDOM_HH
#define IOAT_SIMCORE_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "simcore/assert.hh"

namespace ioat::sim {

/** xoshiro256++ PRNG: fast, high-quality, deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Re-initialize the state from a single seed word. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion, per Vigna's recommendation.
        for (auto &word : s_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        simAssert(lo <= hi, "uniformInt: empty range");
        const std::uint64_t span = hi - lo + 1;
        if (span == 0) // full 64-bit range
            return next();
        return lo + next() % span;
    }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4] = {};
};

/**
 * Zipf-like popularity distribution over ranks 1..n.
 *
 * P(rank = i) ∝ 1 / i^alpha.  Sampling is a binary search over the
 * precomputed CDF, O(log n) per draw.
 */
class ZipfDistribution
{
  public:
    /**
     * @param n number of distinct items (>= 1)
     * @param alpha skew; larger means more concentrated popularity
     */
    ZipfDistribution(std::size_t n, double alpha) : cdf_(n)
    {
        simAssert(n >= 1, "Zipf over empty set");
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
            cdf_[i] = sum;
        }
        for (auto &c : cdf_)
            c /= sum;
        cdf_.back() = 1.0; // guard against FP round-off
    }

    std::size_t size() const { return cdf_.size(); }

    /** Draw a 0-based rank (0 is the most popular item). */
    std::size_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Probability mass of a 0-based rank. */
    double
    pmf(std::size_t rank) const
    {
        simAssert(rank < cdf_.size(), "Zipf rank out of range");
        return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
    }

  private:
    std::vector<double> cdf_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_RANDOM_HH
