/**
 * @file
 * Chrome-trace (about:tracing / Perfetto) exporter for simulated
 * activity.
 *
 * Components record complete events (name, category, start, duration,
 * lane); `write()` emits the standard Trace Event JSON so a run can
 * be inspected in any chrome://tracing-compatible viewer.  Tracing is
 * opt-in per component (`setTracer`) and costs nothing when off.
 *
 * Output uses the object form (`{"displayTimeUnit":...,
 * "traceEvents":[...]}`) with `thread_name`/`process_name` metadata
 * records so lanes render as named tracks, and supports flow events
 * (`s`/`f`) that link spans across lanes — the request tracer uses
 * them to stitch one request's spans into a followable arrow chain.
 */

#ifndef IOAT_SIMCORE_TRACE_HH
#define IOAT_SIMCORE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/**
 * Collects trace events and serializes them as Trace Event JSON.
 */
class TraceWriter
{
  public:
    /** Lanes (chrome "tid") group related events in the viewer. */
    struct Lanes
    {
        static constexpr int core0 = 0;     ///< CPU cores: 0..N-1
        static constexpr int dma = 100;     ///< DMA engine channels
        static constexpr int wire = 200;    ///< NIC ports
        static constexpr int fault = 300;   ///< injected faults / recovery
        static constexpr int requests = 400; ///< per-request tracks
    };

    explicit TraceWriter(std::size_t reserve = 4096)
    {
        events_.reserve(reserve);
    }

    /** A span of simulated time ("X" complete event). */
    void
    complete(std::string name, const char *category, Tick start,
             Tick duration, int lane, int pid = 0)
    {
        events_.push_back(Event{std::move(name), category, start,
                                duration, lane, pid, Kind::Complete, 0});
    }

    /** A point in simulated time ("i" instant event). */
    void
    instant(std::string name, const char *category, Tick when, int lane,
            int pid = 0)
    {
        events_.push_back(Event{std::move(name), category, when, Tick{0},
                                lane, pid, Kind::Instant, 0});
    }

    /**
     * Start of a flow ("s"): an arrow leaves (pid, lane) at @p when.
     * Pair with a flowFinish() carrying the same @p flow_id.
     */
    void
    flowStart(std::string name, const char *category, Tick when, int lane,
              int pid, std::uint64_t flow_id)
    {
        events_.push_back(Event{std::move(name), category, when, Tick{0},
                                lane, pid, Kind::FlowStart, flow_id});
    }

    /** End of a flow ("f", binding point "e"): the arrow arrives. */
    void
    flowFinish(std::string name, const char *category, Tick when, int lane,
               int pid, std::uint64_t flow_id)
    {
        events_.push_back(Event{std::move(name), category, when, Tick{0},
                                lane, pid, Kind::FlowFinish, flow_id});
    }

    /** Name one process ("process_name" metadata record). */
    void
    setProcessName(int pid, std::string name)
    {
        processNames_[pid] = std::move(name);
    }

    /** Name one lane ("thread_name" metadata record). */
    void
    setLaneName(int pid, int lane, std::string name)
    {
        laneNames_[{pid, lane}] = std::move(name);
    }

    std::size_t eventCount() const { return events_.size(); }
    void clear() { events_.clear(); }

    /** Emit Trace Event JSON (object format, metadata first). */
    void
    write(std::ostream &os) const
    {
        os << "{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[\n";
        bool first = true;
        writeMetadata(os, first);
        for (const auto &e : events_) {
            if (!first)
                os << ",\n";
            first = false;
            os << "  {\"name\":\"" << escape(e.name) << "\",\"cat\":\""
               << escape(e.category) << "\",\"ph\":\"" << phase(e.kind)
               << "\",\"ts\":" << toMicroseconds(e.start);
            if (e.kind == Kind::Complete)
                os << ",\"dur\":" << toMicroseconds(e.duration);
            os << ",\"pid\":" << e.pid << ",\"tid\":" << e.lane;
            if (e.kind == Kind::Instant)
                os << ",\"s\":\"t\"";
            if (e.kind == Kind::FlowStart)
                os << ",\"id\":" << e.flowId;
            if (e.kind == Kind::FlowFinish)
                os << ",\"id\":" << e.flowId << ",\"bp\":\"e\"";
            os << "}";
        }
        os << "\n]}\n";
    }

    /** Convenience: write to a file. */
    void
    save(const std::string &path) const
    {
        std::ofstream out(path);
        simAssert(out.good(), "cannot open trace file for writing");
        write(out);
    }

  private:
    enum class Kind : std::uint8_t {
        Complete,
        Instant,
        FlowStart,
        FlowFinish,
    };

    struct Event
    {
        std::string name;
        const char *category;
        Tick start;
        Tick duration;
        int lane;
        int pid;
        Kind kind;
        std::uint64_t flowId;
    };

    static const char *
    phase(Kind k)
    {
        switch (k) {
        case Kind::Complete:
            return "X";
        case Kind::Instant:
            return "i";
        case Kind::FlowStart:
            return "s";
        case Kind::FlowFinish:
            return "f";
        }
        return "X";
    }

    /** Default track name for an unnamed lane, by lane-range convention. */
    static std::string
    defaultLaneName(int lane)
    {
        if (lane >= Lanes::requests)
            return "request " + std::to_string(lane - Lanes::requests);
        if (lane >= Lanes::fault)
            return "fault";
        if (lane >= Lanes::wire)
            return "wire " + std::to_string(lane - Lanes::wire);
        if (lane >= Lanes::dma)
            return "dma";
        return "core " + std::to_string(lane);
    }

    void
    writeMetadata(std::ostream &os, bool &first) const
    {
        // Every (pid, lane) pair any event touches gets a thread_name
        // record: explicit names win, otherwise the lane-range default.
        // std::map/std::set keep the emission order deterministic.
        std::set<std::pair<int, int>> lanes;
        std::set<int> pids;
        for (const auto &e : events_) {
            lanes.insert({e.pid, e.lane});
            pids.insert(e.pid);
        }
        for (const auto &[pid, name] : processNames_)
            pids.insert(pid);
        for (const auto &[key, name] : laneNames_)
            lanes.insert(key);

        for (int pid : pids) {
            std::string name;
            if (auto it = processNames_.find(pid);
                it != processNames_.end())
                name = it->second;
            else
                name = pid == 0 ? "hardware" : "process " +
                                                   std::to_string(pid);
            if (!first)
                os << ",\n";
            first = false;
            os << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
               << pid << ",\"args\":{\"name\":\"" << escape(name)
               << "\"}}";
        }
        for (const auto &key : lanes) {
            const auto [pid, lane] = key;
            std::string name;
            if (auto it = laneNames_.find(key); it != laneNames_.end())
                name = it->second;
            else
                name = defaultLaneName(lane);
            if (!first)
                os << ",\n";
            first = false;
            os << "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
               << pid << ",\"tid\":" << lane
               << ",\"args\":{\"name\":\"" << escape(name) << "\"}}";
        }
    }

    /**
     * JSON string escape: quotes, backslashes, and *all* control
     * characters (embedded newlines/tabs in a hostile name must not
     * break the document).
     */
    static std::string
    escape(const std::string &s)
    {
        static constexpr char hex[] = "0123456789abcdef";
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            const auto u = static_cast<unsigned char>(c);
            if (c == '"' || c == '\\') {
                out.push_back('\\');
                out.push_back(c);
            } else if (c == '\n') {
                out += "\\n";
            } else if (c == '\t') {
                out += "\\t";
            } else if (c == '\r') {
                out += "\\r";
            } else if (u < 0x20) {
                out += "\\u00";
                out.push_back(hex[(u >> 4) & 0xf]);
                out.push_back(hex[u & 0xf]);
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    std::vector<Event> events_;
    std::map<int, std::string> processNames_;
    std::map<std::pair<int, int>, std::string> laneNames_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_TRACE_HH
