/**
 * @file
 * Chrome-trace (about:tracing / Perfetto) exporter for simulated
 * activity.
 *
 * Components record complete events (name, category, start, duration,
 * lane); `write()` emits the standard Trace Event JSON so a run can
 * be inspected in any chrome://tracing-compatible viewer.  Tracing is
 * opt-in per component (`setTracer`) and costs nothing when off.
 */

#ifndef IOAT_SIMCORE_TRACE_HH
#define IOAT_SIMCORE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/types.hh"

namespace ioat::sim {

/**
 * Collects trace events and serializes them as Trace Event JSON.
 */
class TraceWriter
{
  public:
    /** Lanes (chrome "tid") group related events in the viewer. */
    struct Lanes
    {
        static constexpr int core0 = 0;   ///< CPU cores: 0..N-1
        static constexpr int dma = 100;   ///< DMA engine channels
        static constexpr int wire = 200;  ///< NIC ports
        static constexpr int fault = 300; ///< injected faults / recovery
    };

    explicit TraceWriter(std::size_t reserve = 4096)
    {
        events_.reserve(reserve);
    }

    /** A span of simulated time ("X" complete event). */
    void
    complete(std::string name, const char *category, Tick start,
             Tick duration, int lane)
    {
        events_.push_back(Event{std::move(name), category, start,
                                duration, lane, false});
    }

    /** A point in simulated time ("i" instant event). */
    void
    instant(std::string name, const char *category, Tick when, int lane)
    {
        events_.push_back(
            Event{std::move(name), category, when, Tick{0}, lane, true});
    }

    std::size_t eventCount() const { return events_.size(); }
    void clear() { events_.clear(); }

    /** Emit Trace Event JSON (array format). */
    void
    write(std::ostream &os) const
    {
        os << "[\n";
        bool first = true;
        for (const auto &e : events_) {
            if (!first)
                os << ",\n";
            first = false;
            os << "  {\"name\":\"" << escape(e.name) << "\",\"cat\":\""
               << e.category << "\",\"ph\":\""
               << (e.isInstant ? 'i' : 'X')
               << "\",\"ts\":" << toMicroseconds(e.start);
            if (!e.isInstant)
                os << ",\"dur\":" << toMicroseconds(e.duration);
            os << ",\"pid\":0,\"tid\":" << e.lane;
            if (e.isInstant)
                os << ",\"s\":\"t\"";
            os << "}";
        }
        os << "\n]\n";
    }

    /** Convenience: write to a file. */
    void
    save(const std::string &path) const
    {
        std::ofstream out(path);
        simAssert(out.good(), "cannot open trace file for writing");
        write(out);
    }

  private:
    struct Event
    {
        std::string name;
        const char *category;
        Tick start;
        Tick duration;
        int lane;
        bool isInstant;
    };

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    std::vector<Event> events_;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_TRACE_HH
