/**
 * @file
 * Bounded FIFO channel for message passing between simulated tasks.
 *
 * Semantics follow Go channels: send suspends while the channel is
 * full, recv suspends while it is empty, close() wakes all receivers
 * which then observe std::nullopt once the buffer drains.
 */

#ifndef IOAT_SIMCORE_CHANNEL_HH
#define IOAT_SIMCORE_CHANNEL_HH

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "simcore/assert.hh"
#include "simcore/coro.hh"
#include "simcore/sim.hh"
#include "simcore/sync.hh"

namespace ioat::sim {

/**
 * A bounded multi-producer multi-consumer channel.
 *
 * @tparam T element type (moved through the channel)
 */
template <typename T>
class Channel
{
  public:
    /**
     * @param sim owning simulation
     * @param capacity maximum buffered elements (0 means unbounded)
     */
    Channel(Simulation &sim, std::size_t capacity = 0)
        : sim_(sim), capacity_(capacity)
    {}

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    std::size_t size() const { return items_.size(); }
    bool closed() const { return closed_; }

    /**
     * Send a value, suspending while the channel is full.
     * Sending on a closed channel is a simulator bug.
     */
    Coro<void>
    send(T value)
    {
        while (capacity_ != 0 && items_.size() >= capacity_ && !closed_) {
            notFull_.reset();
            co_await notFull_.wait();
        }
        simAssert(!closed_, "send on closed Channel");
        items_.push_back(std::move(value));
        notEmpty_.pulse();
    }

    /**
     * Push a value without waiting for space (for non-coroutine
     * producers such as device callbacks).  Capacity is not enforced.
     */
    void
    push(T value)
    {
        simAssert(!closed_, "push on closed Channel");
        items_.push_back(std::move(value));
        notEmpty_.pulse();
    }

    /**
     * Receive the next value, suspending while the channel is empty.
     * @return the value, or std::nullopt once closed and drained.
     */
    Coro<std::optional<T>>
    recv()
    {
        while (items_.empty() && !closed_)
            co_await notEmpty_.wait();
        if (items_.empty())
            co_return std::optional<T>{};
        T v = std::move(items_.front());
        items_.pop_front();
        notFull_.pulse();
        co_return std::optional<T>(std::move(v));
    }

    /** Non-blocking receive. */
    std::optional<T>
    tryRecv()
    {
        if (items_.empty())
            return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        notFull_.pulse();
        return v;
    }

    /** Close the channel: receivers drain the buffer then see nullopt. */
    void
    close()
    {
        closed_ = true;
        notEmpty_.pulse();
        notFull_.pulse();
    }

  private:
    Simulation &sim_;
    std::size_t capacity_;
    bool closed_ = false;
    std::deque<T> items_;
    Event notEmpty_{sim_};
    Event notFull_{sim_};
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_CHANNEL_HH
