/**
 * @file
 * Statistics collection framework.
 *
 * Models report through these types and experiments read them back;
 * a Registry gives every stat a hierarchical name and a one-line dump
 * format, loosely following gem5's stats package.
 */

#ifndef IOAT_SIMCORE_STATS_HH
#define IOAT_SIMCORE_STATS_HH

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "simcore/assert.hh"
#include "simcore/types.hh"

namespace ioat::sim::stats {

/**
 * Monotonic event counter.
 *
 * Increments are relaxed atomics: counting is commutative, so shard
 * workers (simcore/shard.hh) bump shared counters concurrently and
 * the total is partition-invariant.  Reads taken while workers run
 * are racy snapshots; every reported value is read at a horizon
 * barrier (or after the run), where the shard engine's join provides
 * the happens-before edge.
 */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &o) : value_(o.value()) {}
    Counter &
    operator=(const Counter &o)
    {
        value_.store(o.value(), std::memory_order_relaxed);
        return *this;
    }

    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A cross-thread boolean signal ("stop requested").  The sanctioned
 * wrapper for flag state shared between the driver and node-affine
 * coroutines, so model code never touches raw atomics (the simlint
 * raw-threading rule keeps threading primitives inside src/simcore).
 */
class Flag
{
  public:
    void set(bool v = true) { v_.store(v, std::memory_order_relaxed); }
    bool get() const { return v_.load(std::memory_order_relaxed); }
    explicit operator bool() const { return get(); }

  private:
    std::atomic<bool> v_{false};
};

/** A cross-thread gauge (live thread count, open connections). */
class Level
{
  public:
    void inc() { v_.fetch_add(1, std::memory_order_relaxed); }
    void dec() { v_.fetch_sub(1, std::memory_order_relaxed); }
    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Running summary of a sampled quantity (mean/min/max/stddev). */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        ++n_;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    stddev() const
    {
        if (n_ < 2)
            return 0.0;
        const double m = mean();
        const double var =
            (sumSq_ - static_cast<double>(n_) * m * m) /
            static_cast<double>(n_ - 1);
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    void
    reset()
    {
        n_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    /**
     * Fold another accumulator into this one.  Used to combine
     * per-node partials in a fixed (node-index) order, which keeps
     * the floating-point sums bit-identical across shard counts —
     * sampling into one shared accumulator from several shards would
     * not be.
     */
    void
    merge(const Accumulator &o)
    {
        n_ += o.n_;
        sum_ += o.sum_;
        sumSq_ += o.sumSq_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Time-weighted average of a piecewise-constant signal (queue depth,
 * busy cores, ...).  Call update() at every change, then read the
 * average over [start, now].
 */
class TimeWeighted
{
  public:
    explicit TimeWeighted(double initial = 0.0) : value_(initial) {}

    void
    update(Tick now, double new_value)
    {
        simAssert(now >= lastChange_, "TimeWeighted time went backwards");
        area_ += value_ * static_cast<double>((now - lastChange_).count());
        lastChange_ = now;
        value_ = new_value;
    }

    double value() const { return value_; }

    /** Average over [windowStart, now]. */
    double
    average(Tick now) const
    {
        if (now <= windowStart_)
            return value_;
        const double total =
            area_ + value_ * static_cast<double>((now - lastChange_).count());
        return total / static_cast<double>((now - windowStart_).count());
    }

    /** Restart the averaging window at @p now, keeping the level. */
    void
    resetWindow(Tick now)
    {
        windowStart_ = now;
        lastChange_ = now;
        area_ = 0.0;
    }

  private:
    double value_;
    double area_ = 0.0;
    Tick windowStart_{};
    Tick lastChange_{};
};

/** Power-of-two bucketed histogram (bucket i covers [2^i, 2^(i+1))). */
class Log2Histogram
{
  public:
    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketFor(v)];
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(unsigned i) const
    {
        return i < kBuckets ? buckets_[i] : 0;
    }

    /** Smallest value v such that at least `q` of the mass is <= v. */
    std::uint64_t
    quantileUpperBound(double q) const
    {
        if (count_ == 0)
            return 0;
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(count_));
        std::uint64_t seen = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            seen += buckets_[i];
            if (seen >= target)
                return i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{2} << i);
        }
        return ~std::uint64_t{0};
    }

  private:
    static constexpr unsigned kBuckets = 64;

    static unsigned
    bucketFor(std::uint64_t v)
    {
        if (v == 0)
            return 0;
        return 63 - static_cast<unsigned>(__builtin_clzll(v));
    }

    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
};

/** A named view onto any stat, for dumping. */
struct NamedStat
{
    std::string name;
    std::string description;
    // Snapshot function: returns current value as double.
    double (*read)(const void *);
    const void *object;
};

/**
 * Registry of named stats for end-of-run dumps.
 *
 * Objects register their stats under dotted names
 * ("node0.cpu.utilization"); dump() prints name, value, description.
 */
class Registry
{
  public:
    void
    addCounter(std::string name, const Counter &c, std::string desc = "")
    {
        stats_.push_back({std::move(name), std::move(desc),
                          [](const void *p) {
                              return static_cast<double>(
                                  static_cast<const Counter *>(p)->value());
                          },
                          &c});
    }

    void
    addAccumulatorMean(std::string name, const Accumulator &a,
                       std::string desc = "")
    {
        stats_.push_back({std::move(name), std::move(desc),
                          [](const void *p) {
                              return static_cast<const Accumulator *>(p)
                                  ->mean();
                          },
                          &a});
    }

    std::size_t size() const { return stats_.size(); }

    void
    dump(std::ostream &os) const
    {
        for (const auto &s : stats_) {
            os << s.name << " = " << s.read(s.object);
            if (!s.description.empty())
                os << "   # " << s.description;
            os << '\n';
        }
    }

  private:
    std::vector<NamedStat> stats_;
};

} // namespace ioat::sim::stats

#endif // IOAT_SIMCORE_STATS_HH
