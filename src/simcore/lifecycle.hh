/**
 * @file
 * Crash–restart process semantics for simulated nodes.
 *
 * PR 1's outage windows make the *network* drop deliveries to a down
 * node, but the node's software keeps its state — a "pause", not a
 * crash.  The `Lifecycle` supervisor upgrades outage windows to real
 * process semantics: at a window's start every `Restartable`
 * registered on that node is crashed (in-flight connections reset,
 * volatile state wiped), and at the window's end it is restarted
 * (cold caches, re-listen, re-register).
 *
 * The supervisor is strictly opt-in: when no Lifecycle is constructed
 * (every pre-existing bench and test), nothing schedules and the
 * event sequence is byte-identical to the seed.  Crash/restart events
 * are derived from the injector's *merged* per-node windows, so two
 * overlapping raw windows produce one crash and one restart, exactly
 * like the network-level `nodeDown()` view.
 *
 * Ordering within one crash (or restart) instant is the registration
 * order, so benches attach the Node (transport reset) first and the
 * daemons on it after — a crash tears the stack down before the
 * application hooks run, and a restart brings them up the same way.
 */

#ifndef IOAT_SIMCORE_LIFECYCLE_HH
#define IOAT_SIMCORE_LIFECYCLE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "simcore/fault.hh"
#include "simcore/sim.hh"
#include "simcore/telemetry/registry.hh"

namespace ioat::sim {

/**
 * Hook implemented by every component that lives on a crashable node.
 *
 * `onCrash` must wipe volatile state and drop in-flight work;
 * `onRestart` must re-initialize as a freshly exec'd process would
 * (cold caches, replayed journals, re-registered leases).  Durable
 * state — anything the real system would have fsync'd — survives in
 * the object across the pair of calls.
 */
class Restartable
{
  public:
    virtual ~Restartable() = default;

    /** The node died at @p now: reset in-flight work, wipe RAM. */
    virtual void onCrash(Tick now) = 0;

    /** The node came back at @p now: re-initialize cold. */
    virtual void onRestart(Tick now) = 0;
};

/**
 * Turns a FaultInjector's outage schedule into crash/restart calls on
 * the components registered per node.  Register with `attach()`, then
 * call `start()` once (after the whole schedule is known).
 *
 * Publishes per-node executed crash/restart counts when added to the
 * telemetry hub (name it "lifecycle").
 */
class Lifecycle : public telemetry::Instrumented
{
  public:
    Lifecycle(Simulation &sim, const FaultInjector &faults)
        : sim_(sim), faults_(faults)
    {}

    Lifecycle(const Lifecycle &) = delete;
    Lifecycle &operator=(const Lifecycle &) = delete;

    /** Register @p c as living on @p node (registration order is the
     *  callback order within one crash/restart instant). */
    void
    attach(std::uint32_t node, Restartable *c)
    {
        simAssert(!started_, "attach() after Lifecycle::start()");
        members_[node].push_back(c);
    }

    /**
     * Schedule every crash/restart event from the injector's merged
     * windows.  Deterministic: events are posted in ascending node
     * order, and the event queue breaks same-tick ties FIFO.
     *
     * A window starting at tick 0 crashes the node before any other
     * tick-0 work only if start() runs before the components spawn;
     * benches call start() last, so a tick-0 window crashes a node
     * that already came up — the interesting case.
     */
    void
    start()
    {
        simAssert(!started_, "Lifecycle::start() called twice");
        started_ = true;
        for (const std::uint32_t node : faults_.outageNodes()) {
            for (const OutageWindow &w : faults_.mergedOutages(node)) {
                simAssert(w.start >= sim_.now(),
                          "outage window starts in the past");
                sim_.queue().scheduleIn(w.start - sim_.now(), [this, w] {
                    crash(w.node);
                });
                if (w.end != kTickMax) {
                    sim_.queue().scheduleIn(w.end - sim_.now(),
                                            [this, w] {
                                                restart(w.node);
                                            });
                }
            }
        }
    }

    /** @name Executed-event counters
     *  @{ */
    std::uint64_t crashes() const { return crashes_; }
    std::uint64_t restarts() const { return restarts_; }
    std::uint64_t
    crashes(std::uint32_t node) const
    {
        const auto it = perNode_.find(node);
        return it == perNode_.end() ? 0 : it->second.crashes;
    }
    std::uint64_t
    restarts(std::uint32_t node) const
    {
        const auto it = perNode_.find(node);
        return it == perNode_.end() ? 0 : it->second.restarts;
    }
    /** @} */

    /** Per-node executed crash/restart counts for the RunReport. */
    void
    instrument(telemetry::Registry &reg) override
    {
        reg.scalar(
            "crashes", [this] { return static_cast<double>(crashes_); },
            "node crashes executed");
        reg.scalar(
            "restarts",
            [this] { return static_cast<double>(restarts_); },
            "node restarts executed");
        for (const auto &kv : perNode_) {
            const std::uint32_t node = kv.first;
            telemetry::Registry::Scope scope(
                reg, "node" + std::to_string(node));
            reg.scalar(
                "crashes",
                [this, node] {
                    return static_cast<double>(crashes(node));
                },
                "crashes executed on this node");
            reg.scalar(
                "restarts",
                [this, node] {
                    return static_cast<double>(restarts(node));
                },
                "restarts executed on this node");
        }
    }

  private:
    struct PerNode
    {
        std::uint64_t crashes = 0;
        std::uint64_t restarts = 0;
    };

    void
    crash(std::uint32_t node)
    {
        ++crashes_;
        ++perNode_[node].crashes;
        const auto it = members_.find(node);
        if (it == members_.end())
            return;
        for (Restartable *c : it->second)
            c->onCrash(sim_.now());
    }

    void
    restart(std::uint32_t node)
    {
        ++restarts_;
        ++perNode_[node].restarts;
        const auto it = members_.find(node);
        if (it == members_.end())
            return;
        for (Restartable *c : it->second)
            c->onRestart(sim_.now());
    }

    Simulation &sim_;
    const FaultInjector &faults_;
    bool started_ = false;
    // std::map: deterministic iteration for instrument().
    std::map<std::uint32_t, std::vector<Restartable *>> members_;
    std::map<std::uint32_t, PerNode> perNode_;
    std::uint64_t crashes_ = 0;
    std::uint64_t restarts_ = 0;
};

} // namespace ioat::sim

#endif // IOAT_SIMCORE_LIFECYCLE_HH
