/**
 * @file
 * Web-server tier implementation.
 */

#include "datacenter/web_server.hh"

#include "sock/socket.hh"

namespace ioat::dc {

using sim::Coro;

WebServer::WebServer(core::Node &node, const DcConfig &cfg,
                     const Workload &files)
    : node_(node), cfg_(cfg), files_(files),
      mem_(node.host(), "dc.webserver")
{
    // The served corpus (page cache) and Apache's own resident state
    // compete for L2 the entire run.
    mem_.reserve(cfg_.appResidentBytes + files_.totalBytes());
    node_.simulation().telemetry().add("webServer", this);
}

WebServer::~WebServer() { node_.simulation().telemetry().remove(this); }

void
WebServer::start()
{
    node_.simulation().spawn(acceptLoop());
}

Coro<void>
WebServer::acceptLoop()
{
    sock::Listener listener(node_.transport(), cfg_.serverPort);
    for (;;) {
        sock::Socket conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<void>
WebServer::serveConnection(sock::Socket conn)
{
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    for (;;) {
        auto msg = co_await conn.recvMessage();
        if (!msg.has_value())
            co_return; // client hung up

        // Liveness probe: answer immediately, ahead of any queued
        // application work — the detector measures reachability, not
        // service latency (no worker/parse cost is charged).
        if (msg->tag == static_cast<std::uint64_t>(HttpTag::Ping)) {
            pings_.inc();
            sock::Message pong;
            pong.tag = static_cast<std::uint64_t>(HttpTag::Pong);
            pong.a = msg->a;
            co_await conn.sendMessage(pong);
            continue;
        }
        sim::simAssert(msg->tag == static_cast<std::uint64_t>(HttpTag::Get),
                       "web server expects GET");

        // The backend's tenure on the request, parented on whatever
        // context rode the GET header (client root or proxy span).
        sim::TraceContext sctx{};
        if (rt && msg->trace.valid())
            sctx = rt->beginSpan(msg->trace, "webserver",
                                 sim::CostCat::queueWait);

        // Overload control: past the inflight cap we answer with an
        // immediate 503 instead of queueing (graceful degradation).
        if (cfg_.maxInflight > 0 && inflight_ >= cfg_.maxInflight) {
            shed_.inc();
            sock::Message busy;
            busy.tag =
                static_cast<std::uint64_t>(HttpTag::ServiceUnavailable);
            busy.a = msg->a;
            busy.trace = sctx;
            co_await conn.sendMessage(busy);
            if (rt)
                rt->endSpan(sctx);
            continue;
        }
        ++inflight_;

        const std::size_t bytes = files_.fileSize(msg->a);

        // Request parsing, worker scheduling, VFS/page-cache lookup,
        // response-header construction.
        const sim::Tick handle_t0 = node_.simulation().now();
        co_await node_.cpu().compute(
            cfg_.requestParseCost + cfg_.workerOverheadCost +
            cfg_.serverFileLookupCost + cfg_.responseBuildCost);
        if (rt && sctx.valid())
            rt->recordComputeSplit(
                sctx, handle_t0, node_.simulation().now(),
                {{"server.handle", sim::CostCat::cpu,
                  cfg_.requestParseCost + cfg_.workerOverheadCost +
                      cfg_.serverFileLookupCost +
                      cfg_.responseBuildCost}});

        // Static content goes out via sendfile (zero-copy): the NIC
        // reads the page cache directly.
        sock::Message resp;
        resp.tag = static_cast<std::uint64_t>(HttpTag::Response);
        resp.a = msg->a;
        resp.payloadBytes = bytes;
        resp.trace = sctx;
        co_await conn.sendMessage(resp,
                                  sock::SendOptions{.zeroCopy = true});
        if (rt)
            rt->endSpan(sctx);
        served_.inc();
        --inflight_;
    }
}

} // namespace ioat::dc
