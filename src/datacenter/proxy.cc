/**
 * @file
 * Proxy tier implementation.
 */

#include "datacenter/proxy.hh"

#include "datacenter/web_server.hh"
#include "sock/message.hh"

namespace ioat::dc {

using sim::Coro;
using tcp::Connection;

Proxy::Proxy(core::Node &node, const DcConfig &cfg, net::NodeId backend,
             unsigned backend_conns)
    : node_(node), cfg_(cfg), backend_(backend),
      backendConns_(backend_conns), cache_(cfg.proxyCacheBytes),
      mem_(node.host(), "dc.proxy"),
      idleBackends_(node.simulation())
{
    mem_.reserve(cfg_.appResidentBytes);
}

void
Proxy::start()
{
    node_.simulation().spawn(openBackendPool());
    node_.simulation().spawn(acceptLoop());
}

Coro<void>
Proxy::openBackendPool()
{
    for (unsigned i = 0; i < backendConns_; ++i) {
        Connection *conn =
            co_await node_.stack().connect(backend_, cfg_.serverPort);
        idleBackends_.push(conn);
    }
}

Coro<void>
Proxy::acceptLoop()
{
    auto &listener = node_.stack().listen(cfg_.proxyPort);
    for (;;) {
        Connection *conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<void>
Proxy::serveConnection(Connection *client)
{
    for (;;) {
        auto msg = co_await sock::recvMessage(*client);
        if (!msg.has_value())
            co_return;
        sim::simAssert(msg->tag == static_cast<std::uint64_t>(HttpTag::Get),
                       "proxy expects GET");

        co_await node_.cpu().compute(cfg_.requestParseCost +
                                     cfg_.workerOverheadCost +
                                     cfg_.proxyCacheOpCost);

        std::size_t bytes =
            cfg_.proxyCachingEnabled ? cache_.get(msg->a) : 0;
        if (bytes != 0) {
            hits_.inc();
        } else {
            misses_.inc();
            // Forward over a pooled persistent backend connection.
            auto backend = co_await idleBackends_.recv();
            sim::simAssert(backend.has_value(), "backend pool closed");
            Connection *bc = *backend;

            sock::Message fwd = *msg;
            co_await sock::sendMessage(*bc, fwd);

            auto resp = co_await sock::recvMessage(*bc);
            sim::simAssert(resp.has_value(), "backend closed mid-request");
            bytes = resp->payloadBytes;
            const std::size_t got = co_await bc->recvAll(bytes);
            sim::simAssert(got == bytes, "short backend response");
            idleBackends_.push(bc);

            // Stream the fetched object into the forwarding buffer
            // (and, when caching, into the object cache).
            if (cfg_.touchPayload)
                co_await mem_.copyInto(bytes);
            if (cfg_.proxyCachingEnabled) {
                co_await node_.cpu().compute(cfg_.proxyCacheOpCost);
                cache_.put(msg->a, bytes);
                mem_.setReserved(cfg_.appResidentBytes +
                                 cache_.usedBytes());
            }
        }

        co_await node_.cpu().compute(cfg_.responseBuildCost);

        // Serve from in-memory cache: zero-copy out.
        sock::Message resp;
        resp.tag = static_cast<std::uint64_t>(HttpTag::Response);
        resp.a = msg->a;
        resp.payloadBytes = bytes;
        co_await sock::sendMessage(*client, resp,
                                   tcp::SendOptions{.zeroCopy = true});
        served_.inc();
    }
}

} // namespace ioat::dc
