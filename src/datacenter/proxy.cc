/**
 * @file
 * Proxy tier implementation.
 *
 * Fault handling: with a nonzero `DcConfig::requestDeadline` every
 * backend exchange runs under a watchdog that aborts the pooled
 * connection when the deadline expires; the request then retries on
 * the next backend (rotating over `backends_`).  Pooled connections
 * found dead are replaced in place.  When every attempt fails the
 * proxy degrades gracefully: it serves a stale cached copy of the
 * object if one is known, else sheds the request with a 503.  With
 * the default config the event sequence is identical to the seed.
 */

#include "datacenter/proxy.hh"

#include <algorithm>

#include "datacenter/web_server.hh"
#include "simcore/timeout.hh"

namespace ioat::dc {

using sim::Coro;

namespace {

/** Shared flag between a backend exchange and its watchdog. */
struct OpWatch
{
    bool done = false;
    bool fired = false;
};

Coro<void>
armWatch(sock::Socket c, sim::Tick t, std::shared_ptr<OpWatch> w)
{
    co_await c.simulation().delay(t);
    if (!w->done) {
        w->fired = true;
        c.abort();
    }
}

} // namespace

Proxy::Proxy(core::Node &node, const DcConfig &cfg,
             std::vector<net::NodeId> backends, unsigned backend_conns)
    : node_(node), cfg_(cfg), backends_(std::move(backends)),
      backendConns_(backend_conns), cache_(cfg.proxyCacheBytes),
      mem_(node.host(), "dc.proxy")
{
    sim::simAssert(!backends_.empty(), "proxy needs a backend");
    for (std::size_t i = 0; i < backends_.size(); ++i)
        pools_.push_back(
            std::make_unique<sim::Channel<sock::Socket>>(
                node.simulation()));
    leaseUntil_.assign(backends_.size(), sim::Tick{});
    mem_.reserve(cfg_.appResidentBytes);
    node_.simulation().telemetry().add("proxy", this);
}

Proxy::Proxy(core::Node &node, const DcConfig &cfg, net::NodeId backend,
             unsigned backend_conns)
    : Proxy(node, cfg, std::vector<net::NodeId>{backend}, backend_conns)
{}

Proxy::~Proxy() { node_.simulation().telemetry().remove(this); }

void
Proxy::instrument(sim::telemetry::Registry &reg)
{
    reg.counter("requestsServed", served_, "client requests completed");
    reg.counter("cacheHits", hits_, "object-cache hits");
    reg.counter("cacheMisses", misses_, "object-cache misses");
    reg.counter("backendRetries", retries_,
                "backend exchanges retried after failure");
    reg.counter("degradedHits", degraded_,
                "requests served stale after backend failure");
    reg.counter("requestsShed", shed_, "requests answered with a 503");
    reg.counter("deadBackendConns", deadConns_,
                "pooled backend connections replaced");
    reg.counter("heartbeatsAcked", hbAcks_,
                "Ping exchanges completed (lease renewals)");
    reg.counter("leaseExpiries", leaseExpiries_,
                "alive -> expired lease transitions");
    reg.counter("failovers", failovers_,
                "requests routed past a leased-dead backend");
    reg.scalar(
        "hitRate", [this] { return hitRate(); },
        "object-cache hit fraction");
    reg.scalar(
        "cacheBytes",
        [this] { return static_cast<double>(cache_.usedBytes()); },
        "bytes of cached objects");
    reg.probe(
        "inflight", sim::telemetry::ProbeKind::gauge,
        [this] { return static_cast<double>(inflight_); },
        "client requests between parse and reply (proxy backlog)");
}

void
Proxy::start()
{
    node_.simulation().spawn(openBackendPool());
    node_.simulation().spawn(acceptLoop());
    if (cfg_.heartbeatInterval > sim::Tick{0}) {
        // A fresh lease per backend covers the start-up gap until the
        // first Pong lands; the monitors keep it renewed from there.
        for (std::size_t i = 0; i < backends_.size(); ++i)
            leaseUntil_[i] =
                node_.simulation().now() + cfg_.effectiveLease();
        for (unsigned i = 0;
             i < static_cast<unsigned>(backends_.size()); ++i)
            node_.simulation().spawn(heartbeatLoop(i));
    }
}

void
Proxy::onCrash(sim::Tick)
{
    // Process memory is gone: the object cache is cold and every
    // lease verdict made by the dead process is void.
    cache_.clear();
    mem_.setReserved(0);
    for (auto &lease : leaseUntil_)
        lease = sim::Tick{};
}

void
Proxy::onRestart(sim::Tick)
{
    // Re-admit the resident set; everything else rebuilds lazily —
    // the accept loop kept its listener, fetchOnce replaces dead
    // pooled connections in place, and the heartbeat monitors re-earn
    // the leases with live Pongs.
    mem_.setReserved(cfg_.appResidentBytes);
}

Coro<void>
Proxy::heartbeatLoop(unsigned idx)
{
    // The monitor's Ping rides a dedicated connection, reopened with
    // deterministic capped backoff when it dies — never a pooled
    // request connection, so detection is independent of load.
    const sim::Tick interval = cfg_.heartbeatInterval;
    const sim::Tick hb_deadline = cfg_.effectiveHeartbeatTimeout();
    sim::CappedBackoff backoff(interval, cfg_.effectiveLease());
    sock::Socket conn;
    bool wasAlive = true;
    while (!stopping_) {
        if (!conn.valid() || !conn.usable()) {
            conn = co_await node_.transport().connect(
                backends_[idx], cfg_.serverPort, hb_deadline);
            if (!conn.valid() || !conn.usable()) {
                if (wasAlive && !backendAlive(idx)) {
                    leaseExpiries_.inc();
                    wasAlive = false;
                }
                co_await node_.simulation().delay(backoff.next());
                continue;
            }
            backoff.reset();
        }

        sock::Message ping;
        ping.tag = static_cast<std::uint64_t>(HttpTag::Ping);
        ping.a = idx;
        co_await conn.sendMessage(ping);
        auto pong = co_await conn.recvMessageTimed(hb_deadline);
        if (pong &&
            pong->tag == static_cast<std::uint64_t>(HttpTag::Pong)) {
            hbAcks_.inc();
            // A lapse can also happen while this monitor is blocked
            // reconnecting; the first contact afterwards observes it.
            if (wasAlive && !backendAlive(idx))
                leaseExpiries_.inc();
            leaseUntil_[idx] =
                node_.simulation().now() + cfg_.effectiveLease();
            wasAlive = true;
            co_await node_.simulation().delay(interval);
            continue;
        }
        // Missed Pong: the timed receive aborted the connection, so
        // the next round reconnects.  The lease keeps running out on
        // its own — detection needs no per-request deadline anywhere.
        if (wasAlive && !backendAlive(idx)) {
            leaseExpiries_.inc();
            wasAlive = false;
        }
    }
}

Coro<void>
Proxy::openBackendPool()
{
    for (std::size_t p = 0; p < backends_.size(); ++p) {
        for (unsigned i = 0; i < backendConns_; ++i) {
            sock::Socket conn = co_await node_.transport().connect(
                backends_[p], cfg_.serverPort, cfg_.requestDeadline);
            pools_[p]->push(conn);
        }
    }
}

Coro<void>
Proxy::acceptLoop()
{
    sock::Listener listener(node_.transport(), cfg_.proxyPort);
    for (;;) {
        sock::Socket conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<std::optional<std::size_t>>
Proxy::fetchOnce(unsigned pool_idx, const sock::Message &request,
                 sim::TraceContext ctx)
{
    auto &pool = *pools_[pool_idx];
    auto backend = co_await pool.recv();
    sim::simAssert(backend.has_value(), "backend pool closed");
    sock::Socket bc = *backend;

    if (!bc.usable()) {
        // The pooled connection died (abort / server crash): replace
        // it in place so the pool population stays constant.
        deadConns_.inc();
        bc = co_await node_.transport().connect(
            backends_[pool_idx], cfg_.serverPort, cfg_.requestDeadline);
        if (!bc.valid() || !bc.usable()) {
            if (bc.valid())
                pool.push(bc);
            co_return std::nullopt;
        }
    }

    auto watch = std::make_shared<OpWatch>();
    if (cfg_.requestDeadline > sim::Tick{0})
        node_.simulation().spawn(
            armWatch(bc, cfg_.requestDeadline, watch));

    sock::Message fwd = request;
    fwd.trace = ctx; // backend works on behalf of the proxy span
    co_await bc.sendMessage(fwd);
    std::optional<sock::Message> resp;
    if (!bc.aborted())
        resp = co_await bc.recvMessage(ctx);
    if (!resp) {
        watch->done = true;
        pool.push(bc);
        co_return std::nullopt;
    }
    if (resp->tag ==
        static_cast<std::uint64_t>(HttpTag::ServiceUnavailable)) {
        // Backend shed the request; the connection is still good.
        watch->done = true;
        pool.push(bc);
        co_return std::nullopt;
    }
    const std::size_t bytes = resp->payloadBytes;
    const std::size_t got = co_await bc.recvAll(bytes, ctx);
    watch->done = true;
    pool.push(bc);
    if (got != bytes)
        co_return std::nullopt; // deadline / abort mid-payload
    co_return bytes;
}

Coro<void>
Proxy::serveConnection(sock::Socket client)
{
    sim::RequestTracer *rt = node_.simulation().requestTracer();
    for (;;) {
        auto msg = co_await client.recvMessage();
        if (!msg.has_value())
            co_return;
        sim::simAssert(msg->tag == static_cast<std::uint64_t>(HttpTag::Get),
                       "proxy expects GET");
        ++inflight_;

        // The proxy's whole tenure on this request is one span; the
        // backend exchange and local work parent on it.
        sim::TraceContext pctx{};
        if (rt && msg->trace.valid())
            pctx = rt->beginSpan(msg->trace, "proxy",
                                 sim::CostCat::queueWait);

        const sim::Tick parse_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.requestParseCost +
                                     cfg_.workerOverheadCost +
                                     cfg_.proxyCacheOpCost);
        if (rt && pctx.valid())
            rt->recordComputeSplit(
                pctx, parse_t0, node_.simulation().now(),
                {{"proxy.parse", sim::CostCat::cpu,
                  cfg_.requestParseCost + cfg_.workerOverheadCost},
                 {"proxy.cache", sim::CostCat::cpu,
                  cfg_.proxyCacheOpCost}});

        std::size_t bytes =
            cfg_.proxyCachingEnabled ? cache_.get(msg->a) : 0;
        if (bytes != 0) {
            hits_.inc();
        } else {
            misses_.inc();
            // Forward over a pooled persistent backend connection,
            // rotating to the next backend on each failed attempt.
            std::optional<std::size_t> fetched;
            const unsigned tries = std::max(1u, cfg_.backendRetries);
            const unsigned npools =
                static_cast<unsigned>(pools_.size());
            for (unsigned a = 0; a < tries && !fetched; ++a) {
                unsigned pick = a % npools;
                if (cfg_.heartbeatInterval > sim::Tick{0}) {
                    // Detection-driven failover: route past backends
                    // whose lease lapsed instead of spending a
                    // per-request deadline discovering each one dead.
                    unsigned probed = 0;
                    while (probed < npools && !backendAlive(pick)) {
                        pick = (pick + 1) % npools;
                        ++probed;
                    }
                    if (probed == npools)
                        break; // all leased dead: degrade right away
                    if (probed > 0)
                        failovers_.inc();
                }
                if (a > 0)
                    retries_.inc();
                fetched = co_await fetchOnce(pick, *msg, pctx);
            }

            if (fetched) {
                bytes = *fetched;
                // Stream the fetched object into the forwarding
                // buffer (and, when caching, into the object cache).
                if (cfg_.touchPayload)
                    co_await mem_.copyInto(bytes, pctx);
                if (cfg_.proxyCachingEnabled) {
                    const sim::Tick cache_t0 =
                        node_.simulation().now();
                    co_await node_.cpu().compute(cfg_.proxyCacheOpCost);
                    if (rt && pctx.valid())
                        rt->recordComputeSplit(
                            pctx, cache_t0, node_.simulation().now(),
                            {{"proxy.cache", sim::CostCat::cpu,
                              cfg_.proxyCacheOpCost}});
                    cache_.put(msg->a, bytes);
                    mem_.setReserved(cfg_.appResidentBytes +
                                     cache_.usedBytes());
                } else if (cfg_.serveStaleOnError) {
                    // Record the object size only (no simulated cache
                    // residency) so degradation can serve it stale.
                    cache_.put(msg->a, bytes);
                }
            } else {
                // Every backend attempt failed: degrade gracefully.
                const std::size_t stale = cfg_.serveStaleOnError
                                              ? cache_.get(msg->a)
                                              : 0;
                if (stale != 0) {
                    degraded_.inc();
                    bytes = stale;
                } else {
                    shed_.inc();
                    const sim::Tick busy_t0 =
                        node_.simulation().now();
                    co_await node_.cpu().compute(cfg_.responseBuildCost);
                    if (rt && pctx.valid())
                        rt->recordComputeSplit(
                            pctx, busy_t0, node_.simulation().now(),
                            {{"proxy.respond", sim::CostCat::cpu,
                              cfg_.responseBuildCost}});
                    sock::Message busy;
                    busy.tag = static_cast<std::uint64_t>(
                        HttpTag::ServiceUnavailable);
                    busy.a = msg->a;
                    busy.trace = pctx;
                    co_await client.sendMessage(busy);
                    if (rt)
                        rt->endSpan(pctx);
                    --inflight_;
                    continue;
                }
            }
        }

        const sim::Tick resp_t0 = node_.simulation().now();
        co_await node_.cpu().compute(cfg_.responseBuildCost);
        if (rt && pctx.valid())
            rt->recordComputeSplit(
                pctx, resp_t0, node_.simulation().now(),
                {{"proxy.respond", sim::CostCat::cpu,
                  cfg_.responseBuildCost}});

        // Serve from in-memory cache: zero-copy out.
        sock::Message resp;
        resp.tag = static_cast<std::uint64_t>(HttpTag::Response);
        resp.a = msg->a;
        resp.payloadBytes = bytes;
        resp.trace = pctx;
        co_await client.sendMessage(resp,
                                    sock::SendOptions{.zeroCopy = true});
        if (rt)
            rt->endSpan(pctx);
        served_.inc();
        --inflight_;
    }
}

} // namespace ioat::dc
