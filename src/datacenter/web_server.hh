/**
 * @file
 * Static-content web-server tier (Apache 2.0.52 web module in the
 * paper's testbed): accepts connections, answers GET requests with
 * sendfile()-served static files.
 */

#ifndef IOAT_DATACENTER_WEB_SERVER_HH
#define IOAT_DATACENTER_WEB_SERVER_HH

#include <cstdint>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "datacenter/config.hh"
#include "datacenter/workload.hh"
#include "simcore/lifecycle.hh"
#include "simcore/stats.hh"

namespace ioat::dc {

/** Message tags of the little HTTP-like protocol. */
enum class HttpTag : std::uint64_t {
    Get = 1,      ///< a = file id, b = expected size (client hint)
    Response = 2, ///< payloadBytes = file content
    /** Overloaded/degraded: request shed, no payload (HTTP 503). */
    ServiceUnavailable = 3,
    /** Liveness probe from the proxy's failure detector. */
    Ping = 4,
    /** Immediate liveness answer (renews the sender's lease). */
    Pong = 5,
};

/**
 * Serves GET requests for a static file population.  Registers with
 * the simulation's telemetry hub as "webServer".
 */
class WebServer : public sim::telemetry::Instrumented,
                  public sim::Restartable
{
  public:
    WebServer(core::Node &node, const DcConfig &cfg,
              const Workload &files);

    ~WebServer() override;

    WebServer(const WebServer &) = delete;
    WebServer &operator=(const WebServer &) = delete;

    /** Begin accepting on cfg.serverPort. */
    void start();

    /** @name Crash–restart hooks (sim::Restartable)
     * The transport teardown happens in the Node's hook; here the
     * process-level state goes: the page cache is cold after a crash
     * and re-warms from the restart (the served corpus re-faults in).
     *  @{ */
    void
    onCrash(sim::Tick) override
    {
        mem_.setReserved(0);
    }
    void
    onRestart(sim::Tick) override
    {
        mem_.setReserved(cfg_.appResidentBytes + files_.totalBytes());
    }
    /** @} */

    std::uint64_t requestsServed() const { return served_.value(); }
    /** Requests shed with a 503 (maxInflight overload control). */
    std::uint64_t requestsShed() const { return shed_.value(); }
    /** Liveness probes answered (heartbeat detector traffic). */
    std::uint64_t pingsAnswered() const { return pings_.value(); }

    /** Publish server telemetry (Hub name "webServer"). */
    void
    instrument(sim::telemetry::Registry &reg) override
    {
        reg.counter("requestsServed", served_, "GET requests answered");
        reg.counter("requestsShed", shed_,
                    "requests shed by overload control");
        reg.counter("pingsAnswered", pings_,
                    "liveness probes answered with a Pong");
        reg.probe(
            "inflight", sim::telemetry::ProbeKind::gauge,
            [this] { return static_cast<double>(inflight_); },
            "requests currently being served");
    }

  private:
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(sock::Socket conn);

    core::Node &node_;
    DcConfig cfg_;
    const Workload &files_;
    core::AppMemory mem_;
    sim::stats::Counter served_;
    sim::stats::Counter shed_;
    sim::stats::Counter pings_;
    unsigned inflight_ = 0;
};

} // namespace ioat::dc

#endif // IOAT_DATACENTER_WEB_SERVER_HH
