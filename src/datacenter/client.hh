/**
 * @file
 * Closed-loop HTTP client fleet.
 *
 * Each client thread fires one request at a time and sends the next
 * only after the response arrives — exactly the paper's client model
 * (§5.1: "Each client fires one request at a time and sends another
 * request after getting a reply").  Threads are spread round-robin
 * over the given client nodes (the Testbed 2 farm, or a Testbed 1
 * node for the Fig. 9 "emulated clients" experiment).
 */

#ifndef IOAT_DATACENTER_CLIENT_HH
#define IOAT_DATACENTER_CLIENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "datacenter/config.hh"
#include "datacenter/workload.hh"
#include "simcore/stats.hh"

namespace ioat::dc {

/**
 * A fleet of closed-loop request generators.
 */
class ClientFleet
{
  public:
    struct Options
    {
        /** Target node (proxy, or web server directly). */
        net::NodeId target;
        std::uint16_t port = 8080;
        /** Total client threads, spread over the nodes. */
        unsigned threads = 16;
        /** Per-request client-side application cost. */
        sim::Tick perRequestCost = sim::microseconds(10);
        /** Stream over the received payload (realistic consumer). */
        bool touchPayload = true;
        /** Resident application memory on each client node. */
        std::size_t residentBytes = 0;
        /** Message tag to send (HttpTag::Get, or DynTag::DynamicGet
         *  when driving the application-server tier directly). */
        std::uint64_t requestTag = 1;
        /** Extra resident memory per client thread (worker process
         *  heap, stack, buffers — prefork servers scale with
         *  concurrency). */
        std::size_t residentBytesPerThread = 0;
        std::uint64_t rngSeed = 1;
        /** @name Fault tolerance (defaults off: seed behaviour)
         *  @{ */
        /** Per-request deadline; expiry aborts the connection and
         *  the thread reconnects (0 = wait forever). */
        sim::Tick requestTimeout{};
        /** Pause before reconnecting a dead connection. */
        sim::Tick reconnectDelay = sim::milliseconds(5);
        /** With a nonzero cap, consecutive failed reconnects back
         *  off: reconnectDelay, 2x, 4x, ... capped here; a successful
         *  connect resets the schedule.  0 keeps the fixed
         *  reconnectDelay pause (the seed behaviour). */
        sim::Tick reconnectBackoffCap{};
        /** @} */
    };

    ClientFleet(std::vector<core::Node *> nodes, Workload &workload,
                const Options &opts);
    ~ClientFleet();

    ClientFleet(const ClientFleet &) = delete;
    ClientFleet &operator=(const ClientFleet &) = delete;

    /** Spawn every client thread. */
    void start();

    /**
     * Ask every thread to exit its closed loop.  A thread finishes
     * the request it is on (every wait is bounded when
     * `requestTimeout` is set) and stops at the next loop top;
     * `activeThreads()` reaching zero means the fleet has drained —
     * at that point issued() == completed()+failures()+rejected(),
     * the request-conservation invariant chaos harnesses check.
     */
    void stop() { stopping_.set(); }

    /** Threads still inside their closed loop. */
    unsigned
    activeThreads() const
    {
        return static_cast<unsigned>(active_.value());
    }

    /** Requests sent (each terminates: response, 503, or failure). */
    std::uint64_t issued() const { return issued_.value(); }

    /** Completed requests since start. */
    std::uint64_t completed() const { return completed_.value(); }

    /**
     * Response-latency summary (microseconds).  Folded from per-node
     * partials in node order on every call: threads sample into their
     * own node's accumulator (shard confinement), and the fixed merge
     * order keeps the floating-point sums — and with them the golden
     * digests — identical at any shard count.
     */
    const sim::stats::Accumulator &
    latencyUs() const
    {
        mergedLatency_ = sim::stats::Accumulator();
        for (const auto &loc : locals_)
            mergedLatency_.merge(loc->latency);
        return mergedLatency_;
    }

    /** Requests that failed (timeout / server closed / short body). */
    std::uint64_t failures() const { return failures_.value(); }
    /** Requests answered with a 503 (shed by proxy or server). */
    std::uint64_t rejected() const { return rejected_.value(); }
    /** Reconnections after a dead connection. */
    std::uint64_t reconnects() const { return reconnects_.value(); }

    /**
     * Instants the fleet decided to reconnect (first
     * `kMaxRecordedReconnects` only): the gaps between consecutive
     * entries of one outage pin the capped-backoff schedule in tests.
     * Recorded per node and merged time-ordered (ties by node index)
     * on read, so the view is deterministic under sharding.
     */
    const std::vector<sim::Tick> &reconnectTicks() const;

    static constexpr std::size_t kMaxRecordedReconnects = 64;

  private:
    /**
     * Stats written by one node's threads only, so shard workers
     * never contend (or race) on non-commutative state.
     */
    struct NodeLocal
    {
        sim::stats::Accumulator latency;
        std::vector<sim::Tick> reconnectTicks;
    };

    sim::Coro<void> clientThread(core::Node &node, core::AppMemory &mem,
                                 NodeLocal &local, std::uint64_t seed);

    std::vector<core::Node *> nodes_;
    Workload &workload_;
    Options opts_;
    /** One working-set tracker per node (shared by its threads). */
    std::vector<std::unique_ptr<core::AppMemory>> mems_;
    std::vector<std::unique_ptr<NodeLocal>> locals_;
    sim::stats::Counter issued_;
    sim::stats::Counter completed_;
    sim::stats::Counter failures_;
    sim::stats::Counter rejected_;
    sim::stats::Counter reconnects_;
    mutable sim::stats::Accumulator mergedLatency_;
    mutable std::vector<sim::Tick> mergedReconnects_;
    sim::stats::Flag stopping_;
    sim::stats::Level active_;
};

} // namespace ioat::dc

#endif // IOAT_DATACENTER_CLIENT_HH
