/**
 * @file
 * Byte-capacity LRU object cache (the proxy tier's content cache).
 */

#ifndef IOAT_DATACENTER_LRU_CACHE_HH
#define IOAT_DATACENTER_LRU_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "simcore/assert.hh"

namespace ioat::dc {

/**
 * Maps file id → object size, evicting least-recently-used entries
 * once the byte capacity is exceeded.
 */
class LruCache
{
  public:
    explicit LruCache(std::size_t capacity_bytes)
        : capacity_(capacity_bytes)
    {}

    /** Look up (and touch) an object. @return its size, or 0 if absent. */
    std::size_t
    get(std::uint64_t id)
    {
        auto it = index_.find(id);
        if (it == index_.end())
            return 0;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->bytes;
    }

    bool contains(std::uint64_t id) const { return index_.count(id) > 0; }

    /** Drop every entry (a crash leaves the cache cold). */
    void
    clear()
    {
        lru_.clear();
        index_.clear();
        used_ = 0;
    }

    /** Insert or refresh an object, evicting as needed. */
    void
    put(std::uint64_t id, std::size_t bytes)
    {
        if (bytes > capacity_)
            return; // object larger than the whole cache
        auto it = index_.find(id);
        if (it != index_.end()) {
            used_ -= it->second->bytes;
            lru_.erase(it->second);
            index_.erase(it);
        }
        while (used_ + bytes > capacity_ && !lru_.empty()) {
            const Entry &victim = lru_.back();
            used_ -= victim.bytes;
            index_.erase(victim.id);
            lru_.pop_back();
        }
        lru_.push_front(Entry{id, bytes});
        index_[id] = lru_.begin();
        used_ += bytes;
    }

    std::size_t usedBytes() const { return used_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t objectCount() const { return lru_.size(); }

  private:
    struct Entry
    {
        std::uint64_t id;
        std::size_t bytes;
    };

    std::size_t capacity_;
    std::size_t used_ = 0;
    std::list<Entry> lru_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

} // namespace ioat::dc

#endif // IOAT_DATACENTER_LRU_CACHE_HH
