/**
 * @file
 * Client fleet implementation.
 */

#include "datacenter/client.hh"

#include <algorithm>

#include "datacenter/web_server.hh"
#include "simcore/timeout.hh"
#include "sock/socket.hh"

namespace ioat::dc {

using sim::Coro;

ClientFleet::ClientFleet(std::vector<core::Node *> nodes,
                         Workload &workload, const Options &opts)
    : nodes_(std::move(nodes)), workload_(workload), opts_(opts)
{
    sim::simAssert(!nodes_.empty(), "client fleet needs nodes");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        // Threads are dealt round-robin, so node i hosts the threads
        // with t % nodes == i.
        const unsigned threads_here =
            opts_.threads / static_cast<unsigned>(nodes_.size()) +
            (i < opts_.threads % nodes_.size() ? 1 : 0);
        mems_.push_back(std::make_unique<core::AppMemory>(
            nodes_[i]->host(), "dc.client"));
        mems_.back()->reserve(opts_.residentBytes +
                              threads_here *
                                  opts_.residentBytesPerThread);
        locals_.push_back(std::make_unique<NodeLocal>());
    }
}

ClientFleet::~ClientFleet() = default;

void
ClientFleet::start()
{
    for (unsigned t = 0; t < opts_.threads; ++t) {
        const std::size_t n = t % nodes_.size();
        active_.inc();
        // Node-affine spawn: the thread's whole activity stream runs
        // on its node's lane (and shard).
        nodes_[n]->spawn(clientThread(*nodes_[n], *mems_[n],
                                      *locals_[n], opts_.rngSeed + t));
    }
}

const std::vector<sim::Tick> &
ClientFleet::reconnectTicks() const
{
    mergedReconnects_.clear();
    // Node-order concatenation, then a stable sort by tick: the
    // result is time-ordered with ties broken by node index —
    // deterministic however the nodes were sharded.
    for (const auto &loc : locals_)
        mergedReconnects_.insert(mergedReconnects_.end(),
                                 loc->reconnectTicks.begin(),
                                 loc->reconnectTicks.end());
    std::stable_sort(mergedReconnects_.begin(), mergedReconnects_.end());
    if (mergedReconnects_.size() > kMaxRecordedReconnects)
        mergedReconnects_.resize(kMaxRecordedReconnects);
    return mergedReconnects_;
}

Coro<void>
ClientFleet::clientThread(core::Node &node, core::AppMemory &mem,
                          NodeLocal &local, std::uint64_t seed)
{
    sim::Rng rng(seed);
    sim::RequestTracer *rt = node.simulation().requestTracer();
    sim::CappedBackoff backoff(opts_.reconnectDelay,
                               opts_.reconnectBackoffCap);
    sock::Socket conn = co_await node.transport().connect(
        opts_.target, opts_.port, opts_.requestTimeout);

    for (;;) {
        if (stopping_)
            break;
        if (!conn.valid() || !conn.usable()) {
            // Dead connection (abort / server restart): back off and
            // reopen, then resume the closed loop.  With a backoff
            // cap, consecutive failures wait exponentially longer.
            reconnects_.inc();
            if (local.reconnectTicks.size() < kMaxRecordedReconnects)
                local.reconnectTicks.push_back(
                    node.simulation().now());
            const sim::Tick pause =
                opts_.reconnectBackoffCap > sim::Tick{0}
                    ? backoff.next()
                    : opts_.reconnectDelay;
            co_await node.simulation().delay(pause);
            if (stopping_)
                break;
            conn = co_await node.transport().connect(
                opts_.target, opts_.port, opts_.requestTimeout);
            if (conn.valid() && conn.usable())
                backoff.reset();
            continue;
        }

        const Request req = workload_.next(rng);
        const sim::Tick t0 = node.simulation().now();

        // Mint one causal trace per request; every path below — even
        // the failure continues — must reach endRequest.
        sim::TraceContext tc{};
        if (rt)
            tc = rt->beginRequest("dc.get",
                                  static_cast<int>(node.id()));

        co_await node.cpu().compute(opts_.perRequestCost);
        if (rt && tc.valid())
            rt->record(tc, "client.request", sim::CostCat::cpu, t0,
                       node.simulation().now());

        sock::Message get;
        get.tag = opts_.requestTag;
        get.a = req.fileId;
        get.b = req.bytes;
        get.trace = tc;
        issued_.inc(); // every issued request must terminate below
        co_await conn.sendMessage(get);

        auto resp = co_await conn.recvMessageTimed(
            opts_.requestTimeout, nullptr, tc);
        if (!resp.has_value()) {
            failures_.inc(); // timeout or server closed mid-request
            if (rt)
                rt->endRequest(tc);
            continue;
        }
        if (resp->tag ==
            static_cast<std::uint64_t>(HttpTag::ServiceUnavailable)) {
            rejected_.inc(); // shed under overload / degradation
            if (rt)
                rt->endRequest(tc);
            continue;
        }
        // Timed like the header read: a server that crashes mid-body
        // must not park this thread forever (crash sends no RST).
        const std::size_t got = co_await conn.recvAllTimed(
            resp->payloadBytes, opts_.requestTimeout, tc);
        if (got != resp->payloadBytes) {
            failures_.inc(); // truncated body
            if (rt)
                rt->endRequest(tc);
            continue;
        }

        if (opts_.touchPayload)
            co_await mem.touch(got, tc);

        if (rt)
            rt->endRequest(tc);
        completed_.inc();
        local.latency.sample(
            sim::toMicroseconds(node.simulation().now() - t0));
    }
    active_.dec();
}

} // namespace ioat::dc
