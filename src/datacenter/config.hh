/**
 * @file
 * Data-center application configuration and cost model.
 *
 * Apache-2.0-era per-request CPU costs (parsing, logging, cache and
 * VFS lookups) on the paper's 3.46 GHz Xeons.  The network-path costs
 * live in tcp::TcpConfig; these are the application-level additions.
 */

#ifndef IOAT_DATACENTER_CONFIG_HH
#define IOAT_DATACENTER_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "simcore/types.hh"

namespace ioat::dc {

using sim::Tick;

struct DcConfig
{
    /** HTTP request line + header parsing, access logging. */
    Tick requestParseCost = sim::microseconds(90);
    /** Building the response headers. */
    Tick responseBuildCost = sim::microseconds(45);
    /** Proxy cache lookup / insertion bookkeeping. */
    Tick proxyCacheOpCost = sim::microseconds(15);
    /** VFS + page-cache lookup at the web server. */
    Tick serverFileLookupCost = sim::microseconds(20);
    /** Per-request scheduling/process overhead (Apache worker). */
    Tick workerOverheadCost = sim::microseconds(60);
    /**
     * Whether the receiving application streams the payload once
     * after recv (checksum / templating / forwarding buffers).  This
     * is what couples application speed to cache pollution.
     */
    bool touchPayload = true;

    /**
     * Whether the proxy tier caches responses.  Apache's proxy module
     * alone (the paper's first tier) only forwards; enabling caching
     * models mod_proxy + mod_cache.
     */
    bool proxyCachingEnabled = true;
    /** Proxy object-cache capacity in bytes. */
    std::size_t proxyCacheBytes = 64 * 1024 * 1024;
    /**
     * Resident memory of the server application itself (worker pool,
     * heap, logging buffers).  Apache-era prefork servers carry tens
     * of MB that keep competing with the network stack for L2.
     */
    std::size_t appResidentBytes = 12 * 1024 * 1024;

    std::uint16_t proxyPort = 8080;
    std::uint16_t serverPort = 8081;

    /** @name Fault tolerance (defaults off: seed behaviour)
     * With a nonzero `requestDeadline` the proxy puts a deadline on
     * every backend exchange, retries on an alternate backend, and —
     * when every backend attempt fails — degrades gracefully by
     * serving a stale cached copy or shedding the request with a 503.
     *  @{ */
    /** Proxy-side deadline per backend exchange (0 = wait forever). */
    Tick requestDeadline{};
    /** Backend attempts per request (rotating over backends). */
    unsigned backendRetries = 2;
    /** Serve a stale cached object when all backends fail. */
    bool serveStaleOnError = true;
    /** Web-server concurrent-request cap; excess is shed with a 503
     *  (0 = unbounded, the seed behaviour). */
    unsigned maxInflight = 0;
    /** @} */

    /** @name Heartbeat/lease failure detection (defaults off)
     * With a nonzero `heartbeatInterval` the proxy runs one monitor
     * per backend: every interval it sends a Ping on a dedicated
     * connection and renews that backend's lease on the Pong.  A
     * backend whose lease has lapsed is skipped by the request path
     * outright — failover becomes detection-driven instead of paying
     * a `requestDeadline` per request — until a later Pong revives it.
     *  @{ */
    /** Ping period per backend (0 = detector off, seed behaviour). */
    Tick heartbeatInterval{};
    /** How long one Pong keeps a backend considered alive
     *  (0 = 3 × heartbeatInterval). */
    Tick leaseDuration{};
    /** Deadline on each Ping exchange (0 = heartbeatInterval). */
    Tick heartbeatTimeout{};
    /** @} */

    /** Effective lease duration (applies the default rule). */
    Tick
    effectiveLease() const
    {
        return leaseDuration > Tick{0} ? leaseDuration
                                       : heartbeatInterval * 3;
    }

    /** Effective per-ping deadline (applies the default rule). */
    Tick
    effectiveHeartbeatTimeout() const
    {
        return heartbeatTimeout > Tick{0} ? heartbeatTimeout
                                          : heartbeatInterval;
    }
};

} // namespace ioat::dc

#endif // IOAT_DATACENTER_CONFIG_HH
