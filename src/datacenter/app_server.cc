/**
 * @file
 * Application-server and database tiers implementation.
 */

#include "datacenter/app_server.hh"

#include "datacenter/web_server.hh"
#include "sock/socket.hh"

namespace ioat::dc {

using sim::Coro;

// --------------------------------------------------------------------
// Database
// --------------------------------------------------------------------

Database::Database(core::Node &node, const DynConfig &cfg)
    : node_(node), cfg_(cfg), mem_(node.host(), "dc.database")
{
    // Buffer pool: large and hot-contended, like any real DB.
    mem_.reserve(cfg_.dbResidentBytes);
}

void
Database::start()
{
    node_.simulation().spawn(acceptLoop());
}

Coro<void>
Database::acceptLoop()
{
    sock::Listener listener(node_.transport(), cfg_.dbPort);
    for (;;) {
        sock::Socket conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<void>
Database::serveConnection(sock::Socket conn)
{
    for (;;) {
        auto msg = co_await conn.recvMessage();
        if (!msg.has_value())
            co_return;
        sim::simAssert(msg->tag == static_cast<std::uint64_t>(DynTag::Query),
                       "database expects Query");

        // Parse + index walk + row fetch from the buffer pool.
        co_await node_.cpu().compute(cfg_.dbQueryCost);
        co_await mem_.touch(cfg_.rowBytes);
        queries_.inc();

        sock::Message result;
        result.tag = static_cast<std::uint64_t>(DynTag::QueryResult);
        result.a = msg->a;
        result.payloadBytes = cfg_.rowBytes;
        co_await conn.sendMessage(result);
    }
}

// --------------------------------------------------------------------
// AppServer
// --------------------------------------------------------------------

AppServer::AppServer(core::Node &node, const DcConfig &http_cfg,
                     const DynConfig &cfg, net::NodeId db,
                     unsigned db_conns)
    : node_(node), httpCfg_(http_cfg), cfg_(cfg), db_(db),
      dbConns_(db_conns), mem_(node.host(), "dc.appserver"),
      idleDb_(node.simulation())
{
    mem_.reserve(httpCfg_.appResidentBytes);
}

void
AppServer::start()
{
    node_.simulation().spawn(openDbPool());
    node_.simulation().spawn(acceptLoop());
}

Coro<void>
AppServer::openDbPool()
{
    for (unsigned i = 0; i < dbConns_; ++i) {
        sock::Socket conn =
            co_await node_.transport().connect(db_, cfg_.dbPort);
        idleDb_.push(conn);
    }
}

Coro<void>
AppServer::acceptLoop()
{
    sock::Listener listener(node_.transport(), cfg_.appPort);
    for (;;) {
        sock::Socket conn = co_await listener.accept();
        node_.simulation().spawn(serveConnection(conn));
    }
}

Coro<void>
AppServer::serveConnection(sock::Socket conn)
{
    for (;;) {
        auto msg = co_await conn.recvMessage();
        if (!msg.has_value())
            co_return;
        sim::simAssert(
            msg->tag == static_cast<std::uint64_t>(DynTag::DynamicGet),
            "app server expects DynamicGet");

        co_await node_.cpu().compute(httpCfg_.requestParseCost +
                                     httpCfg_.workerOverheadCost);

        // Run the script: interpretation plus DB round trips.  A
        // database failure mid-script (connection died / crashed DB)
        // degrades the request to a 503 instead of asserting.
        co_await node_.cpu().compute(cfg_.scriptCost);
        bool dbDown = false;
        for (unsigned q = 0; q < cfg_.queriesPerRequest; ++q) {
            auto db = co_await idleDb_.recv();
            sim::simAssert(db.has_value(), "db pool closed");
            sock::Socket orig = *db;
            sock::Socket dbc = orig;
            if (!dbc.usable()) {
                // Replace the dead pooled connection in place (the
                // database listener survives its process restarts).
                deadDbConns_.inc();
                dbc = co_await node_.transport().connect(
                    db_, cfg_.dbPort, httpCfg_.requestDeadline);
                if (!dbc.valid() || !dbc.usable()) {
                    // Keep the pool population constant even on
                    // failure: return the dead original, which the
                    // next user replaces again.
                    if (dbc.valid())
                        orig = dbc;
                    idleDb_.push(orig);
                    dbDown = true;
                    break;
                }
            }

            sock::Message query;
            query.tag = static_cast<std::uint64_t>(DynTag::Query);
            query.a = msg->a * 131 + q;
            co_await dbc.sendMessage(query);
            auto result = co_await dbc.recvMessageAndPayload();
            idleDb_.push(dbc);
            if (!result.has_value()) {
                dbDown = true;
                break;
            }
        }
        if (dbDown) {
            dbFailed_.inc();
            sock::Message busy;
            busy.tag =
                static_cast<std::uint64_t>(HttpTag::ServiceUnavailable);
            busy.a = msg->a;
            co_await conn.sendMessage(busy);
            continue;
        }

        // Template the page: stream over the assembled response.
        co_await mem_.touch(cfg_.responseBytes);
        co_await node_.cpu().compute(httpCfg_.responseBuildCost);

        // Dynamic content cannot use sendfile: it is generated in
        // user memory, so the normal copying send path applies.
        sock::Message resp;
        resp.tag = static_cast<std::uint64_t>(DynTag::QueryResult);
        resp.a = msg->a;
        resp.payloadBytes = cfg_.responseBytes;
        co_await conn.sendMessage(resp,
                                  sock::SendOptions{.zeroCopy = false});
        served_.inc();
    }
}

} // namespace ioat::dc
