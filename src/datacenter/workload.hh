/**
 * @file
 * Data-center workload generators (paper §5.1).
 *
 * Single-file micro workloads: every request hits one file of a fixed
 * size (traces 1–5 use 2 K–10 K).  Zipf workloads: requests over a
 * large file population with popularity ∝ 1/i^α (Breslau et al.),
 * α from 0.95 (high temporal locality) down to 0.5.
 */

#ifndef IOAT_DATACENTER_WORKLOAD_HH
#define IOAT_DATACENTER_WORKLOAD_HH

#include <cstdint>
#include <memory>

#include "simcore/random.hh"

namespace ioat::dc {

/** One HTTP request: which file, how big the response will be. */
struct Request
{
    std::uint64_t fileId;
    std::size_t bytes;
};

/** Generator interface: draw the next request. */
class Workload
{
  public:
    virtual ~Workload() = default;
    virtual Request next(sim::Rng &rng) = 0;
    /** Total distinct files (for sizing server state). */
    virtual std::uint64_t fileCount() const = 0;
    /** Size of a given file. */
    virtual std::size_t fileSize(std::uint64_t id) const = 0;

    /** Total corpus size (for server working-set accounting). */
    std::uint64_t
    totalBytes() const
    {
        return fileCount() * fileSize(0);
    }
};

/**
 * Single-file micro workload: a pool of same-sized files requested
 * uniformly (the paper's "1,000 request subset of different files"
 * per client, all of the trace's average size).
 */
class SingleFileWorkload final : public Workload
{
  public:
    SingleFileWorkload(std::size_t file_bytes, std::uint64_t files = 1000)
        : bytes_(file_bytes), files_(files)
    {}

    Request
    next(sim::Rng &rng) override
    {
        return {rng.uniformInt(0, files_ - 1), bytes_};
    }

    std::uint64_t fileCount() const override { return files_; }
    std::size_t fileSize(std::uint64_t) const override { return bytes_; }

  private:
    std::size_t bytes_;
    std::uint64_t files_;
};

/**
 * Zipf-like workload over a large static file population.
 */
class ZipfWorkload final : public Workload
{
  public:
    ZipfWorkload(double alpha, std::uint64_t files = 20000,
                 std::size_t file_bytes = 8192)
        : zipf_(files, alpha), bytes_(file_bytes)
    {}

    Request
    next(sim::Rng &rng) override
    {
        return {zipf_.sample(rng), bytes_};
    }

    std::uint64_t fileCount() const override { return zipf_.size(); }
    std::size_t fileSize(std::uint64_t) const override { return bytes_; }

  private:
    sim::ZipfDistribution zipf_;
    std::size_t bytes_;
};

} // namespace ioat::dc

#endif // IOAT_DATACENTER_WORKLOAD_HH
