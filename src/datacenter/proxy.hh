/**
 * @file
 * Proxy/edge tier (Apache proxy module in the paper's testbed):
 * terminates client connections, serves cached objects, forwards
 * misses to the web-server tier over a persistent connection pool.
 *
 * The proxy is the component whose *receive path* (responses coming
 * back from the web server, requests coming from clients) benefits
 * from I/OAT — this is the paper's §5 deployment argument.
 */

#ifndef IOAT_DATACENTER_PROXY_HH
#define IOAT_DATACENTER_PROXY_HH

#include <cstdint>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "datacenter/config.hh"
#include "datacenter/lru_cache.hh"
#include "simcore/channel.hh"
#include "simcore/stats.hh"

namespace ioat::dc {

/**
 * One proxy instance on a node.
 */
class Proxy
{
  public:
    /**
     * @param backend node id of the web-server tier
     * @param backend_conns persistent connections to keep open
     */
    Proxy(core::Node &node, const DcConfig &cfg, net::NodeId backend,
          unsigned backend_conns = 16);

    /** Open the backend pool and begin accepting on cfg.proxyPort. */
    void start();

    std::uint64_t requestsServed() const { return served_.value(); }
    std::uint64_t cacheHits() const { return hits_.value(); }
    std::uint64_t cacheMisses() const { return misses_.value(); }

    double
    hitRate() const
    {
        const auto total = hits_.value() + misses_.value();
        return total ? static_cast<double>(hits_.value()) /
                           static_cast<double>(total)
                     : 0.0;
    }

  private:
    sim::Coro<void> openBackendPool();
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(tcp::Connection *client);

    core::Node &node_;
    DcConfig cfg_;
    net::NodeId backend_;
    unsigned backendConns_;
    LruCache cache_;
    core::AppMemory mem_;
    /** Idle persistent backend connections. */
    sim::Channel<tcp::Connection *> idleBackends_;
    sim::stats::Counter served_;
    sim::stats::Counter hits_;
    sim::stats::Counter misses_;
};

} // namespace ioat::dc

#endif // IOAT_DATACENTER_PROXY_HH
