/**
 * @file
 * Proxy/edge tier (Apache proxy module in the paper's testbed):
 * terminates client connections, serves cached objects, forwards
 * misses to the web-server tier over a persistent connection pool.
 *
 * The proxy is the component whose *receive path* (responses coming
 * back from the web server, requests coming from clients) benefits
 * from I/OAT — this is the paper's §5 deployment argument.
 */

#ifndef IOAT_DATACENTER_PROXY_HH
#define IOAT_DATACENTER_PROXY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "datacenter/config.hh"
#include "datacenter/lru_cache.hh"
#include "simcore/channel.hh"
#include "simcore/lifecycle.hh"
#include "simcore/stats.hh"
#include "sock/socket.hh"

namespace ioat::dc {

/**
 * One proxy instance on a node.  Registers with the simulation's
 * telemetry hub as "proxy" (backlog gauge, cache and failover
 * counters).
 */
class Proxy : public sim::telemetry::Instrumented,
              public sim::Restartable
{
  public:
    /**
     * @param backends node ids of the web-server tier; request
     *        retries rotate over them (failover)
     * @param backend_conns persistent connections per backend
     */
    Proxy(core::Node &node, const DcConfig &cfg,
          std::vector<net::NodeId> backends,
          unsigned backend_conns = 16);

    /** Single-backend convenience (the seed topology). */
    Proxy(core::Node &node, const DcConfig &cfg, net::NodeId backend,
          unsigned backend_conns = 16);

    ~Proxy() override;

    Proxy(const Proxy &) = delete;
    Proxy &operator=(const Proxy &) = delete;

    /** Open the backend pools and begin accepting on cfg.proxyPort.
     *  With `cfg.heartbeatInterval > 0`, also starts one heartbeat
     *  monitor per backend (the lease-based failure detector). */
    void start();

    /**
     * Wind the heartbeat monitors down (chaos drivers call this after
     * the load horizon so the simulation can quiesce; each monitor
     * exits at its next wake-up, so the residual work is bounded by
     * one heartbeat interval).
     */
    void stop() { stopping_ = true; }

    /** @name Crash–restart hooks (sim::Restartable)
     *  @{ */
    /** The proxy process died: the object cache and every backend
     *  lease are volatile and do not survive. */
    void onCrash(sim::Tick now) override;
    /** Cold restart: memory back to the bare resident set; leases
     *  re-establish through the (still running) monitors. */
    void onRestart(sim::Tick now) override;
    /** @} */

    /**
     * Failure-detector verdict for backend @p idx: true while its
     * lease is live (always true when the detector is off).
     */
    bool
    backendAlive(unsigned idx) const
    {
        return cfg_.heartbeatInterval == sim::Tick{0} ||
               node_.simulation().now() < leaseUntil_[idx];
    }

    /** Client requests currently being served (the proxy backlog). */
    std::uint64_t inflightRequests() const { return inflight_; }

    /** Publish proxy telemetry (registered with the Hub as "proxy"). */
    void instrument(sim::telemetry::Registry &reg) override;

    std::uint64_t requestsServed() const { return served_.value(); }
    std::uint64_t cacheHits() const { return hits_.value(); }
    std::uint64_t cacheMisses() const { return misses_.value(); }
    /** Backend exchanges retried (deadline / dead conn / 503). */
    std::uint64_t backendRetries() const { return retries_.value(); }
    /** Requests served from a stale cached copy after backend
     *  failure (graceful degradation). */
    std::uint64_t degradedHits() const { return degraded_.value(); }
    /** Requests shed with a 503 (no backend, nothing cached). */
    std::uint64_t requestsShed() const { return shed_.value(); }
    /** Pooled backend connections found dead and replaced. */
    std::uint64_t deadBackendConns() const { return deadConns_.value(); }
    /** Ping exchanges completed (lease renewals). */
    std::uint64_t heartbeatsAcked() const { return hbAcks_.value(); }
    /** Alive → expired lease transitions observed by the detector. */
    std::uint64_t leaseExpiries() const { return leaseExpiries_.value(); }
    /** Requests routed past a leased-dead backend without waiting for
     *  a per-request deadline (detection-driven failover). */
    std::uint64_t failovers() const { return failovers_.value(); }

    double
    hitRate() const
    {
        const auto total = hits_.value() + misses_.value();
        return total ? static_cast<double>(hits_.value()) /
                           static_cast<double>(total)
                     : 0.0;
    }

  private:
    sim::Coro<void> openBackendPool();
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(sock::Socket client);
    /** One backend exchange against pool @p pool_idx; nullopt on
     *  deadline expiry, dead connection, or backend 503. */
    sim::Coro<std::optional<std::size_t>>
    fetchOnce(unsigned pool_idx, const sock::Message &request,
              sim::TraceContext ctx);
    /** Lease-renewal monitor for backend @p idx (failure detector). */
    sim::Coro<void> heartbeatLoop(unsigned idx);

    core::Node &node_;
    DcConfig cfg_;
    std::vector<net::NodeId> backends_;
    unsigned backendConns_;
    LruCache cache_;
    core::AppMemory mem_;
    /** Idle persistent connections, one pool per backend. */
    std::vector<std::unique_ptr<sim::Channel<sock::Socket>>> pools_;
    /** Lease expiry instant per backend (heartbeat detector). */
    std::vector<sim::Tick> leaseUntil_;
    bool stopping_ = false; ///< heartbeat monitors wind down
    sim::stats::Counter served_;
    sim::stats::Counter hits_;
    sim::stats::Counter misses_;
    sim::stats::Counter retries_;
    sim::stats::Counter degraded_;
    sim::stats::Counter shed_;
    sim::stats::Counter deadConns_;
    sim::stats::Counter hbAcks_;
    sim::stats::Counter leaseExpiries_;
    sim::stats::Counter failovers_;
    std::uint64_t inflight_ = 0; ///< requests between parse and reply
};

} // namespace ioat::dc

#endif // IOAT_DATACENTER_PROXY_HH
