/**
 * @file
 * Trace-driven and mixed-size workloads.
 *
 * The paper's evaluation uses synthetic single-file and Zipf traces;
 * real deployments replay recorded traces and serve wildly mixed
 * object sizes.  This header adds both:
 *
 *  - MixedSizeZipfWorkload: Zipf popularity over a population whose
 *    per-file sizes follow a SPECweb-like class mix (many small
 *    pages, some images, few downloads), deterministic per file id;
 *  - RecordedWorkload: replays "fileId bytes" lines from a trace
 *    stream, wrapping around at the end;
 *  - recordTrace(): samples any workload into that format, so
 *    experiments can be frozen and replayed bit-identically.
 */

#ifndef IOAT_DATACENTER_TRACE_WORKLOAD_HH
#define IOAT_DATACENTER_TRACE_WORKLOAD_HH

#include <istream>
#include <ostream>
#include <vector>

#include "datacenter/workload.hh"
#include "simcore/assert.hh"

namespace ioat::dc {

/**
 * Zipf popularity with a mixed object-size distribution.
 */
class MixedSizeZipfWorkload final : public Workload
{
  public:
    /** One object-size class. */
    struct SizeClass
    {
        double weight;     ///< fraction of the population
        std::size_t minBytes;
        std::size_t maxBytes;
    };

    /** SPECweb99-flavoured default mix. */
    static std::vector<SizeClass>
    defaultClasses()
    {
        return {
            {0.35, 1 * 1024, 10 * 1024},    // pages
            {0.50, 10 * 1024, 100 * 1024},  // images
            {0.14, 100 * 1024, 1024 * 1024}, // media
            {0.01, 1024 * 1024, 8 * 1024 * 1024}, // downloads
        };
    }

    MixedSizeZipfWorkload(double alpha, std::uint64_t files,
                          std::vector<SizeClass> classes =
                              defaultClasses(),
                          std::uint64_t size_seed = 12345)
        : zipf_(files, alpha), sizes_(files)
    {
        sim::simAssert(!classes.empty(), "need at least one size class");
        double total = 0.0;
        for (const auto &c : classes)
            total += c.weight;
        sim::simAssert(total > 0.0, "class weights must be positive");

        // Sizes are fixed per file id so every run (and both sides of
        // an I/OAT comparison) sees identical content.
        sim::Rng rng(size_seed);
        for (auto &sz : sizes_) {
            double u = rng.uniform() * total;
            const SizeClass *pick = &classes.back();
            for (const auto &c : classes) {
                if (u < c.weight) {
                    pick = &c;
                    break;
                }
                u -= c.weight;
            }
            sz = pick->minBytes +
                 rng.uniformInt(0, pick->maxBytes - pick->minBytes);
        }
    }

    Request
    next(sim::Rng &rng) override
    {
        const std::uint64_t id = zipf_.sample(rng);
        return {id, sizes_[id]};
    }

    std::uint64_t fileCount() const override { return sizes_.size(); }

    std::size_t
    fileSize(std::uint64_t id) const override
    {
        sim::simAssert(id < sizes_.size(), "file id out of range");
        return sizes_[id];
    }

    /** Population bytes (overrides the uniform-size base helper). */
    std::uint64_t
    corpusBytes() const
    {
        std::uint64_t sum = 0;
        for (auto sz : sizes_)
            sum += sz;
        return sum;
    }

  private:
    sim::ZipfDistribution zipf_;
    std::vector<std::size_t> sizes_;
};

/**
 * Replays a recorded request trace ("fileId bytes" per line).
 */
class RecordedWorkload final : public Workload
{
  public:
    explicit RecordedWorkload(std::istream &in)
    {
        std::uint64_t id = 0;
        std::size_t bytes = 0;
        while (in >> id >> bytes) {
            requests_.push_back(Request{id, bytes});
            maxId_ = std::max(maxId_, id);
            if (id >= sizes_.size())
                sizes_.resize(id + 1, 0);
            sizes_[id] = bytes;
        }
        sim::simAssert(!requests_.empty(), "empty request trace");
    }

    /** Requests replay in recorded order, wrapping at the end. */
    Request
    next(sim::Rng &) override
    {
        const Request r = requests_[cursor_];
        cursor_ = (cursor_ + 1) % requests_.size();
        return r;
    }

    std::uint64_t fileCount() const override { return maxId_ + 1; }

    std::size_t
    fileSize(std::uint64_t id) const override
    {
        sim::simAssert(id < sizes_.size(), "file id out of range");
        return sizes_[id];
    }

    std::size_t requestCount() const { return requests_.size(); }

  private:
    std::vector<Request> requests_;
    std::vector<std::size_t> sizes_;
    std::uint64_t maxId_ = 0;
    std::size_t cursor_ = 0;
};

/** Sample @p n requests from a workload into the trace format. */
inline void
recordTrace(Workload &workload, std::size_t n, std::uint64_t seed,
            std::ostream &out)
{
    sim::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        const Request r = workload.next(rng);
        out << r.fileId << ' ' << r.bytes << '\n';
    }
}

} // namespace ioat::dc

#endif // IOAT_DATACENTER_TRACE_WORKLOAD_HH
