/**
 * @file
 * Application-server and database tiers for dynamic content.
 *
 * The paper's data-center picture (Fig. 2a) is three tiers —
 * proxy/edge, application servers and a database — and its workload
 * taxonomy (§5.1) includes "dynamic content workloads ... via CGI,
 * PHP, and Java servlets with a back-end database", which the paper
 * then leaves unevaluated.  These classes complete the picture: an
 * application server that runs a script per request and queries the
 * database tier, and a database server answering keyed queries.
 *
 * The paper's own argument for where I/OAT helps ("the application
 * server is known to be cpu-intensive due to processing of scripts
 * ... If the application servers have I/OAT capability, due to
 * reduced CPU utilization the server can accept more requests",
 * §5.1) is exactly what bench/extension_dynamic_content measures.
 */

#ifndef IOAT_DATACENTER_APP_SERVER_HH
#define IOAT_DATACENTER_APP_SERVER_HH

#include <cstdint>

#include "core/app_memory.hh"
#include "core/node.hh"
#include "datacenter/config.hh"
#include "datacenter/workload.hh"
#include "simcore/lifecycle.hh"
#include "simcore/stats.hh"

namespace ioat::dc {

/** Extra message tags for the dynamic tiers. */
enum class DynTag : std::uint64_t {
    DynamicGet = 11, ///< a = script id, b = result-size hint
    Query = 12,      ///< a = key
    QueryResult = 13,
};

/** Cost model for the dynamic tiers. */
struct DynConfig
{
    /** Script interpretation (PHP/CGI) per request. */
    sim::Tick scriptCost = sim::microseconds(250);
    /** Database queries issued per dynamic request. */
    unsigned queriesPerRequest = 2;
    /** Database row bytes returned per query. */
    std::size_t rowBytes = 1024;
    /** Query parsing + index lookup at the database. */
    sim::Tick dbQueryCost = sim::microseconds(120);
    /** Dynamic response size (templated page). */
    std::size_t responseBytes = 16 * 1024;
    /** Database resident working set (buffer pool). */
    std::size_t dbResidentBytes = 48 * 1024 * 1024;

    std::uint16_t appPort = 8082;
    std::uint16_t dbPort = 8083;
};

/**
 * Database tier: answers keyed queries from its buffer pool.
 */
class Database : public sim::Restartable
{
  public:
    Database(core::Node &node, const DynConfig &cfg);

    void start();

    /** @name Crash–restart hooks (sim::Restartable)
     *  A crash empties the buffer pool; the restart re-admits it and
     *  it re-warms against the memory hierarchy like any cold start.
     *  @{ */
    void onCrash(sim::Tick) override { mem_.setReserved(0); }
    void
    onRestart(sim::Tick) override
    {
        mem_.setReserved(cfg_.dbResidentBytes);
    }
    /** @} */

    std::uint64_t queriesServed() const { return queries_.value(); }

  private:
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(sock::Socket conn);

    core::Node &node_;
    DynConfig cfg_;
    core::AppMemory mem_;
    sim::stats::Counter queries_;
};

/**
 * Application-server tier: runs a script per request, queries the
 * database, assembles a dynamic response.
 */
class AppServer : public sim::Restartable
{
  public:
    /**
     * @param db node id of the database tier
     * @param db_conns persistent connections to the database
     */
    AppServer(core::Node &node, const DcConfig &http_cfg,
              const DynConfig &cfg, net::NodeId db,
              unsigned db_conns = 8);

    /** Connect the DB pool and begin accepting on cfg.appPort. */
    void start();

    /** @name Crash–restart hooks (sim::Restartable)
     *  @{ */
    void onCrash(sim::Tick) override { mem_.setReserved(0); }
    void
    onRestart(sim::Tick) override
    {
        mem_.setReserved(httpCfg_.appResidentBytes);
    }
    /** @} */

    std::uint64_t requestsServed() const { return served_.value(); }
    /** Requests answered 503 after a database failure. */
    std::uint64_t dbFailures() const { return dbFailed_.value(); }
    /** Pooled database connections found dead and replaced. */
    std::uint64_t deadDbConns() const { return deadDbConns_.value(); }

  private:
    sim::Coro<void> openDbPool();
    sim::Coro<void> acceptLoop();
    sim::Coro<void> serveConnection(sock::Socket conn);

    core::Node &node_;
    DcConfig httpCfg_;
    DynConfig cfg_;
    net::NodeId db_;
    unsigned dbConns_;
    core::AppMemory mem_;
    sim::Channel<sock::Socket> idleDb_;
    sim::stats::Counter served_;
    sim::stats::Counter dbFailed_;
    sim::stats::Counter deadDbConns_;
};

} // namespace ioat::dc

#endif // IOAT_DATACENTER_APP_SERVER_HH
