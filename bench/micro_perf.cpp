/**
 * @file
 * Engine micro-benchmarks (google-benchmark): raw costs of the
 * simulation substrate itself — event queue, coroutine scheduling,
 * model evaluations.  Not a paper figure; used to keep the simulator
 * fast enough for the full sweeps.
 */

#include <benchmark/benchmark.h>

#include "core/calibration.hh"
#include "dma/dma_engine.hh"
#include "mem/copy_model.hh"
#include "simcore/simcore.hh"

namespace {

using namespace ioat;
using sim::Coro;
using sim::Simulation;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<sim::Tick>(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CoroutineSpawnResume(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        for (int i = 0; i < 100; ++i) {
            sim.spawn([](Simulation &s) -> Coro<void> {
                co_await s.delay(1);
                co_await s.delay(1);
            }(sim));
        }
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CoroutineSpawnResume);

void
BM_SemaphoreHandoff(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        sim::Semaphore sem(sim, 1);
        for (int i = 0; i < 100; ++i) {
            sim.spawn([](Simulation &s, sim::Semaphore &sm) -> Coro<void> {
                co_await sm.acquire();
                co_await s.delay(1);
                sm.release();
            }(sim, sem));
        }
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SemaphoreHandoff);

void
BM_CopyModelEvaluate(benchmark::State &state)
{
    mem::CopyModel cm(core::calibration::serverCopy());
    std::size_t sz = 1024;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cm.copyTime(sz, 0.5, 1.2));
        sz = sz < (1u << 20) ? sz * 2 : 1024;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CopyModelEvaluate);

void
BM_ZipfSample(benchmark::State &state)
{
    sim::ZipfDistribution zipf(20000, 0.9);
    sim::Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_DmaEngineTransferSim(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        dma::DmaEngine eng(sim, core::calibration::ioatDma());
        for (int i = 0; i < 64; ++i)
            eng.transferAsync(65536, nullptr);
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DmaEngineTransferSim);

} // namespace

BENCHMARK_MAIN();
