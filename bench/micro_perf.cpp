/**
 * @file
 * Engine micro-benchmarks (google-benchmark): raw costs of the
 * simulation substrate itself — event queue, coroutine scheduling,
 * model evaluations.  Not a paper figure; used to keep the simulator
 * fast enough for the full sweeps.
 */

#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common.hh"
#include "core/calibration.hh"
#include "core/node.hh"
#include "dma/dma_engine.hh"
#include "mem/copy_model.hh"
#include "net/switch.hh"
#include "simcore/simcore.hh"

namespace {

using namespace ioat;
using core::IoatConfig;
using core::Node;
using core::NodeConfig;
using sim::Coro;
using sim::Simulation;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<sim::Tick>(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CoroutineSpawnResume(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        for (int i = 0; i < 100; ++i) {
            sim.spawn([](Simulation &s) -> Coro<void> {
                co_await s.delay(ioat::sim::Tick{1});
                co_await s.delay(ioat::sim::Tick{1});
            }(sim));
        }
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CoroutineSpawnResume);

void
BM_SemaphoreHandoff(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        sim::Semaphore sem(sim, 1);
        for (int i = 0; i < 100; ++i) {
            sim.spawn([](Simulation &s, sim::Semaphore &sm) -> Coro<void> {
                co_await sm.acquire();
                co_await s.delay(ioat::sim::Tick{1});
                sm.release();
            }(sim, sem));
        }
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SemaphoreHandoff);

void
BM_CopyModelEvaluate(benchmark::State &state)
{
    mem::CopyModel cm(core::calibration::serverCopy());
    std::size_t sz = 1024;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cm.copyTime(ioat::sim::Bytes{sz}, 0.5, 1.2));
        sz = sz < (1u << 20) ? sz * 2 : 1024;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CopyModelEvaluate);

void
BM_ZipfSample(benchmark::State &state)
{
    sim::ZipfDistribution zipf(20000, 0.9);
    sim::Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_FaultInjectorNodeDown(benchmark::State &state)
{
    // nodeDown() sits on the per-packet delivery path; with many
    // outage windows it must stay O(log #windows-per-node), not a
    // scan of the whole schedule.
    const auto windows = static_cast<std::uint64_t>(state.range(0));
    sim::FaultInjector faults(7);
    for (std::uint64_t i = 0; i < windows; ++i)
        faults.addOutage(static_cast<std::uint32_t>(i % 64),
                         ioat::sim::microseconds(10000 * i + 1000),
                         ioat::sim::microseconds(10000 * i + 2000));
    std::uint64_t t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(faults.nodeDown(
            static_cast<std::uint32_t>(t % 64),
            ioat::sim::microseconds((t * 997) % (10000 * windows))));
        ++t;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultInjectorNodeDown)->Arg(16)->Arg(1024)->Arg(16384);

void
BM_DmaEngineTransferSim(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        dma::DmaEngine eng(sim, core::calibration::ioatDma());
        for (int i = 0; i < 64; ++i)
            eng.transferAsync(65536, nullptr);
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DmaEngineTransferSim);

// ---- TCP stream workloads ------------------------------------------
//
// End-to-end hot-path throughput: full nodes (NIC + stack + CPU model)
// streaming 64K chunks.  items/sec in the report is simulator
// *events/sec* — the headline number for comparing event-loop and
// stack changes across trees.  The cluster variant carries the large
// event population (64 concurrent flows plus their RTO bookkeeping)
// where calendar-queue behaviour dominates heap behaviour.

Coro<void>
perfSinkLoop(Node &node, std::uint16_t port, std::size_t chunk)
{
    sock::Listener listener(node.transport(), port);
    for (;;) {
        sock::Socket c = co_await listener.accept();
        node.simulation().spawn(
            [](sock::Socket conn, std::size_t ck) -> Coro<void> {
                for (;;) {
                    const std::size_t got = co_await conn.recvAll(ck);
                    if (got == 0)
                        co_return;
                }
            }(c, chunk));
    }
}

Coro<void>
perfSenderLoop(Node &node, net::NodeId dst, std::uint16_t port,
               std::size_t chunk)
{
    sock::Socket c = co_await node.transport().connect(dst, port);
    for (;;)
        co_await c.sendAll(chunk);
}

std::uint64_t
runStreamWorkload(unsigned senderNodes, unsigned flowsPerNode,
                  sim::Tick duration)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    const NodeConfig cfg = NodeConfig::server(IoatConfig::disabled(), 1);
    Node sink(sim, fabric, cfg);
    std::vector<std::unique_ptr<Node>> senders;
    for (unsigned i = 0; i < senderNodes; ++i)
        senders.push_back(std::make_unique<Node>(sim, fabric, cfg));

    const std::size_t chunk = 64 * 1024;
    for (unsigned p = 0; p < senderNodes * flowsPerNode; ++p)
        sim.spawn(perfSinkLoop(sink, static_cast<std::uint16_t>(5001 + p), chunk));
    for (unsigned i = 0; i < senderNodes; ++i)
        for (unsigned f = 0; f < flowsPerNode; ++f)
            sim.spawn(perfSenderLoop(
                *senders[i], sink.id(),
                static_cast<std::uint16_t>(5001 + i * flowsPerNode + f),
                chunk));
    sim.runFor(duration);
    return sim.queue().executedEvents();
}

void
BM_TcpStream2Node(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state)
        events += runStreamWorkload(1, 1, sim::milliseconds(200));
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TcpStream2Node)->Unit(benchmark::kMillisecond);

void
BM_TcpStreamCluster(benchmark::State &state)
{
    // 16 sender nodes x 4 flows: the scale_cluster regime.
    std::uint64_t events = 0;
    for (auto _ : state)
        events += runStreamWorkload(16, 4, sim::milliseconds(50));
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TcpStreamCluster)->Unit(benchmark::kMillisecond);

// ---- Sharded execution hot paths -----------------------------------
//
// The two costs `--shards` adds over the classic loop: the horizon
// barrier (one window handshake per lookahead interval, events or
// not) and the cross-shard mailbox path (post + merge + keyed inject
// vs a plain local schedule).  Both are per-window / per-event
// overheads the speedup model in DESIGN.md §10 divides by.

void
BM_ShardBarrier(benchmark::State &state)
{
    // Empty windows: pure barrier handshake cost for N workers.
    const auto shards = static_cast<unsigned>(state.range(0));
    sim::ShardGroup group(shards, sim::microseconds(1));
    sim::Tick t{};
    for (auto _ : state) {
        t += sim::microseconds(100); // 100 windows per iteration
        group.runUntil(t);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(group.barriers()));
}
BENCHMARK(BM_ShardBarrier)->Arg(2)->Arg(4)->Arg(8);

void
BM_CrossShardSend(benchmark::State &state)
{
    // Ping-pong between two single-node shards through the switch:
    // every delivery crosses the mailbox, so items/sec is the
    // end-to-end cross-shard event rate (post + barrier merge +
    // keyed injection + delivery).
    sim::ShardGroup group(2, sim::nanoseconds(2000));
    net::Switch fabric(group, sim::nanoseconds(2000));
    const NodeConfig cfg = NodeConfig::server(IoatConfig::disabled(), 1);
    Node a(group.shard(0), fabric, cfg);
    Node b(group.shard(1), fabric, cfg);
    const std::size_t chunk = 64 * 1024;
    a.spawn(perfSinkLoop(a, 5001, chunk));
    b.spawn(perfSenderLoop(b, a.id(), 5001, chunk));
    sim::Tick t{};
    std::uint64_t last = 0;
    std::uint64_t crossed = 0;
    for (auto _ : state) {
        t += sim::microseconds(500);
        group.runUntil(t);
        crossed += group.crossEvents() - last;
        last = group.crossEvents();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(crossed));
}
BENCHMARK(BM_CrossShardSend)->Unit(benchmark::kMillisecond);

/** Instrumented 2-node stream for --report/--trace artifacts. */
void
reportRun(const ioat::bench::Options &opts)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    const NodeConfig cfg = NodeConfig::server(IoatConfig::disabled(), 1);
    Node sink(sim, fabric, cfg);
    Node sender(sim, fabric, cfg);
    ioat::bench::TelemetryRun tr(sim, opts);
    const std::size_t chunk = 64 * 1024;
    sim.spawn(perfSinkLoop(sink, 5001, chunk));
    sim.spawn(perfSenderLoop(sender, sink.id(), 5001, chunk));
    sim.runFor(sim::milliseconds(50));
    opts.noteEvents(sim.executedEvents());
    tr.finish({{"workload", "stream_2node"},
               {"chunkBytes", std::to_string(chunk)}});
}

} // namespace

int
main(int argc, char **argv)
{
    // The telemetry flags are ours; everything else belongs to
    // google-benchmark.  Split argv before handing it over.
    ioat::bench::Options opts("micro_perf");
    std::vector<char *> gbench_argv{argv[0]};
    std::vector<char *> our_argv{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--metrics-engine") {
            our_argv.push_back(argv[i]);
        } else if (arg == "--report" || arg == "--trace" ||
            arg == "--trace-requests" || arg == "--span-report" ||
            arg == "--profile" || arg == "--metrics" ||
            arg == "--metrics-interval" || arg == "--bench-json" ||
            arg == "--sample-interval" || arg == "--seed") {
            our_argv.push_back(argv[i]);
            if (i + 1 < argc)
                our_argv.push_back(argv[++i]);
        } else {
            gbench_argv.push_back(argv[i]);
        }
    }
    int our_argc = static_cast<int>(our_argv.size());
    return ioat::bench::benchMain(
        our_argc, our_argv.data(), opts,
        [&](const ioat::bench::Options &) {
            if (opts.instrumented())
                reportRun(opts);

            int gbench_argc = static_cast<int>(gbench_argv.size());
            benchmark::Initialize(&gbench_argc, gbench_argv.data());
            if (benchmark::ReportUnrecognizedArguments(
                    gbench_argc, gbench_argv.data()))
                return 1;
            benchmark::RunSpecifiedBenchmarks();
            benchmark::Shutdown();
            return 0;
        });
}
