/**
 * @file
 * Reproduces Figure 4: multi-stream bandwidth.  One node is the
 * server (receiver), the other the client; N threads each run the
 * basic bandwidth test over their own connection (§4.2).  Reports
 * aggregate bandwidth and receiver CPU for 2..12 threads.
 */

#include <iostream>
#include <optional>

#include "common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps;
    double cpu;
};

Result
run(IoatConfig features, unsigned threads,
    const Options *report = nullptr,
    TransportChoice choice = TransportChoice::none)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    NodeConfig cfg = NodeConfig::server(features, 6);
    applyTransport(cfg, choice);
    Node client(sim, fabric, cfg);
    Node server(sim, fabric, cfg);

    core::AppMemory mem(server.host(), "sink");
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    const std::size_t chunk = 64 * 1024;
    sim.spawn(streamSinkLoop(server, 5001,
                             {.recvChunk = chunk, .touchPayload = true},
                             mem));
    for (unsigned i = 0; i < threads; ++i)
        sim.spawn(streamSenderLoop(client, server.id(), 5001, chunk));

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&client, &server});
    const std::uint64_t rx0 = server.transport().rxPayloadBytes();
    meter.run(sim::milliseconds(400));
    const std::uint64_t rx1 = server.transport().rxPayloadBytes();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"threads", std::to_string(threads)},
                    {"ioat", features.any() ? "true" : "false"}});

    return {sim::throughputMbps(rx1 - rx0, meter.elapsed()),
            server.cpu().utilization()};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fig04_multistream");
    return benchMain(argc, argv, opts, [](const Options &o) {
        if (o.singleTransport()) {
            std::cout << "=== Figure 4 (" << o.transportName()
                      << " transport) ===\n\n";
            sim::Table t({"threads", "Mbps", "rx CPU"});
            for (unsigned threads : {2u, 4u, 6u, 8u, 10u, 12u}) {
                const Result r = run(IoatConfig::disabled(), threads,
                                     nullptr, o.transportChoice());
                t.addRow({std::to_string(threads), num(r.mbps, 0),
                          pct(r.cpu)});
            }
            t.print(std::cout);
            if (o.instrumented())
                run(IoatConfig::disabled(), 12, &o,
                    o.transportChoice());
            return 0;
        }
        std::cout << "=== Figure 4: Multi-Stream Bandwidth (one server, "
                     "N client threads, 6 ports) ===\n\n";
        sim::Table t({"threads", "non-ioat Mbps", "ioat Mbps",
                      "non-ioat CPU", "ioat CPU", "rel CPU benefit"});
        for (unsigned threads : {2u, 4u, 6u, 8u, 10u, 12u}) {
            const Result non = run(IoatConfig::disabled(), threads);
            const Result yes = run(IoatConfig::enabled(), threads);
            t.addRow({std::to_string(threads), num(non.mbps, 0),
                      num(yes.mbps, 0), pct(non.cpu), pct(yes.cpu),
                      pct(relativeBenefit(yes.cpu, non.cpu))});
        }
        t.print(std::cout);
        std::cout << "\nPaper anchors: similar bandwidth for both until "
                     "12 threads, where non-I/OAT degrades;\nat 12 "
                     "threads CPU 76% (non-I/OAT) vs 52% (I/OAT), ~32% "
                     "relative benefit.\n";
        if (o.instrumented())
            run(IoatConfig::enabled(), 12, &o);
        return 0;
    });
}
