/**
 * @file
 * Reproduces Figure 10: PVFS concurrent read performance on ramfs
 * (§6.2.1) with 6 and 5 I/O servers and 1-6 compute processes.
 *
 * Each compute process repeatedly reads a contiguous region of
 * 2N MB (N = iod count), i.e. 2 MB from every I/O server per
 * iteration, matching pvfs-test.  Since I/OAT is a receiver-side
 * optimization and reads land on the compute node, the reported CPU
 * is the client side's.
 */

#include <iostream>
#include <optional>

#include "pvfs_common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps; ///< aggregate read bandwidth, MB/s
    double clientCpu;
};

Result
run(IoatConfig features, unsigned iod_count, unsigned compute_nodes,
    const Options *report = nullptr,
    TransportChoice choice = TransportChoice::none)
{
    PvfsRig rig(features, iod_count, choice);
    const std::size_t region = 2ull * 1024 * 1024 * iod_count;

    std::vector<std::unique_ptr<pvfs::PvfsClient>> clients;
    for (unsigned c = 0; c < compute_nodes; ++c)
        clients.push_back(rig.makeClient());

    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(rig.sim, *report);

    for (unsigned c = 0; c < compute_nodes; ++c) {
        const auto h =
            rig.presizeFile("f" + std::to_string(c), region);
        rig.sim.spawn([](PvfsRig &r, pvfs::PvfsClient &cl,
                         pvfs::FileHandle fh,
                         std::size_t bytes) -> Coro<void> {
            (void)r;
            co_await cl.connect();
            for (;;)
                co_await cl.read(fh, 0, bytes);
        }(rig, *clients[c], h, region));
    }

    Meter meter(rig.sim);
    meter.warmup(sim::milliseconds(200),
                 {&rig.serverNode(), &rig.clientNode()});
    std::uint64_t rx0 = 0;
    for (const auto &c : clients)
        rx0 += c->bytesRead();
    meter.run(sim::milliseconds(600));
    std::uint64_t rx1 = 0;
    for (const auto &c : clients)
        rx1 += c->bytesRead();

    if (report)
        report->noteEvents(rig.sim.executedEvents());
    if (tr)
        tr->finish({{"iodCount", std::to_string(iod_count)},
                    {"computeNodes", std::to_string(compute_nodes)},
                    {"ioat", features.any() ? "true" : "false"}});

    return {sim::throughputMBps(rx1 - rx0, meter.elapsed()),
            rig.clientNode().cpu().utilization()};
}

void
table(unsigned iods)
{
    std::cout << "Figure 10" << (iods == 6 ? "a" : "b") << ": " << iods
              << " I/O servers\n";
    sim::Table t({"clients", "non-ioat MB/s", "ioat MB/s",
                  "throughput gain", "non-ioat CPU", "ioat CPU",
                  "rel CPU benefit"});
    for (unsigned clients = 1; clients <= 6; ++clients) {
        const Result non = run(IoatConfig::disabled(), iods, clients);
        const Result yes = run(IoatConfig::enabled(), iods, clients);
        t.addRow({std::to_string(clients), num(non.mbps, 0),
                  num(yes.mbps, 0), pct((yes.mbps - non.mbps) / non.mbps),
                  pct(non.clientCpu), pct(yes.clientCpu),
                  pct(relativeBenefit(yes.clientCpu, non.clientCpu))});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fig10_pvfs_read");
    return benchMain(argc, argv, opts, [&](const Options &) {

    if (opts.singleTransport()) {
        std::cout << "=== Figure 10 (" << opts.transportName()
                  << " transport, 6 I/O servers) ===\n\n";
        sim::Table t({"clients", "MB/s", "client CPU"});
        for (unsigned clients = 1; clients <= 6; ++clients) {
            const Result r = run(IoatConfig::disabled(), 6, clients,
                                 nullptr, opts.transportChoice());
            t.addRow({std::to_string(clients), num(r.mbps, 0),
                      pct(r.clientCpu)});
        }
        t.print(std::cout);
        if (opts.instrumented())
            run(IoatConfig::disabled(), 6, 6, &opts,
                opts.transportChoice());
        return 0;
    }

    std::cout << "=== Figure 10: PVFS Concurrent Read Performance "
                 "(ramfs) ===\n\n";
    table(6);
    table(5);

    if (opts.instrumented())
        run(IoatConfig::enabled(), 6, 6, &opts);

    std::cout << "Paper anchors: 6 servers: non-I/OAT 361->649 MB/s, "
                 "I/OAT 360->731 MB/s (~12% at 6 clients), ~15% CPU "
                 "benefit;\n5 servers: same trends, smaller gains.\n";
    return 0;
    });
}
