/**
 * @file
 * Fault sweep: the Fig. 3 bandwidth experiment and a Fig. 8-style
 * two-tier data-center run, repeated across link-loss rates with the
 * loss-tolerant transport enabled.
 *
 * The lossless rows establish the reliable-mode baseline; the lossy
 * rows show goodput degrading gracefully while the retransmission /
 * failover / degradation counters account for every recovered fault.
 * The whole schedule is deterministic (seeded FaultInjector), so two
 * invocations print identical tables.
 */

#include <cstdint>
#include <iostream>
#include <optional>
#include <vector>

#include "common.hh"
#include "datacenter/client.hh"
#include "datacenter/proxy.hh"
#include "datacenter/web_server.hh"
#include "datacenter/workload.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

constexpr std::uint64_t kFaultSeed = 42;
const std::vector<double> kLossRates = {0.0, 1e-4, 1e-3, 1e-2};

sim::FaultSiteConfig
lossMix(double loss)
{
    sim::FaultSiteConfig cfg;
    cfg.dropProb = loss;
    cfg.dupProb = loss / 10.0;
    cfg.delayProb = loss / 10.0;
    cfg.delayTicks = sim::microseconds(20);
    return cfg;
}

struct StreamResult
{
    double mbps;
    std::uint64_t retransmits;
    std::uint64_t drops;
    std::uint64_t dups;
};

/** Fig. 3-style single-port ttcp stream over a lossy link. */
StreamResult
runStream(IoatConfig features, double loss,
          const Options *report = nullptr,
          TransportChoice choice = TransportChoice::none)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    sim::FaultInjector faults(kFaultSeed);
    faults.setDefaultConfig(lossMix(loss));
    fabric.setFaultInjector(&faults);

    NodeConfig nodeCfg = NodeConfig::server(features, 1);
    nodeCfg.tcp.reliable = true;
    applyTransport(nodeCfg, choice);
    Node a(sim, fabric, nodeCfg);
    Node b(sim, fabric, nodeCfg);

    core::AppMemory memB(b.host(), "sinkB");
    std::optional<TelemetryRun> tr;
    if (report) {
        tr.emplace(sim, *report);
        tr->session().add("fault", faults);
    }
    const std::size_t chunk = 64 * 1024;
    sim.spawn(streamSinkLoop(b, 5001, {.recvChunk = chunk}, memB));
    sim.spawn(streamSenderLoop(a, b.id(), 5001, chunk));

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&a, &b});
    const std::uint64_t rx0 = b.transport().rxPayloadBytes();
    meter.run(sim::milliseconds(400));
    const std::uint64_t rx1 = b.transport().rxPayloadBytes();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"lossRate", sim::strprintf("%g", loss)},
                    {"faultSeed", std::to_string(kFaultSeed)},
                    {"ioat", features.any() ? "true" : "false"}});

    return {sim::throughputMbps(rx1 - rx0, meter.elapsed()),
            a.transport().retransmits() + b.transport().retransmits(),
            faults.totalDrops(), faults.totalDups()};
}

struct DcResult
{
    double tps;
    std::uint64_t retries;
    std::uint64_t degraded;
    std::uint64_t shed;
    std::uint64_t failures;
    std::uint64_t rejected;
    std::uint64_t outageDrops;
};

/**
 * Fig. 8-style two-tier run: clients -> proxy -> two web-server
 * backends, lossy links, and backend 0 crashing for 100 ms mid-run.
 */
DcResult
runDatacenter(IoatConfig features, double loss,
              TransportChoice choice = TransportChoice::none)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    sim::FaultInjector faults(kFaultSeed);
    faults.setDefaultConfig(lossMix(loss));
    fabric.setFaultInjector(&faults);

    NodeConfig nodeCfg = NodeConfig::server(features, 6);
    nodeCfg.tcp.reliable = true;
    applyTransport(nodeCfg, choice);
    Node clientNode(sim, fabric, nodeCfg);
    Node proxyNode(sim, fabric, nodeCfg);
    Node backend0(sim, fabric, nodeCfg);
    Node backend1(sim, fabric, nodeCfg);

    dc::DcConfig cfg;
    cfg.proxyCachingEnabled = false; // plain forwarding proxy tier
    cfg.requestDeadline = sim::milliseconds(5);
    cfg.backendRetries = 3;
    cfg.serveStaleOnError = true;

    dc::SingleFileWorkload wl(16 * 1024, 100);
    dc::WebServer server0(backend0, cfg, wl);
    dc::WebServer server1(backend1, cfg, wl);
    server0.start();
    server1.start();

    dc::Proxy proxy(proxyNode, cfg,
                    std::vector<net::NodeId>{backend0.id(), backend1.id()},
                    8);
    proxy.start();

    dc::ClientFleet::Options opts;
    opts.target = proxyNode.id();
    opts.port = cfg.proxyPort;
    opts.threads = 8;
    opts.requestTimeout = sim::milliseconds(20);

    dc::ClientFleet fleet({&clientNode}, wl, opts);
    fleet.start();

    // Backend 0 crashes at 250 ms and restarts at 350 ms.
    faults.addOutage(backend0.id(), sim::milliseconds(250),
                     sim::milliseconds(350));

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&clientNode, &proxyNode});
    const std::uint64_t done0 = fleet.completed();
    meter.run(sim::milliseconds(400));
    const std::uint64_t done1 = fleet.completed();

    return {static_cast<double>(done1 - done0) /
                sim::toSeconds(meter.elapsed()),
            proxy.backendRetries(),
            proxy.degradedHits(),
            proxy.requestsShed(),
            fleet.failures(),
            fleet.rejected(),
            faults.outageDrops()};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fault_sweep");
    return benchMain(argc, argv, opts, [&](const Options &) {

    if (opts.singleTransport()) {
        std::cout << "=== Fault sweep (" << opts.transportName()
                  << " transport) ===\n\n";
        std::cout << "Fig. 3-style bandwidth (1 port, drop=p dup=p/10 "
                     "delay=p/10):\n";
        sim::Table t1({"loss", "Mbps", "retransmits", "link drops",
                       "link dups"});
        for (double loss : kLossRates) {
            const StreamResult r =
                runStream(IoatConfig::disabled(), loss, nullptr,
                          opts.transportChoice());
            t1.addRow({sim::strprintf("%g", loss), num(r.mbps, 0),
                       std::to_string(r.retransmits),
                       std::to_string(r.drops),
                       std::to_string(r.dups)});
        }
        t1.print(std::cout);
        std::cout << "\nFig. 8-style two-tier data center (2 backends, "
                     "backend 0 down 250-350 ms):\n";
        sim::Table t2({"loss", "TPS", "bk retries", "stale serves",
                       "503s", "client fails", "client 503s",
                       "outage drops"});
        for (double loss : kLossRates) {
            const DcResult r = runDatacenter(IoatConfig::disabled(),
                                             loss,
                                             opts.transportChoice());
            t2.addRow({sim::strprintf("%g", loss), num(r.tps, 0),
                       std::to_string(r.retries),
                       std::to_string(r.degraded),
                       std::to_string(r.shed),
                       std::to_string(r.failures),
                       std::to_string(r.rejected),
                       std::to_string(r.outageDrops)});
        }
        t2.print(std::cout);
        if (opts.instrumented())
            runStream(IoatConfig::disabled(), 1e-3, &opts,
                      opts.transportChoice());
        std::cout << "\nEvery row is a pure function of the fault "
                     "seed (" << kFaultSeed << "): rerunning prints "
                     "this table byte-for-byte.\n";
        return 0;
    }

    std::cout << "=== Fault sweep: loss-tolerant transport under link "
                 "faults ===\n\n";

    std::cout << "Fig. 3-style bandwidth (1 port, reliable transport, "
                 "drop=p dup=p/10 delay=p/10):\n";
    sim::Table t1({"loss", "non-ioat Mbps", "ioat Mbps", "retransmits",
                   "link drops", "link dups"});
    for (double loss : kLossRates) {
        const StreamResult non = runStream(IoatConfig::disabled(), loss);
        const StreamResult yes = runStream(IoatConfig::enabled(), loss);
        t1.addRow({sim::strprintf("%g", loss), num(non.mbps, 0),
                   num(yes.mbps, 0), std::to_string(non.retransmits),
                   std::to_string(non.drops), std::to_string(non.dups)});
    }
    t1.print(std::cout);

    std::cout << "\nFig. 8-style two-tier data center (2 backends, "
                 "backend 0 down 250-350 ms):\n";
    sim::Table t2({"loss", "TPS", "bk retries", "stale serves", "503s",
                   "client fails", "client 503s", "outage drops"});
    for (double loss : kLossRates) {
        const DcResult r = runDatacenter(IoatConfig::disabled(), loss);
        t2.addRow({sim::strprintf("%g", loss), num(r.tps, 0),
                   std::to_string(r.retries), std::to_string(r.degraded),
                   std::to_string(r.shed), std::to_string(r.failures),
                   std::to_string(r.rejected),
                   std::to_string(r.outageDrops)});
    }
    t2.print(std::cout);

    if (opts.instrumented())
        runStream(IoatConfig::enabled(), 1e-3, &opts);

    std::cout << "\nEvery row is a pure function of the fault seed ("
              << kFaultSeed << "): rerunning prints this table "
                               "byte-for-byte.\n";
    return 0;
    });
}
