/**
 * @file
 * Extension: soft-timers + I/OAT (paper §7: "Mohit, et. al., have
 * proposed soft-timer techniques to reduce the receiver-side
 * processing.  I/OAT can co-exist with this technology to further
 * reduce the receiver-side overheads").
 *
 * Four receiver configurations on a small-message multi-stream
 * workload: interrupt-driven vs soft-timer polling, each with and
 * without I/OAT.  The combination should stack, as §7 predicts.
 */

#include <iostream>
#include <optional>

#include "common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps;
    double cpu;
    std::uint64_t interrupts;
    std::uint64_t polls;
};

Result
run(IoatConfig features, bool soft_timers,
    const Options *report = nullptr)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    NodeConfig cfg = NodeConfig::server(features, 4);
    if (soft_timers)
        cfg.nic.pollingPeriod = sim::microseconds(50);
    Node client(sim, fabric, cfg);
    Node server(sim, fabric, cfg);

    core::AppMemory mem(server.host(), "sink");
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    sim.spawn(streamSinkLoop(server, 5001,
                             {.recvChunk = 16384, .touchPayload = true},
                             mem));
    for (unsigned i = 0; i < 8; ++i)
        sim.spawn(streamSenderLoop(client, server.id(), 5001, 16384));

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&client, &server});
    const std::uint64_t rx0 = server.stack().rxPayloadBytes();
    const std::uint64_t irq0 = server.nic().interrupts();
    const std::uint64_t poll0 = server.nic().softPolls();
    meter.run(sim::milliseconds(400));

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"softTimers", soft_timers ? "true" : "false"},
                    {"ioat", features.any() ? "true" : "false"}});

    return {sim::throughputMbps(server.stack().rxPayloadBytes() - rx0,
                                meter.elapsed()),
            server.cpu().utilization(),
            server.nic().interrupts() - irq0,
            server.nic().softPolls() - poll0};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("extension_soft_timers");
    return benchMain(argc, argv, opts, [&](const Options &) {

    std::cout << "=== Extension: soft timers + I/OAT (SS7 co-existence "
                 "claim) ===\n\n";
    std::cout << "8 x 16K-message streams over 4 ports; receiver "
                 "notification mode x I/OAT:\n";
    sim::Table t({"configuration", "Mbps", "receiver CPU",
                  "interrupts/s", "polls/s"});
    struct Cfg
    {
        const char *name;
        IoatConfig features;
        bool soft;
    };
    const Cfg cfgs[] = {
        {"interrupts, non-I/OAT", IoatConfig::disabled(), false},
        {"interrupts, I/OAT", IoatConfig::enabled(), false},
        {"soft timers, non-I/OAT", IoatConfig::disabled(), true},
        {"soft timers, I/OAT", IoatConfig::enabled(), true},
    };
    for (const auto &c : cfgs) {
        const Result r = run(c.features, c.soft);
        t.addRow({c.name, num(r.mbps, 0), pct(r.cpu),
                  num(static_cast<double>(r.interrupts) / 0.4, 0),
                  num(static_cast<double>(r.polls) / 0.4, 0)});
    }
    t.print(std::cout);

    if (opts.instrumented())
        run(IoatConfig::enabled(), true, &opts);

    std::cout << "\nSoft timers remove per-packet interrupt entries; "
                 "I/OAT removes copies and header misses.  The two "
                 "attack different terms, so their savings stack — "
                 "the paper's SS7 co-existence argument.\n";
    return 0;
    });
}
