/**
 * @file
 * Shared rig for the PVFS figure benchmarks (Figures 10-12).
 *
 * Matches the paper's §6 deployment: Testbed 1 only — one node hosts
 * the metadata manager and all I/O daemons (on ramfs), the other node
 * hosts the compute processes.  Files are pre-created and sized via
 * direct metadata setup (content is virtual), then clients stream
 * reads/writes through the full network/CPU/cache path.
 */

#ifndef IOAT_BENCH_PVFS_COMMON_HH
#define IOAT_BENCH_PVFS_COMMON_HH

#include <memory>
#include <vector>

#include "common.hh"
#include "pvfs/client.hh"
#include "pvfs/server.hh"

namespace ioat::bench {

/** Server-side PVFS deployment on a two-node testbed. */
struct PvfsRig
{
    Simulation sim;
    core::Testbed tb;
    pvfs::PvfsConfig cfg;
    pvfs::FsState fs;
    std::unique_ptr<pvfs::MetadataManager> mgr;
    std::vector<std::unique_ptr<pvfs::IodServer>> iods;

    static core::TestbedConfig
    testbedConfig(IoatConfig features, TransportChoice choice)
    {
        core::TestbedConfig cfg;
        cfg.serverCount = 2;
        cfg.serverConfig = NodeConfig::server(features, 6);
        // The paper ran PVFS with default socket options: 64 KB
        // socket buffers leave single streams window-bound, which is
        // why aggregate bandwidth scales with compute processes
        // (Fig. 10's 361 -> 649 MB/s curve).
        cfg.serverConfig.tcp.sockBuf = 64 * 1024;
        applyTransport(cfg.serverConfig, choice);
        return cfg;
    }

    PvfsRig(IoatConfig features, unsigned iod_count,
            TransportChoice choice = TransportChoice::none)
        : tb(sim, testbedConfig(features, choice))
    {
        cfg.iodCount = iod_count;
        mgr = std::make_unique<pvfs::MetadataManager>(serverNode(), cfg,
                                                      fs);
        mgr->start();
        for (unsigned i = 0; i < iod_count; ++i) {
            iods.push_back(std::make_unique<pvfs::IodServer>(
                serverNode(), cfg, i));
            iods.back()->start();
        }
    }

    Node &serverNode() { return tb.server(0); }
    Node &clientNode() { return tb.server(1); }

    std::vector<pvfs::DaemonAddr>
    iodAddrs()
    {
        std::vector<pvfs::DaemonAddr> out;
        for (const auto &iod : iods)
            out.push_back({serverNode().id(), iod->port()});
        return out;
    }

    /** Pre-create a file of the given size (metadata-only setup). */
    pvfs::FileHandle
    presizeFile(const std::string &name, std::uint64_t bytes)
    {
        const pvfs::FileHandle h = fs.create(name);
        fs.extendTo(h, bytes);
        return h;
    }

    std::unique_ptr<pvfs::PvfsClient>
    makeClient()
    {
        return std::make_unique<pvfs::PvfsClient>(
            clientNode(), cfg,
            pvfs::DaemonAddr{serverNode().id(), cfg.mgrPort},
            iodAddrs());
    }
};

} // namespace ioat::bench

#endif // IOAT_BENCH_PVFS_COMMON_HH
