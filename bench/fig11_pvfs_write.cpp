/**
 * @file
 * Reproduces Figure 11: PVFS concurrent write performance on ramfs
 * (§6.2.1).  Same shape as the read test, but data flows from the
 * compute processes to the I/O servers, so the receiver-side benefit
 * (and the reported CPU) is on the *server* node.
 */

#include <iostream>
#include <optional>

#include "pvfs_common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps;
    double serverCpu;
};

Result
run(IoatConfig features, unsigned iod_count, unsigned compute_nodes,
    const Options *report = nullptr,
    TransportChoice choice = TransportChoice::none)
{
    PvfsRig rig(features, iod_count, choice);
    const std::size_t region = 2ull * 1024 * 1024 * iod_count;

    std::vector<std::unique_ptr<pvfs::PvfsClient>> clients;
    for (unsigned c = 0; c < compute_nodes; ++c)
        clients.push_back(rig.makeClient());

    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(rig.sim, *report);

    for (unsigned c = 0; c < compute_nodes; ++c) {
        const auto h =
            rig.presizeFile("f" + std::to_string(c), region);
        rig.sim.spawn([](pvfs::PvfsClient &cl, pvfs::FileHandle fh,
                         std::size_t bytes) -> Coro<void> {
            co_await cl.connect();
            for (;;)
                co_await cl.write(fh, 0, bytes);
        }(*clients[c], h, region));
    }

    Meter meter(rig.sim);
    meter.warmup(sim::milliseconds(200),
                 {&rig.serverNode(), &rig.clientNode()});
    std::uint64_t tx0 = 0;
    for (const auto &c : clients)
        tx0 += c->bytesWritten();
    meter.run(sim::milliseconds(600));
    std::uint64_t tx1 = 0;
    for (const auto &c : clients)
        tx1 += c->bytesWritten();

    if (report)
        report->noteEvents(rig.sim.executedEvents());
    if (tr)
        tr->finish({{"iodCount", std::to_string(iod_count)},
                    {"computeNodes", std::to_string(compute_nodes)},
                    {"ioat", features.any() ? "true" : "false"}});

    return {sim::throughputMBps(tx1 - tx0, meter.elapsed()),
            rig.serverNode().cpu().utilization()};
}

void
table(unsigned iods)
{
    std::cout << "Figure 11" << (iods == 6 ? "a" : "b") << ": " << iods
              << " I/O servers\n";
    sim::Table t({"clients", "non-ioat MB/s", "ioat MB/s",
                  "throughput gain", "non-ioat CPU", "ioat CPU",
                  "rel CPU benefit"});
    for (unsigned clients = 1; clients <= 6; ++clients) {
        const Result non = run(IoatConfig::disabled(), iods, clients);
        const Result yes = run(IoatConfig::enabled(), iods, clients);
        t.addRow({std::to_string(clients), num(non.mbps, 0),
                  num(yes.mbps, 0), pct((yes.mbps - non.mbps) / non.mbps),
                  pct(non.serverCpu), pct(yes.serverCpu),
                  pct(relativeBenefit(yes.serverCpu, non.serverCpu))});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fig11_pvfs_write");
    return benchMain(argc, argv, opts, [&](const Options &) {

    if (opts.singleTransport()) {
        std::cout << "=== Figure 11 (" << opts.transportName()
                  << " transport, 6 I/O servers) ===\n\n";
        sim::Table t({"clients", "MB/s", "server CPU"});
        for (unsigned clients = 1; clients <= 6; ++clients) {
            const Result r = run(IoatConfig::disabled(), 6, clients,
                                 nullptr, opts.transportChoice());
            t.addRow({std::to_string(clients), num(r.mbps, 0),
                      pct(r.serverCpu)});
        }
        t.print(std::cout);
        if (opts.instrumented())
            run(IoatConfig::disabled(), 6, 6, &opts,
                opts.transportChoice());
        return 0;
    }

    std::cout << "=== Figure 11: PVFS Concurrent Write Performance "
                 "(ramfs) ===\n\n";
    table(6);
    table(5);

    if (opts.instrumented())
        run(IoatConfig::enabled(), 6, 6, &opts);

    std::cout << "Paper anchors: 6 servers: non-I/OAT 464->697 MB/s, "
                 "I/OAT 460->750 MB/s (~8% at 6 clients), ~7% CPU "
                 "benefit;\n5 servers: same trends.\n";
    return 0;
    });
}
