/**
 * @file
 * Reproduces Figure 7: the I/OAT feature split-up (§4.5).
 *
 * Two Testbed-1 nodes with two dual-port adapters (4 ports), four
 * client streams to four server threads.  Three configurations:
 * non-I/OAT, I/OAT-DMA (copy engine only) and I/OAT-SPLIT (copy
 * engine + split headers).
 *
 * (a) small/medium messages (16K-128K): relative receiver-CPU benefit
 *     attributed to the DMA engine and to split headers;
 * (b) large messages (1M-8M, working set exceeds the 2 MB L2):
 *     throughput benefit of split headers.
 */

#include <iostream>
#include <optional>

#include "common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps;
    double cpu;
};

Result
run(IoatConfig features, std::size_t msg_bytes,
    const Options *report = nullptr,
    TransportChoice choice = TransportChoice::none)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    NodeConfig cfg = NodeConfig::server(features, 4);
    applyTransport(cfg, choice);
    Node client(sim, fabric, cfg);
    Node server(sim, fabric, cfg);

    // The four server threads consume whole messages and stream over
    // them once (this working set is what overflows the L2 at 1M+).
    core::AppMemory mem(server.host(), "sink");
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    sim.spawn(streamSinkLoop(server, 5001,
                             {.recvChunk = msg_bytes, .touchPayload = true},
                             mem));
    for (unsigned i = 0; i < 4; ++i)
        sim.spawn(streamSenderLoop(client, server.id(), 5001, msg_bytes));

    Meter meter(sim);
    meter.warmup(sim::milliseconds(150), {&client, &server});
    const std::uint64_t rx0 = server.transport().rxPayloadBytes();
    meter.run(sim::milliseconds(500));
    const std::uint64_t rx1 = server.transport().rxPayloadBytes();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"msgBytes", std::to_string(msg_bytes)},
                    {"ioat", features.any() ? "true" : "false"}});

    return {sim::throughputMbps(rx1 - rx0, meter.elapsed()),
            server.cpu().utilization()};
}

std::string
sizeLabel(std::size_t bytes)
{
    if (bytes >= 1024 * 1024)
        return std::to_string(bytes / (1024 * 1024)) + "M";
    return std::to_string(bytes / 1024) + "K";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fig07_splitup");
    return benchMain(argc, argv, opts, [&](const Options &) {

    if (opts.singleTransport()) {
        std::cout << "=== Figure 7 (" << opts.transportName()
                  << " transport) ===\n\n";
        sim::Table t({"msg size", "Mbps", "rx CPU"});
        for (std::size_t sz :
             {std::size_t{16} << 10, std::size_t{64} << 10,
              std::size_t{1} << 20, std::size_t{4} << 20}) {
            const Result r = run(IoatConfig::disabled(), sz, nullptr,
                                 opts.transportChoice());
            t.addRow({sizeLabel(sz), num(r.mbps, 0), pct(r.cpu)});
        }
        t.print(std::cout);
        if (opts.instrumented())
            run(IoatConfig::disabled(), std::size_t{1} << 20, &opts,
                opts.transportChoice());
        return 0;
    }

    std::cout << "=== Figure 7: I/OAT split-up benefits (4 ports, 4 "
                 "streams) ===\n\n";

    std::cout << "Figure 7a: CPU benefit by feature, small messages\n";
    sim::Table ta({"msg size", "non-ioat Mbps", "ioat-split Mbps",
                   "non-ioat CPU", "ioat-dma CPU", "ioat-split CPU",
                   "DMA benefit", "split benefit"});
    for (std::size_t sz :
         {std::size_t{16} << 10, std::size_t{32} << 10,
          std::size_t{64} << 10, std::size_t{128} << 10}) {
        const Result non = run(IoatConfig::disabled(), sz);
        const Result dma = run(IoatConfig::dmaOnly(), sz);
        const Result split = run(IoatConfig::enabled(), sz);
        ta.addRow({sizeLabel(sz), num(non.mbps, 0), num(split.mbps, 0),
                   pct(non.cpu), pct(dma.cpu), pct(split.cpu),
                   pct(relativeBenefit(dma.cpu, non.cpu)),
                   pct(relativeBenefit(split.cpu, dma.cpu))});
    }
    ta.print(std::cout);

    std::cout << "\nFigure 7b: throughput benefit, large messages "
                 "(cache overflow)\n";
    sim::Table tb({"msg size", "non-ioat Mbps", "ioat-dma Mbps",
                   "ioat-split Mbps", "split throughput benefit"});
    for (std::size_t sz :
         {std::size_t{1} << 20, std::size_t{2} << 20,
          std::size_t{4} << 20, std::size_t{8} << 20}) {
        const Result non = run(IoatConfig::disabled(), sz);
        const Result dma = run(IoatConfig::dmaOnly(), sz);
        const Result split = run(IoatConfig::enabled(), sz);
        const double benefit =
            dma.mbps > 0 ? (split.mbps - dma.mbps) / dma.mbps : 0.0;
        tb.addRow({sizeLabel(sz), num(non.mbps, 0), num(dma.mbps, 0),
                   num(split.mbps, 0), pct(benefit)});
    }
    tb.print(std::cout);

    if (opts.instrumented())
        run(IoatConfig::enabled(), std::size_t{1} << 20, &opts);

    std::cout << "\nPaper anchors: (a) DMA engine ~16% relative CPU "
                 "benefit for 16K-128K, no throughput change; split "
                 "headers add ~nothing at these sizes.\n(b) split "
                 "headers up to ~26% more throughput at 1M (4 MB "
                 "working set > 2 MB L2), benefit shrinking toward "
                 "8M.\n";
    return 0;
    });
}
