/**
 * @file
 * Ablation: the I/OAT feature the paper could NOT evaluate.
 *
 * Multiple receive queues were present in the adapter but disabled in
 * the paper's Linux kernel (§2.2.3), so the paper has no data for
 * them.  This bench supplies the missing experiment: many flows
 * arriving over few ports, where classic single-queue processing
 * serializes all softirq work on the port's interrupt core.  MRQ
 * spreads the flows across cores; the win appears exactly when one
 * core's protocol processing is the bottleneck — the paper's
 * prediction ("processing small packets can fully occupy the CPU").
 */

#include <iostream>
#include <optional>

#include "common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps;
    double cpu;
};

Result
run(bool multi_queue, unsigned flows, std::size_t msg,
    const Options *report = nullptr)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    // Stress a single adapter: 2 ports, many flows.
    core::IoatConfig features = core::IoatConfig::enabled();
    features.multiQueue = multi_queue;
    Node client(sim, fabric, NodeConfig::server(features, 2));
    Node server(sim, fabric, NodeConfig::server(features, 2));

    core::AppMemory mem(server.host(), "sink");
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    sim.spawn(streamSinkLoop(server, 5001, {.recvChunk = msg}, mem));
    for (unsigned i = 0; i < flows; ++i)
        sim.spawn(streamSenderLoop(client, server.id(), 5001, msg));

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&client, &server});
    const std::uint64_t rx0 = server.stack().rxPayloadBytes();
    meter.run(sim::milliseconds(400));
    const std::uint64_t rx1 = server.stack().rxPayloadBytes();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"multiQueue", multi_queue ? "true" : "false"},
                    {"flows", std::to_string(flows)},
                    {"msgBytes", std::to_string(msg)}});

    return {sim::throughputMbps(rx1 - rx0, meter.elapsed()),
            server.cpu().utilization()};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("ablation_multiqueue");
    return benchMain(argc, argv, opts, [&](const Options &) {

    std::cout << "=== Ablation: multiple receive queues (feature "
                 "disabled in the paper's kernel) ===\n\n";
    std::cout << "2 ports (one adapter IRQ), small messages (1K), "
                 "flows sweep:\n";
    sim::Table t({"flows", "1-queue Mbps", "MRQ Mbps", "gain",
                  "1-queue CPU", "MRQ CPU"});
    for (unsigned flows : {2u, 4u, 8u, 16u, 32u}) {
        const Result base = run(false, flows, 1024);
        const Result mrq = run(true, flows, 1024);
        t.addRow({std::to_string(flows), num(base.mbps, 0),
                  num(mrq.mbps, 0),
                  pct((mrq.mbps - base.mbps) / base.mbps),
                  pct(base.cpu), pct(mrq.cpu)});
    }
    t.print(std::cout);

    if (opts.instrumented())
        run(true, 32, 1024, &opts);

    std::cout << "\nWith one queue per port, all per-packet work rides "
                 "the adapter's IRQ core; MRQ lets extra cores share "
                 "it, so the gain appears once that core saturates.\n";
    return 0;
    });
}
