/**
 * @file
 * Deterministic chaos search: seeded random fault schedules (link
 * faults plus crash/restart of random server nodes at random ticks)
 * driven through a combined web + PVFS cluster, with machine-checked
 * end-to-end invariants after every run:
 *
 *  1. every scheduled crash and restart executed (Lifecycle counts
 *     match the injector's merged windows);
 *  2. request conservation: every request the client fleet issued
 *     terminated as exactly one of response / 503 / typed failure,
 *     and every PVFS op returned Ok or a typed PvfsErrc;
 *  3. durability: no PVFS write acked to a client was lost across
 *     iod crash/restarts (ack-after-journal, replayed on restart);
 *  4. the simulation quiesces: after the horizon plus a drain window
 *     every client thread has exited and the event queue is empty —
 *     no leaked coroutines, no orphaned timers.
 *
 * Every run is a pure function of its seed: a reported violation
 * replays bit-exactly from the seed alone (`--replay`), and the
 * harness shrinks a failing schedule to a minimal failing subset of
 * its outage windows by greedy re-execution.
 *
 * `--journal 0` removes the iods' intent log while keeping the
 * durability tracking: the sweep then *finds* the acked-write-lost
 * regression and prints the seed that reproduces it.
 */

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common.hh"
#include "datacenter/client.hh"
#include "datacenter/proxy.hh"
#include "datacenter/web_server.hh"
#include "datacenter/workload.hh"
#include "pvfs/client.hh"
#include "pvfs/server.hh"
#include "simcore/lifecycle.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct ChaosParams
{
    double schedules = 32; ///< seeds swept
    double seed0 = 1;      ///< first seed
    double windows = 3;    ///< outage windows per schedule
    double journal = 1;    ///< iod intent log on (0 = regression)
    double shrink = 1;     ///< shrink failing schedules
    double replay = 0;     ///< nonzero: replay this one seed
};

/** One generated outage window (victim is an index into the fixed
 *  server-victim list, resolved to a node id per run). */
struct WindowSpec
{
    unsigned victim;
    Tick start;
    Tick end;
};

constexpr unsigned kVictims = 6; // proxy, 2 web, mgr, 2 iods

/**
 * The whole fault schedule is a pure function of the seed: a link
 * loss mix plus `windows` crash/restart windows over the victims.
 */
std::vector<WindowSpec>
makeSchedule(std::uint64_t seed, unsigned windows, double *loss_out)
{
    sim::Rng rng(seed);
    static const double kLoss[] = {0.0, 1e-4, 1e-3};
    *loss_out = kLoss[rng.uniformInt(0, 2)];
    std::vector<WindowSpec> wins;
    for (unsigned i = 0; i < windows; ++i) {
        WindowSpec w;
        w.victim = static_cast<unsigned>(rng.uniformInt(0, kVictims - 1));
        w.start = sim::microseconds(rng.uniformInt(60'000, 300'000));
        w.end = w.start +
                sim::microseconds(rng.uniformInt(5'000, 50'000));
        wins.push_back(w);
    }
    return wins;
}

struct PvfsDriverState
{
    std::uint64_t ops = 0;
    std::uint64_t okOps = 0;
    std::uint64_t errOps = 0;
    bool stop = false;
    bool done = false;
};

/**
 * Closed-loop PVFS workload: streaming writes with periodic
 * read-back.  Every op terminates with Ok or a typed PvfsErrc (all
 * waits are bounded by rpcTimeout), so ops == okOps + errOps is the
 * PVFS half of the conservation invariant.
 */
Coro<void>
pvfsDriver(pvfs::PvfsClient &cl, pvfs::FileHandle h,
           PvfsDriverState &st)
{
    const pvfs::PvfsErrc conn = co_await cl.connect();
    if (conn != pvfs::PvfsErrc::Ok) {
        st.done = true;
        co_return;
    }
    std::uint64_t offset = 0;
    const std::size_t chunk = 256 * 1024;
    while (!st.stop) {
        ++st.ops;
        const pvfs::PvfsResult<std::size_t> wr =
            co_await cl.write(h, offset, chunk);
        if (wr.ok())
            ++st.okOps;
        else
            ++st.errOps;
        offset += chunk;
        if (st.stop)
            break;
        if (st.ops % 4 == 0) {
            ++st.ops;
            const pvfs::PvfsResult<std::size_t> rd =
                co_await cl.read(h, 0, chunk);
            if (rd.ok())
                ++st.okOps;
            else
                ++st.errOps;
        }
    }
    st.done = true;
}

struct RunStats
{
    double lossRate = 0.0;
    std::uint64_t mergedWindows = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t failures = 0;
    std::uint64_t rejected = 0;
    std::uint64_t failovers = 0;
    std::uint64_t pvfsOps = 0;
    std::uint64_t pvfsErrs = 0;
    std::uint64_t ackedWrites = 0;
    std::uint64_t lostWrites = 0;
    std::uint64_t journalReplays = 0;
    std::size_t queueLeft = 0;
    unsigned threadsLeft = 0;
    std::vector<std::string> violations;
};

/**
 * Execute one chaos schedule and machine-check every invariant.
 * @p dropped indexes into the generated window list are skipped
 * (the shrinking loop's lever); the schedule itself is always the
 * full pure function of @p seed.
 */
RunStats
runOne(std::uint64_t seed, const ChaosParams &p,
       const std::set<unsigned> &dropped = {},
       std::vector<WindowSpec> *schedule_out = nullptr)
{
    RunStats out;
    const auto windows = makeSchedule(
        seed, static_cast<unsigned>(p.windows), &out.lossRate);
    if (schedule_out)
        *schedule_out = windows;

    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    sim::FaultInjector faults(seed);
    sim::FaultSiteConfig lossCfg;
    lossCfg.dropProb = out.lossRate;
    lossCfg.dupProb = out.lossRate / 10.0;
    faults.setDefaultConfig(lossCfg);
    fabric.setFaultInjector(&faults);

    NodeConfig nodeCfg = NodeConfig::server(IoatConfig::enabled(), 6);
    nodeCfg.tcp.reliable = true;
    Node clientNode(sim, fabric, nodeCfg);
    Node proxyNode(sim, fabric, nodeCfg);
    Node web0(sim, fabric, nodeCfg);
    Node web1(sim, fabric, nodeCfg);
    Node pvfsClientNode(sim, fabric, nodeCfg);
    Node mgrNode(sim, fabric, nodeCfg);
    Node iod0Node(sim, fabric, nodeCfg);
    Node iod1Node(sim, fabric, nodeCfg);

    // ---- web tier -------------------------------------------------
    dc::DcConfig cfg;
    cfg.proxyCachingEnabled = false;
    cfg.serveStaleOnError = true;
    cfg.requestDeadline = sim::milliseconds(5);
    cfg.backendRetries = 3;
    cfg.heartbeatInterval = sim::milliseconds(2);

    dc::SingleFileWorkload wl(16 * 1024, 100);
    dc::WebServer server0(web0, cfg, wl);
    dc::WebServer server1(web1, cfg, wl);
    server0.start();
    server1.start();
    dc::Proxy proxy(proxyNode, cfg,
                    std::vector<net::NodeId>{web0.id(), web1.id()}, 8);
    proxy.start();

    dc::ClientFleet::Options fleetOpts;
    fleetOpts.target = proxyNode.id();
    fleetOpts.port = cfg.proxyPort;
    fleetOpts.threads = 8;
    fleetOpts.requestTimeout = sim::milliseconds(20);
    fleetOpts.reconnectDelay = sim::milliseconds(5);
    fleetOpts.reconnectBackoffCap = sim::milliseconds(40);
    dc::ClientFleet fleet({&clientNode}, wl, fleetOpts);
    fleet.start();

    // ---- PVFS tier ------------------------------------------------
    pvfs::PvfsConfig pcfg;
    pcfg.iodCount = 2;
    pcfg.rpcTimeout = sim::milliseconds(5);
    pcfg.rpcMaxRetries = 4;
    pcfg.trackDurability = true;
    pcfg.journaledWrites = p.journal != 0;
    pvfs::FsState fs;
    pvfs::MetadataManager mgr(mgrNode, pcfg, fs);
    mgr.start();
    pvfs::IodServer iod0(iod0Node, pcfg, 0);
    pvfs::IodServer iod1(iod1Node, pcfg, 1);
    iod0.start();
    iod1.start();
    const pvfs::FileHandle fh = fs.create("chaos");
    fs.extendTo(fh, 32 * 1024 * 1024);
    pvfs::PvfsClient pvfsClient(
        pvfsClientNode, pcfg,
        pvfs::DaemonAddr{mgrNode.id(), pcfg.mgrPort},
        {pvfs::DaemonAddr{iod0Node.id(), iod0.port()},
         pvfs::DaemonAddr{iod1Node.id(), iod1.port()}});
    PvfsDriverState pvfsState;
    sim.spawn(pvfsDriver(pvfsClient, fh, pvfsState));

    // ---- crash/restart supervision --------------------------------
    const std::vector<net::NodeId> victims = {
        proxyNode.id(), web0.id(),     web1.id(),
        mgrNode.id(),   iod0Node.id(), iod1Node.id()};

    sim::Lifecycle lifecycle(sim, faults);
    // Node (transport reset) first, daemons after: a crash tears the
    // stack down before the process-level hooks run.
    lifecycle.attach(proxyNode.id(), &proxyNode);
    lifecycle.attach(proxyNode.id(), &proxy);
    lifecycle.attach(web0.id(), &web0);
    lifecycle.attach(web0.id(), &server0);
    lifecycle.attach(web1.id(), &web1);
    lifecycle.attach(web1.id(), &server1);
    lifecycle.attach(mgrNode.id(), &mgrNode);
    lifecycle.attach(mgrNode.id(), &mgr);
    lifecycle.attach(iod0Node.id(), &iod0Node);
    lifecycle.attach(iod0Node.id(), &iod0);
    lifecycle.attach(iod1Node.id(), &iod1Node);
    lifecycle.attach(iod1Node.id(), &iod1);

    for (unsigned i = 0; i < windows.size(); ++i) {
        if (dropped.count(i) > 0)
            continue;
        faults.addOutage(victims[windows[i].victim], windows[i].start,
                         windows[i].end);
    }
    lifecycle.start();

    for (const std::uint32_t node : faults.outageNodes())
        out.mergedWindows += faults.mergedOutages(node).size();

    // ---- run, stop, drain -----------------------------------------
    const Tick horizon = sim::milliseconds(400);
    sim.runFor(horizon);
    fleet.stop();
    proxy.stop();
    pvfsState.stop = true;
    // Quiesce bound: every timer in the system resolves well inside
    // 2s (worst case is reliable-TCP retransmission backoff running
    // to abort, ~800ms).  Anything still queued past the bound is a
    // leak, not a straggler.
    const Tick drainStep = sim::milliseconds(50);
    const Tick drainBound = sim.now() + sim::seconds(2);
    while (!sim.queue().empty() && sim.now() < drainBound)
        sim.runFor(drainStep);

    // ---- machine-check the invariants -----------------------------
    out.crashes = lifecycle.crashes();
    out.restarts = lifecycle.restarts();
    out.issued = fleet.issued();
    out.completed = fleet.completed();
    out.failures = fleet.failures();
    out.rejected = fleet.rejected();
    out.failovers = proxy.failovers();
    out.pvfsOps = pvfsState.ops;
    out.pvfsErrs = pvfsState.errOps;
    out.ackedWrites = pvfsClient.ackedWrites().size();
    out.journalReplays = iod0.journalReplays() + iod1.journalReplays();
    out.queueLeft = sim.queue().size();
    out.threadsLeft = fleet.activeThreads();

    auto fail = [&out](std::string why) {
        out.violations.push_back(std::move(why));
    };

    if (out.crashes != out.mergedWindows ||
        out.restarts != out.mergedWindows)
        fail(sim::strprintf(
            "lifecycle: %llu merged windows but %llu crashes / %llu "
            "restarts executed",
            static_cast<unsigned long long>(out.mergedWindows),
            static_cast<unsigned long long>(out.crashes),
            static_cast<unsigned long long>(out.restarts)));

    if (out.issued != out.completed + out.failures + out.rejected)
        fail(sim::strprintf(
            "conservation: issued %llu != completed %llu + failed %llu "
            "+ rejected %llu",
            static_cast<unsigned long long>(out.issued),
            static_cast<unsigned long long>(out.completed),
            static_cast<unsigned long long>(out.failures),
            static_cast<unsigned long long>(out.rejected)));

    if (pvfsState.ops != pvfsState.okOps + pvfsState.errOps)
        fail(sim::strprintf(
            "conservation: pvfs ops %llu != ok %llu + err %llu",
            static_cast<unsigned long long>(pvfsState.ops),
            static_cast<unsigned long long>(pvfsState.okOps),
            static_cast<unsigned long long>(pvfsState.errOps)));

    for (const auto &w : pvfsClient.ackedWrites()) {
        if (!iod0.writeApplied(w.first) && !iod1.writeApplied(w.first)) {
            ++out.lostWrites;
            if (out.lostWrites <= 3) // cap the report, count the rest
                fail(sim::strprintf(
                    "durability: acked write id %llu (%llu bytes) lost",
                    static_cast<unsigned long long>(w.first),
                    static_cast<unsigned long long>(w.second)));
        }
    }

    if (!pvfsState.done)
        fail("quiesce: pvfs driver still running after drain");
    if (out.threadsLeft != 0)
        fail(sim::strprintf("quiesce: %u client threads still live "
                            "after drain",
                            out.threadsLeft));
    if (out.queueLeft != 0)
        fail(sim::strprintf("quiesce: %llu events still queued after "
                            "drain",
                            static_cast<unsigned long long>(
                                out.queueLeft)));

    return out;
}

/** Same seed, same params -> identical violation list? */
bool
reproduces(std::uint64_t seed, const ChaosParams &p,
           const std::vector<std::string> &expected)
{
    const RunStats again = runOne(seed, p);
    return again.violations == expected;
}

/**
 * Greedy shrink: drop each window in turn, keep the drop whenever
 * the remaining schedule still violates an invariant.  The survivors
 * are a minimal (1-minimal) failing schedule.
 */
std::set<unsigned>
shrinkSchedule(std::uint64_t seed, const ChaosParams &p,
               unsigned window_count)
{
    std::set<unsigned> dropped;
    for (unsigned i = 0; i < window_count; ++i) {
        std::set<unsigned> trial = dropped;
        trial.insert(i);
        if (trial.size() == window_count)
            break; // keep at least one window
        if (!runOne(seed, p, trial).violations.empty())
            dropped = trial;
    }
    return dropped;
}

std::string
windowJson(const WindowSpec &w)
{
    return sim::strprintf(
        "{\"victim\": %u, \"startUs\": %llu, \"endUs\": %llu}",
        w.victim,
        static_cast<unsigned long long>(sim::toMicroseconds(w.start)),
        static_cast<unsigned long long>(sim::toMicroseconds(w.end)));
}

struct FailureRecord
{
    std::uint64_t seed;
    bool reproduced;
    std::vector<std::string> violations;
    std::vector<WindowSpec> minimal;
};

void
writeReport(const std::string &path, const ChaosParams &p,
            std::uint64_t totalViolations,
            const std::vector<std::pair<std::uint64_t, RunStats>> &runs,
            const std::vector<FailureRecord> &failures)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "chaos_search: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"chaos_search\",\n");
    std::fprintf(f, "  \"schedules\": %u,\n",
                 static_cast<unsigned>(runs.size()));
    std::fprintf(f, "  \"windowsPerSchedule\": %u,\n",
                 static_cast<unsigned>(p.windows));
    std::fprintf(f, "  \"journaledWrites\": %s,\n",
                 p.journal != 0 ? "true" : "false");
    std::fprintf(f, "  \"violations\": %llu,\n",
                 static_cast<unsigned long long>(totalViolations));
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunStats &r = runs[i].second;
        std::fprintf(
            f,
            "    {\"seed\": %llu, \"ok\": %s, \"crashes\": %llu, "
            "\"restarts\": %llu, \"issued\": %llu, \"completed\": "
            "%llu, \"failures\": %llu, \"rejected\": %llu, "
            "\"pvfsOps\": %llu, \"ackedWrites\": %llu, "
            "\"lostWrites\": %llu, \"journalReplays\": %llu}%s\n",
            static_cast<unsigned long long>(runs[i].first),
            r.violations.empty() ? "true" : "false",
            static_cast<unsigned long long>(r.crashes),
            static_cast<unsigned long long>(r.restarts),
            static_cast<unsigned long long>(r.issued),
            static_cast<unsigned long long>(r.completed),
            static_cast<unsigned long long>(r.failures),
            static_cast<unsigned long long>(r.rejected),
            static_cast<unsigned long long>(r.pvfsOps),
            static_cast<unsigned long long>(r.ackedWrites),
            static_cast<unsigned long long>(r.lostWrites),
            static_cast<unsigned long long>(r.journalReplays),
            i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"failures\": [\n");
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const FailureRecord &fr = failures[i];
        std::fprintf(f,
                     "    {\"seed\": %llu, \"reproduced\": %s,\n"
                     "     \"violations\": [",
                     static_cast<unsigned long long>(fr.seed),
                     fr.reproduced ? "true" : "false");
        for (std::size_t v = 0; v < fr.violations.size(); ++v)
            std::fprintf(f, "%s\"%s\"", v > 0 ? ", " : "",
                         fr.violations[v].c_str());
        std::fprintf(f, "],\n     \"minimalSchedule\": [");
        for (std::size_t w = 0; w < fr.minimal.size(); ++w)
            std::fprintf(f, "%s%s", w > 0 ? ", " : "",
                         windowJson(fr.minimal[w]).c_str());
        std::fprintf(f, "]}%s\n", i + 1 < failures.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("chaos_search");
    ChaosParams p;
    opts.knob("schedules", &p.schedules, "fault schedules to sweep");
    opts.knob("seed0", &p.seed0, "first schedule seed");
    opts.knob("windows", &p.windows, "outage windows per schedule");
    opts.knob("journal", &p.journal,
              "iod intent log (0 plants the durability regression)");
    opts.knob("shrink", &p.shrink, "shrink failing schedules");
    opts.knob("replay", &p.replay, "replay one seed and exit");

    return benchMain(argc, argv, opts, [&](const Options &o) {
        if (p.replay != 0) {
            const auto seed = static_cast<std::uint64_t>(p.replay);
            std::vector<WindowSpec> schedule;
            const RunStats r = runOne(seed, p, {}, &schedule);
            std::cout << "=== chaos replay: seed " << seed << " ===\n";
            for (const auto &w : schedule)
                std::cout << "  victim " << w.victim << " down "
                          << sim::toMicroseconds(w.start) << "us - "
                          << sim::toMicroseconds(w.end) << "us\n";
            std::cout << "crashes " << r.crashes << ", restarts "
                      << r.restarts << ", issued " << r.issued
                      << ", completed " << r.completed << ", failed "
                      << r.failures << ", rejected " << r.rejected
                      << ", acked writes " << r.ackedWrites
                      << ", lost " << r.lostWrites << "\n";
            if (r.violations.empty()) {
                std::cout << "all invariants hold\n";
            } else {
                for (const auto &v : r.violations)
                    std::cout << "VIOLATION: " << v << "\n";
            }
            if (o.wantReport())
                writeReport(o.reportPath(), p, r.violations.size(),
                            {{seed, r}}, {});
            return r.violations.empty() ? 0 : 1;
        }

        const auto n = static_cast<unsigned>(p.schedules);
        std::cout << "=== chaos search: " << n << " fault schedules, "
                  << static_cast<unsigned>(p.windows)
                  << " outage windows each, journal "
                  << (p.journal != 0 ? "on" : "off") << " ===\n\n";

        sim::Table t({"seed", "loss", "crashes", "issued", "done",
                      "failed", "503s", "pvfs ops", "acked", "lost",
                      "verdict"});
        std::vector<std::pair<std::uint64_t, RunStats>> runs;
        std::vector<FailureRecord> failures;
        std::uint64_t totalViolations = 0;
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t seed =
                static_cast<std::uint64_t>(p.seed0) + i;
            std::vector<WindowSpec> schedule;
            RunStats r = runOne(seed, p, {}, &schedule);
            totalViolations += r.violations.size();
            t.addRow({std::to_string(seed),
                      sim::strprintf("%g", r.lossRate),
                      std::to_string(r.crashes),
                      std::to_string(r.issued),
                      std::to_string(r.completed),
                      std::to_string(r.failures),
                      std::to_string(r.rejected),
                      std::to_string(r.pvfsOps),
                      std::to_string(r.ackedWrites),
                      std::to_string(r.lostWrites),
                      r.violations.empty() ? "ok" : "VIOLATION"});
            if (!r.violations.empty()) {
                FailureRecord fr;
                fr.seed = seed;
                fr.violations = r.violations;
                fr.reproduced = reproduces(seed, p, r.violations);
                std::set<unsigned> dropped;
                if (p.shrink != 0)
                    dropped = shrinkSchedule(
                        seed, p, static_cast<unsigned>(schedule.size()));
                for (unsigned w = 0;
                     w < static_cast<unsigned>(schedule.size()); ++w)
                    if (dropped.count(w) == 0)
                        fr.minimal.push_back(schedule[w]);
                failures.push_back(std::move(fr));
            }
            runs.emplace_back(seed, std::move(r));
        }
        t.print(std::cout);

        std::cout << "\n" << totalViolations << " violation(s) across "
                  << n << " schedules.\n";
        for (const auto &fr : failures) {
            std::cout << "seed " << fr.seed << " ("
                      << (fr.reproduced ? "replays bit-exactly"
                                        : "UNSTABLE REPLAY")
                      << "), minimal schedule "
                      << fr.minimal.size() << " window(s):\n";
            for (const auto &v : fr.violations)
                std::cout << "    " << v << "\n";
            std::cout << "  replay with: chaos_search --replay "
                      << fr.seed << " --journal "
                      << (p.journal != 0 ? 1 : 0) << "\n";
        }
        if (o.wantReport())
            writeReport(o.reportPath(), p, totalViolations, runs,
                        failures);
        return totalViolations == 0 ? 0 : 1;
    });
}
