/**
 * @file
 * Scale-out stress: the Figure 9 experiment grown from one emulated
 * client node to a cluster of them (8/16/32/64 nodes, 4 threads
 * each), all hammering one web-server node.
 *
 * Unlike the fig* benches this one reports *simulator* performance
 * alongside the modelled TPS: events executed, wall-clock seconds and
 * events/sec per sweep point.  Event population grows with cluster
 * size, which is exactly the regime the calendar-queue event loop is
 * built for — a comparison against an older tree shows how the
 * hot-path holds up as the cluster grows.
 *
 * `--shards N` partitions the cluster over N worker threads
 * (DESIGN.md §10).  The modelled results — TPS, event counts, and
 * with them the JSON "digest" field — are identical at any shard
 * count; only wall-clock and events/sec change.  CI runs the sweep at
 * several shard counts and gates on digest equality.
 *
 * Results are also written to BENCH_scale.json (see EXPERIMENTS.md
 * for the schema) so successive PRs can be compared mechanically.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common.hh"
#include "datacenter/client.hh"
#include "datacenter/web_server.hh"
#include "datacenter/workload.hh"
#include "simcore/digest.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

constexpr unsigned kThreadsPerNode = 4;

struct Point
{
    unsigned clients;
    const char *config;
    double tps;
    std::uint64_t events;
    double wallSeconds;
    double eventsPerSec;
};

Point
run(IoatConfig features, const char *configName, unsigned clientNodes,
    unsigned shards, const Options *report = nullptr)
{
    const auto wall0 = std::chrono::steady_clock::now();

    core::Cluster cluster(shards);
    Node &server_node =
        cluster.addNode(NodeConfig::server(features, 6));
    std::vector<core::Node *> clientPtrs;
    for (unsigned i = 0; i < clientNodes; ++i)
        clientPtrs.push_back(
            &cluster.addNode(NodeConfig::server(features, 6)));

    dc::DcConfig cfg;
    dc::SingleFileWorkload wl(16 * 1024, 1000);
    dc::WebServer server(server_node, cfg, wl);
    server.start();

    dc::ClientFleet::Options opts;
    opts.target = server_node.id();
    opts.port = cfg.serverPort;
    opts.threads = clientNodes * kThreadsPerNode;
    opts.perRequestCost = sim::microseconds(150);
    opts.touchPayload = true;
    opts.residentBytes = 2 * 1024 * 1024;
    opts.residentBytesPerThread = 512 * 1024;

    dc::ClientFleet fleet(clientPtrs, wl, opts);
    std::optional<TelemetryRun> tr;
    if (report)
        // Cluster-aware: single-shard runs get the full Session
        // (sampled series, traces); multi-shard runs keep the report
        // and metrics snapshots via the deterministic merge.
        tr.emplace(cluster, *report);
    fleet.start();

    Meter meter(cluster.runner());
    meter.warmup(sim::milliseconds(100), {clientPtrs[0], &server_node});
    const std::uint64_t done0 = fleet.completed();
    meter.run(sim::milliseconds(400));
    const std::uint64_t done1 = fleet.completed();

    const auto wall1 = std::chrono::steady_clock::now();
    const double wallSec =
        std::chrono::duration<double>(wall1 - wall0).count();
    const std::uint64_t events = cluster.group().executedEvents();

    if (report)
        report->noteEvents(events);
    if (tr)
        tr->finish({{"clientNodes", std::to_string(clientNodes)},
                    {"config", configName}});

    return {clientNodes, configName,
            static_cast<double>(done1 - done0) /
                sim::toSeconds(meter.elapsed()),
            events, wallSec, static_cast<double>(events) / wallSec};
}

/**
 * Digest over the *modelled* fields only (clients, config, tps,
 * events) — wall-clock and events/sec vary run to run, the model
 * must not.  Equal digests across `--shards` values is the CI gate.
 */
std::string
modelDigest(const std::vector<Point> &points)
{
    std::string text;
    for (const Point &p : points)
        text += std::to_string(p.clients) + "|" + p.config + "|" +
                sim::strprintf("%.3f", p.tps) + "|" +
                std::to_string(p.events) + "\n";
    return sim::digestOf(text);
}

void
writeJson(const std::vector<Point> &points, unsigned shards,
          const std::string &path)
{
    std::ofstream out(path);
    out << "{\n  \"bench\": \"scale_cluster\",\n"
        << "  \"threadsPerNode\": " << kThreadsPerNode << ",\n"
        << "  \"shards\": " << shards << ",\n"
        << "  \"digest\": \"" << modelDigest(points) << "\",\n"
        << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        out << "    {\"clients\": " << p.clients << ", \"config\": \""
            << p.config << "\", \"tps\": " << sim::strprintf("%.0f", p.tps)
            << ", \"events\": " << p.events << ", \"wallSeconds\": "
            << sim::strprintf("%.3f", p.wallSeconds)
            << ", \"eventsPerSec\": "
            << sim::strprintf("%.0f", p.eventsPerSec) << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("scale_cluster");
    double maxClients = 64;
    options.knob("max-clients", &maxClients,
                 "largest client-node count in the sweep (8/16/32/64)");
    return benchMain(argc, argv, options, [&maxClients](
                                              const Options &opts) {
    const unsigned shards = opts.shards();

    std::cout << "=== Cluster scale-out: Fig. 9 workload, N client "
                 "nodes x " << kThreadsPerNode << " threads, "
              << shards << " shard" << (shards == 1 ? "" : "s")
              << " ===\n\n";
    sim::Table t({"clients", "non-ioat TPS", "ioat TPS", "events",
                  "wall s", "events/sec"});
    std::vector<Point> points;
    for (unsigned clients : {8u, 16u, 32u, 64u}) {
        if (clients > maxClients)
            break;
        const Point non =
            run(IoatConfig::disabled(), "non-ioat", clients, shards);
        const Point yes =
            run(IoatConfig::enabled(), "ioat", clients, shards);
        points.push_back(non);
        points.push_back(yes);
        t.addRow({std::to_string(clients), num(non.tps, 0),
                  num(yes.tps, 0),
                  std::to_string(non.events + yes.events),
                  num(non.wallSeconds + yes.wallSeconds, 2),
                  num((static_cast<double>(non.events) +
                       static_cast<double>(yes.events)) /
                          (non.wallSeconds + yes.wallSeconds),
                      0)});
    }
    t.print(std::cout);

    if (opts.instrumented())
        run(IoatConfig::enabled(), "ioat", 8, opts.shards(), &opts);

    const std::string path = "BENCH_scale.json";
    writeJson(points, shards, path);
    std::cout << "\nWrote " << path << " (" << points.size()
              << " points, digest " << modelDigest(points)
              << ").\nevents/sec is simulator hot-path throughput: "
                 "compare across PRs at equal cluster size and shard "
                 "count.\n";
    for (const Point &p : points)
        opts.noteEvents(p.events);
    return 0;
    });
}
