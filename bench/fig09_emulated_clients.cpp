/**
 * @file
 * Reproduces Figure 9: emulated clients with I/OAT capability
 * (§5.2.3).  Both tiers live on Testbed 1: one node emulates the
 * clients (as the proxy tier would, firing requests inside the data
 * center), the other runs the web server.  File size is fixed at 16K;
 * the number of client threads sweeps 1..256.  Reported CPU is the
 * *client* node's, since the point of the experiment is client-side
 * receive processing.
 */

#include <iostream>
#include <optional>

#include "common.hh"
#include "datacenter/client.hh"
#include "datacenter/web_server.hh"
#include "datacenter/workload.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double tps;
    double clientCpu;
};

Result
run(IoatConfig features, unsigned threads,
    const Options *report = nullptr,
    TransportChoice choice = TransportChoice::none)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    NodeConfig cfg_node = NodeConfig::server(features, 6);
    applyTransport(cfg_node, choice);
    Node client_node(sim, fabric, cfg_node);
    Node server_node(sim, fabric, cfg_node);

    dc::DcConfig cfg;
    dc::SingleFileWorkload wl(16 * 1024, 1000);
    dc::WebServer server(server_node, cfg, wl);
    server.start();

    dc::ClientFleet::Options opts;
    opts.target = server_node.id();
    opts.port = cfg.serverPort;
    opts.threads = threads;
    // Proxy-style emulated client: per-request application work
    // (request generation, bookkeeping, response handling).
    opts.perRequestCost = sim::microseconds(150);
    opts.touchPayload = true;
    // Apache-prefork-style footprint: a base plus ~1 MB per worker.
    opts.residentBytes = 2 * 1024 * 1024;
    opts.residentBytesPerThread = 512 * 1024;

    dc::ClientFleet fleet({&client_node}, wl, opts);
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    fleet.start();

    Meter meter(sim);
    meter.warmup(sim::milliseconds(300), {&client_node, &server_node});
    const std::uint64_t done0 = fleet.completed();
    meter.run(sim::milliseconds(700));
    const std::uint64_t done1 = fleet.completed();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"threads", std::to_string(threads)},
                    {"ioat", features.any() ? "true" : "false"}});

    return {static_cast<double>(done1 - done0) /
                sim::toSeconds(meter.elapsed()),
            client_node.cpu().utilization()};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fig09_emulated_clients");
    return benchMain(argc, argv, opts, [&](const Options &) {

    if (opts.singleTransport()) {
        std::cout << "=== Figure 9 (" << opts.transportName()
                  << " transport, 16K files) ===\n\n";
        sim::Table t({"threads", "TPS", "client CPU"});
        for (unsigned threads : {1u, 4u, 16u, 64u, 256u}) {
            const Result r = run(IoatConfig::disabled(), threads,
                                 nullptr, opts.transportChoice());
            t.addRow({std::to_string(threads), num(r.tps, 0),
                      pct(r.clientCpu)});
        }
        t.print(std::cout);
        if (opts.instrumented())
            run(IoatConfig::disabled(), 64, &opts,
                opts.transportChoice());
        return 0;
    }

    std::cout << "=== Figure 9: Clients with I/OAT capability (16K "
                 "files) ===\n\n";
    sim::Table t({"threads", "non-ioat TPS", "ioat TPS", "non-ioat "
                  "client CPU", "ioat client CPU", "TPS improvement"});
    for (unsigned threads : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        const Result non = run(IoatConfig::disabled(), threads);
        const Result yes = run(IoatConfig::enabled(), threads);
        t.addRow({std::to_string(threads), num(non.tps, 0),
                  num(yes.tps, 0), pct(non.clientCpu), pct(yes.clientCpu),
                  pct((yes.tps - non.tps) / non.tps)});
    }
    t.print(std::cout);

    if (opts.instrumented())
        run(IoatConfig::enabled(), 64, &opts);

    std::cout << "\nPaper anchors: identical up to 16 threads; "
                 "non-I/OAT CPU saturates around 64 threads and TPS "
                 "flattens (~12928);\nI/OAT keeps scaling to 256 "
                 "threads (~15059 TPS, ~16% better, 4x the "
                 "threads).\n";
    return 0;
    });
}
