/**
 * @file
 * Reproduces Figure 8: 2-tier data-center TPS (§5.2).
 *
 * (a) single-file micro traces with average file sizes 2K-10K;
 * (b) Zipf traces with alpha 0.95 down to 0.5.
 *
 * Clients are Testbed-2 nodes firing one request at a time at the
 * proxy tier; the proxy forwards misses to the web-server tier.  Both
 * tiers run on Testbed-1 nodes with or without I/OAT.
 */

#include <iostream>
#include <memory>
#include <optional>

#include "common.hh"
#include "datacenter/client.hh"
#include "datacenter/proxy.hh"
#include "datacenter/web_server.hh"
#include "datacenter/workload.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

constexpr unsigned kClientNodes = 8;
constexpr unsigned kClientThreads = 64;

double
runTps(IoatConfig features, dc::Workload &workload,
       std::size_t proxy_cache_bytes, bool proxy_caching,
       const Options *report = nullptr,
       TransportChoice choice = TransportChoice::none)
{
    Simulation sim;
    NodeConfig server_cfg = NodeConfig::server(features);
    applyTransport(server_cfg, choice);
    NodeConfig client_cfg = NodeConfig::client();
    if (choice == TransportChoice::bypass)
        client_cfg.transport = core::TransportKind::bypass;
    core::Testbed tb(sim,
                     core::TestbedConfig{
                         .serverCount = 2,
                         .serverConfig = server_cfg,
                         .clientCount = kClientNodes,
                         .clientConfig = client_cfg,
                     });

    dc::DcConfig cfg;
    cfg.proxyCacheBytes = proxy_cache_bytes;
    cfg.proxyCachingEnabled = proxy_caching;
    dc::WebServer server(tb.server(1), cfg, workload);
    dc::Proxy proxy(tb.server(0), cfg, tb.server(1).id());
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    server.start();
    proxy.start();

    std::vector<Node *> client_nodes;
    for (unsigned i = 0; i < kClientNodes; ++i)
        client_nodes.push_back(&tb.client(i));

    dc::ClientFleet::Options opts;
    opts.target = tb.server(0).id();
    opts.port = cfg.proxyPort;
    opts.threads = kClientThreads;
    dc::ClientFleet fleet(client_nodes, workload, opts);
    fleet.start();

    Meter meter(sim);
    meter.warmup(sim::milliseconds(300), {&tb.server(0), &tb.server(1)});
    const std::uint64_t done0 = fleet.completed();
    meter.run(sim::milliseconds(700));
    const std::uint64_t done1 = fleet.completed();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish(
            {{"proxyCacheBytes", std::to_string(proxy_cache_bytes)},
             {"proxyCaching", proxy_caching ? "true" : "false"},
             {"ioat", features.any() ? "true" : "false"}});

    return static_cast<double>(done1 - done0) /
           sim::toSeconds(meter.elapsed());
}

} // namespace

int
main(int argc, char **argv)
{
    Options options("fig08_datacenter_traces");
    double quick = 0;
    options.knob("quick", &quick,
                 "nonzero: skip the sweeps, run only the instrumented "
                 "4K single-file configuration");
    return benchMain(argc, argv, options, [&quick](const Options &opts) {

    if (quick != 0) {
        dc::SingleFileWorkload wl(4096, 1000);
        const IoatConfig features = opts.singleTransport()
                                        ? IoatConfig::disabled()
                                        : IoatConfig::enabled();
        const double tps = runTps(features, wl, 0, false, &opts,
                                  opts.transportChoice());
        std::cout << "fig08 quick run: " << num(tps, 0) << " TPS\n";
        return 0;
    }

    if (opts.singleTransport()) {
        std::cout << "=== Figure 8 (" << opts.transportName()
                  << " transport) ===\n\n";
        sim::Table t({"trace", "file size", "TPS"});
        int trace = 1;
        for (std::size_t bytes : {std::size_t{2048}, std::size_t{4096},
                                  std::size_t{8192}}) {
            dc::SingleFileWorkload wl(bytes, 1000);
            const double tps = runTps(IoatConfig::disabled(), wl, 0,
                                      false, nullptr,
                                      opts.transportChoice());
            t.addRow({"Trace " + std::to_string(trace++),
                      std::to_string(bytes / 1024) + "K", num(tps, 0)});
        }
        t.print(std::cout);
        if (opts.instrumented()) {
            dc::SingleFileWorkload wl(4096, 1000);
            runTps(IoatConfig::disabled(), wl, 0, false, &opts,
                   opts.transportChoice());
        }
        return 0;
    }

    std::cout << "=== Figure 8: Data-Center Performance (2-tier, "
              << kClientThreads << " clients on " << kClientNodes
              << " nodes) ===\n\n";

    std::cout << "Figure 8a: Single-file traces\n";
    sim::Table ta({"trace", "file size", "non-ioat TPS", "ioat TPS",
                   "improvement"});
    int trace = 1;
    for (std::size_t bytes : {std::size_t{2048}, std::size_t{4096},
                              std::size_t{6144}, std::size_t{8192},
                              std::size_t{10240}}) {
        dc::SingleFileWorkload wl(bytes, 1000);
        // Pure mod_proxy forwarding tier (no response cache), so the
        // proxy's receive path sees every response.
        const double non =
            runTps(IoatConfig::disabled(), wl, 0, false);
        const double yes = runTps(IoatConfig::enabled(), wl, 0, false);
        ta.addRow({"Trace " + std::to_string(trace++),
                   std::to_string(bytes / 1024) + "K", num(non, 0),
                   num(yes, 0), pct((yes - non) / non)});
    }
    ta.print(std::cout);

    std::cout << "\nFigure 8b: Zipf traces (20000 files x 8K)\n";
    sim::Table tb2({"alpha", "non-ioat TPS", "ioat TPS", "improvement",
                    "note"});
    for (double alpha : {0.95, 0.9, 0.75, 0.5}) {
        dc::ZipfWorkload wl_non(alpha, 20000, 8192);
        dc::ZipfWorkload wl_yes(alpha, 20000, 8192);
        // Modest proxy cache so alpha controls the hit rate.
        const double non = runTps(IoatConfig::disabled(), wl_non,
                                  16 * 1024 * 1024, true);
        const double yes = runTps(IoatConfig::enabled(), wl_yes,
                                  16 * 1024 * 1024, true);
        tb2.addRow({num(alpha, 2), num(non, 0), num(yes, 0),
                    pct((yes - non) / non),
                    alpha >= 0.9 ? "high locality" : "low locality"});
    }
    tb2.print(std::cout);

    if (opts.instrumented()) {
        dc::SingleFileWorkload wl(4096, 1000);
        runTps(IoatConfig::enabled(), wl, 0, false, &opts);
    }

    std::cout << "\nPaper anchors: (a) I/OAT ~14% more TPS on the 4K "
                 "trace (9754 vs 8569), 5-8% elsewhere.\n(b) I/OAT >= "
                 "non-I/OAT for every alpha, up to ~11% at low "
                 "locality.\n";
    return 0;
    });
}
