/**
 * @file
 * Reproduces Figure 3: (a) unidirectional bandwidth and (b)
 * bi-directional bandwidth vs number of network ports, with receiver
 * CPU utilization, for I/OAT and non-I/OAT.
 *
 * Setup mirrors §4.1: two Testbed-1 nodes, ttcp-style streams, one
 * connection per port (bandwidth) or 2N threads / N per direction
 * (bi-directional).
 */

#include <chrono>
#include <iostream>
#include <optional>
#include <vector>

#include "common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps;
    double cpu; ///< receiver-side utilization 0..1
};

Result
runBandwidth(const Options &o, IoatConfig features, unsigned ports,
             bool bidirectional, bool artifacts = false,
             TransportChoice choice = TransportChoice::none)
{
    const auto wall0 = std::chrono::steady_clock::now();
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    NodeConfig cfg = NodeConfig::server(features, ports);
    applyTransport(cfg, choice);
    Node a(sim, fabric, cfg);
    Node b(sim, fabric, cfg);

    core::AppMemory memA(a.host(), "sinkA");
    core::AppMemory memB(b.host(), "sinkB");

    std::optional<TelemetryRun> tr;
    if (artifacts)
        tr.emplace(sim, o);

    const std::size_t chunk = 64 * 1024;
    sim.spawn(streamSinkLoop(b, 5001, {.recvChunk = chunk}, memB));
    for (unsigned i = 0; i < ports; ++i)
        sim.spawn(streamSenderLoop(a, b.id(), 5001, chunk));
    if (bidirectional) {
        sim.spawn(streamSinkLoop(a, 5001, {.recvChunk = chunk}, memA));
        for (unsigned i = 0; i < ports; ++i)
            sim.spawn(streamSenderLoop(b, a.id(), 5001, chunk));
    }

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&a, &b});
    const std::uint64_t rx0 = b.transport().rxPayloadBytes() +
                              a.transport().rxPayloadBytes();
    meter.run(sim::milliseconds(400));
    const std::uint64_t rx1 = b.transport().rxPayloadBytes() +
                              a.transport().rxPayloadBytes();

    if (tr) {
        // Simulator throughput for the CI perf gate: the bypass
        // transport must push at least as many events/sec as tcp.
        const auto wall1 = std::chrono::steady_clock::now();
        const double wallSec =
            std::chrono::duration<double>(wall1 - wall0).count();
        const double eps =
            wallSec > 0.0
                ? static_cast<double>(sim.executedEvents()) / wallSec
                : 0.0;
        tr->finish({{"ports", std::to_string(ports)},
                    {"bidirectional", bidirectional ? "true" : "false"},
                    {"ioat", features.any() ? "true" : "false"},
                    {"eventsPerSec", sim::strprintf("%.0f", eps)}});
    }

    o.noteEvents(sim.executedEvents());
    return {sim::throughputMbps(rx1 - rx0, meter.elapsed()),
            b.cpu().utilization()};
}

/** Single-transport rendering for `--transport <t>`. */
void
singleTable(const Options &o, bool bidirectional, const char *title)
{
    std::cout << title << "\n";
    sim::Table t({"ports", "Mbps", "rx CPU"});
    for (unsigned ports = 1; ports <= 6; ++ports) {
        const Result r =
            runBandwidth(o, IoatConfig::disabled(), ports,
                         bidirectional, false, o.transportChoice());
        t.addRow({std::to_string(ports), num(r.mbps, 0), pct(r.cpu)});
    }
    t.print(std::cout);
    std::cout << "\n";
}

void
table(const Options &o, bool bidirectional, const char *title)
{
    std::cout << title << "\n";
    sim::Table t({"ports", "non-ioat Mbps", "ioat Mbps", "non-ioat CPU",
                  "ioat CPU", "rel CPU benefit"});
    for (unsigned ports = 1; ports <= 6; ++ports) {
        const Result non = runBandwidth(o, IoatConfig::disabled(),
                                        ports, bidirectional);
        const Result yes = runBandwidth(o, IoatConfig::enabled(),
                                        ports, bidirectional);
        t.addRow({std::to_string(ports), num(non.mbps, 0),
                  num(yes.mbps, 0), pct(non.cpu), pct(yes.cpu),
                  pct(relativeBenefit(yes.cpu, non.cpu))});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fig03_bandwidth");
    return benchMain(argc, argv, opts, [](const Options &o) {
        if (o.singleTransport()) {
            std::cout << "=== Figure 3 (" << o.transportName()
                      << " transport) ===\n\n";
            singleTable(o, false, "Figure 3a: Bandwidth vs ports");
            singleTable(o, true,
                        "Figure 3b: Bi-directional bandwidth vs ports "
                        "(2N threads)");
            if (o.instrumented())
                runBandwidth(o, IoatConfig::disabled(), 6, false, true,
                             o.transportChoice());
            return 0;
        }
        std::cout << "=== Figure 3: Bandwidth and Bi-directional "
                     "Bandwidth (ttcp, Testbed 1) ===\n\n";
        table(o, false, "Figure 3a: Bandwidth vs ports");
        table(o, true, "Figure 3b: Bi-directional bandwidth vs ports "
                       "(2N threads)");
        std::cout << "Paper anchors: ~5635 Mbps at 6 ports; 3a CPU 37% "
                     "vs 29% (~21% relative);\n"
                     "~9600 Mbps bidir; 3b CPU ~90% vs ~70% (~22% "
                     "relative).\n";
        if (o.instrumented())
            runBandwidth(o, IoatConfig::enabled(), 6, false, true);
        return 0;
    });
}
