/**
 * @file
 * Reproduces Figure 5: bandwidth and bi-directional bandwidth under
 * cumulative sender-side socket optimizations (§4.3):
 *
 *   Case 1: default socket options
 *   Case 2: + 1 MB socket buffers
 *   Case 3: + TCP segmentation offload (TSO)
 *   Case 4: + jumbo frames (MTU 2048)
 *   Case 5: + interrupt coalescing
 *
 * Reports throughput for non-I/OAT and I/OAT plus the relative
 * receiver-CPU benefit of I/OAT per case.
 */

#include <iostream>
#include <optional>

#include "common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps;
    double cpu;
};

NodeConfig
caseConfig(IoatConfig features, int case_id)
{
    NodeConfig cfg = NodeConfig::server(features, 6);
    cfg.tcp.sockBuf = 64 * 1024; // era default
    if (case_id >= 2)
        cfg.tcp.sockBuf = 1024 * 1024;
    if (case_id >= 3)
        cfg.nic.tso = true;
    if (case_id >= 4)
        cfg.nic.mtu = 2048;
    if (case_id >= 5)
        cfg.nic.coalesceDelay = sim::microseconds(60);
    return cfg;
}

Result
run(IoatConfig features, int case_id, bool bidirectional,
    const Options *report = nullptr,
    TransportChoice choice = TransportChoice::none)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    NodeConfig cfg = caseConfig(features, case_id);
    applyTransport(cfg, choice);
    Node a(sim, fabric, cfg);
    Node b(sim, fabric, cfg);

    core::AppMemory memA(a.host(), "sinkA");
    core::AppMemory memB(b.host(), "sinkB");
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    const std::size_t chunk = 64 * 1024;
    sim.spawn(streamSinkLoop(b, 5001, {.recvChunk = chunk}, memB));
    for (unsigned i = 0; i < 6; ++i)
        sim.spawn(streamSenderLoop(a, b.id(), 5001, chunk));
    if (bidirectional) {
        sim.spawn(streamSinkLoop(a, 5001, {.recvChunk = chunk}, memA));
        for (unsigned i = 0; i < 6; ++i)
            sim.spawn(streamSenderLoop(b, a.id(), 5001, chunk));
    }

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&a, &b});
    const std::uint64_t rx0 =
        b.transport().rxPayloadBytes() + a.transport().rxPayloadBytes();
    meter.run(sim::milliseconds(400));
    const std::uint64_t rx1 =
        b.transport().rxPayloadBytes() + a.transport().rxPayloadBytes();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"case", std::to_string(case_id)},
                    {"bidirectional", bidirectional ? "true" : "false"},
                    {"ioat", features.any() ? "true" : "false"}});

    return {sim::throughputMbps(rx1 - rx0, meter.elapsed()),
            b.cpu().utilization()};
}

void
table(bool bidirectional, const char *title)
{
    std::cout << title << "\n";
    sim::Table t({"case", "optimizations", "non-ioat Mbps", "ioat Mbps",
                  "non-ioat CPU", "ioat CPU", "rel CPU benefit"});
    const char *labels[] = {
        "defaults", "+1MB sockbuf", "+TSO", "+jumbo (2048)",
        "+intr coalescing",
    };
    for (int c = 1; c <= 5; ++c) {
        const Result non = run(IoatConfig::disabled(), c, bidirectional);
        const Result yes = run(IoatConfig::enabled(), c, bidirectional);
        t.addRow({"Case " + std::to_string(c), labels[c - 1],
                  num(non.mbps, 0), num(yes.mbps, 0), pct(non.cpu),
                  pct(yes.cpu), pct(relativeBenefit(yes.cpu, non.cpu))});
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fig05_sockopts");
    return benchMain(argc, argv, opts, [](const Options &o) {
        if (o.singleTransport()) {
            std::cout << "=== Figure 5 (" << o.transportName()
                      << " transport) ===\n\n";
            const char *labels[] = {
                "defaults", "+1MB sockbuf", "+TSO", "+jumbo (2048)",
                "+intr coalescing",
            };
            sim::Table t({"case", "optimizations", "Mbps", "rx CPU"});
            for (int c = 1; c <= 5; ++c) {
                const Result r = run(IoatConfig::disabled(), c, false,
                                     nullptr, o.transportChoice());
                t.addRow({"Case " + std::to_string(c), labels[c - 1],
                          num(r.mbps, 0), pct(r.cpu)});
            }
            t.print(std::cout);
            if (o.instrumented())
                run(IoatConfig::disabled(), 5, false, &o,
                    o.transportChoice());
            return 0;
        }
        std::cout << "=== Figure 5: Socket Optimizations (6 ports) "
                     "===\n\n";
        table(false, "Figure 5a: Bandwidth");
        table(true, "Figure 5b: Bi-directional bandwidth");
        std::cout << "Paper anchors: throughput rises Case 1->5 (I/OAT "
                     "5586 vs non-I/OAT 5514 Mbps at Case 5);\nrelative "
                     "CPU benefit grows with optimizations, ~30% (5a) "
                     "and ~38% (5b) at Case 4.\n";
        if (o.instrumented())
            run(IoatConfig::enabled(), 5, false, &o);
        return 0;
    });
}
