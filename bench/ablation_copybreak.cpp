/**
 * @file
 * Ablation: the DMA copybreak threshold (§7's pinning caveat).
 *
 * "Due to the page-pinning requirement, the usefulness of the copy
 * engine becomes questionable if the pinning cost exceeds the copy
 * cost."  This bench sweeps the minimum copy size routed to the
 * engine and reports receiver CPU for a small-message workload —
 * showing that offloading tiny copies is a pessimization, exactly as
 * the paper warns.
 */

#include <iostream>
#include <optional>

#include "common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

double
run(std::size_t copybreak, std::size_t msg,
    const Options *report = nullptr)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    NodeConfig cfg = NodeConfig::server(core::IoatConfig::enabled(), 4);
    cfg.tcp.dmaCopyBreak = copybreak;
    Node client(sim, fabric, cfg);
    Node server(sim, fabric, cfg);

    core::AppMemory mem(server.host(), "sink");
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    sim.spawn(streamSinkLoop(server, 5001, {.recvChunk = msg}, mem));
    for (unsigned i = 0; i < 4; ++i)
        sim.spawn(streamSenderLoop(client, server.id(), 5001, msg));

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&client, &server});
    meter.run(sim::milliseconds(400));

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"copybreak", std::to_string(copybreak)},
                    {"msgBytes", std::to_string(msg)}});

    return server.cpu().utilization();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("ablation_copybreak");
    return benchMain(argc, argv, opts, [&](const Options &) {

    std::cout << "=== Ablation: DMA copybreak threshold (SS7 pinning "
                 "caveat) ===\n\n";
    for (std::size_t msg : {std::size_t{2048}, std::size_t{16384},
                            std::size_t{65536}}) {
        std::cout << "Receiver CPU for " << msg / 1024
                  << "K messages, 4 streams:\n";
        sim::Table t({"copybreak", "receiver CPU", "policy"});
        for (std::size_t cb :
             {std::size_t{0}, std::size_t{1024}, std::size_t{4096},
              std::size_t{16384}, std::size_t{65536},
              std::size_t{1} << 30}) {
            const double cpu = run(cb, msg);
            std::string policy =
                cb == 0 ? "offload everything"
                : cb > msg ? "never offload (CPU copies)"
                           : "offload >= " + std::to_string(cb / 1024) +
                                 "K";
            t.addRow({cb >= (std::size_t{1} << 30)
                          ? "inf"
                          : std::to_string(cb),
                      pct(cpu), policy});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    if (opts.instrumented())
        run(4096, 65536, &opts);

    std::cout << "Offloading below the pin+submit breakeven wastes "
                 "CPU; the kernel's 4K copybreak is near-optimal.\n";
    return 0;
    });
}
