/**
 * @file
 * Extension: the dynamic-content / 3-tier experiment the paper
 * describes (§3.1, §5.1 workload class iii) but never runs.
 *
 * Clients fire dynamic requests at the application-server tier,
 * which runs a script, makes two database round trips and returns a
 * generated 16 K page (no sendfile possible).  The paper's §5.1
 * prediction: the CPU-intensive application tier benefits from I/OAT
 * because receive-path relief turns directly into script capacity.
 */

#include <iostream>
#include <optional>

#include "common.hh"
#include "datacenter/app_server.hh"
#include "datacenter/client.hh"
#include "datacenter/workload.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double tps;
    double appCpu;
    double dbCpu;
};

Result
run(IoatConfig features, unsigned threads,
    const Options *report = nullptr)
{
    Simulation sim;
    core::Testbed tb(sim,
                     core::TestbedConfig{
                         .serverCount = 2,
                         .serverConfig = NodeConfig::server(features),
                         .clientCount = 4,
                     });

    dc::DcConfig http;
    dc::DynConfig dyn;
    dc::Database db(tb.server(1), dyn);
    dc::AppServer app(tb.server(0), http, dyn, tb.server(1).id());
    db.start();
    app.start();

    dc::SingleFileWorkload wl(dyn.responseBytes, 5000);
    dc::ClientFleet::Options opts;
    opts.target = tb.server(0).id();
    opts.port = dyn.appPort;
    opts.threads = threads;
    opts.requestTag = static_cast<std::uint64_t>(dc::DynTag::DynamicGet);
    dc::ClientFleet fleet({&tb.client(0), &tb.client(1), &tb.client(2),
                           &tb.client(3)},
                          wl, opts);
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    fleet.start();

    Meter meter(sim);
    meter.warmup(sim::milliseconds(300), {&tb.server(0), &tb.server(1)});
    const std::uint64_t done0 = fleet.completed();
    meter.run(sim::milliseconds(700));
    const std::uint64_t done1 = fleet.completed();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish({{"threads", std::to_string(threads)},
                    {"ioat", features.any() ? "true" : "false"}});

    return {static_cast<double>(done1 - done0) /
                sim::toSeconds(meter.elapsed()),
            tb.server(0).cpu().utilization(),
            tb.server(1).cpu().utilization()};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("extension_dynamic_content");
    return benchMain(argc, argv, opts, [&](const Options &) {

    std::cout << "=== Extension: dynamic content, 3 tiers (client -> "
                 "app server -> database) ===\n\n";
    sim::Table t({"threads", "non-ioat TPS", "ioat TPS", "improvement",
                  "non-ioat app CPU", "ioat app CPU"});
    for (unsigned threads : {8u, 16u, 32u, 64u, 128u}) {
        const Result non = run(IoatConfig::disabled(), threads);
        const Result yes = run(IoatConfig::enabled(), threads);
        t.addRow({std::to_string(threads), num(non.tps, 0),
                  num(yes.tps, 0), pct((yes.tps - non.tps) / non.tps),
                  pct(non.appCpu), pct(yes.appCpu)});
    }
    t.print(std::cout);

    if (opts.instrumented())
        run(IoatConfig::enabled(), 64, &opts);

    std::cout << "\nDynamic pages cannot use sendfile and each request "
                 "costs script + DB round trips, so receive-path "
                 "relief converts into additional script capacity "
                 "(the paper's SS5.1 argument, quantified).\n";
    return 0;
    });
}
