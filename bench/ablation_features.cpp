/**
 * @file
 * Ablation: the full I/OAT feature matrix on one standard workload.
 *
 * DESIGN.md calls out three separable design choices (copy offload,
 * split headers, multiple receive queues); this bench measures every
 * combination on a 6-port, 12-stream, 64K-message receive workload so
 * the contribution — and the interactions — of each feature are
 * visible in one table.
 */

#include <iostream>
#include <optional>

#include "common.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

struct Result
{
    double mbps;
    double cpu;
};

Result
run(core::IoatConfig features, const Options *report = nullptr)
{
    Simulation sim;
    net::Switch fabric(sim, sim::nanoseconds(2000));
    Node client(sim, fabric, NodeConfig::server(features, 6));
    Node server(sim, fabric, NodeConfig::server(features, 6));

    core::AppMemory mem(server.host(), "sink");
    std::optional<TelemetryRun> tr;
    if (report)
        tr.emplace(sim, *report);
    sim.spawn(streamSinkLoop(
        server, 5001, {.recvChunk = 64 * 1024, .touchPayload = true},
        mem));
    for (unsigned i = 0; i < 12; ++i)
        sim.spawn(streamSenderLoop(client, server.id(), 5001, 64 * 1024));

    Meter meter(sim);
    meter.warmup(sim::milliseconds(100), {&client, &server});
    const std::uint64_t rx0 = server.stack().rxPayloadBytes();
    meter.run(sim::milliseconds(400));
    const std::uint64_t rx1 = server.stack().rxPayloadBytes();

    if (report)
        report->noteEvents(sim.executedEvents());
    if (tr)
        tr->finish(
            {{"dma", features.dmaEngine ? "true" : "false"},
             {"split", features.splitHeader ? "true" : "false"},
             {"mrq", features.multiQueue ? "true" : "false"}});

    return {sim::throughputMbps(rx1 - rx0, meter.elapsed()),
            server.cpu().utilization()};
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("ablation_features");
    return benchMain(argc, argv, opts, [&](const Options &) {

    std::cout << "=== Ablation: I/OAT feature matrix (6 ports, 12 "
                 "streams, 64K messages) ===\n\n";
    const Result base = run(core::IoatConfig::disabled());

    sim::Table t({"dma", "split", "mrq", "Mbps", "receiver CPU",
                  "CPU vs baseline"});
    for (int mask = 0; mask < 8; ++mask) {
        core::IoatConfig f;
        f.dmaEngine = mask & 1;
        f.splitHeader = mask & 2;
        f.multiQueue = mask & 4;
        const Result r = run(f);
        t.addRow({f.dmaEngine ? "on" : "-", f.splitHeader ? "on" : "-",
                  f.multiQueue ? "on" : "-", num(r.mbps, 0), pct(r.cpu),
                  pct(relativeBenefit(r.cpu, base.cpu))});
    }
    t.print(std::cout);

    if (opts.instrumented())
        run(core::IoatConfig::enabled(), &opts);

    std::cout << "\nThe paper evaluates rows {-,-,-}, {on,-,-} and "
                 "{on,on,-}; the mrq rows are the configuration its "
                 "kernel could not enable.\n";
    return 0;
    });
}
