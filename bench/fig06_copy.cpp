/**
 * @file
 * Reproduces Figure 6: CPU-based copy vs DMA-based copy (§4.4).
 *
 * Series: copy-cache (CPU, both buffers L2-resident), copy-nocache
 * (CPU, memory-bound), DMA-copy (submission + engine), DMA-overhead
 * (submission only — the CPU-visible part), and the overlap
 * percentage (engine time / total).
 *
 * Each DMA point is additionally validated against an actual
 * simulated transfer, not just the closed-form model.
 */

#include <iostream>

#include "common.hh"
#include "dma/dma_engine.hh"
#include "mem/copy_model.hh"

using namespace ioat;
using namespace ioat::bench;

namespace {

/**
 * Dedicated instrumented run for --report/--trace: a stream of DMA
 * transfers under a sampling session (the model-validation loop in
 * main() must see *only* engine events, so it runs un-instrumented).
 */
void
reportRun(const Options &opts)
{
    Simulation sim;
    dma::DmaEngine engine(sim, core::calibration::ioatDma());
    TelemetryRun tr(sim, opts);
    tr.session().add("dma", engine);
    sim.spawn([](dma::DmaEngine &e) -> sim::Coro<void> {
        for (int i = 0; i < 512; ++i)
            co_await e.transfer(64 * 1024);
    }(engine));
    sim.runFor(sim::milliseconds(50));
    opts.noteEvents(sim.executedEvents());
    tr.finish({{"transferBytes", "65536"}, {"transfers", "512"}});
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts("fig06_copy");
    return benchMain(argc, argv, opts, [&](const Options &) {

    std::cout << "=== Figure 6: CPU-based Copy vs DMA-based Copy ===\n\n";

    Simulation sim;
    mem::CopyModel copies(core::calibration::serverCopy());
    dma::DmaEngine engine(sim, core::calibration::ioatDma());

    sim::Table t({"size", "copy-cache us", "copy-nocache us",
                  "DMA-copy us", "DMA-overhead us", "overlap"});
    for (std::size_t sz = 1024; sz <= 64 * 1024; sz *= 2) {
        // Validate the model against a simulated engine transfer.
        const sim::Tick t0 = sim.now();
        bool done = false;
        sim.spawn([](dma::DmaEngine &e, std::size_t n,
                     bool &f) -> sim::Coro<void> {
            co_await e.transfer(n);
            f = true;
        }(engine, sz, done));
        sim.run();
        sim::simAssert(done, "transfer did not finish");
        const sim::Tick engine_measured = sim.now() - t0;
        sim::simAssert(engine_measured == engine.engineTime(sz),
                       "engine time model/simulation mismatch");

        std::string label = sz >= 1024 * 1024
                                ? std::to_string(sz / (1024 * 1024)) + "M"
                                : std::to_string(sz / 1024) + "K";
        t.addRow({label,
                  num(sim::toMicroseconds(copies.hotCopyTime(sim::Bytes{sz})), 1),
                  num(sim::toMicroseconds(copies.coldCopyTime(sim::Bytes{sz})), 1),
                  num(sim::toMicroseconds(engine.syncCopyTime(sz)), 1),
                  num(sim::toMicroseconds(engine.submissionCost(sz)), 1),
                  pct(engine.overlapFraction(sz), 0)});
    }
    t.print(std::cout);

    if (opts.instrumented())
        reportRun(opts);

    std::cout << "\nPaper anchors: DMA-copy beats copy-nocache above "
                 "8K; overlap grows to ~93% at 64K;\ncopy-cache beats "
                 "DMA end-to-end, but DMA-overhead stays below "
                 "copy-cache time.\n";
    return 0;
    });
}
