/**
 * @file
 * Shared harness for the figure-reproduction benchmarks: ttcp-style
 * stream generators/sinks (written against the sock facade),
 * measurement-window utilities, and the common command-line surface
 * (`Options` + `benchMain`) every bench binary exposes —
 * `--report <file>` (RunReport JSON), `--trace <file>` (Chrome
 * trace), `--sample-interval <us>`, `--seed <n>`, plus bench-specific
 * numeric knobs.
 */

#ifndef IOAT_BENCH_COMMON_HH
#define IOAT_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/app_memory.hh"
#include "core/cluster.hh"
#include "core/node.hh"
#include "core/testbed.hh"
#include "simcore/simcore.hh"
#include "simcore/telemetry.hh"
#include "sock/socket.hh"

namespace ioat::bench {

using core::IoatConfig;
using core::Node;
using core::NodeConfig;
using sim::Coro;
using sim::Simulation;
using sim::Tick;

/** Stream sink options. */
struct SinkOptions
{
    std::size_t recvChunk = 64 * 1024;
    /** Stream over received data (consumer behaviour). */
    bool touchPayload = false;
};

/**
 * ttcp-style server: accept forever; per connection, recv forever.
 * One AppMemory per node models the receive buffers' cache footprint.
 */
inline Coro<void>
streamSinkLoop(Node &node, std::uint16_t port, SinkOptions opts,
               core::AppMemory &mem)
{
    sock::Listener listener(node.transport(), port);
    for (;;) {
        sock::Socket conn = co_await listener.accept();
        node.spawn(
            [](sock::Socket c, SinkOptions o,
               core::AppMemory &m) -> Coro<void> {
                m.reserve(o.recvChunk); // long-lived receive buffer
                for (;;) {
                    const std::size_t got =
                        co_await c.recvAll(o.recvChunk);
                    if (got == 0)
                        co_return;
                    if (o.touchPayload)
                        co_await m.touch(got);
                    else
                        m.noteBuffer(got);
                }
            }(conn, opts, mem));
    }
}

/** ttcp-style sender: connect once, then send chunks forever. */
inline Coro<void>
streamSenderLoop(Node &node, net::NodeId dst, std::uint16_t port,
                 std::size_t chunk, bool zero_copy = false)
{
    sock::Socket conn = co_await node.transport().connect(dst, port);
    const sock::SendOptions opts{.zeroCopy = zero_copy};
    for (;;)
        co_await conn.sendAll(chunk, opts);
}

/**
 * One measurement: warm up, reset utilization windows, run the
 * window, and report payload deltas.
 */
class Meter
{
  public:
    /** Drive any engine: a Simulation or a ShardGroup. */
    explicit Meter(sim::Runner &runner) : runner_(runner) {}

    /** Run the warmup phase then reset the given nodes' CPU windows. */
    void
    warmup(Tick duration, std::initializer_list<Node *> nodes)
    {
        runner_.runFor(duration);
        for (Node *n : nodes)
            n->cpu().resetUtilizationWindow();
        windowStart_ = runner_.now();
    }

    /** Run the measurement window. */
    void run(Tick duration) { runner_.runFor(duration); }

    Tick windowStart() const { return windowStart_; }
    Tick elapsed() const { return runner_.now() - windowStart_; }

  private:
    sim::Runner &runner_;
    Tick windowStart_{};
};

/**
 * The `--transport` choice: pin a bench to one transport/feature
 * configuration instead of its default comparison table.
 */
enum class TransportChoice {
    none,   ///< flag absent: the bench renders its usual comparison
    tcp,    ///< kernel TCP, I/OAT features off
    ioat,   ///< kernel TCP with the full I/OAT feature set
    bypass, ///< user-space kernel-bypass transport
};

/** Map a TransportChoice onto a node configuration. */
inline void
applyTransport(core::NodeConfig &cfg, TransportChoice choice)
{
    switch (choice) {
    case TransportChoice::none:
        break;
    case TransportChoice::tcp:
        cfg.ioat = IoatConfig::disabled();
        cfg.transport = core::TransportKind::tcp;
        break;
    case TransportChoice::ioat:
        cfg.ioat = IoatConfig::enabled();
        cfg.transport = core::TransportKind::tcp;
        break;
    case TransportChoice::bypass:
        cfg.ioat = IoatConfig::disabled();
        cfg.transport = core::TransportKind::bypass;
        break;
    }
}

/** Relative benefit (b - a) / b as the paper defines it (§4). */
inline double
relativeBenefit(double ioat, double non_ioat)
{
    return non_ioat > 0.0 ? (non_ioat - ioat) / non_ioat : 0.0;
}

/** Pretty percent for tables. */
inline std::string
pct(double fraction, int precision = 1)
{
    return sim::strprintf("%.*f%%", precision, fraction * 100.0);
}

inline std::string
num(double v, int precision = 1)
{
    return sim::strprintf("%.*f", precision, v);
}

/**
 * The common command-line surface of every bench binary.
 *
 * Construct with the bench name, register bench-specific knobs with
 * `knob()`, then hand everything to `benchMain` — it parses, handles
 * `--help`, and only then runs the body.
 */
class Options
{
  public:
    explicit Options(std::string bench_name)
        : bench_(std::move(bench_name))
    {}

    const std::string &benchName() const { return bench_; }
    const std::string &reportPath() const { return report_; }
    const std::string &tracePath() const { return trace_; }
    const std::string &requestTracePath() const { return reqTrace_; }
    const std::string &spanReportPath() const { return spanReport_; }
    std::uint64_t seed() const { return seed_; }
    bool wantReport() const { return !report_.empty(); }
    bool wantTrace() const { return !trace_.empty(); }
    bool wantRequestTrace() const { return !reqTrace_.empty(); }
    bool wantSpanReport() const { return !spanReport_.empty(); }
    /** Any artifact that needs telemetry/tracing machinery on. */
    bool
    instrumented() const
    {
        return wantReport() || wantTrace() || wantRequestTrace() ||
               wantSpanReport();
    }

    /** Probe sampling period for instrumented runs. */
    Tick sampleInterval() const { return sampleInterval_; }

    /**
     * Worker shards to partition the cluster over (`--shards N`).
     * Instrumented runs (sampled telemetry, tracing) are pinned to
     * one shard: the samplers walk every node from driver events, so
     * they are only sound when the whole cluster shares one queue.
     * Results are shard-count-invariant either way; see
     * DESIGN.md §10.
     */
    unsigned
    shards() const
    {
        return instrumented() ? 1u : shards_;
    }

    /** The raw --shards value, before the instrumentation pin. */
    unsigned requestedShards() const { return shards_; }

    /** @name Transport pinning (`--transport {tcp,ioat,bypass}`)
     *  @{ */
    /** The raw flag value ("" when absent). */
    const std::string &transportName() const { return transport_; }
    /** True when the bench should render one transport, not a table
     *  of comparisons. */
    bool singleTransport() const { return !transport_.empty(); }
    TransportChoice
    transportChoice() const
    {
        if (transport_ == "tcp")
            return TransportChoice::tcp;
        if (transport_ == "ioat")
            return TransportChoice::ioat;
        if (transport_ == "bypass")
            return TransportChoice::bypass;
        return TransportChoice::none;
    }
    /** @} */

    /** Register a numeric knob: `--<name> <value>` writes to @p slot. */
    void
    knob(std::string name, double *slot, std::string desc)
    {
        knobs_.push_back(Knob{std::move(name), std::move(desc), slot});
    }

    /**
     * Parse argv.  @return false when the process should exit
     * immediately (--help, or a bad flag); exitCode() says how.
     */
    bool
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(stdout);
                exitCode_ = 0;
                return false;
            }
            if (arg == "--transport") {
                if (i + 1 >= argc)
                    return fail(arg + " needs a value");
                const std::string val = argv[++i];
                if (val != "tcp" && val != "ioat" && val != "bypass")
                    return fail("--transport wants tcp, ioat or bypass");
                transport_ = val;
                continue;
            }
            if (arg == "--shards") {
                if (i + 1 >= argc)
                    return fail(arg + " needs a value");
                const unsigned long n =
                    std::strtoul(argv[++i], nullptr, 10);
                if (n < 1 || n > 64)
                    return fail("--shards wants 1..64");
                shards_ = static_cast<unsigned>(n);
                continue;
            }
            if (arg == "--report" || arg == "--trace" ||
                arg == "--trace-requests" || arg == "--span-report" ||
                arg == "--sample-interval" || arg == "--seed") {
                if (i + 1 >= argc)
                    return fail(arg + " needs a value");
                const std::string val = argv[++i];
                if (arg == "--report")
                    report_ = val;
                else if (arg == "--trace")
                    trace_ = val;
                else if (arg == "--trace-requests")
                    reqTrace_ = val;
                else if (arg == "--span-report")
                    spanReport_ = val;
                else if (arg == "--sample-interval")
                    sampleInterval_ = sim::microseconds(
                        std::strtoull(val.c_str(), nullptr, 10));
                else
                    seed_ = std::strtoull(val.c_str(), nullptr, 10);
                continue;
            }
            bool matched = false;
            for (const Knob &k : knobs_) {
                if (arg == "--" + k.name) {
                    if (i + 1 >= argc)
                        return fail(arg + " needs a value");
                    *k.slot = std::strtod(argv[++i], nullptr);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return fail("unknown flag " + arg);
        }
        return true;
    }

    int exitCode() const { return exitCode_; }

    void
    usage(std::FILE *out) const
    {
        std::fprintf(out, "usage: %s [flags]\n", bench_.c_str());
        std::fprintf(out,
                     "  --report <file>           write RunReport JSON\n"
                     "  --trace <file>            write Chrome trace JSON\n"
                     "  --trace-requests <file>   write per-request Chrome "
                     "trace with flow events\n"
                     "  --span-report <file>      write per-request span "
                     "JSON (breakdown + critical path)\n"
                     "  --sample-interval <us>    probe sampling period "
                     "(default 100)\n"
                     "  --seed <n>                run seed echoed into the "
                     "report\n"
                     "  --shards <n>              worker shards for the "
                     "cluster (default 1; results are\n"
                     "                            identical at any value, "
                     "instrumented runs pin to 1)\n"
                     "  --transport <t>           pin one transport: tcp, "
                     "ioat or bypass (default: render\n"
                     "                            the bench's usual "
                     "comparison table)\n");
        for (const Knob &k : knobs_)
            std::fprintf(out, "  --%-23s %s (default %g)\n",
                         (k.name + " <value>").c_str(), k.desc.c_str(),
                         *k.slot);
    }

    /** Echo of every flag for the RunReport config block. */
    std::vector<std::pair<std::string, std::string>>
    configEcho() const
    {
        std::vector<std::pair<std::string, std::string>> cfg;
        cfg.emplace_back("sampleIntervalTicks",
                         std::to_string(sampleInterval_.count()));
        cfg.emplace_back("shards", std::to_string(shards()));
        cfg.emplace_back("transport",
                         transport_.empty() ? "default" : transport_);
        for (const Knob &k : knobs_)
            cfg.emplace_back(k.name, sim::strprintf("%g", *k.slot));
        return cfg;
    }

  private:
    struct Knob
    {
        std::string name;
        std::string desc;
        double *slot;
    };

    bool
    fail(const std::string &why)
    {
        std::fprintf(stderr, "%s: %s\n", bench_.c_str(), why.c_str());
        usage(stderr);
        exitCode_ = 2;
        return false;
    }

    std::string bench_;
    std::string report_;
    std::string trace_;
    std::string reqTrace_;
    std::string spanReport_;
    Tick sampleInterval_ = sim::microseconds(100);
    std::uint64_t seed_ = 1;
    unsigned shards_ = 1;
    std::string transport_;
    std::vector<Knob> knobs_;
    int exitCode_ = 0;
};

/**
 * Parse flags, then run the bench body.  The body receives the parsed
 * Options and returns the process exit code.
 */
inline int
benchMain(int argc, char **argv, Options &opts,
          const std::function<int(const Options &)> &body)
{
    if (!opts.parse(argc, argv))
        return opts.exitCode();
    return body(opts);
}

/**
 * Telemetry artifacts for one instrumented run.
 *
 * Construct *after* the Simulation exists and before the workload
 * runs: it opens a telemetry::Session (sampling at
 * `opts.sampleInterval()` when a report was requested) and attaches a
 * trace writer when `--trace` was given.  `finish()` captures the
 * RunReport and writes every requested artifact.
 */
class TelemetryRun
{
  public:
    TelemetryRun(Simulation &sim, const Options &opts)
        : opts_(opts),
          session_(sim,
                   sim::telemetry::Session::Config{
                       opts.wantReport() ? opts.sampleInterval()
                                         : Tick{0},
                       sim::telemetry::Sampler::kDefaultMaxSamples})
    {
        if (opts.wantTrace()) {
            tracer_ = std::make_unique<sim::TraceWriter>();
            session_.attachTracer(tracer_.get());
        }
        if (opts.wantRequestTrace() || opts.wantSpanReport()) {
            // Must happen before the workload spawns so requests are
            // minted from the first iteration on.
            reqTracer_ = &sim.enableRequestTracing();
            session_.add("requestTrace", *reqTracer_);
        }
    }

    sim::telemetry::Session &session() { return session_; }

    /**
     * Capture and write artifacts.  @p extra_config is appended to
     * the standard flag echo in the report's config block.
     */
    void
    finish(std::vector<std::pair<std::string, std::string>>
               extra_config = {})
    {
        if (opts_.wantReport()) {
            sim::telemetry::RunReport report;
            report.setBench(opts_.benchName());
            report.setSeed(opts_.seed());
            auto cfg = opts_.configEcho();
            for (auto &kv : extra_config)
                cfg.push_back(std::move(kv));
            for (auto &kv : cfg)
                report.addConfig(std::move(kv.first),
                                 std::move(kv.second));
            session_.captureInto(report);
            report.saveJson(opts_.reportPath());
        }
        if (tracer_)
            tracer_->save(opts_.tracePath());
        if (reqTracer_) {
            if (opts_.wantSpanReport())
                reqTracer_->saveSpanJson(opts_.spanReportPath());
            if (opts_.wantRequestTrace()) {
                sim::TraceWriter rtw;
                reqTracer_->exportChrome(rtw);
                rtw.save(opts_.requestTracePath());
            }
        }
    }

    /** The request tracer, when --trace-requests/--span-report is on. */
    sim::RequestTracer *requestTracer() { return reqTracer_; }

  private:
    const Options &opts_;
    std::unique_ptr<sim::TraceWriter> tracer_;
    sim::RequestTracer *reqTracer_ = nullptr;
    sim::telemetry::Session session_;
};

} // namespace ioat::bench

#endif // IOAT_BENCH_COMMON_HH
