/**
 * @file
 * Shared harness for the figure-reproduction benchmarks: ttcp-style
 * stream generators/sinks (written against the sock facade),
 * measurement-window utilities, and the common command-line surface
 * (`Options` + `benchMain`) every bench binary exposes —
 * `--report <file>` (RunReport JSON), `--trace <file>` (Chrome
 * trace), `--sample-interval <us>`, `--seed <n>`, plus bench-specific
 * numeric knobs.
 */

#ifndef IOAT_BENCH_COMMON_HH
#define IOAT_BENCH_COMMON_HH

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/app_memory.hh"
#include "core/cluster.hh"
#include "core/node.hh"
#include "core/testbed.hh"
#include "simcore/profile.hh"
#include "simcore/simcore.hh"
#include "simcore/telemetry.hh"
#include "sock/socket.hh"

namespace ioat::bench {

using core::IoatConfig;
using core::Node;
using core::NodeConfig;
using sim::Coro;
using sim::Simulation;
using sim::Tick;

/** Stream sink options. */
struct SinkOptions
{
    std::size_t recvChunk = 64 * 1024;
    /** Stream over received data (consumer behaviour). */
    bool touchPayload = false;
};

/**
 * ttcp-style server: accept forever; per connection, recv forever.
 * One AppMemory per node models the receive buffers' cache footprint.
 */
inline Coro<void>
streamSinkLoop(Node &node, std::uint16_t port, SinkOptions opts,
               core::AppMemory &mem)
{
    sock::Listener listener(node.transport(), port);
    for (;;) {
        sock::Socket conn = co_await listener.accept();
        node.spawn(
            [](sock::Socket c, SinkOptions o,
               core::AppMemory &m) -> Coro<void> {
                m.reserve(o.recvChunk); // long-lived receive buffer
                for (;;) {
                    const std::size_t got =
                        co_await c.recvAll(o.recvChunk);
                    if (got == 0)
                        co_return;
                    if (o.touchPayload)
                        co_await m.touch(got);
                    else
                        m.noteBuffer(got);
                }
            }(conn, opts, mem));
    }
}

/** ttcp-style sender: connect once, then send chunks forever. */
inline Coro<void>
streamSenderLoop(Node &node, net::NodeId dst, std::uint16_t port,
                 std::size_t chunk, bool zero_copy = false)
{
    sock::Socket conn = co_await node.transport().connect(dst, port);
    const sock::SendOptions opts{.zeroCopy = zero_copy};
    for (;;)
        co_await conn.sendAll(chunk, opts);
}

/**
 * One measurement: warm up, reset utilization windows, run the
 * window, and report payload deltas.
 */
class Meter
{
  public:
    /** Drive any engine: a Simulation or a ShardGroup. */
    explicit Meter(sim::Runner &runner) : runner_(runner) {}

    /** Run the warmup phase then reset the given nodes' CPU windows. */
    void
    warmup(Tick duration, std::initializer_list<Node *> nodes)
    {
        runner_.runFor(duration);
        for (Node *n : nodes)
            n->cpu().resetUtilizationWindow();
        windowStart_ = runner_.now();
    }

    /** Run the measurement window. */
    void run(Tick duration) { runner_.runFor(duration); }

    Tick windowStart() const { return windowStart_; }
    Tick elapsed() const { return runner_.now() - windowStart_; }

  private:
    sim::Runner &runner_;
    Tick windowStart_{};
};

/**
 * The `--transport` choice: pin a bench to one transport/feature
 * configuration instead of its default comparison table.
 */
enum class TransportChoice {
    none,   ///< flag absent: the bench renders its usual comparison
    tcp,    ///< kernel TCP, I/OAT features off
    ioat,   ///< kernel TCP with the full I/OAT feature set
    bypass, ///< user-space kernel-bypass transport
};

/** Map a TransportChoice onto a node configuration. */
inline void
applyTransport(core::NodeConfig &cfg, TransportChoice choice)
{
    switch (choice) {
    case TransportChoice::none:
        break;
    case TransportChoice::tcp:
        cfg.ioat = IoatConfig::disabled();
        cfg.transport = core::TransportKind::tcp;
        break;
    case TransportChoice::ioat:
        cfg.ioat = IoatConfig::enabled();
        cfg.transport = core::TransportKind::tcp;
        break;
    case TransportChoice::bypass:
        cfg.ioat = IoatConfig::disabled();
        cfg.transport = core::TransportKind::bypass;
        break;
    }
}

/** Relative benefit (b - a) / b as the paper defines it (§4). */
inline double
relativeBenefit(double ioat, double non_ioat)
{
    return non_ioat > 0.0 ? (non_ioat - ioat) / non_ioat : 0.0;
}

/** Pretty percent for tables. */
inline std::string
pct(double fraction, int precision = 1)
{
    return sim::strprintf("%.*f%%", precision, fraction * 100.0);
}

inline std::string
num(double v, int precision = 1)
{
    return sim::strprintf("%.*f", precision, v);
}

/**
 * The common command-line surface of every bench binary.
 *
 * Construct with the bench name, register bench-specific knobs with
 * `knob()`, then hand everything to `benchMain` — it parses, handles
 * `--help`, and only then runs the body.
 */
class Options
{
  public:
    explicit Options(std::string bench_name)
        : bench_(std::move(bench_name))
    {}

    const std::string &benchName() const { return bench_; }
    const std::string &reportPath() const { return report_; }
    const std::string &tracePath() const { return trace_; }
    const std::string &requestTracePath() const { return reqTrace_; }
    const std::string &spanReportPath() const { return spanReport_; }
    const std::string &profilePath() const { return profile_; }
    const std::string &metricsPath() const { return metrics_; }
    std::uint64_t seed() const { return seed_; }
    bool wantReport() const { return !report_.empty(); }
    bool wantTrace() const { return !trace_.empty(); }
    bool wantRequestTrace() const { return !reqTrace_.empty(); }
    bool wantSpanReport() const { return !spanReport_.empty(); }
    bool wantProfile() const { return !profile_.empty(); }
    bool wantMetrics() const { return !metrics_.empty(); }
    bool wantEngineMetrics() const { return metricsEngine_; }
    /** Any artifact that needs telemetry/tracing machinery on. */
    bool
    instrumented() const
    {
        return wantReport() || wantTrace() || wantRequestTrace() ||
               wantSpanReport() || wantProfile() || wantMetrics();
    }

    /** Probe sampling period for instrumented runs. */
    Tick sampleInterval() const { return sampleInterval_; }

    /** Metrics snapshot spacing (defaults to the sample interval). */
    Tick
    metricsInterval() const
    {
        return metricsInterval_ > Tick{0} ? metricsInterval_
                                          : sampleInterval_;
    }

    /**
     * Artifacts that follow individual requests through one span tree
     * — traces and profiles — need every span stamped from one clock,
     * so those runs still pin to a single shard.
     */
    bool
    traced() const
    {
        return wantTrace() || wantRequestTrace() || wantSpanReport() ||
               wantProfile();
    }

    /**
     * Worker shards to partition the cluster over (`--shards N`).
     * Traced runs (Chrome traces, span reports, profiles) pin to one
     * shard: one request's spans must be stamped from one clock.
     * Reports and metrics snapshots shard freely — per-shard
     * registries merge deterministically at capture (DESIGN.md §8),
     * and snapshot sampling is per-shard lane-0 local.  Results are
     * shard-count-invariant either way; see DESIGN.md §10.
     */
    unsigned
    shards() const
    {
        return traced() ? 1u : shards_;
    }

    /** The raw --shards value, before the instrumentation pin. */
    unsigned requestedShards() const { return shards_; }

    /** @name Transport pinning (`--transport {tcp,ioat,bypass}`)
     *  @{ */
    /** The raw flag value ("" when absent). */
    const std::string &transportName() const { return transport_; }
    /** True when the bench should render one transport, not a table
     *  of comparisons. */
    bool singleTransport() const { return !transport_.empty(); }
    TransportChoice
    transportChoice() const
    {
        if (transport_ == "tcp")
            return TransportChoice::tcp;
        if (transport_ == "ioat")
            return TransportChoice::ioat;
        if (transport_ == "bypass")
            return TransportChoice::bypass;
        return TransportChoice::none;
    }
    /** @} */

    /** Register a numeric knob: `--<name> <value>` writes to @p slot. */
    void
    knob(std::string name, double *slot, std::string desc)
    {
        knobs_.push_back(Knob{std::move(name), std::move(desc), slot});
    }

    /**
     * Parse argv.  @return false when the process should exit
     * immediately (--help, or a bad flag); exitCode() says how.
     */
    bool
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(stdout);
                exitCode_ = 0;
                return false;
            }
            if (arg == "--transport") {
                if (i + 1 >= argc)
                    return fail(arg + " needs a value");
                const std::string val = argv[++i];
                if (val != "tcp" && val != "ioat" && val != "bypass")
                    return fail("--transport wants tcp, ioat or bypass");
                transport_ = val;
                continue;
            }
            if (arg == "--shards") {
                if (i + 1 >= argc)
                    return fail(arg + " needs a value");
                const unsigned long n =
                    std::strtoul(argv[++i], nullptr, 10);
                if (n < 1 || n > 64)
                    return fail("--shards wants 1..64");
                shards_ = static_cast<unsigned>(n);
                continue;
            }
            if (arg == "--metrics-engine") {
                metricsEngine_ = true;
                continue;
            }
            if (arg == "--report" || arg == "--trace" ||
                arg == "--trace-requests" || arg == "--span-report" ||
                arg == "--profile" || arg == "--metrics" ||
                arg == "--metrics-interval" || arg == "--bench-json" ||
                arg == "--sample-interval" || arg == "--seed") {
                if (i + 1 >= argc)
                    return fail(arg + " needs a value");
                const std::string val = argv[++i];
                if (arg == "--report")
                    report_ = val;
                else if (arg == "--trace")
                    trace_ = val;
                else if (arg == "--trace-requests")
                    reqTrace_ = val;
                else if (arg == "--span-report")
                    spanReport_ = val;
                else if (arg == "--profile")
                    profile_ = val;
                else if (arg == "--metrics")
                    metrics_ = val;
                else if (arg == "--bench-json")
                    benchJson_ = val;
                else if (arg == "--metrics-interval")
                    metricsInterval_ = sim::microseconds(
                        std::strtoull(val.c_str(), nullptr, 10));
                else if (arg == "--sample-interval")
                    sampleInterval_ = sim::microseconds(
                        std::strtoull(val.c_str(), nullptr, 10));
                else
                    seed_ = std::strtoull(val.c_str(), nullptr, 10);
                continue;
            }
            bool matched = false;
            for (const Knob &k : knobs_) {
                if (arg == "--" + k.name) {
                    if (i + 1 >= argc)
                        return fail(arg + " needs a value");
                    *k.slot = std::strtod(argv[++i], nullptr);
                    matched = true;
                    break;
                }
            }
            if (!matched)
                return fail("unknown flag " + arg);
        }
        return true;
    }

    int exitCode() const { return exitCode_; }

    /** @name Perf trajectory (BENCH_<bench>.json)
     *  @{ */
    /** Add simulator events executed by one of the bench's runs.
     *  Called from run bodies (hence const + mutable accumulator);
     *  benchMain folds the total into the trajectory JSON. */
    void noteEvents(std::uint64_t n) const { eventsNoted_ += n; }

    std::uint64_t eventsNoted() const { return eventsNoted_; }

    /** Trajectory output path ("" = BENCH_<bench>.json). */
    std::string
    benchJsonPath() const
    {
        return benchJson_.empty() ? "BENCH_" + bench_ + ".json"
                                  : benchJson_;
    }
    /** @} */

    void
    usage(std::FILE *out) const
    {
        std::fprintf(out, "usage: %s [flags]\n", bench_.c_str());
        std::fprintf(out,
                     "  --report <file>           write RunReport JSON\n"
                     "  --trace <file>            write Chrome trace JSON\n"
                     "  --trace-requests <file>   write per-request Chrome "
                     "trace with flow events\n"
                     "  --span-report <file>      write per-request span "
                     "JSON (breakdown + critical path)\n"
                     "  --profile <file>          write folded-stack "
                     "profile (flamegraph.pl format)\n"
                     "  --metrics <file>          write periodic metrics "
                     "snapshots (OpenMetrics text;\n"
                     "                            JSON when the path ends "
                     "in .json)\n"
                     "  --metrics-interval <us>   snapshot spacing "
                     "(default: the sample interval)\n"
                     "  --metrics-engine          include simulator-engine "
                     "gauges in --metrics\n"
                     "  --bench-json <file>       perf-trajectory JSON "
                     "path (default BENCH_<bench>.json)\n"
                     "  --sample-interval <us>    probe sampling period "
                     "(default 100)\n"
                     "  --seed <n>                run seed echoed into the "
                     "report\n"
                     "  --shards <n>              worker shards for the "
                     "cluster (default 1; results are\n"
                     "                            identical at any value, "
                     "traced/profiled runs pin to 1)\n"
                     "  --transport <t>           pin one transport: tcp, "
                     "ioat or bypass (default: render\n"
                     "                            the bench's usual "
                     "comparison table)\n");
        for (const Knob &k : knobs_)
            std::fprintf(out, "  --%-23s %s (default %g)\n",
                         (k.name + " <value>").c_str(), k.desc.c_str(),
                         *k.slot);
    }

    /** Echo of every flag for the RunReport config block. */
    std::vector<std::pair<std::string, std::string>>
    configEcho() const
    {
        std::vector<std::pair<std::string, std::string>> cfg;
        cfg.emplace_back("sampleIntervalTicks",
                         std::to_string(sampleInterval_.count()));
        cfg.emplace_back("shards", std::to_string(shards()));
        cfg.emplace_back("transport",
                         transport_.empty() ? "default" : transport_);
        for (const Knob &k : knobs_)
            cfg.emplace_back(k.name, sim::strprintf("%g", *k.slot));
        return cfg;
    }

  private:
    struct Knob
    {
        std::string name;
        std::string desc;
        double *slot;
    };

    bool
    fail(const std::string &why)
    {
        std::fprintf(stderr, "%s: %s\n", bench_.c_str(), why.c_str());
        usage(stderr);
        exitCode_ = 2;
        return false;
    }

    std::string bench_;
    std::string report_;
    std::string trace_;
    std::string reqTrace_;
    std::string spanReport_;
    std::string profile_;
    std::string metrics_;
    std::string benchJson_;
    bool metricsEngine_ = false;
    Tick sampleInterval_ = sim::microseconds(100);
    Tick metricsInterval_{};
    std::uint64_t seed_ = 1;
    unsigned shards_ = 1;
    std::string transport_;
    std::vector<Knob> knobs_;
    int exitCode_ = 0;
    /** Simulator events the bench body reported via noteEvents():
     *  mutable so run functions taking `const Options&` can report. */
    mutable std::uint64_t eventsNoted_ = 0;
};

/** Peak resident set in bytes (ru_maxrss is KiB on Linux). */
inline std::uint64_t
peakRssBytes()
{
    struct rusage ru
    {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
}

/**
 * The normalized perf-trajectory record every bench emits
 * ("ioat-bench-v1"): events/sec, wall time, peak RSS, the config
 * echo and the git revision.  `tools/benchdiff.py` compares two of
 * these with noise tolerance; CI gates on the comparison.  Written
 * silently (no stdout) so bench-table golden digests are untouched.
 */
inline void
writeBenchJson(const Options &opts, double wall_seconds)
{
    std::ofstream out(opts.benchJsonPath());
    if (!out)
        return;
    const std::uint64_t events = opts.eventsNoted();
    const double eps =
        wall_seconds > 0.0
            ? static_cast<double>(events) / wall_seconds
            : 0.0;
    out << "{\n  \"schema\": \"ioat-bench-v1\",\n"
        << "  \"bench\": \"" << opts.benchName() << "\",\n"
        << "  \"gitRev\": \"" << sim::telemetry::gitRevision()
        << "\",\n  \"config\": {";
    const auto cfg = opts.configEcho();
    for (std::size_t i = 0; i < cfg.size(); ++i)
        out << (i ? ", " : "") << "\"" << cfg[i].first << "\": \""
            << cfg[i].second << "\"";
    out << "},\n  \"metrics\": {\"events\": " << events
        << ", \"wallSeconds\": " << sim::strprintf("%.3f", wall_seconds)
        << ", \"eventsPerSec\": " << sim::strprintf("%.0f", eps)
        << ", \"peakRssBytes\": " << peakRssBytes() << "}\n}\n";
}

/**
 * Parse flags, then run the bench body.  The body receives the parsed
 * Options and returns the process exit code.  On success the
 * perf-trajectory JSON (BENCH_<bench>.json) is written with the
 * body's wall time and whatever events the body noteEvents()ed.
 */
inline int
benchMain(int argc, char **argv, Options &opts,
          const std::function<int(const Options &)> &body)
{
    if (!opts.parse(argc, argv))
        return opts.exitCode();
    const auto wall0 = std::chrono::steady_clock::now();
    const int rc = body(opts);
    const auto wall1 = std::chrono::steady_clock::now();
    if (rc == 0)
        writeBenchJson(
            opts,
            std::chrono::duration<double>(wall1 - wall0).count());
    return rc;
}

/**
 * Telemetry artifacts for one instrumented run.
 *
 * Construct *after* the Simulation exists and before the workload
 * runs: it opens a telemetry::Session (sampling at
 * `opts.sampleInterval()` when a report was requested) and attaches a
 * trace writer when `--trace` was given.  `finish()` captures the
 * RunReport and writes every requested artifact.
 */
class TelemetryRun
{
  public:
    TelemetryRun(Simulation &sim, const Options &opts) : opts_(opts)
    {
        session_.emplace(sim, sessionConfig(opts));
        initSingle(sim);
    }

    /**
     * Cluster-aware variant.  With one shard this is exactly the
     * classic single-Simulation setup — sampled series, traces,
     * profiling all work.  With several shards only the artifacts
     * that merge deterministically stay on: the RunReport captures a
     * name-sorted merged registry (scalars/histograms/flows; no
     * sampled series) and metrics snapshots sample each shard from
     * its own lane-0 event.  Trace/span/profile artifacts stay
     * single-shard — Options::shards() pins them there.
     */
    TelemetryRun(core::Cluster &cluster, const Options &opts)
        : opts_(opts), cluster_(&cluster)
    {
        if (cluster.group().shardCount() == 1) {
            session_.emplace(cluster.group().shard(0),
                             sessionConfig(opts));
            initSingle(cluster.group().shard(0));
        } else if (opts.wantMetrics()) {
            metrics_.emplace(cluster.group(), snapshotConfig(opts));
        }
    }

    /** The Session; only present when the run is single-Simulation
     *  (always true outside the multi-shard Cluster path). */
    sim::telemetry::Session &session() { return *session_; }
    bool hasSession() const { return session_.has_value(); }

    /**
     * Capture and write artifacts.  @p extra_config is appended to
     * the standard flag echo in the report's config block.
     */
    void
    finish(std::vector<std::pair<std::string, std::string>>
               extra_config = {})
    {
        if (opts_.wantReport()) {
            sim::telemetry::RunReport report;
            report.setBench(opts_.benchName());
            report.setSeed(opts_.seed());
            auto cfg = opts_.configEcho();
            for (auto &kv : extra_config)
                cfg.push_back(std::move(kv));
            for (auto &kv : cfg)
                report.addConfig(std::move(kv.first),
                                 std::move(kv.second));
            if (session_) {
                session_->captureInto(report);
            } else {
                // Multi-shard: walk every shard's hub into one
                // registry.  Walk order depends on the partition, so
                // sort by name before capturing.
                sim::telemetry::Registry merged;
                auto &group = cluster_->group();
                for (unsigned s = 0; s < group.shardCount(); ++s)
                    group.shard(s).telemetry().instrumentAll(merged);
                merged.sortByName();
                report.capture(merged, group.now());
            }
            report.saveJson(opts_.reportPath());
        }
        if (tracer_)
            tracer_->save(opts_.tracePath());
        if (reqTracer_) {
            if (opts_.wantSpanReport())
                reqTracer_->saveSpanJson(opts_.spanReportPath());
            if (opts_.wantRequestTrace()) {
                sim::TraceWriter rtw;
                reqTracer_->exportChrome(rtw);
                rtw.save(opts_.requestTracePath());
            }
        }
        if (profiler_)
            profiler_->saveFolded(opts_.profilePath());
        if (metrics_) {
            metrics_->captureFinal();
            metrics_->save(opts_.metricsPath());
        }
    }

    /** The request tracer, when --trace-requests/--span-report is on. */
    sim::RequestTracer *requestTracer() { return reqTracer_; }

    /** The profiler, when --profile is on. */
    sim::Profiler *profiler()
    {
        return profiler_ ? &*profiler_ : nullptr;
    }

    /** The metrics snapshotter, when --metrics is on. */
    sim::telemetry::MetricsSnapshot *metrics()
    {
        return metrics_ ? &*metrics_ : nullptr;
    }

  private:
    static sim::telemetry::Session::Config
    sessionConfig(const Options &opts)
    {
        return sim::telemetry::Session::Config{
            opts.wantReport() ? opts.sampleInterval() : Tick{0},
            sim::telemetry::Sampler::kDefaultMaxSamples};
    }

    static sim::telemetry::MetricsSnapshot::Config
    snapshotConfig(const Options &opts)
    {
        sim::telemetry::MetricsSnapshot::Config cfg;
        cfg.interval = opts.metricsInterval();
        cfg.engine = opts.wantEngineMetrics();
        return cfg;
    }

    /** Single-Simulation artifact wiring (tracing, profiling,
     *  snapshots); requires session_ to be live. */
    void
    initSingle(Simulation &sim)
    {
        if (opts_.wantTrace()) {
            tracer_ = std::make_unique<sim::TraceWriter>();
            session_->attachTracer(tracer_.get());
        }
        if (opts_.wantRequestTrace() || opts_.wantSpanReport() ||
            opts_.wantProfile()) {
            // Must happen before the workload spawns so requests are
            // minted from the first iteration on.
            reqTracer_ = &sim.enableRequestTracing();
            session_->add("requestTrace", *reqTracer_);
            if (opts_.wantProfile()) {
                profiler_.emplace();
                reqTracer_->attachProfiler(&*profiler_);
            }
        }
        if (opts_.wantMetrics())
            metrics_.emplace(sim, snapshotConfig(opts_));
    }

    const Options &opts_;
    core::Cluster *cluster_ = nullptr;
    std::unique_ptr<sim::TraceWriter> tracer_;
    sim::RequestTracer *reqTracer_ = nullptr;
    std::optional<sim::telemetry::Session> session_;
    std::optional<sim::Profiler> profiler_;
    std::optional<sim::telemetry::MetricsSnapshot> metrics_;
};

} // namespace ioat::bench

#endif // IOAT_BENCH_COMMON_HH
